//! Multi-process SIGKILL chaos test for the socket backend.
//!
//! Unlike the in-process socket tests (which fake a crash by shutting
//! down connections), this test spawns one OS process per rank over real
//! loopback TCP, SIGKILLs the highest rank mid-run, and restarts it.
//! The restarted process re-enters the mesh through
//! [`rejoin_socket_cluster`]'s RESUME handshake; the survivors — which
//! quarantined it and carried its partition by speculation while it was
//! down — readmit it with a full-state keyframe and finish the run.
//!
//! Asserted end-to-end: every process terminates, the restarted rank
//! completes all of its iterations, each survivor quarantined/readmitted
//! the victim and committed degraded (speculated) iterations for it, and
//! every rank's final values stay within a bounded distance of the
//! fault-free reference run.
//!
//! The parent test is `#[ignore]`d: it is a wall-clock-heavy
//! multi-process run, exercised by `ci.sh`'s release-mode chaos step
//! under a hard timeout. The child entry point is a `#[test]` too (the
//! standard self-exec pattern) and is inert without the `SPEC_CHAOS_*`
//! environment.

use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use speccheck::{run_sim_values, DriverMode, SpecParams, SyntheticScenario};
use speculative_computation::prelude::*;

/// Cluster size. The victim is the highest rank: its listener never
/// accepts a connection at cold start (rank `r` dials every lower rank),
/// so its listen port has no lingering accepted-connection state and the
/// restarted process can rebind it immediately.
const P: usize = 3;
const VICTIM: usize = P - 1;
/// Global variables, evenly partitioned (4 per rank).
const N: usize = 12;
const ITERS: u64 = 120;
const SEED: u64 = 42;
/// Transport speed in MIPS. The synthetic app charges
/// `n_local × f_comp = 4 × 200 = 800` ops per iteration, so 0.05 MIPS
/// paces the run at ~16 ms per iteration — slow enough that the kill
/// reliably lands mid-run, fast enough to finish in seconds.
const MIPS: f64 = 0.05;
const LOSS_TIMEOUT_MS: u64 = 40;

fn app_cfg() -> SyntheticConfig {
    SyntheticConfig {
        theta: 0.0,
        jump_prob: 0.0,
        seed: SEED,
        f_comp: 200,
        ..Default::default()
    }
}

fn ranges() -> Vec<std::ops::Range<usize>> {
    (0..P).map(|i| i * N / P..(i + 1) * N / P).collect()
}

fn driver_cfg() -> SpecConfig {
    SpecConfig::speculative(2)
        .with_backward_window(2)
        .with_correction(CorrectionMode::Recompute)
        .with_fault_tolerance(FaultTolerance::new(SimDuration::from_millis(
            LOSS_TIMEOUT_MS,
        )))
        .with_supervision(SupervisionConfig::new(1, 2))
}

fn supervised_opts(rank: usize) -> SocketClusterOptions {
    SocketClusterOptions {
        mips: MIPS,
        connect_timeout: Duration::from_secs(20),
        supervision: Some(SupervisorOptions {
            heartbeat_interval: Duration::from_millis(20),
            miss_deadline: Duration::from_millis(100),
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(100),
            // The victim stays dead for ~half a second; keep redialing
            // until it returns rather than giving up on it.
            retry_budget: 500,
            seed: SEED ^ rank as u64,
        }),
        ..Default::default()
    }
}

// ---------------------------------------------------------------------------
// Child entry point (one per rank, spawned by the parent test below).
// ---------------------------------------------------------------------------

#[test]
#[ignore = "helper process entry point for socket_rank_survives_sigkill_and_rejoins"]
fn chaos_socket_child() {
    let Ok(rank) = std::env::var("SPEC_CHAOS_RANK") else {
        return; // not spawned as a helper: nothing to do
    };
    let rank: usize = rank.parse().expect("SPEC_CHAOS_RANK");
    let addrs: Vec<SocketAddr> = std::env::var("SPEC_CHAOS_ADDRS")
        .expect("SPEC_CHAOS_ADDRS")
        .split(',')
        .map(|a| a.parse().expect("address"))
        .collect();
    let rejoining = std::env::var("SPEC_CHAOS_MODE").as_deref() == Ok("rejoin");

    let opts = supervised_opts(rank);
    let mut t = if rejoining {
        // A SIGKILLed process has no volatile state to resume from: it
        // reports progress 0 and re-runs its partition from iteration 0,
        // letting the survivors' keyframe sync and loss promotions carry
        // it back to the frontier.
        rejoin_socket_cluster::<IterMsg<Vec<f64>>>(rank, &addrs, opts, 0).expect("rejoin")
    } else {
        connect_socket_cluster::<IterMsg<Vec<f64>>>(rank, &addrs, opts).expect("connect")
    };
    println!("CHAOS-READY rank={rank}");

    let rgs = ranges();
    let mut app = SyntheticApp::new(N, &rgs, rank, app_cfg());
    let stats = run_speculative(&mut t, &mut app, ITERS, driver_cfg());
    let values = app
        .values()
        .iter()
        .map(|v| format!("{v:.17e}"))
        .collect::<Vec<_>>()
        .join(",");
    println!(
        "CHAOS-RESULT rank={rank} iters={} rejoins={} quarantined={} degraded={} promoted={} values={values}",
        stats.iterations,
        stats.peer_rejoins,
        stats.peers_quarantined,
        stats.degraded_commits,
        stats.speculate_through_loss_commits,
    );
}

// ---------------------------------------------------------------------------
// Parent-side plumbing.
// ---------------------------------------------------------------------------

struct ChildProc {
    child: Child,
    lines: Arc<Mutex<Vec<String>>>,
}

/// Reserve `p` distinct loopback ports by binding ephemeral listeners,
/// then release them for the children to rebind. There is a small window
/// in which another process could grab one; on a CI loopback that race
/// is negligible and a collision fails loudly at connect time.
fn free_addrs(p: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> = (0..p)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect()
}

fn spawn_rank(rank: usize, addr_env: &str, mode: &str) -> ChildProc {
    let exe = std::env::current_exe().expect("current exe");
    let mut child = Command::new(exe)
        .args(["chaos_socket_child", "--exact", "--ignored", "--nocapture"])
        .env("SPEC_CHAOS_RANK", rank.to_string())
        .env("SPEC_CHAOS_ADDRS", addr_env)
        .env("SPEC_CHAOS_MODE", mode)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn child rank");
    let stdout = child.stdout.take().expect("piped stdout");
    let lines = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&lines);
    std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines().map_while(Result::ok) {
            sink.lock().unwrap().push(line);
        }
    });
    ChildProc { child, lines }
}

fn wait_for_line(p: &ChildProc, needle: &str, deadline: Instant) {
    while Instant::now() < deadline {
        if p.lines.lock().unwrap().iter().any(|l| l.contains(needle)) {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!(
        "timed out waiting for {needle:?}; child output so far: {:?}",
        p.lines.lock().unwrap()
    );
}

fn wait_until(child: &mut Child, deadline: Instant) -> ExitStatus {
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            panic!("child did not terminate before the deadline");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

struct ChildResult {
    iters: u64,
    rejoins: u64,
    quarantined: u64,
    degraded: u64,
    promoted: u64,
    values: Vec<f64>,
}

fn parse_result(lines: &[String]) -> ChildResult {
    let line = lines
        .iter()
        .find(|l| l.contains("CHAOS-RESULT"))
        .unwrap_or_else(|| panic!("no CHAOS-RESULT line in child output: {lines:?}"));
    let field = |key: &str| -> String {
        let prefix = format!("{key}=");
        line.split_whitespace()
            .find_map(|w| w.strip_prefix(&prefix).map(str::to_owned))
            .unwrap_or_else(|| panic!("missing {key} in {line:?}"))
    };
    ChildResult {
        iters: field("iters").parse().expect("iters"),
        rejoins: field("rejoins").parse().expect("rejoins"),
        quarantined: field("quarantined").parse().expect("quarantined"),
        degraded: field("degraded").parse().expect("degraded"),
        promoted: field("promoted").parse().expect("promoted"),
        values: field("values")
            .split(',')
            .map(|v| v.parse().expect("value"))
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// The chaos run.
// ---------------------------------------------------------------------------

#[test]
#[ignore = "multi-process wall-clock chaos run; executed by ci.sh's release-mode chaos step"]
fn socket_rank_survives_sigkill_and_rejoins() {
    let overall = Instant::now() + Duration::from_secs(90);
    let addrs = free_addrs(P);
    let addr_env = addrs
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",");

    let mut procs: Vec<ChildProc> = (0..P).map(|r| spawn_rank(r, &addr_env, "start")).collect();
    for (r, p) in procs.iter().enumerate() {
        wait_for_line(p, &format!("CHAOS-READY rank={r}"), overall);
    }

    // Let the run get well underway, then SIGKILL the victim — no
    // goodbye frame, no flush: the survivors observe crash semantics.
    std::thread::sleep(Duration::from_millis(400));
    procs[VICTIM].child.kill().expect("SIGKILL victim");
    procs[VICTIM].child.wait().expect("reap victim");

    // Keep it dead past the supervisor's miss deadline and several loss
    // timeouts, so the survivors suspect, quarantine, and commit
    // degraded iterations for its partition...
    std::thread::sleep(Duration::from_millis(450));

    // ...then restart it. The fresh process rebinds the victim's
    // address and re-enters through the RESUME handshake.
    procs[VICTIM] = spawn_rank(VICTIM, &addr_env, "rejoin");

    for (r, p) in procs.iter_mut().enumerate() {
        let status = wait_until(&mut p.child, overall);
        assert!(status.success(), "rank {r} exited with {status:?}");
    }

    for (r, p) in procs.iter().enumerate() {
        for line in p.lines.lock().unwrap().iter() {
            if line.contains("CHAOS-") {
                println!("rank {r}: {line}");
            }
        }
    }
    let results: Vec<ChildResult> = procs
        .iter()
        .map(|p| parse_result(&p.lines.lock().unwrap()))
        .collect();

    // Termination + reintegration: every rank — including the restarted
    // one — confirmed every iteration.
    for (r, res) in results.iter().enumerate() {
        assert_eq!(res.iters, ITERS, "rank {r} did not confirm every iteration");
    }

    // The cluster quarantined the dead rank, carried its partition by
    // promoted speculation while it was down, and readmitted it when its
    // frames flowed again. Whether *each* survivor individually reaches
    // quarantine depends on how much of the victim's pre-crash output it
    // had buffered when the kill landed, so the lifecycle is asserted
    // across the surviving set rather than per rank.
    let survivors = &results[..P - 1];
    let quarantined: u64 = survivors.iter().map(|r| r.quarantined).sum();
    let degraded: u64 = survivors.iter().map(|r| r.degraded).sum();
    let rejoins: u64 = survivors.iter().map(|r| r.rejoins).sum();
    let promoted: u64 = survivors.iter().map(|r| r.promoted).sum();
    assert!(quarantined >= 1, "no survivor ever quarantined the victim");
    assert!(degraded >= 1, "no survivor committed degraded iterations");
    assert!(rejoins >= 1, "no survivor readmitted the victim");
    assert!(
        promoted >= 1,
        "no survivor speculated through the victim's silence"
    );

    // Bounded error: the synthetic workload relaxes toward the global
    // mean of its initial ramp over [1, 2], so every fault-free final
    // value sits near 1.46. Promotions substitute extrapolated values
    // while the victim is away, which perturbs — but must not unbound —
    // the fixed point each rank converges to.
    let sc = SyntheticScenario {
        p: P,
        n: N,
        iters: ITERS,
        mips: 50.0,
        ramp: 0.0,
        latency_us: 200,
        jitter_frac: 0.0,
        jump_prob: 0.0,
        delta_floor: 0.0,
        delta_keyframe: 1,
        seed: SEED,
    };
    let mode = DriverMode::Speculative(
        SpecParams {
            fw: 2,
            bw: 2,
            theta: 0.0,
            recompute: true,
        }
        .build(),
    );
    let reference = run_sim_values(&sc, 0.0, &mode, TieBreak::Fifo);
    for (r, res) in results.iter().enumerate() {
        assert_eq!(res.values.len(), reference[r].len(), "rank {r} value count");
        for (i, (got, want)) in res.values.iter().zip(&reference[r]).enumerate() {
            assert!(got.is_finite(), "rank {r} var {i} is not finite: {got}");
            assert!(
                (got - want).abs() < 0.5,
                "rank {r} var {i} drifted unboundedly: {got} vs fault-free {want}"
            );
        }
    }
}
