//! The three extra workloads running through the full speculative driver
//! on the simulated cluster.

use speculative_computation::prelude::*;
use workloads::{heat_reference, pagerank_reference, synthetic_reference};

fn even_ranges(n: usize, p: usize) -> Vec<std::ops::Range<usize>> {
    (0..p).map(|i| i * n / p..(i + 1) * n / p).collect()
}

#[test]
fn synthetic_theta_zero_recompute_is_exact() {
    let n = 48;
    let p = 4;
    let iters = 10;
    let ranges = even_ranges(n, p);
    let scfg = SyntheticConfig {
        theta: 0.0,
        jump_prob: 0.05,
        ..Default::default()
    };
    let cluster = ClusterSpec::homogeneous(p, 100.0);
    let (outs, _) = run_sim_cluster::<IterMsg<Vec<f64>>, _, _>(
        &cluster,
        ConstantLatency(SimDuration::from_millis(2)),
        Unloaded,
        false,
        {
            let ranges = ranges.clone();
            move |t| {
                let mut app = SyntheticApp::new(n, &ranges, t.rank().0, scfg);
                let cfg = SpecConfig::speculative(1).with_correction(CorrectionMode::Recompute);
                let stats = run_speculative(t, &mut app, iters, cfg);
                (app.values().to_vec(), stats)
            }
        },
    )
    .unwrap();
    let got: Vec<f64> = outs.iter().flat_map(|(v, _)| v.iter().copied()).collect();
    let want = synthetic_reference(n, &ranges, scfg, iters);
    assert_eq!(
        got, want,
        "θ=0 + recompute must match the sequential reference exactly"
    );
    // Jumps must actually break speculation for this to be meaningful.
    let rollbacks: u64 = outs.iter().map(|(_, s)| s.rollbacks).sum();
    assert!(rollbacks > 0, "jump process never broke a speculation");
}

#[test]
fn synthetic_jump_rate_drives_measured_k() {
    // The whole point of the synthetic workload: jump_prob is a dial for
    // the model's k. Measured k should track it.
    let n = 60;
    let p = 3;
    let iters = 30;
    let ranges = even_ranges(n, p);
    let cluster = ClusterSpec::homogeneous(p, 100.0);
    let measure = |jump_prob: f64| {
        let scfg = SyntheticConfig {
            theta: 1e-6,
            jump_prob,
            ..Default::default()
        };
        let (outs, _) = run_sim_cluster::<IterMsg<Vec<f64>>, _, _>(
            &cluster,
            ConstantLatency(SimDuration::from_millis(2)),
            Unloaded,
            false,
            {
                let ranges = ranges.clone();
                move |t| {
                    let mut app = SyntheticApp::new(n, &ranges, t.rank().0, scfg);
                    run_speculative(t, &mut app, iters, SpecConfig::speculative(1))
                }
            },
        )
        .unwrap();
        ClusterStats::new(outs).recomputation_fraction()
    };
    let low = measure(0.01);
    let high = measure(0.2);
    assert!(
        high > low,
        "higher jump rate must produce higher k ({low} vs {high})"
    );
    assert!(
        high > 0.1,
        "20% jumps should reject >10% of units, got {high}"
    );
}

#[test]
fn heat_full_driver_matches_reference_when_accepted() {
    let n = 120;
    let p = 4;
    let iters = 60;
    let ranges = even_ranges(n, p);
    let hcfg = HeatConfig::default();
    let cluster = ClusterSpec::homogeneous(p, 10.0);
    let (outs, _) = run_sim_cluster::<IterMsg<workloads::Halo>, _, _>(
        &cluster,
        ConstantLatency(SimDuration::from_millis(1)),
        Unloaded,
        false,
        {
            let ranges = ranges.clone();
            move |t| {
                let mut app = HeatApp::new(n, &ranges, t.rank().0, hcfg);
                let stats = run_speculative(t, &mut app, iters, SpecConfig::speculative(1));
                (app.cells().to_vec(), stats)
            }
        },
    )
    .unwrap();
    let got: Vec<f64> = outs.iter().flat_map(|(v, _)| v.iter().copied()).collect();
    let want = heat_reference(n, hcfg, iters);
    let max_diff = got
        .iter()
        .zip(&want)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max_diff < 5e-3,
        "speculative heat drifted {max_diff} beyond the θ bound"
    );
    let spec: u64 = outs.iter().map(|(_, s)| s.speculated_partitions).sum();
    assert!(spec > 0);
}

#[test]
fn heat2d_full_driver_conserves_heat_and_stays_close() {
    let (rows, cols) = (24, 12);
    let p = 3;
    let iters = 40;
    let ranges = even_ranges(rows, p);
    let hcfg = Heat2dConfig::default();
    let cluster = ClusterSpec::homogeneous(p, 10.0);
    let (outs, _) = run_sim_cluster::<IterMsg<RowHalo>, _, _>(
        &cluster,
        ConstantLatency(SimDuration::from_millis(1)),
        Unloaded,
        false,
        {
            let ranges = ranges.clone();
            move |t| {
                let mut app = Heat2dApp::new(rows, cols, &ranges, t.rank().0, hcfg);
                let stats = run_speculative(t, &mut app, iters, SpecConfig::speculative(1));
                (app.cells().to_vec(), stats)
            }
        },
    )
    .unwrap();
    let got: Vec<f64> = outs.iter().flat_map(|(v, _)| v.iter().copied()).collect();
    let want = workloads::heat2d_reference(rows, cols, hcfg, iters);
    // Insulated walls: heat conserved up to accepted speculation error.
    let total_got: f64 = got.iter().sum();
    let total_want: f64 = want.iter().sum();
    assert!((total_got - total_want).abs() / total_want < 0.01);
    let max_diff = got
        .iter()
        .zip(&want)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max_diff < 5e-3,
        "2-D heat drifted {max_diff} beyond the θ bound"
    );
    assert!(
        outs.iter()
            .map(|(_, s)| s.speculated_partitions)
            .sum::<u64>()
            > 0
    );
}

#[test]
fn pagerank_full_driver_stays_normalized() {
    let n = 80;
    let p = 4;
    let iters = 25;
    let graph = Graph::random(n, 5, 17);
    let ranges = even_ranges(n, p);
    let cluster = ClusterSpec::homogeneous(p, 10.0);
    let (outs, _) = run_sim_cluster::<IterMsg<Vec<f64>>, _, _>(
        &cluster,
        ConstantLatency(SimDuration::from_millis(1)),
        Unloaded,
        false,
        {
            let graph = graph.clone();
            let ranges = ranges.clone();
            move |t| {
                let mut app = PageRankApp::new(
                    graph.clone(),
                    &ranges,
                    t.rank().0,
                    PageRankConfig {
                        theta: 0.02,
                        ..Default::default()
                    },
                );
                let stats = run_speculative(t, &mut app, iters, SpecConfig::speculative(1));
                (app.scores().to_vec(), stats)
            }
        },
    )
    .unwrap();
    let got: Vec<f64> = outs.iter().flat_map(|(v, _)| v.iter().copied()).collect();
    let total: f64 = got.iter().sum();
    assert!((total - 1.0).abs() < 0.05, "rank mass drifted to {total}");
    let want = pagerank_reference(&graph, PageRankConfig::default(), iters);
    let l1: f64 = got.iter().zip(&want).map(|(a, b)| (a - b).abs()).sum();
    assert!(l1 < 0.1, "speculative pagerank L1 error {l1} too large");
}

#[test]
fn jacobi_full_driver_solves_the_system() {
    let n = 32;
    let p = 4;
    let iters = 60;
    let sys = LinearSystem::random(n, 13);
    let ranges = even_ranges(n, p);
    let cluster = ClusterSpec::homogeneous(p, 10.0);
    let (outs, _) = run_sim_cluster::<IterMsg<Vec<f64>>, _, _>(
        &cluster,
        ConstantLatency(SimDuration::from_millis(1)),
        Unloaded,
        false,
        {
            let sys = sys.clone();
            let ranges = ranges.clone();
            move |t| {
                let mut app =
                    JacobiApp::new(sys.clone(), &ranges, t.rank().0, JacobiConfig::default());
                let stats = run_speculative(t, &mut app, iters, SpecConfig::speculative(1));
                (app.values().to_vec(), stats)
            }
        },
    )
    .unwrap();
    let x: Vec<f64> = outs.iter().flat_map(|(v, _)| v.iter().copied()).collect();
    // The speculative solve must still converge to the true solution:
    // accepted θ-bounded errors vanish as the iterate stabilizes.
    let res = sys.residual(&x);
    assert!(res < 1e-6, "speculative Jacobi residual {res}");
    assert!(
        outs.iter()
            .map(|(_, s)| s.speculated_partitions)
            .sum::<u64>()
            > 0
    );
}

#[test]
fn all_workloads_benefit_from_speculation_when_comm_bound() {
    // One latency-dominated setting, three applications: speculation must
    // shorten every one of them.
    let p = 4;
    let cluster = ClusterSpec::homogeneous(p, 0.1);
    let latency = ConstantLatency(SimDuration::from_millis(40));

    // Synthetic.
    let synth = |fw: u32| {
        let ranges = even_ranges(40, p);
        let (_, report) = run_sim_cluster::<IterMsg<Vec<f64>>, _, _>(
            &cluster,
            latency,
            Unloaded,
            false,
            move |t| {
                let mut app = SyntheticApp::new(
                    40,
                    &ranges,
                    t.rank().0,
                    SyntheticConfig {
                        f_comp: 300,
                        f_spec: 1,
                        f_check: 1,
                        theta: 0.5,
                        ..Default::default()
                    },
                );
                let cfg = if fw == 0 {
                    SpecConfig::baseline()
                } else {
                    SpecConfig::speculative(fw)
                };
                run_speculative(t, &mut app, 10, cfg)
            },
        )
        .unwrap();
        report.end_time.as_secs_f64()
    };
    assert!(synth(1) < synth(0), "synthetic workload failed to benefit");

    // Heat.
    let heat = |fw: u32| {
        let ranges = even_ranges(200, p);
        let (_, report) = run_sim_cluster::<IterMsg<workloads::Halo>, _, _>(
            &cluster,
            latency,
            Unloaded,
            false,
            move |t| {
                let mut app = HeatApp::new(
                    200,
                    &ranges,
                    t.rank().0,
                    HeatConfig {
                        ops_per_cell: 500,
                        theta: 0.5,
                        ..Default::default()
                    },
                );
                let cfg = if fw == 0 {
                    SpecConfig::baseline()
                } else {
                    SpecConfig::speculative(fw)
                };
                run_speculative(t, &mut app, 10, cfg)
            },
        )
        .unwrap();
        report.end_time.as_secs_f64()
    };
    assert!(heat(1) < heat(0), "heat workload failed to benefit");

    // PageRank.
    let pr = |fw: u32| {
        let graph = Graph::random(60, 4, 3);
        let ranges = even_ranges(60, p);
        let (_, report) = run_sim_cluster::<IterMsg<Vec<f64>>, _, _>(
            &cluster,
            latency,
            Unloaded,
            false,
            move |t| {
                let mut app = PageRankApp::new(
                    graph.clone(),
                    &ranges,
                    t.rank().0,
                    PageRankConfig {
                        theta: 0.5,
                        ..Default::default()
                    },
                );
                let cfg = if fw == 0 {
                    SpecConfig::baseline()
                } else {
                    SpecConfig::speculative(fw)
                };
                run_speculative(t, &mut app, 10, cfg)
            },
        )
        .unwrap();
        report.end_time.as_secs_f64()
    };
    assert!(pr(1) < pr(0), "pagerank workload failed to benefit");
}
