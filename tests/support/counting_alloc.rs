//! Shared counting-allocator harness for zero-allocation tests.
//!
//! Included via `#[path]` from each test binary that needs it (this
//! directory is not auto-discovered as a test target); the including
//! binary must register the allocator itself:
//!
//! ```ignore
//! #[path = "support/counting_alloc.rs"]
//! mod counting_alloc;
//! use counting_alloc::{allocations_here, CountingAlloc};
//!
//! #[global_allocator]
//! static GLOBAL: CountingAlloc = CountingAlloc;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Counting allocator: thread-local tallies so concurrently running
/// tests cannot disturb a measurement window. `Cell<u64>` has no
/// destructor, so the const-initialised slot stays valid for the whole
/// thread lifetime and the hooks never allocate themselves.
pub struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

/// Heap allocations (alloc + realloc) observed on this thread so far.
pub fn allocations_here() -> u64 {
    ALLOCS.with(|c| c.get())
}
