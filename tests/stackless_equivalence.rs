//! Differential conformance: the threaded and the stackless desim kernels
//! must be **bit-identical** — per-rank fingerprints, per-rank
//! [`speccore::RunStats`], virtual end time, and the kernel's own event
//! counters — on every scenario the workspace has ever found interesting.
//!
//! Three layers of evidence:
//!
//! 1. **Corpus replay** — the checked-in proptest-regressions witnesses
//!    (the RNG states that once shrank to real bugs) are re-drawn with the
//!    exact strategies that produced them and replayed on both kernels.
//! 2. **Chaos matrix** — the failure-injection settings from
//!    `tests/failure_injection.rs` (heavy jitter, transient delay storms,
//!    load spikes, random loss, duplication, loss+dup stacks) run on both
//!    kernels at the `mpk` level, comparing full [`desim::SimReport`]s.
//! 3. **Grid sweep** — the θ/FW fault-tolerance grid from the conformance
//!    witness, with supervision-era tie-breaks.

use desim::{SimDuration, TieBreak};
use mpk::{FaultSpec, SimClusterOptions};
use netsim::{
    ConstantLatency, Duplicate, FaultStack, Jitter, LoadModel, Loss, NetworkModel, RandomSpikes,
    TransientDelays, Unloaded,
};
use proptest::corpus;
use proptest::strategy::Strategy;
use proptest::TestRng;
use speccheck::{
    drive_synthetic, drive_synthetic_aio, loss_scenario, run_sim_stackless_with_faults,
    run_sim_with_faults, spec_params, synthetic_scenario, DriverMode, RunOutput, SyntheticScenario,
};
use speccore::{FaultTolerance, IterMsg, SpecConfig};

/// The speccheck crate's corpus directory, resolved from this test's own
/// manifest so the suite works from any working directory.
fn speccheck_corpus(test_ident: &str) -> Vec<u64> {
    let manifest = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/speccheck");
    let states = corpus::states(&corpus::path_for(manifest, test_ident));
    assert!(
        !states.is_empty(),
        "checked-in witness corpus for {test_ident} must exist and parse"
    );
    states
}

/// Assert two harness runs are bit-identical in every comparable respect.
fn assert_identical(threaded: &RunOutput, stackless: &RunOutput, ctx: &str) {
    assert_eq!(
        threaded.fingerprints, stackless.fingerprints,
        "fingerprints diverge: {ctx}"
    );
    assert_eq!(threaded.stats, stackless.stats, "stats diverge: {ctx}");
    assert!(
        threaded.elapsed == stackless.elapsed,
        "virtual end time diverges: {ctx} ({} vs {})",
        threaded.elapsed,
        stackless.elapsed
    );
    assert_eq!(
        threaded.kernel, stackless.kernel,
        "kernel counters diverge: {ctx}"
    );
    assert!(
        threaded.kernel.is_some() && stackless.kernel.is_some(),
        "sim arms must report kernel counters: {ctx}"
    );
}

/// Run one scenario/config on both kernels through the speccheck harness
/// and require bitwise agreement.
fn both_kernels(
    sc: &SyntheticScenario,
    theta: f64,
    mode: &DriverMode,
    faults: impl Fn() -> FaultSpec<IterMsg<Vec<f64>>>,
    tie: TieBreak,
    ctx: &str,
) {
    let threaded = run_sim_with_faults(sc, theta, mode, faults(), tie);
    let stackless = run_sim_stackless_with_faults(sc, theta, mode, faults(), tie);
    assert_identical(&threaded, &stackless, ctx);
}

/// Replay the conformance witness (`fault_tolerance_is_inert_without_faults`):
/// the exact strategy tuple that test uses, re-drawn from each stored RNG
/// state, run plain and with fault tolerance armed on both kernels.
#[test]
fn conformance_witness_replays_bit_identical() {
    let strategy = (synthetic_scenario(), spec_params(), 200u64..500);
    for state in speccheck_corpus("conformance::fault_tolerance_is_inert_without_faults") {
        let mut rng = TestRng::from_state(state);
        let (sc, params, timeout_ms) = Strategy::sample(&strategy, &mut rng);
        let mode = DriverMode::from_params(&params);
        both_kernels(
            &sc,
            params.theta,
            &mode,
            FaultSpec::none,
            TieBreak::Fifo,
            &format!("conformance witness {state:#x} plain"),
        );
        let ft_cfg = params
            .build()
            .with_fault_tolerance(FaultTolerance::new(SimDuration::from_millis(timeout_ms)));
        both_kernels(
            &sc,
            params.theta,
            &DriverMode::Speculative(ft_cfg),
            FaultSpec::none,
            TieBreak::Fifo,
            &format!("conformance witness {state:#x} fault-tolerant"),
        );
    }
}

/// Replay the loss-accounting witness (`loss_commits_bounded_by_losses`):
/// same strategy tuple and the same calm-network clamp, with the loss
/// stack actually injected, on both kernels.
#[test]
fn loss_witness_replays_bit_identical() {
    let strategy = (synthetic_scenario(), loss_scenario(), 1u32..4, 0.0f64..0.4);
    for state in speccheck_corpus("oracles::loss_commits_bounded_by_losses") {
        let mut rng = TestRng::from_state(state);
        let (sc, fault, fw, theta) = Strategy::sample(&strategy, &mut rng);
        let mut sc = sc;
        sc.jitter_frac = 0.0;
        sc.latency_us = sc.latency_us.min(2_000);
        let cfg = SpecConfig::speculative(fw).with_fault_tolerance(fault.tolerance());
        both_kernels(
            &sc,
            theta,
            &DriverMode::Speculative(cfg),
            || fault.build(),
            TieBreak::Fifo,
            &format!("loss witness {state:#x}"),
        );
    }
}

/// Run one chaos configuration — arbitrary network model, load model and
/// fault spec — on both kernels at the `mpk` level and require the *whole*
/// [`desim::SimReport`] (event, message, timer and trace accounting) to
/// match, not just the workload outputs.
fn chaos_pair<N: NetworkModel + 'static, L: LoadModel + 'static>(
    sc: &SyntheticScenario,
    theta: f64,
    mode: &DriverMode,
    net: impl Fn() -> N,
    load: impl Fn() -> L,
    faults: impl Fn() -> FaultSpec<IterMsg<Vec<f64>>>,
    ctx: &str,
) {
    let cluster = sc.cluster();
    let (sc_t, mode_t) = (sc.clone(), mode.clone());
    let (threaded, t_report) = mpk::run_sim_cluster_with_options::<IterMsg<Vec<f64>>, _, _>(
        &cluster,
        net(),
        load(),
        faults(),
        SimClusterOptions::default(),
        move |t| drive_synthetic(t, &sc_t, theta, &mode_t),
    )
    .unwrap_or_else(|e| panic!("threaded chaos run failed ({ctx}): {e:?}"));
    let (sc_s, mode_s) = (sc.clone(), mode.clone());
    let (stackless, s_report) =
        mpk::run_sim_proc_cluster_with_options::<IterMsg<Vec<f64>>, _, _, _>(
            &cluster,
            net(),
            load(),
            faults(),
            SimClusterOptions {
                check_scheduling: true,
                ..Default::default()
            },
            move |mut t| {
                let sc = sc_s.clone();
                let mode = mode_s.clone();
                async move { drive_synthetic_aio(&mut t, &sc, theta, &mode).await }
            },
        )
        .unwrap_or_else(|e| panic!("stackless chaos run failed ({ctx}): {e:?}"));
    assert_eq!(threaded, stackless, "workload outputs diverge: {ctx}");
    assert_eq!(t_report, s_report, "SimReport diverges: {ctx}");
}

/// A fixed mid-size scenario for the chaos matrix (the matrix varies the
/// environment, not the workload).
fn chaos_scenario() -> SyntheticScenario {
    SyntheticScenario {
        p: 4,
        n: 12,
        iters: 5,
        mips: 25.0,
        ramp: 0.4,
        latency_us: 2_000,
        jitter_frac: 0.0,
        jump_prob: 0.1,
        delta_floor: 0.0,
        delta_keyframe: 1,
        seed: 0xC0FFEE,
    }
}

/// The failure-injection matrix from `tests/failure_injection.rs`, run
/// differentially: heavy jitter, transient delay storms, CPU load spikes,
/// random loss, duplication, and a loss+dup stack — each must schedule
/// identically on both kernels.
#[test]
fn chaos_matrix_bit_identical() {
    let sc = chaos_scenario();
    let spec = DriverMode::Speculative(
        SpecConfig::speculative(2)
            .with_fault_tolerance(FaultTolerance::new(SimDuration::from_millis(60))),
    );
    let base = || ConstantLatency(SimDuration::from_millis(5));

    chaos_pair(
        &sc,
        0.2,
        &spec,
        || Jitter::new(base(), 0.9, 123),
        || Unloaded,
        FaultSpec::none,
        "jitter 0.9 seed 123",
    );
    chaos_pair(
        &sc,
        0.2,
        &spec,
        || TransientDelays::new(base(), 0.1, SimDuration::from_millis(2_000), 9),
        || Unloaded,
        FaultSpec::none,
        "transient delays 0.1/2s seed 9",
    );
    chaos_pair(
        &sc,
        0.2,
        &spec,
        base,
        || RandomSpikes::new(0.3, 5.0, 77),
        FaultSpec::none,
        "load spikes 0.3/5.0 seed 77",
    );
    chaos_pair(
        &sc,
        0.2,
        &spec,
        base,
        || Unloaded,
        || FaultSpec::new(Loss::new(0.1, 21)),
        "loss 0.1 seed 21",
    );
    chaos_pair(
        &sc,
        0.2,
        &spec,
        base,
        || Unloaded,
        || FaultSpec::new(Duplicate::new(0.2, 33)),
        "dup 0.2 seed 33",
    );
    chaos_pair(
        &sc,
        0.2,
        &spec,
        || Jitter::new(base(), 0.5, 11),
        || RandomSpikes::new(0.2, 3.0, 13),
        || {
            FaultSpec::new(
                FaultStack::new()
                    .with(Loss::new(0.05, 41))
                    .with(Duplicate::new(0.1, 42)),
            )
        },
        "jitter+spikes+loss+dup stack",
    );
}

/// Baseline driver and every tie-break mode agree across kernels (the
/// tie-break changes the schedule, but both kernels must change it the
/// same way).
#[test]
fn tie_breaks_and_baseline_bit_identical() {
    let sc = chaos_scenario();
    for tie in [TieBreak::Fifo, TieBreak::Lifo, TieBreak::Seeded(7)] {
        both_kernels(
            &sc,
            0.0,
            &DriverMode::Baseline,
            FaultSpec::none,
            tie,
            &format!("baseline {tie:?}"),
        );
        both_kernels(
            &sc,
            0.15,
            &DriverMode::Speculative(SpecConfig::speculative(3)),
            FaultSpec::none,
            tie,
            &format!("speculative fw=3 {tie:?}"),
        );
    }
}
