//! End-to-end N-body correctness across the whole stack:
//! desim → netsim → mpk → speccore → nbody.

use speculative_computation::prelude::*;

fn base_cfg(iters: u64, fw: u32) -> ParallelRunConfig {
    let mut cfg = ParallelRunConfig::new(iters, fw);
    cfg.nbody = NBodyConfig::default();
    cfg
}

fn reference(particles: &[Particle], caps: &[f64], cfg: &NBodyConfig, iters: u64) -> Vec<Particle> {
    let ranges = nbody::partition_proportional(particles.len(), caps);
    let mut ps = particles.to_vec();
    for _ in 0..iters {
        nbody::integrate::step_partition_order(&mut ps, &ranges, cfg);
    }
    ps
}

use nbody::Particle;

#[test]
fn baseline_heterogeneous_matches_reference_bitwise() {
    let particles = uniform_cloud(60, 11);
    let cluster = ClusterSpec::linear_ramp(5, 50.0, 10.0);
    let iters = 6;
    let result = run_parallel(
        &particles,
        &cluster,
        SharedMedium::new(SimDuration::from_millis(1), 1e6),
        Unloaded,
        base_cfg(iters, 0),
    )
    .unwrap();
    let want = reference(
        &particles,
        &cluster.capacities(),
        &NBodyConfig::default(),
        iters,
    );
    for (g, w) in result.particles.iter().zip(&want) {
        assert_eq!(g.pos, w.pos);
        assert_eq!(g.vel, w.vel);
    }
}

#[test]
fn speculative_exactness_under_every_window() {
    // θ = 0 with recompute correction must equal the baseline bitwise for
    // FW = 1, 2, 3 — the core soundness property of the whole pipeline.
    let particles = uniform_cloud(36, 3);
    let cluster = ClusterSpec::homogeneous(3, 10.0);
    let iters = 5;
    let want = reference(
        &particles,
        &cluster.capacities(),
        &NBodyConfig::default().with_theta(0.0),
        iters,
    );
    for fw in 1..=3u32 {
        let mut cfg = base_cfg(iters, fw);
        cfg.nbody = cfg.nbody.with_theta(0.0);
        cfg.spec = cfg.spec.with_correction(CorrectionMode::Recompute);
        let result = run_parallel(
            &particles,
            &cluster,
            ConstantLatency(SimDuration::from_millis(3)),
            Unloaded,
            cfg,
        )
        .unwrap();
        for (g, w) in result.particles.iter().zip(&want) {
            assert_eq!(g.pos, w.pos, "FW={fw} diverged from the baseline");
        }
        let specs: u64 = result
            .stats
            .per_rank
            .iter()
            .map(|r| r.speculated_partitions)
            .sum();
        assert!(specs > 0, "FW={fw} never speculated — test proves nothing");
    }
}

#[test]
fn accepted_error_is_bounded_by_theta_metric() {
    // With a loose θ the trajectories may drift, but the recorded accepted
    // error must never exceed θ and the physics must stay finite.
    let particles = centered_cloud(50, 5);
    let cluster = ClusterSpec::homogeneous(4, 10.0);
    let theta = 0.05;
    let mut cfg = base_cfg(8, 1);
    cfg.nbody = NBodyConfig {
        g: 1.0,
        softening: 0.01,
        dt: 1e-2,
        theta,
    };
    let result = run_parallel(
        &particles,
        &cluster,
        ConstantLatency(SimDuration::from_millis(2)),
        Unloaded,
        cfg,
    )
    .unwrap();
    let max_acc = result.stats.max_accepted_error();
    assert!(max_acc <= theta + 1e-12, "accepted error {max_acc} above θ");
    for p in &result.particles {
        assert!(p.pos.is_finite() && p.vel.is_finite());
    }
}

#[test]
fn momentum_is_conserved_in_parallel_baseline() {
    let particles = uniform_cloud(48, 9);
    let cluster = ClusterSpec::homogeneous(4, 10.0);
    let p0 = nbody::integrate::momentum(&particles);
    let result = run_parallel(
        &particles,
        &cluster,
        ConstantLatency(SimDuration::from_millis(1)),
        Unloaded,
        base_cfg(10, 0),
    )
    .unwrap();
    let p1 = nbody::integrate::momentum(&result.particles);
    assert!(
        (p1 - p0).norm() < 1e-12,
        "parallel run broke momentum conservation"
    );
}

#[test]
fn partition_sizes_follow_machine_speeds() {
    let cluster = ClusterSpec::linear_ramp(4, 40.0, 10.0);
    let ranges = nbody::partition_proportional(100, &cluster.capacities());
    // 40:30:20:10 over 100 particles.
    assert_eq!(
        ranges.iter().map(|r| r.len()).collect::<Vec<_>>(),
        vec![40, 30, 20, 10]
    );
}

#[test]
fn speculation_orders_all_complete_and_quadratic_is_most_accurate() {
    let particles = rotating_disk(60, 13);
    let cluster = ClusterSpec::homogeneous(3, 10.0);
    let mut worst_err = Vec::new();
    for order in [
        SpeculationOrder::Hold,
        SpeculationOrder::Linear,
        SpeculationOrder::Quadratic,
    ] {
        let mut cfg = base_cfg(8, 1);
        cfg.nbody = NBodyConfig {
            g: 1.0,
            softening: 0.02,
            dt: 1e-3,
            theta: 1e9,
        };
        cfg.order = order;
        let result = run_parallel(
            &particles,
            &cluster,
            ConstantLatency(SimDuration::from_millis(2)),
            Unloaded,
            cfg,
        )
        .unwrap();
        assert_eq!(result.stats.per_rank[0].iterations, 8);
        worst_err.push(result.stats.max_accepted_error());
    }
    // On smooth orbits: Hold is worst, Quadratic at least as good as Linear.
    assert!(
        worst_err[0] > worst_err[1],
        "velocity extrapolation must beat hold"
    );
    assert!(
        worst_err[2] <= worst_err[1] * 1.5,
        "quadratic should not be much worse than linear: {worst_err:?}"
    );
}

#[test]
fn deep_correction_stays_close_to_exact_recompute() {
    // Incremental (first-order) deep correction vs exact rollback
    // recomputation: trajectories must agree to the θ-order bound.
    let particles = centered_cloud(40, 21);
    let cluster = ClusterSpec::homogeneous(4, 10.0);
    let run = |mode: CorrectionMode| {
        let mut cfg = base_cfg(8, 2);
        cfg.nbody = NBodyConfig {
            g: 1.0,
            softening: 0.05,
            dt: 1e-2,
            theta: 1e-3,
        };
        cfg.spec = cfg.spec.with_correction(mode);
        run_parallel(
            &particles,
            &cluster,
            ConstantLatency(SimDuration::from_millis(4)),
            Unloaded,
            cfg,
        )
        .unwrap()
    };
    let exact = run(CorrectionMode::Recompute);
    let approx = run(CorrectionMode::Incremental);
    let corrections: u64 = approx.stats.per_rank.iter().map(|r| r.corrections).sum();
    assert!(corrections > 0, "no deep corrections exercised");
    let mut max_gap: f64 = 0.0;
    for (a, b) in exact.particles.iter().zip(&approx.particles) {
        max_gap = max_gap.max(a.pos.distance(b.pos));
    }
    assert!(
        max_gap < 5e-2,
        "deep correction drifted {max_gap} from exact"
    );
}
