//! End-to-end contract of the `obs` telemetry subsystem.
//!
//! The headline guarantee: spans are emitted with the *same*
//! `Transport::now()` readings the speculative driver feeds its
//! `PhaseBreakdown`, so per-rank span durations agree with the phase
//! accounting **bit for bit** — and, since the phases partition the
//! driver's run time exhaustively, they partition total time too.
//!
//! Also covered: the Chrome-trace exporter against a golden file,
//! determinism of same-seed traces (virtual-time runs byte-identical;
//! real-thread runs identical in their time-independent fields), and the
//! zero-allocation promise of every disabled telemetry path.

use speculative_computation::prelude::*;

use speccheck::alloc::{allocations_here, CountingAlloc};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

// ---------------------------------------------------------------------------
// Bit-exact phase accounting
// ---------------------------------------------------------------------------

fn assert_trace_matches_stats(trace: &RunTrace, stats: &RunStats) {
    assert_eq!(trace.rank as usize, stats.rank.0);
    let totals = trace.phase_totals();
    let phases = &stats.phases;
    assert_eq!(
        totals.compute,
        phases.compute.as_nanos(),
        "compute, rank {}",
        trace.rank
    );
    assert_eq!(
        totals.comm_wait,
        phases.comm_wait.as_nanos(),
        "comm_wait, rank {}",
        trace.rank
    );
    assert_eq!(
        totals.speculate,
        phases.speculate.as_nanos(),
        "speculate, rank {}",
        trace.rank
    );
    assert_eq!(
        totals.check,
        phases.check.as_nanos(),
        "check, rank {}",
        trace.rank
    );
    assert_eq!(
        totals.correct,
        phases.correct.as_nanos(),
        "correct, rank {}",
        trace.rank
    );
    // The partition property: span durations sum to the driver's measured
    // total run time, exactly.
    assert_eq!(
        totals.total(),
        stats.total_time.as_nanos(),
        "partition, rank {}",
        trace.rank
    );
}

#[test]
fn nbody_span_durations_partition_total_time_bit_for_bit() {
    let cluster = ClusterSpec::homogeneous(3, 1.0);
    let particles = centered_cloud(24, 11);
    let result = run_parallel(
        &particles,
        &cluster,
        ConstantLatency(SimDuration::from_millis(3)),
        Unloaded,
        ParallelRunConfig::new(4, 1).with_trace(),
    )
    .expect("n-body run failed");

    let traces = result
        .traces
        .as_deref()
        .expect("with_trace() collects telemetry");
    assert_eq!(traces.len(), 3);
    for (trace, stats) in traces.iter().zip(&result.stats.per_rank) {
        assert!(!trace.spans().is_empty());
        assert_trace_matches_stats(trace, stats);
    }
}

/// Run a synthetic-workload cluster with a recorder attached, returning
/// per-rank traces alongside the driver's own statistics.
fn traced_synthetic_run(fw: u32, iters: u64) -> (Vec<RunTrace>, Vec<RunStats>) {
    let p = 2;
    let n_vars = 16;
    let cluster = ClusterSpec::homogeneous(p, 0.05);
    let ranges: Vec<_> = (0..p)
        .map(|i| i * n_vars / p..(i + 1) * n_vars / p)
        .collect();
    let recorder = SharedRecorder::new();
    let rank_recorder = recorder.clone();
    let (stats, _) = run_sim_cluster::<IterMsg<Vec<f64>>, _, _>(
        &cluster,
        ConstantLatency(SimDuration::from_millis(4)),
        Unloaded,
        false,
        move |t| {
            t.set_recorder(Box::new(rank_recorder.clone()));
            let mut app = SyntheticApp::new(
                n_vars,
                &ranges,
                t.rank().0,
                SyntheticConfig {
                    f_comp: 4,
                    f_spec: 1,
                    f_check: 1,
                    theta: 0.5,
                    ..Default::default()
                },
            );
            let cfg = if fw == 0 {
                SpecConfig::baseline()
            } else {
                SpecConfig::speculative(fw)
            };
            run_speculative(t, &mut app, iters, cfg)
        },
    )
    .expect("simulation failed");
    (RunTrace::split_by_rank(recorder.drain()), stats)
}

#[test]
fn workloads_traced_run_partitions_and_counts() {
    let (traces, stats) = traced_synthetic_run(1, 5);
    assert_eq!(traces.len(), 2);
    for (trace, stats) in traces.iter().zip(&stats) {
        assert_trace_matches_stats(trace, stats);
        let counters = trace.counter_totals();
        // Every iteration broadcasts to the one peer; all arrive by the end.
        assert_eq!(counters.commits, stats.iterations);
        assert!(counters.messages_sent >= stats.iterations);
        assert_eq!(counters.messages_received, counters.messages_sent);
        assert!(counters.bytes_sent > 0);
        assert_eq!(counters.speculations, stats.speculated_partitions);
        assert_eq!(counters.misspeculations, stats.misspeculated_partitions);
        assert_eq!(counters.corrections, stats.corrections);
        assert_eq!(counters.rollbacks, stats.rollbacks);
    }
}

#[test]
fn baseline_run_has_no_speculative_spans() {
    let (traces, stats) = traced_synthetic_run(0, 3);
    for (trace, stats) in traces.iter().zip(&stats) {
        assert_trace_matches_stats(trace, stats);
        let totals = trace.phase_totals();
        assert_eq!(totals.correct, 0);
        assert!(totals.comm_wait > 0, "baseline must block on the channel");
    }
}

// ---------------------------------------------------------------------------
// Chrome exporter: golden file + determinism
// ---------------------------------------------------------------------------

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/chrome_trace.json")
}

#[test]
fn chrome_trace_matches_golden_file() {
    let (traces, _) = traced_synthetic_run(1, 2);
    let rendered = chrome_trace_string(&traces);
    // Drift fails with the first differing line; an intended change is
    // blessed with `SPEC_UPDATE_GOLDENS=1 cargo test -q chrome_trace`.
    speccheck::assert_matches_golden(&golden_path(), &rendered);
}

#[test]
fn sim_traces_are_deterministic_across_runs() {
    let (a, _) = traced_synthetic_run(1, 4);
    let (b, _) = traced_synthetic_run(1, 4);
    // Virtual time makes the whole trace — timestamps included —
    // byte-for-byte reproducible.
    assert_eq!(chrome_trace_string(&a), chrome_trace_string(&b));
}

/// The time-independent face of a trace: what must agree between a
/// virtual-time run and a wall-clock (thread) run of the same program.
fn stable_counters(trace: &RunTrace) -> (u64, u64, u64, u64, u64) {
    let c = trace.counter_totals();
    (
        c.messages_sent,
        c.messages_received,
        c.bytes_sent,
        c.bytes_received,
        c.commits,
    )
}

fn traced_thread_run(iters: u64) -> Vec<RunTrace> {
    let p = 2;
    let n_vars = 16;
    let ranges: Vec<_> = (0..p)
        .map(|i| i * n_vars / p..(i + 1) * n_vars / p)
        .collect();
    let recorder = SharedRecorder::new();
    let rank_recorder = recorder.clone();
    run_thread_cluster::<IterMsg<Vec<f64>>, _, _>(p, ThreadClusterOptions::default(), move |t| {
        t.set_recorder(Box::new(rank_recorder.clone()));
        let mut app = SyntheticApp::new(
            n_vars,
            &ranges,
            t.rank().0,
            SyntheticConfig {
                f_comp: 4,
                f_spec: 1,
                f_check: 1,
                theta: 0.5,
                ..Default::default()
            },
        );
        run_speculative(t, &mut app, iters, SpecConfig::speculative(1))
    });
    RunTrace::split_by_rank(recorder.drain())
}

#[test]
fn thread_traces_agree_with_sim_on_time_independent_fields() {
    let (sim, _) = traced_synthetic_run(1, 4);
    let threads = traced_thread_run(4);
    assert_eq!(sim.len(), threads.len());
    for (s, t) in sim.iter().zip(&threads) {
        assert_eq!(s.rank, t.rank);
        // Timestamps are wall-clock on threads and virtual in the sim, so
        // span durations differ — but the message traffic and commit
        // counts are properties of the algorithm, not of the clock.
        assert_eq!(stable_counters(s), stable_counters(t), "rank {}", s.rank);
    }
    // And two thread runs agree with each other on the same fields.
    let again = traced_thread_run(4);
    for (t1, t2) in threads.iter().zip(&again) {
        assert_eq!(stable_counters(t1), stable_counters(t2), "rank {}", t1.rank);
    }
}

// ---------------------------------------------------------------------------
// Zero allocation on every disabled telemetry path
// ---------------------------------------------------------------------------

#[test]
fn disabled_trace_log_does_not_allocate() {
    use desim::{ProcessId, SimTime, TraceLog};
    let mut log = TraceLog::disabled();
    let before = allocations_here();
    for i in 0..1000u64 {
        log.record(SimTime::from_nanos(i), ProcessId(0), || {
            format!("expensive label {i}")
        });
    }
    assert_eq!(
        allocations_here(),
        before,
        "disabled TraceLog::record allocated"
    );
}

#[test]
fn disabled_process_tracing_and_recorder_do_not_allocate() {
    let cluster = ClusterSpec::homogeneous(1, 1.0);
    let (counts, _) = run_sim_cluster::<u64, _, _>(
        &cluster,
        ConstantLatency(SimDuration::from_millis(1)),
        Unloaded,
        false, // tracing disabled — trace_with must early-return
        |t| {
            let before = allocations_here();
            for i in 0..1000u64 {
                // Lazy label: only ever built when tracing is on.
                t.trace_with(|| format!("iteration {i}"));
                // No recorder installed: instrumentation sees `None` and
                // skips — the pattern used across driver and transports.
                if let Some(r) = t.recorder() {
                    r.span_begin(0, 0, obs::Phase::Compute, None, None);
                }
            }
            allocations_here() - before
        },
    )
    .expect("simulation failed");
    assert_eq!(counts, vec![0], "disabled telemetry hot path allocated");
}
