//! Chaos harness: composed message faults (loss, duplication, partitions)
//! plus scripted machine crashes, over the full nbody pipeline.
//!
//! Every test asserts some combination of the three fault-tolerance
//! obligations:
//!
//! 1. **Liveness** — every rank completes every iteration; no deadlock no
//!    matter what the network eats.
//! 2. **Bounded error** — the faulty run stays within a small multiple of
//!    the θ-implied tolerance of the fault-free golden run.
//! 3. **Determinism** — identical seeds reproduce results bit-for-bit
//!    under the virtual clock.

use speculative_computation::obs::{EventKind, Mark};
use speculative_computation::prelude::*;

/// θ-checked speculative nbody config with fault tolerance attached.
fn chaos_config(iters: u64, fw: u32, loss_timeout_ms: u64) -> ParallelRunConfig {
    let mut cfg = ParallelRunConfig::new(iters, fw);
    cfg.spec = cfg
        .spec
        .with_fault_tolerance(FaultTolerance::new(SimDuration::from_millis(
            loss_timeout_ms,
        )));
    cfg
}

fn max_drift(a: &ParallelRunResult, b: &ParallelRunResult) -> f64 {
    a.particles
        .iter()
        .zip(&b.particles)
        .map(|(x, y)| x.pos.distance(y.pos))
        .fold(0.0, f64::max)
}

fn position_bits(r: &ParallelRunResult) -> Vec<[u64; 3]> {
    r.particles
        .iter()
        .map(|p| [p.pos.x.to_bits(), p.pos.y.to_bits(), p.pos.z.to_bits()])
        .collect()
}

// ---------------------------------------------------------------------------
// Acceptance: 16-rank, 200-iteration nbody on the paper testbed under 5%
// loss — complete, bounded, reproducible.
// ---------------------------------------------------------------------------

#[test]
fn paper_testbed_survives_five_percent_loss() {
    let particles = uniform_cloud(64, 11);
    let cluster = ClusterSpec::paper_testbed();
    let iters = 200;
    let net = || ConstantLatency(SimDuration::from_millis(2));

    let golden = run_parallel(
        &particles,
        &cluster,
        net(),
        Unloaded,
        ParallelRunConfig::new(iters, 2),
    )
    .unwrap();

    let lossy = || {
        run_parallel_with_faults(
            &particles,
            &cluster,
            net(),
            Unloaded,
            FaultSpec::new(Loss::new(0.05, 4242)),
            chaos_config(iters, 2, 40),
        )
        .unwrap()
    };
    let run1 = lossy();

    // Liveness: all 16 ranks confirm all 200 iterations.
    assert_eq!(run1.stats.per_rank.len(), 16);
    for s in &run1.stats.per_rank {
        assert_eq!(s.iterations, iters, "rank {} did not finish", s.rank.0);
    }
    // The fault layer genuinely bit: messages were dropped and the driver
    // promoted speculations in their place.
    assert!(run1.stats.total_messages_lost() > 0);
    assert!(run1.stats.total_loss_commits() > 0);

    // Bounded error: promoted inputs carry extrapolation error the θ-check
    // never saw, so allow a modest multiple of the golden run's own
    // accepted-speculation drift scale, but nothing explosive.
    let drift = max_drift(&run1, &golden);
    assert!(
        drift < 1e-2,
        "5% loss drifted {drift:e} from the fault-free golden"
    );
    for p in &run1.particles {
        assert!(p.pos.x.is_finite() && p.pos.y.is_finite() && p.pos.z.is_finite());
    }

    // Bit-exact reproducibility under the same seed.
    let run2 = lossy();
    assert_eq!(position_bits(&run1), position_bits(&run2));
    assert_eq!(run1.elapsed_secs(), run2.elapsed_secs());
    assert_eq!(
        run1.stats.total_messages_lost(),
        run2.stats.total_messages_lost()
    );
}

// ---------------------------------------------------------------------------
// Crash recovery: a scripted mid-run crash re-seeds from the checkpoint
// and leaves PeerCrashed/PeerRecovered marks at the scripted times.
// ---------------------------------------------------------------------------

#[test]
fn scripted_crash_recovers_and_marks_the_trace() {
    let particles = uniform_cloud(48, 3);
    let cluster = ClusterSpec::paper_testbed().fastest(8);
    let iters = 40;
    let crash = MachineCrash {
        rank: 3,
        at: SimTime::from_nanos(120_000_000),
        restart_after: SimDuration::from_millis(60),
    };
    let mut cfg = chaos_config(iters, 2, 30).with_trace();
    cfg.spec = cfg.spec.with_fault_tolerance(
        FaultTolerance::new(SimDuration::from_millis(30)).with_crashes(vec![crash]),
    );
    let result = run_parallel_with_faults(
        &particles,
        &cluster,
        ConstantLatency(SimDuration::from_millis(3)),
        Unloaded,
        FaultSpec::none(),
        cfg,
    )
    .unwrap();

    for s in &result.stats.per_rank {
        assert_eq!(s.iterations, iters, "rank {} deadlocked", s.rank.0);
    }
    let crashed = &result.stats.per_rank[3];
    assert_eq!(crashed.peer_restarts, 1);
    assert!(crashed.downtime >= SimDuration::from_millis(30));
    assert_eq!(
        crashed.phases.total() + crashed.downtime,
        crashed.total_time,
        "outage must be accounted as downtime, not phase time"
    );
    assert_eq!(result.stats.total_restarts(), 1);

    // The obs trace of rank 3 carries the crash at exactly the scripted
    // virtual time and the recovery at (or after) the scripted restart.
    let traces = result.traces.as_ref().expect("trace collection enabled");
    let rank3 = traces.iter().find(|t| t.rank == 3).unwrap();
    let crashed_at: Vec<u64> = rank3
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Mark(Mark::PeerCrashed { .. })))
        .map(|e| e.t_ns)
        .collect();
    assert_eq!(crashed_at, vec![crash.at.as_nanos()]);
    let recovered_at: Vec<u64> = rank3
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Mark(Mark::PeerRecovered { .. })))
        .map(|e| e.t_ns)
        .collect();
    assert_eq!(recovered_at.len(), 1);
    assert!(recovered_at[0] >= crash.back_at().as_nanos());
    // No other rank crashed.
    for t in traces.iter().filter(|t| t.rank != 3) {
        assert_eq!(t.counter_totals().peer_crashes, 0);
    }
}

// ---------------------------------------------------------------------------
// Supervision: a permanently dead rank is suspected, quarantined, and
// carried in degraded mode; a long-but-finite outage additionally rejoins.
// ---------------------------------------------------------------------------

#[test]
fn permanent_crash_finishes_degraded_and_marks_the_trace() {
    let particles = uniform_cloud(48, 21);
    let cluster = ClusterSpec::paper_testbed().fastest(6);
    let iters = 40;
    let crash = MachineCrash::permanent(2, SimTime::from_nanos(100_000_000));
    let run = || {
        let mut cfg = chaos_config(iters, 2, 10).with_trace();
        cfg.spec = cfg
            .spec
            .with_fault_tolerance(
                FaultTolerance::new(SimDuration::from_millis(10)).with_crashes(vec![crash]),
            )
            .with_supervision(SupervisionConfig::new(1, 2));
        run_parallel_with_faults(
            &particles,
            &cluster,
            ConstantLatency(SimDuration::from_millis(3)),
            Unloaded,
            FaultSpec::none().with_crashes(CrashPlan::new(vec![crash])),
            cfg,
        )
        .unwrap()
    };
    let result = run();

    // Liveness: every survivor commits every iteration; the dead rank
    // stops at whatever prefix it had confirmed when the machine died.
    for s in &result.stats.per_rank {
        if s.rank.0 == 2 {
            assert!(s.iterations < iters, "a dead rank cannot finish");
        } else {
            assert_eq!(s.iterations, iters, "survivor {} deadlocked", s.rank.0);
            assert!(
                s.peers_quarantined >= 1,
                "rank {} never quarantined 2",
                s.rank.0
            );
            assert!(
                s.degraded_commits >= 1,
                "rank {} never ran degraded",
                s.rank.0
            );
            assert!(
                s.speculate_through_loss_commits <= s.messages_lost,
                "rank {}: promoted commits must be backed by losses",
                s.rank.0
            );
            assert_eq!(s.peer_rejoins, 0, "the dead rank must never rejoin");
        }
    }

    // The supervision timeline: suspicion strictly before quarantine,
    // both after the scripted crash instant; degraded mode is entered
    // and — with no rejoin — never exited.
    let traces = result.traces.as_ref().expect("trace collection enabled");
    for t in traces.iter().filter(|t| t.rank != 2) {
        let at = |want: fn(&Mark) -> bool| -> Vec<u64> {
            t.events
                .iter()
                .filter_map(|e| match &e.kind {
                    EventKind::Mark(m) if want(m) => Some(e.t_ns),
                    _ => None,
                })
                .collect()
        };
        let suspected = at(|m| matches!(m, Mark::PeerSuspected { peer: 2 }));
        let quarantined = at(|m| matches!(m, Mark::PeerQuarantined { peer: 2 }));
        assert_eq!(suspected.len(), 1, "rank {} suspicion marks", t.rank);
        assert_eq!(quarantined.len(), 1, "rank {} quarantine marks", t.rank);
        assert!(suspected[0] >= crash.at.as_nanos());
        assert!(suspected[0] <= quarantined[0]);
        let totals = t.counter_totals();
        assert_eq!(totals.degraded_enters, 1);
        assert_eq!(totals.degraded_exits, 0, "no rejoin, no exit");
        assert_eq!(totals.peers_rejoined, 0);
    }

    // Determinism: the whole degraded schedule replays bit-for-bit.
    assert_eq!(position_bits(&result), position_bits(&run()));
}

#[test]
fn crash_rejoin_timeline_quarantines_then_readmits() {
    let particles = uniform_cloud(48, 22);
    let cluster = ClusterSpec::paper_testbed().fastest(6);
    let iters = 80;
    let crash = MachineCrash {
        rank: 2,
        at: SimTime::from_nanos(100_000_000),
        // Far past the ~20 ms it takes survivors to promote once and
        // quarantine at thresholds (1, 2), and well before the ~300 ms
        // survivors need for 80 iterations on 3 ms links — so the rejoin
        // lands while they are still running.
        restart_after: SimDuration::from_millis(80),
    };
    let mut cfg = chaos_config(iters, 2, 10).with_trace();
    cfg.spec = cfg
        .spec
        .with_fault_tolerance(
            FaultTolerance::new(SimDuration::from_millis(10)).with_crashes(vec![crash]),
        )
        .with_supervision(SupervisionConfig::new(1, 2));
    let result = run_parallel_with_faults(
        &particles,
        &cluster,
        ConstantLatency(SimDuration::from_millis(3)),
        Unloaded,
        FaultSpec::none().with_crashes(CrashPlan::new(vec![crash])),
        cfg,
    )
    .unwrap();

    for s in &result.stats.per_rank {
        assert_eq!(s.iterations, iters, "rank {} deadlocked", s.rank.0);
    }
    assert_eq!(result.stats.per_rank[2].peer_restarts, 1);

    let traces = result.traces.as_ref().expect("trace collection enabled");
    for t in traces.iter().filter(|t| t.rank != 2) {
        let at = |want: fn(&Mark) -> bool| -> Vec<u64> {
            t.events
                .iter()
                .filter_map(|e| match &e.kind {
                    EventKind::Mark(m) if want(m) => Some(e.t_ns),
                    _ => None,
                })
                .collect()
        };
        let quarantined = at(|m| matches!(m, Mark::PeerQuarantined { peer: 2 }));
        let rejoined = at(|m| matches!(m, Mark::PeerRejoined { peer: 2 }));
        assert!(
            !quarantined.is_empty(),
            "rank {} never quarantined 2",
            t.rank
        );
        assert!(!rejoined.is_empty(), "rank {} never readmitted 2", t.rank);
        assert!(
            quarantined[0] <= rejoined[0],
            "rejoin must follow quarantine"
        );
        assert!(
            rejoined[0] >= crash.back_at().as_nanos(),
            "rejoin cannot precede the restart"
        );
        let totals = t.counter_totals();
        assert!(totals.degraded_enters >= 1);
        assert_eq!(
            totals.degraded_enters, totals.degraded_exits,
            "every degraded window must close once the peer is back"
        );
    }
}

// ---------------------------------------------------------------------------
// Seed matrix over composed faults: loss + duplication + a partition
// window, several seeds — liveness, bounded error, bit-exact per seed.
// ---------------------------------------------------------------------------

#[test]
fn seed_matrix_of_composed_faults_is_live_bounded_and_deterministic() {
    let particles = uniform_cloud(32, 9);
    let cluster = ClusterSpec::paper_testbed().fastest(4);
    let iters = 30;
    let golden = run_parallel(
        &particles,
        &cluster,
        ConstantLatency(SimDuration::from_millis(3)),
        Unloaded,
        ParallelRunConfig::new(iters, 2),
    )
    .unwrap();

    let composed = |seed: u64| {
        FaultSpec::new(
            FaultStack::new()
                .with(Loss::new(0.04, seed))
                .with(Duplicate::new(0.08, seed ^ 0x9e3779b97f4a7c15))
                .with(LinkPartition {
                    a: 0,
                    b: 2,
                    from: SimTime::from_nanos(40_000_000),
                    until: SimTime::from_nanos(90_000_000),
                }),
        )
    };
    let run = |seed: u64| {
        run_parallel_with_faults(
            &particles,
            &cluster,
            ConstantLatency(SimDuration::from_millis(3)),
            Unloaded,
            composed(seed),
            chaos_config(iters, 2, 25),
        )
        .unwrap()
    };

    for seed in [1u64, 7, 23] {
        let a = run(seed);
        for s in &a.stats.per_rank {
            assert_eq!(s.iterations, iters, "seed {seed}: rank {} hung", s.rank.0);
        }
        let drift = max_drift(&a, &golden);
        assert!(
            drift < 1e-2,
            "seed {seed}: composed faults drifted {drift:e}"
        );
        let b = run(seed);
        assert_eq!(
            position_bits(&a),
            position_bits(&b),
            "seed {seed} not reproducible"
        );
    }
}

// ---------------------------------------------------------------------------
// Property-style checks on the fault layer's boundary behaviors.
// ---------------------------------------------------------------------------

#[test]
fn loss_zero_is_bit_identical_to_no_fault_layer() {
    let particles = uniform_cloud(24, 5);
    let cluster = ClusterSpec::paper_testbed().fastest(3);
    let iters = 12;
    let plain = run_parallel(
        &particles,
        &cluster,
        ConstantLatency(SimDuration::from_millis(2)),
        Unloaded,
        ParallelRunConfig::new(iters, 1),
    )
    .unwrap();
    // Loss(0.0) consults its RNG on every message but never drops; the
    // delay stream, the schedule, and all results must match exactly.
    let gated = run_parallel_with_faults(
        &particles,
        &cluster,
        ConstantLatency(SimDuration::from_millis(2)),
        Unloaded,
        FaultSpec::new(Loss::new(0.0, 77)),
        ParallelRunConfig::new(iters, 1),
    )
    .unwrap();
    assert_eq!(position_bits(&plain), position_bits(&gated));
    assert_eq!(plain.elapsed_secs(), gated.elapsed_secs());
    assert_eq!(gated.stats.total_messages_lost(), 0);
}

#[test]
fn total_loss_with_staleness_budget_still_terminates() {
    let particles = uniform_cloud(16, 2);
    let cluster = ClusterSpec::paper_testbed().fastest(3);
    let iters = 8;
    let mut cfg = chaos_config(iters, 1, 20);
    cfg.spec = cfg.spec.with_fault_tolerance(
        FaultTolerance::new(SimDuration::from_millis(20)).with_staleness_budget(2),
    );
    let result = run_parallel_with_faults(
        &particles,
        &cluster,
        ConstantLatency(SimDuration::from_millis(2)),
        Unloaded,
        FaultSpec::new(Loss::new(1.0, 1)),
        cfg,
    )
    .unwrap();
    for s in &result.stats.per_rank {
        assert_eq!(s.iterations, iters, "total loss must not deadlock");
        assert!(s.speculate_through_loss_commits > 0);
    }
    assert!(result.stats.total_messages_lost() > 0);
    for p in &result.particles {
        assert!(p.pos.x.is_finite() && p.pos.y.is_finite() && p.pos.z.is_finite());
    }
}

#[test]
fn duplicates_never_change_committed_results() {
    let particles = uniform_cloud(24, 8);
    let cluster = ClusterSpec::paper_testbed().fastest(4);
    let iters = 15;
    let clean = run_parallel(
        &particles,
        &cluster,
        ConstantLatency(SimDuration::from_millis(2)),
        Unloaded,
        ParallelRunConfig::new(iters, 1),
    )
    .unwrap();
    // Heavy duplication on a deterministic-latency network: copies land
    // with the original, and the idempotent inbox/history must shrug.
    let duped = run_parallel_with_faults(
        &particles,
        &cluster,
        ConstantLatency(SimDuration::from_millis(2)),
        Unloaded,
        FaultSpec::new(Duplicate::new(0.5, 99)),
        ParallelRunConfig::new(iters, 1),
    )
    .unwrap();
    assert_eq!(position_bits(&clean), position_bits(&duped));
    let dup_count: u64 = duped
        .stats
        .per_rank
        .iter()
        .map(|s| s.messages_received)
        .sum::<u64>()
        - clean
            .stats
            .per_rank
            .iter()
            .map(|s| s.messages_received)
            .sum::<u64>();
    assert!(
        dup_count > 0,
        "duplication must actually have injected copies"
    );
}

#[test]
fn fault_streams_are_deterministic_per_seed_and_distinct_across_seeds() {
    let particles = uniform_cloud(20, 6);
    let cluster = ClusterSpec::paper_testbed().fastest(3);
    let run = |seed: u64| {
        let r = run_parallel_with_faults(
            &particles,
            &cluster,
            ConstantLatency(SimDuration::from_millis(2)),
            Unloaded,
            FaultSpec::new(Loss::new(0.3, seed)),
            chaos_config(20, 2, 20),
        )
        .unwrap();
        (
            position_bits(&r),
            r.stats.total_messages_lost(),
            r.stats.total_loss_commits(),
        )
    };
    assert_eq!(run(5), run(5));
    assert_ne!(
        run(5).1,
        run(6).1,
        "different seeds should lose different messages"
    );
}

// ---------------------------------------------------------------------------
// Delta-exchange × fault interactions: dropped or duplicated delta frames
// must heal through retransmission or the next keyframe, and a fault-free
// lossless delta stream must be indistinguishable from full broadcast.
// ---------------------------------------------------------------------------

/// `chaos_config` with a delta-exchange policy stacked on top.
fn delta_chaos_config(
    iters: u64,
    fw: u32,
    loss_timeout_ms: u64,
    delta: DeltaExchange,
) -> ParallelRunConfig {
    let mut cfg = chaos_config(iters, fw, loss_timeout_ms);
    cfg.spec = cfg.spec.with_delta_exchange(delta);
    cfg
}

#[test]
fn fault_free_lossless_delta_matches_full_broadcast_bit_for_bit() {
    let particles = uniform_cloud(32, 13);
    let cluster = ClusterSpec::paper_testbed().fastest(6);
    let iters = 30;
    let net = || ConstantLatency(SimDuration::from_millis(2));
    let full = run_parallel(
        &particles,
        &cluster,
        net(),
        Unloaded,
        ParallelRunConfig::new(iters, 2),
    )
    .unwrap();
    let mut cfg = ParallelRunConfig::new(iters, 2);
    cfg.spec = cfg.spec.with_delta_exchange(DeltaExchange::new(0.0, 8));
    let delta = run_parallel(&particles, &cluster, net(), Unloaded, cfg).unwrap();

    // Floor 0 suppresses nothing: every broadcast carries the exact new
    // state, just framed as sparse absolute entries, so the committed
    // trajectory and the virtual schedule are bit-identical.
    assert_eq!(position_bits(&full), position_bits(&delta));
    assert_eq!(full.elapsed_secs(), delta.elapsed_secs());
    for s in &delta.stats.per_rank {
        assert_eq!(s.iterations, iters);
        assert_eq!(s.delta_frames_dropped, 0, "FIFO net must not gap frames");
        assert!(s.bytes_sent > 0, "delta runs must still meter bytes");
    }
}

#[test]
fn lost_delta_frames_heal_via_keyframes_and_retransmit() {
    let particles = uniform_cloud(48, 17);
    let cluster = ClusterSpec::paper_testbed().fastest(8);
    let iters = 60;
    let net = || ConstantLatency(SimDuration::from_millis(2));
    let golden = run_parallel(
        &particles,
        &cluster,
        net(),
        Unloaded,
        ParallelRunConfig::new(iters, 2),
    )
    .unwrap();
    let lossy = || {
        run_parallel_with_faults(
            &particles,
            &cluster,
            net(),
            Unloaded,
            FaultSpec::new(Loss::new(0.05, 2026)),
            delta_chaos_config(iters, 2, 40, DeltaExchange::new(0.0, 8)),
        )
        .unwrap()
    };
    let run1 = lossy();

    // Liveness: a lost frame blanks the delta stream until the retransmit
    // or the next keyframe re-seeds the receiver shadow — it must never
    // stall the driver.
    for s in &run1.stats.per_rank {
        assert_eq!(s.iterations, iters, "rank {} stalled", s.rank.0);
    }
    assert!(run1.stats.total_messages_lost() > 0);
    // The interaction genuinely occurred: at least one gapped delta frame
    // was discarded on arrival rather than applied out of order.
    let dropped: u64 = run1
        .stats
        .per_rank
        .iter()
        .map(|s| s.delta_frames_dropped)
        .sum();
    assert!(dropped > 0, "loss must have gapped the delta stream");

    // Bounded error: floor 0 means every applied frame is exact, so the
    // only drift source is the same loss-promotion path full broadcast
    // has. Same envelope as the full-broadcast loss test.
    let drift = max_drift(&run1, &golden);
    assert!(drift < 1e-2, "lossy delta run drifted {drift:e}");
    for p in &run1.particles {
        assert!(p.pos.x.is_finite() && p.pos.y.is_finite() && p.pos.z.is_finite());
    }

    // Determinism: bit-exact replay under the same fault seed.
    let run2 = lossy();
    assert_eq!(position_bits(&run1), position_bits(&run2));
    assert_eq!(run1.elapsed_secs(), run2.elapsed_secs());
}

#[test]
fn duplicated_delta_frames_are_inert() {
    let particles = uniform_cloud(24, 21);
    let cluster = ClusterSpec::paper_testbed().fastest(4);
    let iters = 24;
    let net = || ConstantLatency(SimDuration::from_millis(2));
    let delta = DeltaExchange::new(0.0, 8);
    let clean = {
        let mut cfg = ParallelRunConfig::new(iters, 1);
        cfg.spec = cfg.spec.with_delta_exchange(delta);
        run_parallel(&particles, &cluster, net(), Unloaded, cfg).unwrap()
    };
    let duped = {
        let mut cfg = ParallelRunConfig::new(iters, 1);
        cfg.spec = cfg.spec.with_delta_exchange(delta);
        run_parallel_with_faults(
            &particles,
            &cluster,
            net(),
            Unloaded,
            FaultSpec::new(Duplicate::new(0.5, 99)),
            cfg,
        )
        .unwrap()
    };
    // A duplicated delta frame re-arrives at `iter == shadow_iter`, is
    // dropped without touching the shadow, history, or inbox, and the
    // committed results stay bit-identical.
    assert_eq!(position_bits(&clean), position_bits(&duped));
    let dup_drops: u64 = duped
        .stats
        .per_rank
        .iter()
        .map(|s| s.delta_frames_dropped)
        .sum();
    assert!(
        dup_drops > 0,
        "duplication must have exercised the dup-drop path"
    );
    let extra: u64 = duped
        .stats
        .per_rank
        .iter()
        .map(|s| s.messages_received)
        .sum::<u64>()
        - clean
            .stats
            .per_rank
            .iter()
            .map(|s| s.messages_received)
            .sum::<u64>();
    assert!(extra > 0, "duplication must actually have injected copies");
}

#[test]
fn scripted_crash_under_delta_exchange_recovers() {
    let particles = uniform_cloud(32, 19);
    let cluster = ClusterSpec::paper_testbed().fastest(6);
    let iters = 40;
    let crash = MachineCrash {
        rank: 2,
        at: SimTime::from_nanos(100_000_000),
        restart_after: SimDuration::from_millis(50),
    };
    let mut cfg = delta_chaos_config(iters, 2, 30, DeltaExchange::new(0.0, 8));
    cfg.spec = cfg.spec.with_fault_tolerance(
        FaultTolerance::new(SimDuration::from_millis(30)).with_crashes(vec![crash]),
    );
    let result = run_parallel_with_faults(
        &particles,
        &cluster,
        ConstantLatency(SimDuration::from_millis(3)),
        Unloaded,
        FaultSpec::none(),
        cfg,
    )
    .unwrap();

    // Recovery resets both shadow sides and fans out full frames, so the
    // restarted rank and its peers re-synchronize and finish every
    // iteration with finite state.
    for s in &result.stats.per_rank {
        assert_eq!(s.iterations, iters, "rank {} deadlocked", s.rank.0);
    }
    assert_eq!(result.stats.per_rank[2].peer_restarts, 1);
    assert_eq!(result.stats.total_restarts(), 1);
    for p in &result.particles {
        assert!(p.pos.x.is_finite() && p.pos.y.is_finite() && p.pos.z.is_finite());
    }
}

// ---------------------------------------------------------------------------
// Loss-rate sweep backing the EXPERIMENTS.md appendix. Ignored by default;
// run with: cargo test --release --test chaos -- --ignored --nocapture
// ---------------------------------------------------------------------------

#[test]
#[ignore = "slow: generates the EXPERIMENTS.md loss-sweep table"]
fn loss_rate_sweep_table() {
    let particles = uniform_cloud(64, 11);
    let cluster = ClusterSpec::paper_testbed();
    let iters = 200;
    let golden = run_parallel(
        &particles,
        &cluster,
        ConstantLatency(SimDuration::from_millis(2)),
        Unloaded,
        ParallelRunConfig::new(iters, 2),
    )
    .unwrap();
    println!("| loss | makespan (s) | lost | promoted | retrans | max drift |");
    println!("|------|--------------|------|----------|---------|-----------|");
    for loss in [0.0, 0.01, 0.05, 0.20] {
        let r = run_parallel_with_faults(
            &particles,
            &cluster,
            ConstantLatency(SimDuration::from_millis(2)),
            Unloaded,
            FaultSpec::new(Loss::new(loss, 4242)),
            chaos_config(iters, 2, 40),
        )
        .unwrap();
        for s in &r.stats.per_rank {
            assert_eq!(s.iterations, iters);
        }
        let retrans: u64 = r.stats.per_rank.iter().map(|s| s.retransmit_requests).sum();
        println!(
            "| {:>4.0}% | {:.3} | {} | {} | {} | {:.2e} |",
            loss * 100.0,
            r.elapsed_secs(),
            r.stats.total_messages_lost(),
            r.stats.total_loss_commits(),
            retrans,
            max_drift(&r, &golden),
        );
    }
}
