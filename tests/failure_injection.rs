//! Adverse-condition tests: jittery reordering networks, extreme transient
//! stalls, heavy background load, adaptive windows under shifting
//! conditions — the driver must stay live, correct, and deterministic.

use speculative_computation::prelude::*;

fn even_ranges(n: usize, p: usize) -> Vec<std::ops::Range<usize>> {
    (0..p).map(|i| i * n / p..(i + 1) * n / p).collect()
}

fn run_synthetic(
    net: impl NetworkModel + 'static,
    load: impl netsim::LoadModel + 'static,
    cfg: SpecConfig,
    p: usize,
    iters: u64,
) -> (Vec<Vec<f64>>, Vec<RunStats>, f64) {
    let n = 40;
    let cluster = ClusterSpec::homogeneous(p, 10.0);
    let ranges = even_ranges(n, p);
    let (outs, report) =
        run_sim_cluster::<IterMsg<Vec<f64>>, _, _>(&cluster, net, load, false, move |t| {
            let mut app = SyntheticApp::new(
                n,
                &ranges,
                t.rank().0,
                SyntheticConfig {
                    theta: 0.3,
                    jump_prob: 0.02,
                    ..Default::default()
                },
            );
            let stats = run_speculative(t, &mut app, iters, cfg.clone());
            (app.values().to_vec(), stats)
        })
        .expect("run must survive adverse conditions");
    let (values, stats): (Vec<_>, Vec<_>) = outs.into_iter().unzip();
    (values, stats, report.end_time.as_secs_f64())
}

#[test]
fn survives_heavy_jitter_reordering() {
    // ±90% jitter reorders messages freely between pairs; the driver's
    // iteration-tagged inbox must sort it out.
    let net = Jitter::new(ConstantLatency(SimDuration::from_millis(5)), 0.9, 123);
    let (_, stats, _) = run_synthetic(net, Unloaded, SpecConfig::speculative(2), 5, 20);
    for s in &stats {
        assert_eq!(s.iterations, 20, "rank {} lost iterations", s.rank.0);
    }
}

#[test]
fn survives_huge_transient_stalls() {
    // 10% of messages stall for 2 s (vs ~ms iterations).
    let net = TransientDelays::new(
        ConstantLatency(SimDuration::from_millis(1)),
        0.1,
        SimDuration::from_millis(2000),
        9,
    );
    let (_, stats, elapsed) = run_synthetic(net, Unloaded, SpecConfig::speculative(2), 4, 15);
    for s in &stats {
        assert_eq!(s.iterations, 15);
    }
    assert!(elapsed.is_finite());
}

#[test]
fn survives_background_load_spikes() {
    let net = ConstantLatency(SimDuration::from_millis(2));
    let load = RandomSpikes::new(0.3, 5.0, 77);
    let (_, stats, _) = run_synthetic(net, load, SpecConfig::speculative(1), 4, 15);
    for s in &stats {
        assert_eq!(s.iterations, 15);
    }
}

#[test]
fn baseline_and_speculative_agree_under_chaos_with_exact_config() {
    // Even under jitter + transients + load, θ=0 + recompute equals the
    // baseline bit-for-bit: network chaos may reorder messages but never
    // change values.
    let chaos_net = || {
        TransientDelays::new(
            Jitter::new(ConstantLatency(SimDuration::from_millis(2)), 0.8, 5),
            0.05,
            SimDuration::from_millis(100),
            6,
        )
    };
    let exact = SpecConfig::speculative(2).with_correction(CorrectionMode::Recompute);
    let (base_vals, _, _) = run_synthetic(chaos_net(), Unloaded, SpecConfig::baseline(), 4, 12);
    // θ = 0 via the workload's theta… the exact run uses theta 0.3 from the
    // helper; instead compare two *speculative* runs for determinism and
    // compare baseline against a θ=0 run built inline.
    let n = 40;
    let p = 4;
    let cluster = ClusterSpec::homogeneous(p, 10.0);
    let ranges = even_ranges(n, p);
    let (outs, _) = run_sim_cluster::<IterMsg<Vec<f64>>, _, _>(
        &cluster,
        chaos_net(),
        Unloaded,
        false,
        move |t| {
            let mut app = SyntheticApp::new(
                n,
                &ranges,
                t.rank().0,
                SyntheticConfig {
                    theta: 0.0,
                    jump_prob: 0.02,
                    ..Default::default()
                },
            );
            run_speculative(t, &mut app, 12, exact.clone());
            app.values().to_vec()
        },
    )
    .unwrap();
    // Baseline helper used jump_prob 0.02 too but theta 0.3 — theta is
    // irrelevant for the baseline (nothing is speculated), so values match.
    let exact_vals: Vec<f64> = outs.into_iter().flatten().collect();
    let base_flat: Vec<f64> = base_vals.into_iter().flatten().collect();
    assert_eq!(exact_vals, base_flat);
}

#[test]
fn adaptive_window_deepens_then_retreats() {
    // Phase 1: slow network, perfect speculation — window should grow.
    // Phase 2 (separate run): jumpy values — window should stay shallow.
    let run = |jump_prob: f64| {
        let n = 40;
        let p = 4;
        let cluster = ClusterSpec::homogeneous(p, 10.0);
        let ranges = even_ranges(n, p);
        let cfg = SpecConfig {
            window: WindowPolicy::adaptive(1, 4),
            backward_window: 2,
            correction: CorrectionMode::Incremental,
            collect_log: false,
            fault: None,
            delta: None,
            supervision: None,
            controller: None,
        };
        let (outs, _) = run_sim_cluster::<IterMsg<Vec<f64>>, _, _>(
            &cluster,
            ConstantLatency(SimDuration::from_millis(50)),
            Unloaded,
            false,
            move |t| {
                let mut app = SyntheticApp::new(
                    n,
                    &ranges,
                    t.rank().0,
                    // θ accepts the smooth-dynamics extrapolation error but
                    // rejects the 50% jumps.
                    SyntheticConfig {
                        theta: 0.05,
                        jump_prob,
                        f_comp: 700,
                        ..Default::default()
                    },
                );
                run_speculative(t, &mut app, 40, cfg.clone())
            },
        )
        .unwrap();
        outs.iter().map(|s| s.max_depth_used).max().unwrap()
    };
    let calm_depth = run(0.0);
    let jumpy_depth = run(0.9);
    assert!(
        calm_depth >= 2,
        "adaptive window never grew under calm latency"
    );
    assert!(
        jumpy_depth <= calm_depth,
        "adaptive window should be shallower when speculation keeps missing"
    );
}

#[test]
fn deterministic_under_all_stochastic_models() {
    let run = || {
        let net = TransientDelays::new(
            Jitter::new(SharedMedium::new(SimDuration::from_millis(1), 1e6), 0.5, 11),
            0.1,
            SimDuration::from_millis(30),
            12,
        );
        let load = RandomSpikes::new(0.2, 3.0, 13);
        let (vals, stats, elapsed) = run_synthetic(net, load, SpecConfig::speculative(2), 5, 15);
        let depths: Vec<u64> = stats.iter().map(|s| s.max_depth_used).collect();
        let rollbacks: Vec<u64> = stats.iter().map(|s| s.rollbacks).collect();
        (vals, depths, rollbacks, elapsed)
    };
    assert_eq!(
        run(),
        run(),
        "stochastic models must be reproducible from their seeds"
    );
}

// ---------------------------------------------------------------------------
// Real faults: messages that never arrive, not merely late ones.
// ---------------------------------------------------------------------------

fn run_synthetic_faulty(
    net: impl NetworkModel + 'static,
    faults: FaultSpec<IterMsg<Vec<f64>>>,
    cfg: SpecConfig,
    p: usize,
    iters: u64,
) -> (Vec<Vec<f64>>, Vec<RunStats>, f64) {
    let n = 40;
    let cluster = ClusterSpec::homogeneous(p, 10.0);
    let ranges = even_ranges(n, p);
    let (outs, report) = run_sim_cluster_with_faults::<IterMsg<Vec<f64>>, _, _>(
        &cluster,
        net,
        Unloaded,
        faults,
        false,
        move |t| {
            let mut app = SyntheticApp::new(
                n,
                &ranges,
                t.rank().0,
                SyntheticConfig {
                    theta: 0.3,
                    jump_prob: 0.02,
                    ..Default::default()
                },
            );
            let stats = run_speculative(t, &mut app, iters, cfg.clone());
            (app.values().to_vec(), stats)
        },
    )
    .expect("run must survive injected faults");
    let (values, stats): (Vec<_>, Vec<_>) = outs.into_iter().unzip();
    (values, stats, report.end_time.as_secs_f64())
}

#[test]
fn survives_random_message_loss() {
    let ft = FaultTolerance::new(SimDuration::from_millis(40));
    let cfg = SpecConfig::speculative(2).with_fault_tolerance(ft);
    let (vals, stats, _) = run_synthetic_faulty(
        ConstantLatency(SimDuration::from_millis(5)),
        FaultSpec::new(Loss::new(0.1, 21)),
        cfg,
        4,
        20,
    );
    let total_lost: u64 = stats.iter().map(|s| s.messages_lost).sum();
    assert!(total_lost > 0, "10% loss over 240+ messages must drop some");
    for (vs, s) in vals.iter().zip(&stats) {
        assert_eq!(s.iterations, 20, "rank {} lost iterations", s.rank.0);
        assert!(vs.iter().all(|v| v.is_finite()));
    }
}

#[test]
fn survives_link_partition_window() {
    // Ranks 0↔2 cannot talk for a mid-run window; both must speculate
    // through it and resynchronize afterwards. The window spans several
    // timeout+grace cycles: a shorter outage is bridged by retransmission
    // alone (the driver asks before it promotes, and a post-heal re-send
    // fills the gap with the actual value), so forcing promotion requires
    // an outage that also swallows the retransmit round-trips.
    let part = LinkPartition {
        a: 0,
        b: 2,
        from: SimTime::from_nanos(30_000_000),
        until: SimTime::from_nanos(500_000_000),
    };
    let ft = FaultTolerance::new(SimDuration::from_millis(30));
    let cfg = SpecConfig::speculative(2).with_fault_tolerance(ft);
    let (vals, stats, _) = run_synthetic_faulty(
        ConstantLatency(SimDuration::from_millis(5)),
        FaultSpec::new(part),
        cfg,
        4,
        25,
    );
    for (vs, s) in vals.iter().zip(&stats) {
        assert_eq!(s.iterations, 25);
        assert!(vs.iter().all(|v| v.is_finite()));
    }
    // Only the partitioned endpoints lose sends.
    assert!(stats[0].messages_lost > 0);
    assert!(stats[2].messages_lost > 0);
    assert_eq!(stats[1].messages_lost, 0);
    assert_eq!(stats[3].messages_lost, 0);
    // Both endpoints first asked for retransmits (swallowed by the
    // partition) and then promoted speculations to cross the outage.
    assert!(stats[0].retransmit_requests > 0);
    assert!(stats[2].retransmit_requests > 0);
    assert!(stats[0].speculate_through_loss_commits > 0);
    assert!(stats[2].speculate_through_loss_commits > 0);
}

#[test]
fn loss_burst_inside_fault_plan_window_only() {
    // Total loss during a burst window; clean before and after. The run
    // completes, and losses happen only inside the window.
    let plan = FaultPlan::new().window(
        SimTime::from_nanos(50_000_000),
        SimTime::from_nanos(100_000_000),
        Loss::new(1.0, 5),
    );
    let ft = FaultTolerance::new(SimDuration::from_millis(25));
    let cfg = SpecConfig::speculative(1).with_fault_tolerance(ft);
    let (_, stats, _) = run_synthetic_faulty(
        ConstantLatency(SimDuration::from_millis(4)),
        FaultSpec::new(plan),
        cfg,
        3,
        20,
    );
    let lost: u64 = stats.iter().map(|s| s.messages_lost).sum();
    assert!(lost > 0, "the burst must drop something");
    for s in &stats {
        assert_eq!(s.iterations, 20);
    }
}

#[test]
fn faulty_runs_reproduce_per_seed() {
    let run = |seed: u64| {
        let ft = FaultTolerance::new(SimDuration::from_millis(40));
        let cfg = SpecConfig::speculative(2).with_fault_tolerance(ft);
        let (vals, stats, elapsed) = run_synthetic_faulty(
            ConstantLatency(SimDuration::from_millis(5)),
            FaultSpec::new(Loss::new(0.15, seed)),
            cfg,
            4,
            15,
        );
        let lost: Vec<u64> = stats.iter().map(|s| s.messages_lost).collect();
        (vals, lost, elapsed)
    };
    assert_eq!(run(33), run(33), "same fault seed must be bit-reproducible");
}

#[test]
fn zero_latency_network_is_handled() {
    let (_, stats, elapsed) = run_synthetic(
        ConstantLatency(SimDuration::ZERO),
        Unloaded,
        SpecConfig::speculative(1),
        3,
        10,
    );
    for s in &stats {
        assert_eq!(s.iterations, 10);
        // With instant delivery little to nothing should be speculated.
        assert!(s.phases.comm_wait.as_secs_f64() < 1e-6);
    }
    assert!(elapsed > 0.0);
}
