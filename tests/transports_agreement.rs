//! The virtual-time and real-thread backends run the same speculative
//! algorithm and must produce the same *results* (timing differs by
//! construction).

use speculative_computation::prelude::*;

fn even_ranges(n: usize, p: usize) -> Vec<std::ops::Range<usize>> {
    (0..p).map(|i| i * n / p..(i + 1) * n / p).collect()
}

/// Run the synthetic workload with exact semantics (θ = 0 + recompute) on
/// any transport and return the final values.
fn run_exact<T: Transport<Msg = IterMsg<Vec<f64>>>>(t: &mut T, n: usize, iters: u64) -> Vec<f64> {
    let ranges = even_ranges(n, t.size());
    let scfg = SyntheticConfig {
        theta: 0.0,
        jump_prob: 0.1,
        seed: 5,
        ..Default::default()
    };
    let mut app = SyntheticApp::new(n, &ranges, t.rank().0, scfg);
    let cfg = SpecConfig::speculative(1).with_correction(CorrectionMode::Recompute);
    run_speculative(t, &mut app, iters, cfg);
    app.values().to_vec()
}

#[test]
fn sim_and_thread_backends_agree_exactly() {
    let n = 32;
    let p = 4;
    let iters = 8;

    let cluster = ClusterSpec::homogeneous(p, 1000.0);
    let (sim_out, _) = run_sim_cluster::<IterMsg<Vec<f64>>, _, _>(
        &cluster,
        ConstantLatency(SimDuration::from_micros(100)),
        Unloaded,
        false,
        move |t| run_exact(t, n, iters),
    )
    .unwrap();

    let thread_out = run_thread_cluster::<IterMsg<Vec<f64>>, _, _>(
        p,
        ThreadClusterOptions {
            latency: std::time::Duration::from_micros(200),
            ..Default::default()
        },
        move |t| run_exact(t, n, iters),
    );

    assert_eq!(
        sim_out, thread_out,
        "backends must agree bit-for-bit under θ=0+recompute"
    );
}

#[test]
fn thread_backend_handles_speculation_under_real_latency() {
    // With a visible injected latency the thread backend must actually
    // speculate (not merely fall through to the actual-input path).
    let n = 24;
    let p = 3;
    let stats = run_thread_cluster::<IterMsg<Vec<f64>>, _, _>(
        p,
        ThreadClusterOptions {
            latency: std::time::Duration::from_millis(5),
            mips: 5000.0,
            ..Default::default()
        },
        move |t| {
            let ranges = even_ranges(n, t.size());
            let mut app = SyntheticApp::new(
                n,
                &ranges,
                t.rank().0,
                SyntheticConfig {
                    theta: 0.5,
                    ..Default::default()
                },
            );
            run_speculative(t, &mut app, 10, SpecConfig::speculative(1))
        },
    );
    let total_spec: u64 = stats.iter().map(|s| s.speculated_partitions).sum();
    assert!(
        total_spec > 0,
        "thread backend never speculated under 5 ms latency"
    );
    for s in &stats {
        assert_eq!(s.iterations, 10);
    }
}

#[test]
fn thread_backend_baseline_equals_sim_baseline() {
    let n = 30;
    let p = 3;
    let iters = 6;
    let cluster = ClusterSpec::homogeneous(p, 1000.0);
    let (sim_out, _) = run_sim_cluster::<IterMsg<Vec<f64>>, _, _>(
        &cluster,
        ConstantLatency(SimDuration::from_micros(50)),
        Unloaded,
        false,
        move |t| {
            let ranges = even_ranges(n, t.size());
            let mut app = SyntheticApp::new(n, &ranges, t.rank().0, SyntheticConfig::default());
            run_baseline(t, &mut app, iters);
            app.values().to_vec()
        },
    )
    .unwrap();

    let thread_out = run_thread_cluster::<IterMsg<Vec<f64>>, _, _>(
        p,
        ThreadClusterOptions::default(),
        move |t| {
            let ranges = even_ranges(n, t.size());
            let mut app = SyntheticApp::new(n, &ranges, t.rank().0, SyntheticConfig::default());
            run_baseline(t, &mut app, iters);
            app.values().to_vec()
        },
    );
    assert_eq!(sim_out, thread_out);
}
