//! The virtual-time, real-thread, and real-TCP-socket backends run the
//! same speculative algorithm and must produce the same *results*
//! (timing differs by construction).

use speculative_computation::prelude::*;

fn even_ranges(n: usize, p: usize) -> Vec<std::ops::Range<usize>> {
    (0..p).map(|i| i * n / p..(i + 1) * n / p).collect()
}

/// Run the synthetic workload with exact semantics (θ = 0 + recompute) on
/// any transport and return the final values.
fn run_exact<T: Transport<Msg = IterMsg<Vec<f64>>>>(t: &mut T, n: usize, iters: u64) -> Vec<f64> {
    let ranges = even_ranges(n, t.size());
    let scfg = SyntheticConfig {
        theta: 0.0,
        jump_prob: 0.1,
        seed: 5,
        ..Default::default()
    };
    let mut app = SyntheticApp::new(n, &ranges, t.rank().0, scfg);
    let cfg = SpecConfig::speculative(1).with_correction(CorrectionMode::Recompute);
    run_speculative(t, &mut app, iters, cfg);
    app.values().to_vec()
}

#[test]
fn sim_thread_and_socket_backends_agree_exactly() {
    let n = 32;
    let p = 4;
    let iters = 8;

    let cluster = ClusterSpec::homogeneous(p, 1000.0);
    let (sim_out, _) = run_sim_cluster::<IterMsg<Vec<f64>>, _, _>(
        &cluster,
        ConstantLatency(SimDuration::from_micros(100)),
        Unloaded,
        false,
        move |t| run_exact(t, n, iters),
    )
    .unwrap();

    let thread_out = run_thread_cluster::<IterMsg<Vec<f64>>, _, _>(
        p,
        ThreadClusterOptions {
            latency: std::time::Duration::from_micros(200),
            ..Default::default()
        },
        move |t| run_exact(t, n, iters),
    );

    // Third arm: every message is codec-encoded, framed, and crosses the
    // kernel's TCP stack on loopback.
    let socket_out = run_socket_cluster::<IterMsg<Vec<f64>>, _, _>(
        p,
        SocketClusterOptions::default(),
        move |t| run_exact(t, n, iters),
    );

    assert_eq!(
        sim_out, thread_out,
        "sim and thread backends must agree bit-for-bit under θ=0+recompute"
    );
    assert_eq!(
        sim_out, socket_out,
        "socket backend must agree bit-for-bit with the in-process backends"
    );
}

/// Frame-layer loss on the socket backend feeds the same fault-tolerance
/// path as the thread backend's mailbox-layer loss: under total loss with
/// an identically-seeded `FaultSpec`, nothing is ever delivered on either
/// backend, so the speculate-through-loss machinery must promote the same
/// speculations and converge to the same values.
fn run_lossy<T: Transport<Msg = IterMsg<Vec<f64>>>>(
    t: &mut T,
    n: usize,
    iters: u64,
) -> (Vec<f64>, RunStats) {
    let ranges = even_ranges(n, t.size());
    let scfg = SyntheticConfig {
        theta: 0.0,
        jump_prob: 0.1,
        seed: 5,
        ..Default::default()
    };
    let mut app = SyntheticApp::new(n, &ranges, t.rank().0, scfg);
    let cfg = SpecConfig::speculative(1)
        .with_correction(CorrectionMode::Recompute)
        .with_fault_tolerance(
            FaultTolerance::new(SimDuration::from_millis(5)).with_staleness_budget(1),
        );
    let stats = run_speculative(t, &mut app, iters, cfg);
    (app.values().to_vec(), stats)
}

#[test]
fn socket_loss_promotions_match_thread_backend() {
    let n = 24;
    let p = 3;
    let iters = 5;
    let seed = 42;

    let thread_out = run_thread_cluster_with_faults::<IterMsg<Vec<f64>>, _, _>(
        p,
        ThreadClusterOptions::default(),
        Loss::new(1.0, seed),
        move |t| run_lossy(t, n, iters),
    );
    let socket_out = run_socket_cluster_with_faults::<IterMsg<Vec<f64>>, _, _>(
        p,
        SocketClusterOptions::default(),
        FaultSpec::new(Loss::new(1.0, seed)),
        move |t| run_lossy(t, n, iters),
    );

    for (rank, ((tv, ts), (sv, ss))) in thread_out.iter().zip(&socket_out).enumerate() {
        assert_eq!(
            tv, sv,
            "rank {rank}: total loss must leave both backends on identical values"
        );
        assert_eq!(ts.iterations, iters);
        assert_eq!(ss.iterations, iters);
        assert!(
            ss.speculate_through_loss_commits > 0,
            "rank {rank}: socket backend never promoted through loss"
        );
        assert_eq!(
            ts.speculate_through_loss_commits, ss.speculate_through_loss_commits,
            "rank {rank}: promotion counts must match under the same FaultSpec seed"
        );
        assert_eq!(ts.messages_lost, ss.messages_lost, "rank {rank}");
        assert_eq!(
            ts.retransmit_requests, ss.retransmit_requests,
            "rank {rank}"
        );
    }
}

#[test]
fn thread_backend_handles_speculation_under_real_latency() {
    // With a visible injected latency the thread backend must actually
    // speculate (not merely fall through to the actual-input path).
    let n = 24;
    let p = 3;
    let stats = run_thread_cluster::<IterMsg<Vec<f64>>, _, _>(
        p,
        ThreadClusterOptions {
            latency: std::time::Duration::from_millis(5),
            mips: 5000.0,
            ..Default::default()
        },
        move |t| {
            let ranges = even_ranges(n, t.size());
            let mut app = SyntheticApp::new(
                n,
                &ranges,
                t.rank().0,
                SyntheticConfig {
                    theta: 0.5,
                    ..Default::default()
                },
            );
            run_speculative(t, &mut app, 10, SpecConfig::speculative(1))
        },
    );
    let total_spec: u64 = stats.iter().map(|s| s.speculated_partitions).sum();
    assert!(
        total_spec > 0,
        "thread backend never speculated under 5 ms latency"
    );
    for s in &stats {
        assert_eq!(s.iterations, 10);
    }
}

#[test]
fn thread_backend_baseline_equals_sim_baseline() {
    let n = 30;
    let p = 3;
    let iters = 6;
    let cluster = ClusterSpec::homogeneous(p, 1000.0);
    let (sim_out, _) = run_sim_cluster::<IterMsg<Vec<f64>>, _, _>(
        &cluster,
        ConstantLatency(SimDuration::from_micros(50)),
        Unloaded,
        false,
        move |t| {
            let ranges = even_ranges(n, t.size());
            let mut app = SyntheticApp::new(n, &ranges, t.rank().0, SyntheticConfig::default());
            run_baseline(t, &mut app, iters);
            app.values().to_vec()
        },
    )
    .unwrap();

    let thread_out = run_thread_cluster::<IterMsg<Vec<f64>>, _, _>(
        p,
        ThreadClusterOptions::default(),
        move |t| {
            let ranges = even_ranges(n, t.size());
            let mut app = SyntheticApp::new(n, &ranges, t.rank().0, SyntheticConfig::default());
            run_baseline(t, &mut app, iters);
            app.values().to_vec()
        },
    );
    assert_eq!(sim_out, thread_out);
}
