//! Quick-scale versions of the paper's evaluation, asserting the *shapes*
//! the paper reports (who wins, what grows, what shrinks). The full-size
//! runs live in the `spec-bench` bench targets.

use spec_bench::{experiments, Scale};

fn quick() -> Scale {
    Scale {
        n_particles: 150,
        iterations: 6,
        p_values: vec![1, 2, 4, 8, 16],
        seed: 42,
    }
}

#[test]
fn fig5_shape_speculation_wins_at_scale_and_nospec_peaks() {
    let rows = experiments::fig5();
    let last = rows.last().unwrap();
    assert!(
        last.spec > last.no_spec * 1.10,
        "model: ≥10% gain expected at p=16"
    );
    // The no-speculation curve declines somewhere before 16 (its peak).
    let peak = rows.iter().map(|r| r.no_spec).fold(0.0f64, f64::max);
    assert!(
        peak > last.no_spec,
        "no-spec curve must decline after its peak"
    );
    // Nothing beats the capacity bound.
    for r in &rows {
        assert!(r.spec <= r.max + 1e-9);
        assert!(r.no_spec <= r.max + 1e-9);
    }
}

#[test]
fn fig6_shape_speculation_loses_beyond_some_k() {
    let rows = experiments::fig6();
    assert!(
        rows[0].spec > rows[0].no_spec,
        "k=0 must favour speculation"
    );
    assert!(
        rows.last().unwrap().spec < rows.last().unwrap().no_spec,
        "k=30% must favour the baseline"
    );
}

#[test]
fn fig8_shape_speculation_wins_at_sixteen_processors() {
    let scale = quick();
    let rows = experiments::fig8(&scale);
    let last = rows.last().unwrap();
    assert_eq!(last.p, 16);
    let best = last.fw1.max(last.fw2);
    assert!(
        best > last.fw0 * 1.10,
        "measured: speculation should win ≥10% at p=16, got FW0={} FW1={} FW2={}",
        last.fw0,
        last.fw1,
        last.fw2
    );
    // Small systems: little effect (the paper: "very little impact for
    // 2 to 4 processors").
    let first = &rows[0];
    assert!(
        (first.fw1 / first.fw0 - 1.0).abs() < 0.25,
        "p=2 should show a modest effect, got {:+.1}%",
        100.0 * (first.fw1 / first.fw0 - 1.0)
    );
    // Nothing beats the capacity bound.
    for r in &rows {
        assert!(r.fw0 <= r.max * 1.01 && r.fw1 <= r.max * 1.01 && r.fw2 <= r.max * 1.01);
    }
}

#[test]
fn table2_shape_communication_shrinks_with_fw() {
    let scale = quick();
    let rows = experiments::table2(&scale);
    assert_eq!(rows.len(), 3);
    // FW=1 must slash the communication wait relative to FW=0.
    assert!(
        rows[1].communication < rows[0].communication * 0.6,
        "FW=1 comm {} vs FW=0 comm {}",
        rows[1].communication,
        rows[0].communication
    );
    // Overheads exist but stay small relative to computation.
    assert!(rows[1].speculation > 0.0);
    assert!(rows[1].check > 0.0);
    assert!(rows[1].speculation + rows[1].check < rows[1].computation * 0.25);
    // And the speculative totals beat the baseline total.
    assert!(rows[1].total < rows[0].total);
}

#[test]
fn table3_shape_theta_tradeoff() {
    let scale = quick();
    let rows = experiments::table3(&scale);
    assert_eq!(rows.len(), 5);
    // Tighter θ ⇒ more recomputations, less accepted error — the paper's
    // central trade-off.
    for w in rows.windows(2) {
        assert!(w[0].theta > w[1].theta);
        assert!(w[0].incorrect_pct <= w[1].incorrect_pct + 1e-9);
        assert!(w[0].max_force_error_pct >= w[1].max_force_error_pct - 1e-9);
    }
    // The accepted force error is bounded by ~2θ.
    for r in &rows {
        assert!(
            r.max_force_error_pct <= 200.0 * r.theta + 1e-9,
            "θ={} accepted {}%",
            r.theta,
            r.max_force_error_pct
        );
    }
}

#[test]
fn fig9_model_tracks_measurements() {
    let scale = quick();
    let rows = experiments::fig9(&scale);
    for r in &rows {
        let e0 = (r.model_nospec - r.measured_nospec).abs() / r.measured_nospec;
        assert!(
            e0 < 0.40,
            "no-spec model error {:.0}% at p={}",
            100.0 * e0,
            r.p
        );
        let e1 = (r.model_spec - r.measured_spec).abs() / r.measured_spec;
        assert!(
            e1 < 0.40,
            "spec model error {:.0}% at p={}",
            100.0 * e1,
            r.p
        );
    }
}
