//! Zero-allocation contract of the steady-state iteration hot paths.
//!
//! After a warm-up iteration has sized every buffer (snapshot ring slots,
//! checkpoint slots, accumulators, scratch grids), the per-iteration
//! compute paths of the N-body, heat-2d, and Jacobi apps must not touch
//! the heap at all. The N-body measurement drives the full speculative
//! shape by hand — shared → checkpoint → begin → absorb → check → finish,
//! plus an incremental correction pass — so the claim covers exactly what
//! the driver executes per iteration.
//!
//! Deliberately excluded: `speculate` (by contract it returns a freshly
//! owned prediction; only the `Hold` order is allocation-free) and the
//! heat-2d `shared()` (its `RowHalo` rows are genuinely new messages).

use std::ops::Range;

use mpk::Rank;
use speccore::SpeculativeApp;
use speculative_computation::prelude::*;

use speccheck::alloc::{allocations_here, CountingAlloc};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn even_ranges(n: usize, p: usize) -> Vec<Range<usize>> {
    (0..p).map(|i| i * n / p..(i + 1) * n / p).collect()
}

#[test]
fn nbody_iteration_hot_path_is_allocation_free() {
    let n = 96;
    let particles = uniform_cloud(n, 11);
    let ranges = partition_proportional(n, &[1.0, 1.0]);
    let cfg = NBodyConfig::default().with_theta(0.01);
    let mut a = NBodyApp::new(&particles, ranges.clone(), 0, cfg, SpeculationOrder::Linear);
    let mut b = NBodyApp::new(&particles, ranges, 1, cfg, SpeculationOrder::Linear);
    let mut ckpt_a = None;
    let mut ckpt_b = None;

    let mut iteration = |a: &mut NBodyApp, b: &mut NBodyApp| {
        // The driver's per-iteration shape: snapshot exchange, checkpoint,
        // compute, eq. 11 check of a (perfect) speculation, finish.
        let share_a = a.shared();
        let share_b = b.shared();
        a.checkpoint_into(&mut ckpt_a);
        b.checkpoint_into(&mut ckpt_b);
        a.begin_iteration();
        b.begin_iteration();
        a.absorb(Rank(1), &share_b);
        b.absorb(Rank(0), &share_a);
        let out = a.check(Rank(1), &share_b, &share_b);
        assert!(out.accept);
        // Correction path with an accepted (θ-passing) speculation: the
        // scan runs, repairs nothing, and must not allocate either.
        let ops = a.correct(Rank(1), &share_b, &share_b);
        assert_eq!(ops, 0);
        drop(share_a);
        drop(share_b);
        a.finish_iteration();
        b.finish_iteration();
    };

    // Warm-up: grows the snapshot ring and checkpoint slots to steady size.
    for _ in 0..3 {
        iteration(&mut a, &mut b);
    }

    let before = allocations_here();
    for _ in 0..5 {
        iteration(&mut a, &mut b);
    }
    assert_eq!(
        allocations_here() - before,
        0,
        "n-body steady-state iteration must not allocate"
    );
}

#[test]
fn nbody_restore_and_hold_speculation_are_allocation_free() {
    let n = 64;
    let particles = uniform_cloud(n, 13);
    let ranges = partition_proportional(n, &[1.0, 1.0]);
    let cfg = NBodyConfig::default();
    let mut app = NBodyApp::new(&particles, ranges, 0, cfg, SpeculationOrder::Hold);
    let mut ckpt = None;
    let remote = std::sync::Arc::new(PartitionShared::from_vec3s(
        &particles[n / 2..].iter().map(|p| p.pos).collect::<Vec<_>>(),
        &particles[n / 2..].iter().map(|p| p.vel).collect::<Vec<_>>(),
    ));
    let mut hist = History::new(4);
    hist.record(0, remote.clone());

    // Warm-up: one rollback cycle sizes everything.
    app.checkpoint_into(&mut ckpt);
    app.begin_iteration();
    app.absorb(Rank(1), &remote);
    app.finish_iteration();
    app.restore(ckpt.as_ref().unwrap());

    let before = allocations_here();
    for _ in 0..4 {
        app.checkpoint_into(&mut ckpt);
        app.begin_iteration();
        app.absorb(Rank(1), &remote);
        app.finish_iteration();
        let (spec, _) = app.speculate(Rank(1), &hist, 1).unwrap();
        drop(spec); // Hold hands out an Arc clone of the history entry
        app.restore(ckpt.as_ref().unwrap());
    }
    assert_eq!(
        allocations_here() - before,
        0,
        "restore + Hold speculation must not allocate"
    );
}

#[test]
fn heat2d_compute_path_is_allocation_free() {
    let (rows, cols, p) = (24, 16, 3);
    let ranges = even_ranges(rows, p);
    let cfg = Heat2dConfig::default();
    let mut apps: Vec<Heat2dApp> = (0..p)
        .map(|me| Heat2dApp::new(rows, cols, &ranges, me, cfg))
        .collect();
    let mut ckpts: Vec<Option<Vec<f64>>> = vec![None; p];

    let iteration = |apps: &mut Vec<Heat2dApp>, ckpts: &mut Vec<Option<Vec<f64>>>| {
        // shared() builds RowHalo messages (excluded: genuinely new data);
        // everything from checkpoint onward is the measured hot path.
        let halos: Vec<RowHalo> = apps.iter().map(|a| a.shared()).collect();
        let start = allocations_here();
        for (me, app) in apps.iter_mut().enumerate() {
            app.checkpoint_into(&mut ckpts[me]);
            app.begin_iteration();
            for (k, halo) in halos.iter().enumerate() {
                if k != me {
                    app.absorb(Rank(k), halo);
                }
            }
            app.finish_iteration();
        }
        allocations_here() - start
    };

    iteration(&mut apps, &mut ckpts); // warm-up
    for _ in 0..4 {
        assert_eq!(
            iteration(&mut apps, &mut ckpts),
            0,
            "heat2d stencil sweep must not allocate"
        );
    }
}

#[test]
fn jacobi_compute_path_is_allocation_free() {
    let (n, p) = (48, 3);
    let sys = LinearSystem::random(n, 5);
    let ranges = even_ranges(n, p);
    let cfg = JacobiConfig::default();
    let mut apps: Vec<JacobiApp> = (0..p)
        .map(|me| JacobiApp::new(sys.clone(), &ranges, me, cfg))
        .collect();
    let mut ckpts: Vec<Option<Vec<f64>>> = vec![None; p];

    let iteration = |apps: &mut Vec<JacobiApp>, ckpts: &mut Vec<Option<Vec<f64>>>| {
        let shared: Vec<Vec<f64>> = apps.iter().map(|a| a.shared()).collect();
        let start = allocations_here();
        for (me, app) in apps.iter_mut().enumerate() {
            app.checkpoint_into(&mut ckpts[me]);
            app.begin_iteration();
            for (k, xs) in shared.iter().enumerate() {
                if k != me {
                    app.absorb(Rank(k), xs);
                }
            }
            app.finish_iteration();
        }
        allocations_here() - start
    };

    iteration(&mut apps, &mut ckpts); // warm-up
    for _ in 0..4 {
        assert_eq!(
            iteration(&mut apps, &mut ckpts),
            0,
            "jacobi row-block update must not allocate"
        );
    }
}

/// The stackless kernel itself is part of the zero-allocation contract:
/// once 1024 event-scheduled ranks reach steady state (event heap, ready
/// queue, mailbox wait lists and async-op slots all at capacity), a
/// send-free iteration — charged compute plus an expiring timed receive
/// per rank — must not touch the heap at all, in any rank *or* in the
/// kernel scheduling them. All ranks run on this one thread, so the
/// thread-local counter sees every allocation either would make.
#[test]
fn stackless_kernel_steady_state_is_allocation_free() {
    use std::cell::Cell;
    use std::rc::Rc;

    const P: usize = 1024;
    const WARMUP: u64 = 3;
    const MEASURED: u64 = 5;

    let before = Rc::new(Cell::new(0u64));
    let after = Rc::new(Cell::new(0u64));
    let (b0, a0) = (before.clone(), after.clone());

    let cluster = netsim::ClusterSpec::homogeneous(P, 50.0);
    let (outs, _report) = mpk::run_sim_proc_cluster_with_options::<(), _, _, _>(
        &cluster,
        netsim::ConstantLatency(desim::SimDuration::from_micros(1)),
        netsim::Unloaded,
        mpk::FaultSpec::none(),
        mpk::SimClusterOptions::default(),
        move |mut t| {
            let (before, after) = (b0.clone(), a0.clone());
            async move {
                use mpk::AsyncTransport;
                let me = t.rank().0;
                for iter in 0..WARMUP + MEASURED {
                    // All ranks run in lockstep virtual time, so rank 0's
                    // window brackets steady-state work from every rank.
                    if me == 0 && iter == WARMUP {
                        before.set(allocations_here());
                    }
                    t.compute(50).await;
                    let quiet = t.recv_timeout(desim::SimDuration::from_micros(10)).await;
                    assert!(quiet.is_none(), "send-free ring must stay quiet");
                }
                if me == 0 {
                    after.set(allocations_here());
                }
                me
            }
        },
    )
    .expect("steady-state cluster must complete");
    assert_eq!(outs.len(), P);
    assert!(after.get() >= before.get() && before.get() > 0);
    assert_eq!(
        after.get() - before.get(),
        0,
        "1024-rank stackless steady state must not allocate (kernel or ranks)"
    );
}
