#!/usr/bin/env bash
# Repository CI gate: formatting, lints, tests. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test -q

echo "== speccheck conformance & property suite (64 cases/property, fixed seeds)"
# Differential conformance (sim vs thread transport, speculative vs
# baseline under exact semantics), schedule-perturbation determinism,
# and the invariant-oracle pack. The proptest shim derives a fixed seed
# per test, so this gate is fully deterministic; the checked-in
# regression corpus (crates/speccheck/proptest-regressions/) replays
# every historical counterexample first.
cargo test -q -p speccheck

echo "== stackless kernel differential suite (threaded vs event-scheduled)"
# The two desim execution models — one OS thread per rank
# (legacy-threads) and resumable state machines inside the event kernel
# (stackless) — must be bit-identical: per-rank fingerprints, RunStats,
# virtual end time, and the kernel's own event/message/timer counters.
# The suite replays the checked-in proptest-regressions witnesses on
# both kernels and runs the failure-injection chaos matrix
# differentially at the mpk level (full SimReport equality).
cargo test -q --test stackless_equivalence

echo "== desim without legacy-threads (stackless-only build)"
# The stackless kernel must build and pass its suite with the threaded
# runner compiled out entirely (the cfg the differential suite exists
# to police).
cargo build -q -p desim --no-default-features
cargo test -q -p desim --no-default-features

echo "== regression corpus replay + full-grid inertness (explicit)"
# Re-run the two properties whose checked-in counterexamples pinned the
# polling-quantum and timeout-cascade bugs, by name, so a corpus entry
# silently skipped by a filter typo can never slip through. The corpus
# states replay before fresh cases; both must hold with the full
# assertions on (fingerprint + end-time equality on the whole θ/FW grid,
# cluster-wide commits ≤ losses).
cargo test -q -p speccheck --test conformance fault_tolerance_is_inert_without_faults
cargo test -q -p speccheck --test oracles loss_commits_bounded_by_losses

echo "== delta-exchange conformance (explicit)"
# The PR 7 equivalences by name: floor=0 delta exchange is
# fingerprint-identical to full broadcast across the θ/FW grid and
# across all three backends, and a nonzero floor's drift stays inside
# the quantization envelope.
cargo test -q -p speccheck --test conformance lossless_delta_equals_full_broadcast_across_grid
cargo test -q -p speccheck --test conformance quantized_delta_drift_is_bounded
cargo test -q -p speccheck --test conformance lossless_delta_agrees_across_all_three_backends

echo "== supervision conformance (explicit)"
# The PR 8 lifecycle properties by name: supervision off is bit-inert;
# a never-returning peer is quarantined and carried to completion in
# degraded mode with commits bounded by losses; crash fingerprints for a
# permanently-dead rank agree bit-for-bit across sim/thread/socket; a
# crash→rejoin schedule completes on all three backends with the sim
# run bit-replayable; and the fixed rejoin schedule pins the full
# quarantine→rejoin→readmission lifecycle deterministically.
cargo test -q -p speccheck --test conformance supervision_is_inert_without_faults
cargo test -q -p speccheck --test conformance degraded_mode_carries_a_dead_peer_to_completion
cargo test -q -p speccheck --test conformance crash_fingerprints_agree_across_all_three_backends
cargo test -q -p speccheck --test conformance crash_rejoin_completes_on_all_three_backends
cargo test -q -p speccheck --test conformance quarantined_peer_rejoins_and_is_readmitted

echo "== adaptive controller conformance (explicit)"
# The PR 10 controller contract by name: an attached-but-dormant
# controller is bit-inert; an active controller whose θ grid holds only
# the exact anchor stays bit-identical to the blocking baseline (and
# agrees across sim/thread backends); controller-driven lossy runs
# replay bit-for-bit; the window decision converges near the offline
# optimum under stationary delay; and gap-quantile deadlines beat a
# pessimistic static loss timeout under real loss.
cargo test -q -p speccheck --test controller dormant_controller_is_bit_inert
cargo test -q -p speccheck --test controller active_exact_anchor_controller_equals_baseline
cargo test -q -p speccheck --test controller sim_and_thread_agree_under_exact_anchor_controller
cargo test -q -p speccheck --test controller controller_converges_near_offline_optimal_window
cargo test -q -p speccheck --test controller adaptive_deadlines_beat_pessimistic_static_timeout_under_loss

echo "== coverage audit (informational)"
# Name-based audit of perfmodel/workloads public APIs against the test
# corpus. Informational here; pass --strict to fail on gaps.
ci/coverage_audit.sh | tail -n 3

echo "== chaos suite (release, fixed seeds)"
# Seed-matrix fault injection: composed loss/duplication/partitions plus
# a scripted crash, asserting liveness, bounded error, and bit-exact
# determinism per seed. Seeds are fixed inside the tests.
cargo test --release --test chaos -q

echo "== socket SIGKILL chaos (release, multi-process, hard timeout)"
# One OS process per rank over loopback TCP; the highest rank is
# SIGKILLed mid-run and restarted via the RESUME handshake. Asserts
# termination, survivor quarantine/readmission, and bounded error vs
# the fault-free reference. The timeout is a hard backstop: the run
# itself finishes in ~10s, and its internal 90s deadline kills stuck
# children with a diagnostic first.
timeout 150 cargo test --release --test chaos_socket \
    socket_rank_survives_sigkill_and_rejoins -- --exact --ignored --nocapture

echo "== kernels bench smoke (release)"
# Emits BENCH_kernels.json: wall-clock pairs/sec for the scalar and SoA
# force kernels at N ∈ {1024, 4096}. SPEC_BENCH_OUT pins the artifact to
# the repo root (cargo bench -p runs with the package dir as cwd).
SPEC_BENCH_OUT="$PWD" cargo bench -q -p spec-bench --bench kernels

echo "== transport bench smoke (release)"
# Emits BENCH_transport.json: messages/sec for broadcast and ping-pong
# traffic over all three Transport backends (sim, thread, socket), plus
# the deterministic full-vs-delta bytes-on-wire rows for the N-body
# exchange phase.
SPEC_BENCH_OUT="$PWD" cargo bench -q -p spec-bench --bench transport_regression

echo "== stackless scale sweep (release)"
# Emits BENCH_scale.json: wall-clock and peak-RSS rows for 1k/10k/100k
# event-scheduled ranks (zero OS threads per rank) in a heterogeneous
# token ring. The 10000-rank row is the PR's acceptance anchor.
SPEC_BENCH_OUT="$PWD" cargo bench -q -p spec-bench --bench scale_sweep

echo "== controller sweep (release, deterministic virtual time)"
# Emits BENCH_controller.json: the fixed (θ, FW) grid vs the adaptive
# controller on the heterogeneous-delay + transient-spike scenario. All
# numbers are exact virtual-time nanoseconds.
SPEC_BENCH_OUT="$PWD" cargo bench -q -p spec-bench --bench controller_sweep

echo "== transport regression gate (throughput floors + byte ceilings)"
# Compare the fresh BENCH_transport.json against the checked-in
# throughput floors (fail on >25% regression below budget), hold the
# exchange byte rows under their ceilings, and require delta mode to
# stay ≥3× cheaper per iteration than full broadcast. Also gates the
# fresh BENCH_scale.json: events/sec floors and RSS-per-rank ceilings
# per rank count, with the 10000-rank row mandatory, and the fresh
# BENCH_controller.json: the adaptive controller's makespan must stay
# within ratio_ceiling of the best fixed (θ, FW) grid point. Refresh
# with BENCH_UPDATE_BUDGETS=1 ci/bench_gate.sh after intentional changes
# or a CI hardware move.
ci/bench_gate.sh

echo "CI green."
