//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the subset this workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! measurement loop: a warm-up pass sizes the batch, then `sample_size`
//! timed batches are collected and the median/min/max per-iteration times
//! are printed. No statistical analysis, plotting, or HTML reports.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finish the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: function_name.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// Build an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function_name.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function_name, self.parameter)
        }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measure `routine`: warm up to size the batch, then time
    /// `sample_size` batches of it.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: find how many iterations fit in ~5ms so each timed
        // sample is long enough for Instant's resolution.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed());
        }
    }
}

/// Prevent the optimiser from discarding a value (re-export convenience).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    bencher.samples.sort();
    let per_iter = |d: Duration| d.as_secs_f64() / bencher.iters_per_sample as f64;
    let min = per_iter(bencher.samples[0]);
    let median = per_iter(bencher.samples[bencher.samples.len() / 2]);
    let max = per_iter(bencher.samples[bencher.samples.len() - 1]);
    println!(
        "{name:<50} median {} (min {}, max {}, {} samples x {} iters)",
        fmt_time(median),
        fmt_time(min),
        fmt_time(max),
        bencher.samples.len(),
        bencher.iters_per_sample
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundle benchmark functions into a single runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit a `main` that runs the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("ungrouped", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, quick_bench);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
