//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! shim provides the small API subset the workspace actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] and [`Rng::gen_bool`]. The generator is
//! xoshiro256++ seeded through splitmix64 — deterministic, seedable, and
//! statistically solid for simulation workloads. It intentionally does
//! *not* promise stream compatibility with the real `rand` crate.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from their full domain (the shim's
/// equivalent of sampling the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types drawable uniformly from a half-open range, mirroring `rand`'s
/// `SampleUniform`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draw one value from `[start, end)`.
    fn sample_in<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(start: f64, end: f64, rng: &mut R) -> f64 {
        start + f64::sample_standard(rng) * (end - start)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(start: f32, end: f32, rng: &mut R) -> f32 {
        start + f32::sample_standard(rng) * (end - start)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                let span = (end as i128 - start as i128) as u128;
                // Lemire-style bounded draw: (r * span) >> 64 is uniform
                // enough for simulation seeding purposes.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from, mirroring `rand`'s `SampleRange`.
///
/// A single blanket impl over `Range<T>` (rather than one impl per element
/// type) keeps type inference working for unsuffixed literals like
/// `gen_range(0.5..2.0)`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range needs a non-empty range");
        T::sample_in(self.start, self.end, rng)
    }
}

/// Convenience sampling methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly from its full domain ([0, 1) for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix64 of any
            // seed cannot produce four zero words, but guard anyway.
            if s == [0; 4] {
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&x));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets should be hit");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits} of 10000");
    }
}
