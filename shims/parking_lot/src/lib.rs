//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the subset this workspace uses: [`Mutex`] with a non-poisoning
//! `lock()`, and [`Condvar`] whose `wait`/`wait_for` take `&mut MutexGuard`
//! (the `parking_lot` calling convention). Poisoning is deliberately
//! swallowed — like `parking_lot`, a panic while holding the lock does not
//! make the data unreachable.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0
            .as_ref()
            .expect("guard invariant: slot populated outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_mut()
            .expect("guard invariant: slot populated outside wait")
    }
}

/// Result of a [`Condvar::wait_for`]: whether the wait timed out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with `parking_lot`'s `&mut guard` API.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard invariant");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard invariant");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Block until notified or the absolute `deadline` passes. A deadline
    /// already in the past returns immediately as timed out.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_guards_data() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            true
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn wait_until_honours_absolute_deadlines() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let res = cv.wait_until(&mut g, start + Duration::from_millis(5));
        assert!(res.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(5));
        // A deadline in the past returns immediately.
        let res = cv.wait_until(&mut g, start);
        assert!(res.timed_out());
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(5i32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 5, "lock must survive a panicking holder");
    }
}
