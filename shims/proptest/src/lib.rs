//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset of `proptest` the workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, range/tuple/`Just`
//! strategies, [`collection::vec`], [`any`], [`prop_oneof!`], and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Semantics: each property runs [`ProptestConfig::cases`] times with
//! inputs drawn from a generator seeded deterministically from the test's
//! module path and name, so failures reproduce run-to-run. There is **no
//! shrinking** — a failing case reports its case index and message only.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;

pub use strategy::{any, Arbitrary, Just, Strategy};

/// Per-property configuration (the subset the workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator used to drive strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test's identifying string.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Everything a property test needs, star-importable.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig, TestRng,
    };
}

/// Assert a condition inside a property; on failure the current case fails
/// with the stringified condition (plus an optional formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Choose uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::one_of(::std::vec![
            $(::std::boxed::Box::new($strategy)),+
        ])
    };
}

/// Define property tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are drawn from strategies via `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..cfg.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(message) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name), case, cfg.cases, message
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, u64)> {
        (0u64..100, 0u64..100)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn ranges_respected(x in -5i64..5, f in 0.25f64..0.75, flag in any::<bool>()) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!(usize::from(flag) <= 1);
        }

        #[test]
        fn vec_lengths_in_range(v in collection::vec(0u64..10, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|x| *x < 10));
        }

        #[test]
        fn mapped_strategies_apply(s in pair().prop_map(|(a, b)| a + b)) {
            prop_assert!(s < 200);
        }

        #[test]
        fn oneof_picks_members(x in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&x));
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
