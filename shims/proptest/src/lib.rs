//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset of `proptest` the workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, range/tuple/`Just`
//! strategies, [`collection::vec`], [`any`], [`prop_oneof!`], and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Semantics: each property runs [`ProptestConfig::cases`] times with
//! inputs drawn from a generator seeded deterministically from the test's
//! module path and name, so failures reproduce run-to-run. A failing case
//! is **shrunk** (greedy, per [`Strategy::shrink`] candidates) before the
//! panic reports it, and its RNG state is appended to a regression-corpus
//! file under `<crate>/proptest-regressions/` (one `cc <hex>` line per
//! counterexample, mirroring upstream proptest's `cc` entries). States
//! already in the corpus are replayed before any fresh cases, so
//! checked-in counterexamples are re-tested on every run.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;

pub use strategy::{any, Arbitrary, Just, Strategy};

/// Per-property configuration (the subset the workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator used to drive strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test's identifying string.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Resume from a previously captured [`state`](Self::state) — the
    /// regression corpus stores these, one per failing case.
    pub fn from_state(state: u64) -> Self {
        TestRng { state }
    }

    /// The current generator state. Captured immediately before a case is
    /// sampled, it replays that case exactly via [`from_state`](Self::from_state).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Regression-corpus bookkeeping: where counterexample RNG states live
/// and how they are read back. Used by the [`proptest!`] expansion; public
/// so harnesses that drive strategies by hand can share the format.
pub mod corpus {
    use std::cell::Cell;
    use std::path::{Path, PathBuf};

    thread_local! {
        static DISABLED: Cell<bool> = const { Cell::new(false) };
    }

    /// Suppress corpus writes from this thread (tests that fail on
    /// purpose). Thread-local so parallel tests cannot disturb each other.
    pub fn disable_persistence_for_this_thread() {
        DISABLED.with(|d| d.set(true));
    }

    /// Corpus file for a test, e.g.
    /// `<manifest>/proptest-regressions/my_mod-my_test.txt`. The `::`
    /// separators of the test path become `-` so the name stays portable.
    pub fn path_for(manifest_dir: &str, test_ident: &str) -> PathBuf {
        let file = test_ident.replace("::", "-");
        Path::new(manifest_dir)
            .join("proptest-regressions")
            .join(format!("{file}.txt"))
    }

    /// Stored counterexample states: every `cc <hex>` line of the file.
    /// A missing or unreadable file is an empty corpus, not an error.
    pub fn states(path: &Path) -> Vec<u64> {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|l| l.trim().strip_prefix("cc "))
            .filter_map(|h| {
                let h = h.trim().trim_start_matches("0x");
                u64::from_str_radix(h, 16).ok()
            })
            .collect()
    }

    /// Append one counterexample state (idempotent: already-recorded
    /// states are skipped). IO failures are ignored — recording a
    /// regression must never mask the test failure being reported.
    /// Suppressed by `PROPTEST_DISABLE_PERSISTENCE` in the environment or
    /// [`disable_persistence_for_this_thread`].
    pub fn append(path: &Path, state: u64) {
        if DISABLED.with(|d| d.get()) || std::env::var_os("PROPTEST_DISABLE_PERSISTENCE").is_some()
        {
            return;
        }
        if states(path).contains(&state) {
            return;
        }
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let header = if path.exists() {
            String::new()
        } else {
            "# proptest regression corpus: one `cc <hex rng state>` per stored\n\
             # counterexample. Replayed before fresh cases on every run; append\n\
             # new entries (or let a failing run do it) and check them in.\n"
                .to_string()
        };
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = write!(f, "{header}");
            let _ = writeln!(f, "cc {state:#018x}");
        }
    }
}

/// Identity helper for the [`proptest!`] expansion: ties a test-body
/// closure's argument type to `S::Value` at the definition site, so the
/// closure body type-checks without explicit annotations.
pub fn constrain_body<S, F>(_strategy: &S, body: F) -> F
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), String>,
{
    body
}

/// Greedily shrink a failing value: repeatedly re-test the strategy's
/// [`Strategy::shrink`] candidates and descend into the first that still
/// fails, until none fail or the step budget runs out. Returns the
/// minimal value, its failure message, and accepted shrink steps.
pub fn shrink_failure<S, F>(
    strategy: &S,
    initial: S::Value,
    initial_msg: String,
    body: &F,
) -> (S::Value, String, u32)
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), String>,
{
    let mut best = initial;
    let mut best_msg = initial_msg;
    let mut steps = 0u32;
    let mut evals = 0u32;
    'outer: while steps < 256 {
        for cand in strategy.shrink(&best) {
            evals += 1;
            if evals > 4096 {
                break 'outer;
            }
            if let Err(msg) = body(&cand) {
                best = cand;
                best_msg = msg;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (best, best_msg, steps)
}

/// Shared failure path of the [`proptest!`] expansion: record the case's
/// RNG state in the regression corpus (fresh cases only), shrink, panic.
#[allow(clippy::too_many_arguments)] // macro plumbing, not a human-facing API
pub fn report_failure<S, F>(
    name: &str,
    origin: &str,
    state: u64,
    strategy: &S,
    value: S::Value,
    msg: String,
    body: &F,
    corpus_file: &std::path::Path,
    record: bool,
) -> !
where
    S: Strategy,
    S::Value: std::fmt::Debug,
    F: Fn(&S::Value) -> Result<(), String>,
{
    if record {
        corpus::append(corpus_file, state);
    }
    let (minimal, minimal_msg, steps) = shrink_failure(strategy, value, msg, body);
    panic!(
        "property {name} failed at {origin} (rng state {state:#x}): {minimal_msg}\n\
         minimal input after {steps} shrink step(s): {minimal:?}\n\
         replay: `cc {state:#018x}` in {}",
        corpus_file.display()
    );
}

/// Everything a property test needs, star-importable.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig, TestRng,
    };
}

/// Assert a condition inside a property; on failure the current case fails
/// with the stringified condition (plus an optional formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Choose uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::one_of(::std::vec![
            $(::std::boxed::Box::new($strategy)),+
        ])
    };
}

/// Define property tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are drawn from strategies via `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                // All argument strategies form one tuple strategy, so
                // sampling order matches the historical per-arg order and
                // shrinking works componentwise across arguments.
                let strategy = ($(($strat),)+);
                let body = $crate::constrain_body(&strategy, |vals| {
                    let ($($arg,)+) = ::core::clone::Clone::clone(vals);
                    (|| { $body ::core::result::Result::Ok(()) })()
                });
                let corpus_file = $crate::corpus::path_for(
                    env!("CARGO_MANIFEST_DIR"),
                    concat!(module_path!(), "::", stringify!($name)),
                );
                // Checked-in counterexamples replay before fresh cases.
                for state in $crate::corpus::states(&corpus_file) {
                    let mut rng = $crate::TestRng::from_state(state);
                    let vals = $crate::strategy::Strategy::sample(&strategy, &mut rng);
                    if let ::core::result::Result::Err(message) = body(&vals) {
                        $crate::report_failure(
                            stringify!($name), "regression corpus entry", state,
                            &strategy, vals, message, &body, &corpus_file, false,
                        );
                    }
                }
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..cfg.cases {
                    let state = rng.state();
                    let vals = $crate::strategy::Strategy::sample(&strategy, &mut rng);
                    if let ::core::result::Result::Err(message) = body(&vals) {
                        let origin = ::std::format!("case {}/{}", case, cfg.cases);
                        $crate::report_failure(
                            stringify!($name), &origin, state,
                            &strategy, vals, message, &body, &corpus_file, true,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, u64)> {
        (0u64..100, 0u64..100)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn ranges_respected(x in -5i64..5, f in 0.25f64..0.75, flag in any::<bool>()) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!(usize::from(flag) <= 1);
        }

        #[test]
        fn vec_lengths_in_range(v in collection::vec(0u64..10, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|x| *x < 10));
        }

        #[test]
        fn mapped_strategies_apply(s in pair().prop_map(|(a, b)| a + b)) {
            prop_assert!(s < 200);
        }

        #[test]
        fn oneof_picks_members(x in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&x));
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_case_info() {
        crate::corpus::disable_persistence_for_this_thread();
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    #[should_panic(expected = "minimal input after")]
    fn failing_property_shrinks_to_range_start() {
        crate::corpus::disable_persistence_for_this_thread();
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn fails_everywhere(x in 3u64..1000) {
                prop_assert!(x > 2000, "x was {}", x);
            }
        }
        fails_everywhere();
    }

    #[test]
    fn shrink_failure_finds_boundary() {
        // Fails for x >= 17: greedy shrinking must land exactly on 17.
        let strategy = (0u64..1000,);
        let body = |v: &(u64,)| {
            if v.0 >= 17 {
                Err(format!("too big: {}", v.0))
            } else {
                Ok(())
            }
        };
        let (min, msg, steps) = crate::shrink_failure(&strategy, (800,), "seed".into(), &body);
        assert_eq!(min, (17,));
        assert!(msg.contains("17"));
        assert!(steps > 0);
    }

    #[test]
    fn corpus_round_trips_states() {
        let dir = std::env::temp_dir().join(format!(
            "proptest-shim-corpus-{}-{}",
            std::process::id(),
            "round_trip"
        ));
        let path = dir.join("prop.txt");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(
            crate::corpus::states(&path).is_empty(),
            "missing file is empty"
        );
        crate::corpus::append(&path, 0xdead_beef);
        crate::corpus::append(&path, 0x1234);
        crate::corpus::append(&path, 0xdead_beef); // idempotent
        assert_eq!(crate::corpus::states(&path), vec![0xdead_beef, 0x1234]);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('#'), "corpus files carry a usage header");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rng_state_resume_replays_exactly() {
        let mut a = TestRng::deterministic("resume");
        let _ = a.next_u64();
        let snap = a.state();
        let expect: Vec<u64> = (0..5).map(|_| a.next_u64()).collect();
        let mut b = TestRng::from_state(snap);
        let got: Vec<u64> = (0..5).map(|_| b.next_u64()).collect();
        assert_eq!(expect, got);
    }
}
