//! Value-generation strategies for the proptest shim.

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// Something that can produce random values of a given type.
///
/// Object-safe so `Box<dyn Strategy<Value = T>>` works (as required by
/// `prop_oneof!`); combinators like [`Strategy::prop_map`] are provided
/// methods gated on `Sized`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy producing a fixed value (must be `Clone`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy applying a function to another strategy's output.
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draw one value uniformly from the type's domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for the full domain of an [`Arbitrary`] type.
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range must be non-empty");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range must be non-empty");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "strategy range must be non-empty");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Uniform choice between boxed strategies; built by `prop_oneof!`.
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Build a [`OneOf`] from boxed strategies (`prop_oneof!`'s runtime half).
pub fn one_of<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
    OneOf { options }
}
