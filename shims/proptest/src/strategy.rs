//! Value-generation strategies for the proptest shim.

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// Something that can produce random values of a given type.
///
/// Object-safe so `Box<dyn Strategy<Value = T>>` works (as required by
/// `prop_oneof!`); combinators like [`Strategy::prop_map`] are provided
/// methods gated on `Sized`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Propose strictly "smaller" variants of a failing value, most
    /// aggressive first. The default (no candidates) opts a strategy out
    /// of shrinking; `proptest!` greedily re-tests candidates and keeps
    /// the smallest one that still fails.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transform generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        (**self).shrink(value)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        (**self).shrink(value)
    }
}

/// Strategy producing a fixed value (must be `Clone`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy applying a function to another strategy's output.
///
/// Mapped values cannot shrink: the mapping is not invertible, so there
/// is no way to re-derive a source value to shrink from.
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draw one value uniformly from the type's domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for the full domain of an [`Arbitrary`] type.
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range must be non-empty");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                // Toward the range start: the start itself, the midpoint
                // (halving the distance each accepted round), then one
                // step down so greedy shrinking converges on an exact
                // failure boundary once halving overshoots.
                let mut out = Vec::new();
                if *value != self.start {
                    out.push(self.start);
                    let mid = (self.start as i128 + (*value as i128 - self.start as i128) / 2) as $t;
                    if mid != self.start && mid != *value {
                        out.push(mid);
                    }
                    let dec = *value - 1;
                    if dec != self.start && dec != mid {
                        out.push(dec);
                    }
                }
                out
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range must be non-empty");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        if *value != self.start {
            out.push(self.start);
            let mid = self.start + (*value - self.start) / 2.0;
            if mid != self.start && mid != *value {
                out.push(mid);
            }
        }
        out
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "strategy range must be non-empty");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
    fn shrink(&self, value: &f32) -> Vec<f32> {
        let mut out = Vec::new();
        if *value != self.start {
            out.push(self.start);
            let mid = self.start + (*value - self.start) / 2.0;
            if mid != self.start && mid != *value {
                out.push(mid);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Componentwise: each candidate shrinks one component and
                // clones the rest, so a failing tuple minimises per field.
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Uniform choice between boxed strategies; built by `prop_oneof!`.
///
/// Cannot shrink: once sampled, there is no record of which branch
/// produced the value.
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Build a [`OneOf`] from boxed strategies (`prop_oneof!`'s runtime half).
pub fn one_of<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
    OneOf { options }
}

#[cfg(test)]
mod shrink_tests {
    use super::*;

    #[test]
    fn int_range_shrinks_toward_start() {
        let s = 10u64..100;
        let c = s.shrink(&80);
        assert_eq!(c, vec![10, 45, 79]);
        assert!(s.shrink(&10).is_empty());
    }

    #[test]
    fn tuple_shrinks_componentwise() {
        let s = (0u64..10, 0u64..10);
        let c = s.shrink(&(4, 6));
        assert!(c.contains(&(0, 6)));
        assert!(c.contains(&(4, 0)));
        assert!(c.iter().all(|(a, b)| *a <= 4 && *b <= 6));
    }

    #[test]
    fn just_and_map_do_not_shrink() {
        assert!(Just(7u8).shrink(&7).is_empty());
        let m = (0u64..10).prop_map(|x| x * 2);
        assert!(m.shrink(&4).is_empty());
    }
}
