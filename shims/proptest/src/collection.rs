//! Collection strategies (`proptest::collection` subset).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::Range;

/// Accepted length specifications for [`vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            min: len,
            max_exclusive: len + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "vec size range must be non-empty");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

/// Strategy producing `Vec`s whose elements come from an inner strategy.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // Structural shrinks first (fewer elements), respecting the
        // minimum length, then per-element shrinks of the survivors.
        if value.len() > self.size.min {
            let half = self.size.min.max(value.len() / 2);
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            out.push(value[..value.len() - 1].to_vec());
        }
        for (i, v) in value.iter().enumerate() {
            for cand in self.element.shrink(v) {
                let mut next = value.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
}

/// Generate `Vec`s with elements from `element` and lengths from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
