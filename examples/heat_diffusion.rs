//! Speculative halo exchange on a 1-D Jacobi heat solver — the PDE member
//! of the paper's algorithm family (§2).
//!
//! ```text
//! cargo run --release --example heat_diffusion -- [cells] [p] [iters]
//! ```

use speculative_computation::prelude::*;

fn arg<T: std::str::FromStr>(n: usize, default: T) -> T {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n: usize = arg(1, 400);
    let p: usize = arg(2, 8);
    let iters: u64 = arg(3, 400);

    let cluster = ClusterSpec::homogeneous(p, 0.5);
    let ranges: Vec<_> = (0..p).map(|i| i * n / p..(i + 1) * n / p).collect();

    println!("1-D heat diffusion: {n} cells over {p} strips, {iters} Jacobi sweeps\n");

    let run = |fw: u32| {
        let ranges = ranges.clone();
        let (outs, report) = run_sim_cluster::<IterMsg<workloads::Halo>, _, _>(
            &cluster,
            ConstantLatency(SimDuration::from_millis(2)),
            Unloaded,
            false,
            move |t| {
                let mut app = HeatApp::new(n, &ranges, t.rank().0, HeatConfig::default());
                let cfg = if fw == 0 {
                    SpecConfig::baseline()
                } else {
                    SpecConfig::speculative(fw)
                };
                let stats = run_speculative(t, &mut app, iters, cfg);
                (app.cells().to_vec(), stats)
            },
        )
        .expect("simulation failed");
        let cells: Vec<f64> = outs.iter().flat_map(|(c, _)| c.iter().copied()).collect();
        let stats = ClusterStats::new(outs.into_iter().map(|(_, s)| s).collect());
        (cells, stats, report.end_time.as_secs_f64())
    };

    let (cells0, _, t0) = run(0);
    let (cells1, stats1, t1) = run(1);

    // The solutions agree wherever speculation was accepted within θ.
    let max_diff = cells0
        .iter()
        .zip(&cells1)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    println!("baseline:    {t0:.4} s");
    println!(
        "speculative: {t1:.4} s  ({:+.1}% — {} halo values speculated, {:.2}% rejected)",
        100.0 * (t0 / t1 - 1.0),
        stats1
            .per_rank
            .iter()
            .map(|r| r.speculated_partitions)
            .sum::<u64>(),
        100.0 * stats1.recomputation_fraction(),
    );
    println!("max |ΔT| between the two solutions: {max_diff:.2e}\n");

    // Render the final temperature profile.
    println!("final profile (hot end → cold end):");
    let buckets = 60;
    for row in 0..8 {
        let level = 1.0 - row as f64 / 8.0;
        let mut line = String::new();
        for b in 0..buckets {
            let idx = b * n / buckets;
            line.push(if cells1[idx] >= level - 0.125 {
                '█'
            } else {
                ' '
            });
        }
        println!("  |{line}|");
    }
}
