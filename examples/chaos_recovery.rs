//! Chaos recovery demo: an 8-rank N-body run through a scripted loss
//! burst and one mid-run machine crash, with a per-rank recovery
//! timeline and a fault-accounting table.
//!
//! The fault schedule:
//!
//! * 60–140 ms: every message rolls a 40% loss dice (a network brown-out).
//! * 200 ms: rank 5 crashes, losing all in-flight state, and restarts
//!   80 ms later from its last confirmed checkpoint, re-syncing peers
//!   with retransmit requests.
//!
//! The driver speculates through both: lost inputs are promoted from the
//! backward-window extrapolation once the loss timeout expires, and the
//! crashed rank rejoins without any other rank deadlocking.
//!
//! ```text
//! cargo run --release --example chaos_recovery
//! ```

use speculative_computation::prelude::*;

fn main() {
    let p = 8;
    let iters = 60;
    let particles = uniform_cloud(96, 17);
    let cluster = ClusterSpec::paper_testbed().fastest(p);

    let crash = MachineCrash {
        rank: 5,
        at: SimTime::from_nanos(200_000_000),
        restart_after: SimDuration::from_millis(80),
    };
    let burst = FaultPlan::new().window(
        SimTime::from_nanos(60_000_000),
        SimTime::from_nanos(140_000_000),
        Loss::new(0.4, 90210),
    );

    let mut cfg = ParallelRunConfig::new(iters, 2).with_trace();
    cfg.spec = cfg.spec.with_fault_tolerance(
        FaultTolerance::new(SimDuration::from_millis(25))
            .with_staleness_budget(3)
            .with_crashes(vec![crash]),
    );

    let faulty = run_parallel_with_faults(
        &particles,
        &cluster,
        ConstantLatency(SimDuration::from_millis(4)),
        Unloaded,
        FaultSpec::new(burst),
        cfg,
    )
    .expect("chaos run failed");

    let golden = run_parallel(
        &particles,
        &cluster,
        ConstantLatency(SimDuration::from_millis(4)),
        Unloaded,
        ParallelRunConfig::new(iters, 2),
    )
    .expect("golden run failed");

    println!("8-rank N-body, {iters} iterations, loss burst at 60-140 ms,");
    println!("rank 5 crashes at 200 ms and restarts 80 ms later.\n");

    println!("Per-rank recovery timeline (D = drop, K = crash, R = recover):");
    print!(
        "{}",
        obs::timeline::render(faulty.traces.as_ref().expect("trace enabled"), 100)
    );

    println!("\nFault accounting:");
    println!("rank |  lost | promoted | retrans | restarts | downtime (ms)");
    println!("-----+-------+----------+---------+----------+--------------");
    for s in &faulty.stats.per_rank {
        println!(
            "{:>4} | {:>5} | {:>8} | {:>7} | {:>8} | {:>12.1}",
            s.rank.0,
            s.messages_lost,
            s.speculate_through_loss_commits,
            s.retransmit_requests,
            s.peer_restarts,
            s.downtime.as_secs_f64() * 1e3,
        );
    }

    let drift = faulty
        .particles
        .iter()
        .zip(&golden.particles)
        .map(|(a, b)| a.pos.distance(b.pos))
        .fold(0.0, f64::max);
    println!(
        "\nmakespan: {:.3}s faulty vs {:.3}s fault-free; max position drift {:.2e}",
        faulty.elapsed_secs(),
        golden.elapsed_secs(),
        drift
    );
    println!(
        "total: {} messages lost, {} speculate-through-loss commits, {} restart",
        faulty.stats.total_messages_lost(),
        faulty.stats.total_loss_commits(),
        faulty.stats.total_restarts()
    );
}
