//! The paper's §5 case study as a CLI: parallel O(N²) N-body simulation on
//! a simulated heterogeneous workstation network, with and without
//! speculative computation.
//!
//! ```text
//! cargo run --release --example nbody_cluster -- [n] [p] [fw] [theta] [iters]
//! # e.g. the paper's configuration:
//! cargo run --release --example nbody_cluster -- 1000 16 1 0.01 10
//! ```

use speculative_computation::prelude::*;

fn arg<T: std::str::FromStr>(n: usize, default: T) -> T {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n: usize = arg(1, 1000);
    let p: usize = arg(2, 16);
    let fw: u32 = arg(3, 1);
    let theta: f64 = arg(4, 0.01);
    let iters: u64 = arg(5, 10);

    println!("N-body: {n} particles, {p} machines, FW = {fw}, θ = {theta}, {iters} steps");

    // The paper's testbed shape: 120 MIPS down to 10 MIPS, shared Ethernet.
    let cluster = ClusterSpec::paper_testbed().fastest(p);
    let net = Jitter::new(
        SharedMedium::new(SimDuration::from_micros(500), 13.6e6),
        0.3,
        7,
    );
    let particles = centered_cloud(n, 42);

    let mut cfg = ParallelRunConfig::new(iters, fw);
    cfg.nbody = NBodyConfig {
        g: 1.0,
        softening: 0.01,
        dt: 1e-2,
        theta,
    };

    let before_energy = nbody::integrate::total_energy(&particles, &cfg.nbody);

    let result =
        run_parallel(&particles, &cluster, net, Unloaded, cfg.clone()).expect("simulation failed");

    let after_energy = nbody::integrate::total_energy(&result.particles, &cfg.nbody);
    let ph = result.stats.mean_per_iteration();

    println!(
        "\nvirtual run time: {:.4} s  ({:.4} s/iteration)",
        result.elapsed_secs(),
        result.elapsed_secs() / iters as f64
    );
    println!("per-iteration phases (mean over ranks):");
    println!(
        "  computation   {:.4} s",
        ph.compute.as_secs_f64() + ph.correct.as_secs_f64()
    );
    println!("  communication {:.4} s", ph.comm_wait.as_secs_f64());
    println!("  speculation   {:.5} s", ph.speculate.as_secs_f64());
    println!("  checking      {:.5} s", ph.check.as_secs_f64());

    let spec: u64 = result
        .stats
        .per_rank
        .iter()
        .map(|r| r.speculated_partitions)
        .sum();
    let miss: u64 = result
        .stats
        .per_rank
        .iter()
        .map(|r| r.misspeculated_partitions)
        .sum();
    let rollbacks = result.stats.total_rollbacks();
    println!("\nspeculated partition messages: {spec}   rejected: {miss}   rollbacks: {rollbacks}");
    println!(
        "recomputation fraction k = {:.2}%",
        100.0 * result.stats.recomputation_fraction()
    );
    println!(
        "max accepted speculation error = {:.4} (θ = {theta})",
        result.stats.max_accepted_error()
    );

    println!(
        "\nphysics sanity: energy {before_energy:.4} -> {after_energy:.4} (drift {:.2}%)",
        100.0 * ((after_energy - before_energy) / before_energy.abs())
    );

    // Compare against the no-speculation baseline for the same inputs.
    if fw > 0 {
        let mut base_cfg = cfg;
        base_cfg.spec = SpecConfig::baseline();
        let base = run_parallel(
            &particles,
            &cluster,
            Jitter::new(
                SharedMedium::new(SimDuration::from_micros(500), 13.6e6),
                0.3,
                7,
            ),
            Unloaded,
            base_cfg,
        )
        .expect("baseline failed");
        println!(
            "\nbaseline (FW = 0) took {:.4} s — speculation gained {:+.1}%",
            base.elapsed_secs(),
            100.0 * (base.elapsed_secs() / result.elapsed_secs() - 1.0)
        );
    }
}
