//! The same speculative algorithm on **real OS threads** — the live
//! channel-based port of the paper's PVM setting.
//!
//! ```text
//! cargo run --release --example threads_demo
//! ```
//!
//! Runs the synthetic workload on 4 threads whose mailboxes inject a real
//! 3 ms latency per message, first blocking (Figure 1), then speculating
//! (Figure 3). Wall-clock timings on a shared host are noisy; the point of
//! this demo is that the identical application and driver code runs on real
//! concurrency, not just in virtual time.

use std::time::Instant;

use speculative_computation::prelude::*;

fn main() {
    let p = 4;
    let n_vars = 64;
    let iterations = 30;

    let opts = ThreadClusterOptions {
        latency: std::time::Duration::from_millis(3),
        per_byte: std::time::Duration::ZERO,
        mips: 2.0, // compute(ops) sleeps ops / 2e6 seconds
    };

    let run = |fw: u32| {
        let opts = opts.clone();
        let started = Instant::now();
        let stats = run_thread_cluster::<IterMsg<Vec<f64>>, _, _>(p, opts, move |t| {
            let ranges: Vec<_> = (0..p)
                .map(|i| i * n_vars / p..(i + 1) * n_vars / p)
                .collect();
            let mut app = SyntheticApp::new(
                n_vars,
                &ranges,
                t.rank().0,
                SyntheticConfig {
                    f_comp: 300,
                    f_spec: 2,
                    f_check: 2,
                    theta: 0.05,
                    ..Default::default()
                },
            );
            let cfg = if fw == 0 {
                SpecConfig::baseline()
            } else {
                SpecConfig::speculative(fw)
            };
            run_speculative(t, &mut app, iterations, cfg)
        });
        (started.elapsed(), ClusterStats::new(stats))
    };

    println!("{p} OS threads, {iterations} iterations, 3 ms injected message latency\n");

    let (t0, s0) = run(0);
    println!(
        "FW = 0: {:>8.1?} wall  (mean waiting/iter {:.2} ms)",
        t0,
        1e3 * s0.mean_per_iteration().comm_wait.as_secs_f64()
    );

    let (t1, s1) = run(1);
    println!(
        "FW = 1: {:>8.1?} wall  (mean waiting/iter {:.2} ms, {} speculations, {:.1}% rejected)",
        t1,
        1e3 * s1.mean_per_iteration().comm_wait.as_secs_f64(),
        s1.per_rank
            .iter()
            .map(|r| r.speculated_partitions)
            .sum::<u64>(),
        100.0 * s1.recomputation_fraction(),
    );

    if t1 < t0 {
        println!(
            "\nspeculation saved {:.0}% of wall-clock time on real threads",
            100.0 * (1.0 - t1.as_secs_f64() / t0.as_secs_f64())
        );
    } else {
        println!("\n(no wall-clock win this run — host scheduling noise; the virtual-time\n harness in `spec-bench` gives the controlled comparison)");
    }
}
