//! How far do event-scheduled ranks stretch? Each rank of this demo is a
//! resumable state machine inside the desim event kernel — no OS thread,
//! no stack — so cluster sizes that would exhaust the platform thread
//! limit run in one process. A token ring circulates over heterogeneous
//! (ramped-capacity, jittered-latency) machines and each point reports
//! wall-clock throughput plus peak-RSS growth per rank.
//!
//! Usage: `cargo run --release --example scale_sweep [max_ranks]`
//! (default 10000; the bench `scale_sweep` sweeps to 100k and persists
//! `BENCH_scale.json`).

use spec_bench::scale::run_scale_point;

fn main() {
    let max_ranks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let mut ranks = 1_000usize;
    println!("stackless rank scaling (token ring, 3 rounds):");
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>12}",
        "ranks", "wall s", "events/s", "rank-rounds/s", "rss B/rank"
    );
    while ranks <= max_ranks {
        let r = run_scale_point(ranks, 3, 42);
        println!(
            "{:>8} {:>10.3} {:>14.0} {:>14.0} {:>12.0}",
            r.ranks,
            r.wall_secs,
            r.events_per_sec(),
            r.ranks_per_sec(),
            r.rss_bytes_per_rank()
        );
        ranks *= 10;
    }
}
