//! Supervised crash→rejoin demo: the peer-lifecycle state machine
//! (Healthy → Suspected → Quarantined → Rejoining) driving an N-body
//! cluster through one long mid-run outage, plus a permanent-failure run
//! showing degraded-mode completion.
//!
//! Scenario A — rank 4 crashes at 150 ms and restarts 120 ms later. The
//! survivors suspect it after one promoted input (`?` in the timeline),
//! quarantine it on the next (`Q`), then carry its partition by
//! speculation alone — quarantined inputs are promoted immediately, so
//! the cluster's pace stops depending on the dead rank. When its frames
//! flow again every survivor readmits it (`J`) with a full-state
//! keyframe, resetting the delta shadows, and θ-checking resumes.
//!
//! Scenario B — the same crash never restarts. With supervision the
//! cluster finishes in degraded mode at nearly fault-free pace; without
//! it every remaining iteration eats a full loss timeout. The makespan
//! table quantifies the gap.
//!
//! ```text
//! cargo run --release --example crash_rejoin
//! ```

use speculative_computation::prelude::*;

fn run(crash: MachineCrash, supervised: bool) -> ParallelRunResult {
    let p = 6;
    let particles = uniform_cloud(72, 23);
    let cluster = ClusterSpec::paper_testbed().fastest(p);

    let mut cfg = ParallelRunConfig::new(60, 2).with_trace();
    cfg.spec = cfg.spec.with_fault_tolerance(
        FaultTolerance::new(SimDuration::from_millis(15)).with_crashes(vec![crash]),
    );
    if supervised {
        cfg.spec = cfg.spec.with_supervision(SupervisionConfig::new(1, 2));
    }

    run_parallel_with_faults(
        &particles,
        &cluster,
        ConstantLatency(SimDuration::from_millis(4)),
        Unloaded,
        FaultSpec::none().with_crashes(CrashPlan::new(vec![crash])),
        cfg,
    )
    .expect("run failed")
}

fn main() {
    let rejoin = MachineCrash {
        rank: 4,
        at: SimTime::from_nanos(150_000_000),
        restart_after: SimDuration::from_millis(120),
    };

    println!("6-rank N-body, 60 iterations; rank 4 crashes at 150 ms and");
    println!("restarts 120 ms later, under supervision (suspect 1, quarantine 2).\n");

    let run_a = run(rejoin, true);
    println!("Timeline (K crash, R recover, ? suspected, Q quarantined, J rejoined):");
    print!(
        "{}",
        obs::timeline::render(run_a.traces.as_ref().expect("trace enabled"), 100)
    );

    println!("\nSupervision accounting:");
    println!("rank | suspected | quarantined | rejoins | degraded | promoted");
    println!("-----+-----------+-------------+---------+----------+---------");
    for s in &run_a.stats.per_rank {
        println!(
            "{:>4} | {:>9} | {:>11} | {:>7} | {:>8} | {:>7}",
            s.rank.0,
            s.peers_suspected,
            s.peers_quarantined,
            s.peer_rejoins,
            s.degraded_commits,
            s.speculate_through_loss_commits,
        );
    }

    // Scenario B: the rank never comes back. Supervision's quarantine
    // bypass is what keeps the degraded cluster near fault-free pace.
    let permanent = MachineCrash::permanent(4, SimTime::from_nanos(150_000_000));
    let with_sup = run(permanent, true);
    let without = run(permanent, false);

    println!("\nPermanent failure of rank 4 at 150 ms — makespan:");
    println!(
        "  supervised (quarantine + degraded mode): {:>7.3}s",
        with_sup.elapsed_secs()
    );
    println!(
        "  unsupervised (loss timeout per input):   {:>7.3}s",
        without.elapsed_secs()
    );
    println!(
        "  degraded commits by survivors: {}",
        with_sup
            .stats
            .per_rank
            .iter()
            .map(|s| s.degraded_commits)
            .sum::<u64>()
    );
}
