//! Run the N-body cluster with telemetry enabled and export a
//! Chrome-trace JSON timeline — load it at `chrome://tracing` or
//! <https://ui.perfetto.dev> to see one track per rank, with phase spans
//! (compute/comm-wait/speculate/check/correct), message marks, and
//! queue-depth counters.
//!
//! ```text
//! cargo run --release --example trace_viewer -- --trace out.json
//! ```
//!
//! The output path defaults to `out.json`. An ASCII quick look of the
//! same trace is printed to the terminal.

use speculative_computation::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "out.json".to_string());

    // Four equal machines on a 5 ms network, 48 particles, 6 timesteps,
    // speculating one message ahead — the quickstart run, instrumented.
    let cluster = ClusterSpec::homogeneous(4, 1.0);
    let particles = centered_cloud(48, 7);
    let result = run_parallel(
        &particles,
        &cluster,
        ConstantLatency(SimDuration::from_millis(5)),
        Unloaded,
        ParallelRunConfig::new(6, 1).with_trace(),
    )
    .expect("n-body run failed");

    let traces = result
        .traces
        .as_deref()
        .expect("with_trace() collects telemetry");
    println!(
        "N-body cluster, 4 ranks, FW = 1, {:.3} virtual seconds:\n",
        result.elapsed_secs()
    );
    print!("{}", obs::timeline::render(traces, 78));

    let report = RunReport::from_traces("trace_viewer", traces);
    println!("\nPer-rank phase totals (ns):");
    for rank in &report.per_rank {
        println!(
            "  rank {}: compute {:>12}  comm_wait {:>12}  speculate {:>10}  check {:>10}  correct {:>10}",
            rank.rank,
            rank.phases.compute,
            rank.phases.comm_wait,
            rank.phases.speculate,
            rank.phases.check,
            rank.phases.correct,
        );
    }

    let json = chrome_trace_string(traces);
    std::fs::write(&path, &json).expect("writing trace file");
    println!(
        "\nwrote {path} ({} bytes) — open it at https://ui.perfetto.dev",
        json.len()
    );
}
