//! The paper's Figure 4 scenario: a transient network stall masked by a
//! deeper forward window.
//!
//! ```text
//! cargo run --release --example transient_delays
//! ```
//!
//! One message on the P1→P2 path is delayed far beyond the norm. With no
//! speculation everybody stalls; FW = 1 masks one iteration's worth; FW = 2
//! keeps computing through the stall and catches up when the late message
//! finally lands.

use speculative_computation::prelude::*;

fn main() {
    let p = 3;
    let iters = 12;
    // Slow machines: one iteration's compute (~20 ms) is comparable to the
    // injected 60 ms stall, the regime of the paper's Figure 4.
    let cluster = ClusterSpec::homogeneous(p, 0.01);

    println!("Figure 4 scenario: 3 processors, 1 ms network, one 60 ms transient on P1->P2\n");
    println!(" FW | total time | comm wait/iter (P2) | note");
    println!("----+------------+---------------------+---------------------------");

    let mut times = Vec::new();
    for fw in 0..=2u32 {
        let net = ScriptedDelays::new(
            ConstantLatency(SimDuration::from_millis(1)),
            // The 4th message from rank 0 to rank 1 crawls.
            vec![(0, 1, 3, SimDuration::from_millis(60))],
        );
        let (stats, report) =
            run_sim_cluster::<IterMsg<Vec<f64>>, _, _>(&cluster, net, Unloaded, false, move |t| {
                let ranges: Vec<_> = (0..3).map(|i| i * 30..(i + 1) * 30).collect();
                // ~270 ops/iteration ⇒ ~27 ms of compute on these 0.01-MIPS
                // machines, so the 60 ms stall spans about two iterations.
                let mut app = SyntheticApp::new(
                    90,
                    &ranges,
                    t.rank().0,
                    SyntheticConfig {
                        f_comp: 6,
                        f_spec: 0,
                        f_check: 0,
                        theta: 0.5,
                        ..Default::default()
                    },
                );
                let cfg = if fw == 0 {
                    SpecConfig::baseline()
                } else {
                    SpecConfig::speculative(fw)
                };
                run_speculative(t, &mut app, iters, cfg)
            })
            .expect("simulation failed");
        let p2_wait = stats[1].per_iteration().comm_wait.as_secs_f64();
        let total = report.end_time.as_secs_f64();
        let note = match fw {
            0 => "everyone stalls behind the late message",
            1 => "one iteration speculated through the stall",
            _ => "stall fully absorbed by the deeper window",
        };
        println!("  {fw} | {total:>8.4} s | {p2_wait:>17.4} s | {note}");
        times.push(total);
    }

    println!(
        "\nFW=1 recovered {:.1}% of the baseline, FW=2 {:.1}% (cf. paper Fig. 4: deeper windows\nhelp exactly when delays are transient and larger than one compute phase)",
        100.0 * (1.0 - times[1] / times[0]),
        100.0 * (1.0 - times[2] / times[0]),
    );
}
