//! The speculative driver over real TCP sockets.
//!
//! With no arguments this runs a loopback cluster in one process — every
//! rank is a thread, but every message still crosses the kernel's TCP
//! stack as a length-prefixed frame. With `--rank`/`--peers` it becomes
//! one rank of a true multi-process cluster. Run it in two terminals:
//!
//! ```text
//! # terminal 1
//! cargo run --release --example socket_cluster -- \
//!     --rank 0 --peers 127.0.0.1:7701,127.0.0.1:7702
//! # terminal 2
//! cargo run --release --example socket_cluster -- \
//!     --rank 1 --peers 127.0.0.1:7701,127.0.0.1:7702
//! ```
//!
//! Each process binds its own entry in the peer list and dials the
//! others (retrying while they start up), so terminal order does not
//! matter. Replace `127.0.0.1` with real host addresses to cross
//! machines. Loopback mode:
//!
//! ```text
//! cargo run --release --example socket_cluster -- [p] [n] [iters]
//! ```

use std::net::SocketAddr;

use speculative_computation::prelude::*;

fn even_ranges(n: usize, p: usize) -> Vec<std::ops::Range<usize>> {
    (0..p).map(|i| i * n / p..(i + 1) * n / p).collect()
}

/// One rank's work: the §4 synthetic workload under speculation with
/// fault tolerance armed (a real network is allowed to misbehave).
fn drive<T: Transport<Msg = IterMsg<Vec<f64>>>>(
    t: &mut T,
    n: usize,
    iters: u64,
) -> (u64, RunStats) {
    let ranges = even_ranges(n, t.size());
    let scfg = SyntheticConfig {
        theta: 0.0,
        jump_prob: 0.1,
        seed: 11,
        ..Default::default()
    };
    let mut app = SyntheticApp::new(n, &ranges, t.rank().0, scfg);
    let cfg = SpecConfig::speculative(1)
        .with_correction(CorrectionMode::Recompute)
        .with_fault_tolerance(FaultTolerance::new(SimDuration::from_millis(200)));
    let stats = run_speculative(t, &mut app, iters, cfg);
    (fingerprint_f64s(app.values()), stats)
}

fn flag(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn positional<T: std::str::FromStr>(n: usize, default: T) -> T {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn report(rank: usize, fp: u64, stats: &RunStats, t: &SocketTransport<IterMsg<Vec<f64>>>) {
    let (sent, received) = t.bytes_on_wire();
    println!(
        "rank {rank}: fingerprint {fp:016x}  iters {}  speculated {}  \
         wire {:.1} KiB out / {:.1} KiB in  timed_waits {}",
        stats.iterations,
        stats.speculated_partitions,
        sent as f64 / 1024.0,
        received as f64 / 1024.0,
        t.timed_waits(),
    );
}

fn main() {
    let n = 48;
    let iters = 20;

    if let (Some(rank), Some(peers)) = (flag("--rank"), flag("--peers")) {
        // Multi-process mode: this invocation is one rank of the mesh.
        let rank: usize = rank.parse().expect("--rank must be an integer");
        let addrs: Vec<SocketAddr> = peers
            .split(',')
            .map(|s| s.parse().expect("--peers must be host:port,host:port,…"))
            .collect();
        println!(
            "rank {rank}/{}: binding {} and meshing…",
            addrs.len(),
            addrs[rank]
        );
        let mut t = connect_socket_cluster::<IterMsg<Vec<f64>>>(
            rank,
            &addrs,
            SocketClusterOptions::default(),
        )
        .expect("mesh handshake failed");
        let (fp, stats) = drive(&mut t, n, iters);
        report(rank, fp, &stats, &t);
        println!(
            "(deterministic: re-running the same cluster reproduces this \
             rank's fingerprint bit-for-bit)"
        );
        return;
    }

    // Loopback mode: the whole cluster in this process, one thread per
    // rank, still speaking real TCP through the kernel.
    let p = positional(1, 4usize);
    let n = positional(2, n);
    let iters = positional(3, iters);
    println!("loopback socket cluster: p={p} n={n} iters={iters}");
    let run_once = || {
        run_socket_cluster::<IterMsg<Vec<f64>>, _, _>(
            p,
            SocketClusterOptions::default(),
            move |t| {
                let (fp, stats) = drive(t, n, iters);
                let (sent, received) = t.bytes_on_wire();
                (fp, stats, sent, received, t.timed_waits())
            },
        )
    };
    let outs = run_once();
    for (rank, (fp, stats, sent, received, wakes)) in outs.iter().enumerate() {
        println!(
            "rank {rank}: fingerprint {fp:016x}  iters {}  speculated {}  \
             wire {:.1} KiB out / {:.1} KiB in  timed_waits {wakes}",
            stats.iterations,
            stats.speculated_partitions,
            *sent as f64 / 1024.0,
            *received as f64 / 1024.0,
        );
    }
    // Exact semantics (θ = 0 + recompute) make the result independent of
    // real network timing: a second run over fresh sockets must land on
    // the same per-rank fingerprints bit-for-bit.
    let again = run_once();
    for (rank, (a, b)) in outs.iter().zip(&again).enumerate() {
        assert_eq!(
            a.0, b.0,
            "rank {rank}: fingerprint not reproducible across socket runs"
        );
    }
    println!("re-run over fresh sockets reproduced every fingerprint bit-for-bit");
}
