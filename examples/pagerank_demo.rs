//! Speculative PageRank: power iteration with speculated peer scores.
//!
//! ```text
//! cargo run --release --example pagerank_demo -- [nodes] [p] [iters]
//! ```
//!
//! Once the iteration starts converging, scores change slowly and linear
//! extrapolation predicts them almost perfectly — speculation then masks
//! nearly all communication and the misspeculation rate decays to zero.

use speculative_computation::prelude::*;

fn arg<T: std::str::FromStr>(n: usize, default: T) -> T {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n: usize = arg(1, 500);
    let p: usize = arg(2, 8);
    let iters: u64 = arg(3, 40);

    let graph = Graph::random(n, 6, 99);
    let cluster = ClusterSpec::homogeneous(p, 1.0);
    let ranges: Vec<_> = (0..p).map(|i| i * n / p..(i + 1) * n / p).collect();

    println!("PageRank: {n} nodes (out-degree 6) over {p} ranks, {iters} power iterations\n");

    let run = |fw: u32| {
        let graph = graph.clone();
        let ranges = ranges.clone();
        let (outs, report) = run_sim_cluster::<IterMsg<Vec<f64>>, _, _>(
            &cluster,
            ConstantLatency(SimDuration::from_millis(25)),
            Unloaded,
            false,
            move |t| {
                // θ = 0.05: tight enough to bound the rank error, loose
                // enough that the early power-iteration transient (where
                // scores still move fast) does not drown the run in
                // corrections.
                let mut app = PageRankApp::new(
                    graph.clone(),
                    &ranges,
                    t.rank().0,
                    PageRankConfig {
                        theta: 0.05,
                        ..Default::default()
                    },
                );
                let cfg = if fw == 0 {
                    SpecConfig::baseline()
                } else {
                    SpecConfig::speculative(fw)
                };
                let stats = run_speculative(t, &mut app, iters, cfg);
                (app.scores().to_vec(), stats)
            },
        )
        .expect("simulation failed");
        let scores: Vec<f64> = outs.iter().flat_map(|(s, _)| s.iter().copied()).collect();
        let stats = ClusterStats::new(outs.into_iter().map(|(_, s)| s).collect());
        (scores, stats, report.end_time.as_secs_f64())
    };

    let (scores0, _, t0) = run(0);
    let (scores1, stats1, t1) = run(1);

    let reference = workloads::pagerank_reference(&graph, PageRankConfig::default(), iters);
    let err_base: f64 = scores0
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .sum();
    let err_spec: f64 = scores1
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .sum();

    println!("baseline:    {t0:.4} s   L1 error vs sequential reference {err_base:.2e}");
    println!(
        "speculative: {t1:.4} s   L1 error vs sequential reference {err_spec:.2e}  ({:+.1}%)",
        100.0 * (t0 / t1 - 1.0)
    );
    println!(
        "speculated {} score vectors, {:.2}% of scores rejected (θ = {})",
        stats1
            .per_rank
            .iter()
            .map(|r| r.speculated_partitions)
            .sum::<u64>(),
        100.0 * stats1.recomputation_fraction(),
        0.05,
    );

    // Show the top nodes; both runs should agree.
    let mut top: Vec<(usize, f64)> = scores1.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop 5 nodes by rank:");
    for (node, score) in top.iter().take(5) {
        println!("  node {node:>4}: {score:.5}");
    }
}
