//! Quickstart: speculation masking communication delay on the §4 synthetic
//! workload.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Runs the same synchronous iterative computation twice on a simulated
//! 8-machine cluster with a slow network — once blocking on every message
//! (the paper's Figure 1) and once speculating (Figure 3) — and prints the
//! timing breakdown of each.

use speculative_computation::prelude::*;

fn main() {
    let p = 8;
    let n_vars = 800;
    let iterations = 20;

    // Heterogeneous machines: fastest is 4x the slowest.
    let cluster = ClusterSpec::linear_ramp(p, 40.0, 10.0);
    // Partition the variables proportionally to machine speed (eqs. 4–5).
    let ranges = nbody::partition_proportional(n_vars, &cluster.capacities());

    let run = |forward_window: u32| {
        let ranges = ranges.clone();
        let (stats, report) = run_sim_cluster::<IterMsg<Vec<f64>>, _, _>(
            &cluster,
            // Slow enough that per-iteration communication rivals compute —
            // the regime the paper targets.
            SharedMedium::new(SimDuration::from_millis(1), 2e5),
            Unloaded,
            false,
            move |t| {
                let mut app =
                    SyntheticApp::new(n_vars, &ranges, t.rank().0, SyntheticConfig::default());
                let cfg = if forward_window == 0 {
                    SpecConfig::baseline()
                } else {
                    SpecConfig::speculative(forward_window)
                };
                run_speculative(t, &mut app, iterations, cfg)
            },
        )
        .expect("simulation failed");
        (ClusterStats::new(stats), report.end_time.as_secs_f64())
    };

    println!("synchronous iterative workload: {n_vars} variables, {p} machines, {iterations} iterations\n");

    let (base_stats, base_time) = run(0);
    let (spec_stats, spec_time) = run(1);

    let print_run = |label: &str, stats: &ClusterStats, time: f64| {
        let ph = stats.mean_per_iteration();
        println!("{label}:");
        println!("  total time          {time:.4} s");
        println!("  per-iteration mean  compute {:.4} s | waiting {:.4} s | speculate {:.5} s | check {:.5} s",
            ph.compute.as_secs_f64(),
            ph.comm_wait.as_secs_f64(),
            ph.speculate.as_secs_f64(),
            ph.check.as_secs_f64());
        println!(
            "  speculated partitions {} | misspeculated {} | k = {:.2}%\n",
            stats
                .per_rank
                .iter()
                .map(|r| r.speculated_partitions)
                .sum::<u64>(),
            stats
                .per_rank
                .iter()
                .map(|r| r.misspeculated_partitions)
                .sum::<u64>(),
            100.0 * stats.recomputation_fraction()
        );
    };

    print_run("no speculation (Figure 1)", &base_stats, base_time);
    print_run("speculative, FW = 1 (Figure 3)", &spec_stats, spec_time);

    println!(
        "speculation masked {:.1}% of the run time",
        100.0 * (1.0 - spec_time / base_time)
    );
}
