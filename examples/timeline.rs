//! Render the paper's Figure 2 as a live ASCII timeline: per-rank
//! execution bars with and without speculation, on the same slow network.
//!
//! The bars come from the `obs` telemetry subsystem: each rank's
//! transport carries a [`SharedRecorder`] clone, the speculative driver
//! emits typed phase spans into it, and [`obs::timeline::render`] draws
//! the drained trace.
//!
//! ```text
//! cargo run --release --example timeline
//! ```

use speculative_computation::prelude::*;

fn run(fw: u32) -> Vec<RunTrace> {
    let p = 2;
    let n_vars = 40;
    let iters = 3;
    let cluster = ClusterSpec::homogeneous(p, 0.01);
    let ranges: Vec<_> = (0..p)
        .map(|i| i * n_vars / p..(i + 1) * n_vars / p)
        .collect();
    let recorder = SharedRecorder::new();
    let rank_recorder = recorder.clone();
    run_sim_cluster::<IterMsg<Vec<f64>>, _, _>(
        &cluster,
        // A slow channel: delivery takes about as long as one compute phase.
        ConstantLatency(SimDuration::from_millis(12)),
        Unloaded,
        false,
        move |t| {
            t.set_recorder(Box::new(rank_recorder.clone()));
            let mut app = SyntheticApp::new(
                n_vars,
                &ranges,
                t.rank().0,
                SyntheticConfig {
                    f_comp: 6,
                    f_spec: 0,
                    f_check: 0,
                    theta: 0.9,
                    ..Default::default()
                },
            );
            let cfg = if fw == 0 {
                SpecConfig::baseline()
            } else {
                SpecConfig::speculative(fw)
            };
            run_speculative(t, &mut app, iters, cfg)
        },
    )
    .expect("simulation failed");
    RunTrace::split_by_rank(recorder.drain())
}

fn main() {
    println!("The paper's Figure 2, reproduced as executable timelines.");
    println!("Two processors, three iterations, ~12 ms compute phases, 12 ms channel.\n");

    println!("(a) no speculation — each iteration waits for the channel:");
    print!("{}", obs::timeline::render(&run(0), 78));

    println!("\n(b) speculative computation, FW = 1 — communication masked:");
    print!("{}", obs::timeline::render(&run(1), 78));
}
