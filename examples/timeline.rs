//! Render the paper's Figure 2 as a live ASCII timeline: per-rank
//! execution bars with and without speculation, on the same slow network.
//!
//! ```text
//! cargo run --release --example timeline
//! ```

use speculative_computation::prelude::*;

fn run(fw: u32) -> Vec<RunStats> {
    let p = 2;
    let n_vars = 40;
    let iters = 3;
    let cluster = ClusterSpec::homogeneous(p, 0.01);
    let ranges: Vec<_> = (0..p).map(|i| i * n_vars / p..(i + 1) * n_vars / p).collect();
    let (stats, _) = run_sim_cluster::<IterMsg<Vec<f64>>, _, _>(
        &cluster,
        // A slow channel: delivery takes about as long as one compute phase.
        ConstantLatency(SimDuration::from_millis(12)),
        Unloaded,
        false,
        move |t| {
            let mut app = SyntheticApp::new(
                n_vars,
                &ranges,
                t.rank().0,
                SyntheticConfig { f_comp: 6, f_spec: 0, f_check: 0, theta: 0.9, ..Default::default() },
            );
            let cfg = if fw == 0 {
                SpecConfig::baseline().with_iteration_log()
            } else {
                SpecConfig::speculative(fw).with_iteration_log()
            };
            run_speculative(t, &mut app, iters, cfg)
        },
    )
    .expect("simulation failed");
    stats
}

fn main() {
    println!("The paper's Figure 2, reproduced as executable timelines.");
    println!("Two processors, three iterations, ~12 ms compute phases, 12 ms channel.\n");

    println!("(a) no speculation — each iteration waits for the channel:");
    print!("{}", speccore::timeline::render(&run(0), 78));

    println!("\n(b) speculative computation, FW = 1 — communication masked:");
    print!("{}", speccore::timeline::render(&run(1), 78));
}
