//! Sweeps the delta-exchange quantization floor against network latency
//! on a bandwidth-limited link model and reports, for each cell, the
//! bytes placed on the wire, the savings versus full broadcast, the
//! virtual makespan, and the maximum position drift the lossy floor
//! introduced. The "delta-encoded exchange" appendix in `EXPERIMENTS.md`
//! records one run of this example.
//!
//! ```text
//! cargo run --release --example delta_savings
//! ```

use speculative_computation::prelude::*;

const N: usize = 64;
const P: usize = 4;
const ITERS: u64 = 100;
const FW: u32 = 2;
const KEYFRAME: u64 = 32;
/// 1 MB/s per directed link: a full 4-rank partition broadcast is ~10 KB
/// per iteration, so serialization time is visible next to the latency.
const BYTES_PER_SEC: f64 = 1.0e6;

struct Cell {
    bytes_per_iter: f64,
    saved_pct: f64,
    elapsed: f64,
    drift: f64,
}

fn run(
    particles: &[nbody::Particle],
    cluster: &ClusterSpec,
    delay_ms: u64,
    delta: Option<DeltaExchange>,
) -> ParallelRunResult {
    let mut cfg = ParallelRunConfig::new(ITERS, FW);
    if let Some(d) = delta {
        cfg.spec = cfg.spec.with_delta_exchange(d);
    }
    let net = LinkBandwidth::new(SimDuration::from_millis(delay_ms), BYTES_PER_SEC);
    run_parallel(particles, cluster, net, Unloaded, cfg).expect("run must complete")
}

fn max_drift(a: &ParallelRunResult, b: &ParallelRunResult) -> f64 {
    a.particles
        .iter()
        .zip(&b.particles)
        .map(|(x, y)| x.pos.distance(y.pos))
        .fold(0.0, f64::max)
}

fn main() {
    let particles = uniform_cloud(N, 11);
    let cluster = ClusterSpec::homogeneous(P, 1000.0);
    let delays_ms = [1u64, 5, 20];
    let floors = [0.0, 1e-4, 1e-3, 1e-2];

    println!(
        "delta savings sweep: N = {N}, p = {P}, {ITERS} iters, FW = {FW}, \
         keyframe = {KEYFRAME}, link bw = {:.0} KB/s",
        BYTES_PER_SEC / 1e3
    );
    println!();
    println!("| mode | floor | delay (ms) | bytes/iter | saved | makespan (s) | max drift |");
    println!("|------|-------|------------|------------|-------|--------------|-----------|");

    for &delay_ms in &delays_ms {
        let full = run(&particles, &cluster, delay_ms, None);
        let full_bpi = full
            .stats
            .per_rank
            .iter()
            .map(|s| s.bytes_sent)
            .sum::<u64>() as f64
            / ITERS as f64;
        println!(
            "| full  |     — | {:>10} | {:>10.0} |     — | {:>12.3} |         — |",
            delay_ms,
            full_bpi,
            full.elapsed_secs()
        );
        for &floor in &floors {
            let delta = run(
                &particles,
                &cluster,
                delay_ms,
                Some(DeltaExchange::new(floor, KEYFRAME)),
            );
            let cell = Cell {
                bytes_per_iter: delta
                    .stats
                    .per_rank
                    .iter()
                    .map(|s| s.bytes_sent)
                    .sum::<u64>() as f64
                    / ITERS as f64,
                saved_pct: 100.0
                    * (1.0
                        - delta
                            .stats
                            .per_rank
                            .iter()
                            .map(|s| s.bytes_sent)
                            .sum::<u64>() as f64
                            / full
                                .stats
                                .per_rank
                                .iter()
                                .map(|s| s.bytes_sent)
                                .sum::<u64>() as f64),
                elapsed: delta.elapsed_secs(),
                drift: max_drift(&delta, &full),
            };
            println!(
                "| delta | {:>5.0e} | {:>10} | {:>10.0} | {:>4.0}% | {:>12.3} | {:>9.2e} |",
                floor, delay_ms, cell.bytes_per_iter, cell.saved_pct, cell.elapsed, cell.drift
            );
        }
    }

    println!();
    println!(
        "floor 0 is lossless (drift exactly 0 on this FIFO network); larger \
         floors trade bounded per-lane drift for fewer bytes, and the \
         makespan gain grows with the serialization share of the delay."
    );
}
