//! Interactive exploration of the §4 performance model: when does
//! speculation pay?
//!
//! ```text
//! cargo run --release --example model_explorer -- [k%] [comm_ratio]
//! ```
//!
//! `k%` is the recomputation percentage (default 2); `comm_ratio` scales
//! communication time relative to the paper's example (default 1.0).

use speculative_computation::prelude::*;

fn main() {
    let k: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .map(|pct: f64| pct / 100.0)
        .unwrap_or(0.02);
    let comm_ratio: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);

    let mut params = ModelParams::paper_example().with_k(k);
    if let CommModel::QuadraticInP { coef } = params.comm {
        params.comm = CommModel::QuadraticInP {
            coef: coef * comm_ratio,
        };
    }

    println!(
        "§4 model, k = {:.1}%, communication scaled ×{comm_ratio}\n",
        100.0 * k
    );
    println!("  p | no-spec |    spec |     max | spec gain");
    println!("----+---------+---------+---------+----------");
    for p in 1..=16 {
        let ns = params.speedup_nospec(p);
        let s = params.speedup_spec(p);
        println!(
            "{:>3} | {:>7.2} | {:>7.2} | {:>7.2} | {:>+8.1}%",
            p,
            ns,
            s,
            params.speedup_max(p),
            100.0 * (s / ns - 1.0)
        );
    }

    // Where does speculation stop paying as k grows (the paper's Fig. 6)?
    println!("\nbreak-even recomputation fraction at p = 8:");
    let base = params.speedup_nospec(8);
    let mut k_scan = 0.0;
    while k_scan < 1.0 {
        if params.with_k(k_scan).speedup_spec(8) < base {
            println!("  speculation loses beyond k ≈ {:.1}%", 100.0 * k_scan);
            break;
        }
        k_scan += 0.005;
    }
    if k_scan >= 1.0 {
        println!("  speculation wins for every k in [0, 1] at this communication cost");
    }
}
