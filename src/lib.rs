//! # speculative-computation
//!
//! A from-scratch Rust reproduction of **Govindan & Franklin,
//! "Speculative Computation: Overcoming Communication Delays in Parallel
//! Algorithms"** (WUCS-94-3 / ICPP 1994).
//!
//! Synchronous iterative algorithms exchange every partition's values every
//! iteration; on a slow network the processors spend much of their time
//! waiting. The paper's technique: *speculate* the contents of messages
//! that have not arrived (extrapolating from recent history), compute with
//! the speculated values, and when the real message lands either accept the
//! result (error ≤ θ), correct it incrementally, or recompute — thereby
//! overlapping communication with useful computation.
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |-------|------|
//! | [`desim`] | Deterministic discrete-event simulation kernel (virtual time, coroutine processes, mailboxes) |
//! | [`netsim`] | Heterogeneous machines (`M_i`), shared-medium/jitter/transient network models, background load |
//! | [`mpk`] | PVM-style message-passing `Transport` with virtual-time, real-thread, and real-TCP-socket backends |
//! | [`speccore`] | **The paper's contribution**: the speculative driver (Figures 1 & 3, forward/backward windows, θ checks, corrections, rollback, adaptive window) |
//! | [`nbody`] | The §5 case study: O(N²) N-body with eq. 10 speculation and eq. 11 checking (plus Barnes–Hut) |
//! | [`perfmodel`] | The §4 empirical performance model (eqs. 3–9, Figures 5/6/9) |
//! | [`workloads`] | More synchronous iterative apps: §4 synthetic, Jacobi heat, PageRank |
//! | [`obs`] | Structured telemetry: typed spans/counters, Chrome-trace export, run reports |
//!
//! ## Quickstart
//!
//! ```
//! use speculative_computation::prelude::*;
//!
//! // Four equal machines on a 5 ms-latency network.
//! let cluster = ClusterSpec::homogeneous(4, 1.0);
//! let particles = uniform_cloud(64, 7);
//!
//! let run = |fw: u32| {
//!     run_parallel(
//!         &particles,
//!         &cluster,
//!         ConstantLatency(SimDuration::from_millis(5)),
//!         Unloaded,
//!         ParallelRunConfig::new(5, fw),
//!     )
//!     .unwrap()
//!     .elapsed_secs()
//! };
//!
//! let baseline = run(0); // Figure 1: block on every message
//! let speculative = run(1); // Figure 3: speculate, check, correct
//! assert!(speculative < baseline);
//! ```

pub use desim;
pub use mpk;
pub use nbody;
pub use netsim;
pub use obs;
pub use perfmodel;
pub use speccore;
pub use workloads;

/// The names most programs need, re-exported flat.
pub mod prelude {
    pub use desim::{SimDuration, SimTime, Simulation, TieBreak};
    pub use mpk::{
        connect_socket_cluster, connect_socket_cluster_with_faults, rejoin_socket_cluster,
        run_sim_cluster, run_sim_cluster_with_faults, run_sim_cluster_with_options,
        run_socket_cluster, run_socket_cluster_with_faults, run_thread_cluster,
        run_thread_cluster_with_faults, Envelope, FaultCounters, FaultSpec, Rank,
        SimClusterOptions, SocketClusterOptions, SocketTransport, SupervisorOptions, Tag,
        ThreadClusterOptions, Transport, WireCodec, WireSize,
    };
    pub use nbody::{
        binary_pair, centered_cloud, colliding_clouds, partition_proportional, rotating_disk,
        run_parallel, run_parallel_with_faults, split_soa, uniform_cloud, NBodyApp, NBodyConfig,
        ParallelRunConfig, ParallelRunResult, PartitionShared, Soa3, SoaBodies, SpeculationOrder,
        Vec3,
    };
    pub use netsim::{
        ClusterSpec, ConstantLatency, Corrupt, CrashPlan, Duplicate, Fate, FaultModel, FaultPlan,
        FaultStack, Jitter, LinkBandwidth, LinkLatency, LinkPartition, Loss, MachineCrash,
        MachineSpec, NetworkModel, NoFaults, RandomSpikes, ScriptedDelays, ScriptedFaults,
        SharedMedium, TransientDelays, Unloaded,
    };
    pub use obs::{
        chrome_trace_string, fingerprint_f64s, Fingerprint, RunReport, RunTrace, SharedRecorder,
    };
    pub use perfmodel::{CommModel, ModelParams};
    pub use speccore::{
        run_baseline, run_speculative, CheckOutcome, ClusterStats, CorrectionMode, DeltaExchange,
        FaultTolerance, History, IterMsg, IterationLog, MsgBody, PhaseBreakdown, RunStats,
        SpecConfig, SpeculativeApp, SupervisionConfig, WindowPolicy,
    };
    pub use workloads::{
        Graph, Heat2dApp, Heat2dConfig, HeatApp, HeatConfig, JacobiApp, JacobiConfig, LinearSystem,
        PageRankApp, PageRankConfig, RowHalo, SyntheticApp, SyntheticConfig,
    };
}
