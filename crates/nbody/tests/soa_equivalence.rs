//! The SoA engine's headline contract: bit-for-bit equality with the
//! scalar reference kernels, and — through the full speculative driver —
//! unchanged simulated time, statistics, and particle trajectories.
//!
//! The `engine_fingerprint_*` tests pin exact end-to-end run fingerprints
//! (virtual end time, a particle-state bit hash, and every per-rank
//! counter) captured from the pre-SoA scalar engine. Any change to the
//! floating-point behaviour or the modelled op counts of the force path
//! shows up here as a hard failure.

use desim::SimDuration;
use mpk::{run_thread_cluster, ThreadClusterOptions, Transport};
use nbody::forces::{
    accumulate_partition, accumulate_partition_soa, accumulate_self, accumulate_self_soa,
};
use nbody::integrate::step_partition_order;
use nbody::{
    centered_cloud, partition_proportional, run_parallel, uniform_cloud, NBodyApp, NBodyConfig,
    ParallelRunConfig, ParallelRunResult, PartitionShared, Soa3, SpeculationOrder, Vec3, ZERO3,
};
use netsim::{ClusterSpec, ConstantLatency, MachineSpec, Unloaded};
use speccore::{run_speculative, CorrectionMode, IterMsg, RunStats, SpecConfig};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Kernel-level bit equality
// ---------------------------------------------------------------------------

mod kernel_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The blocked symmetric self-kernel is bit-identical to the
        /// scalar reference for arbitrary sizes and seeds (tile interior,
        /// remainder lanes, and the Newton's-third-law pairing all agree).
        #[test]
        fn self_kernel_bits_match(n in 1usize..260, seed in 0u64..1000) {
            let particles = uniform_cloud(n, seed);
            let pos: Vec<Vec3> = particles.iter().map(|p| p.pos).collect();
            let mass: Vec<f64> = particles.iter().map(|p| p.mass).collect();

            let mut acc_ref = vec![ZERO3; n];
            let ops_ref = accumulate_self(&pos, &mass, &mut acc_ref, 1.0, 0.05);

            let soa_pos = Soa3::from_vec3s(&pos);
            let mut acc_soa = Soa3::zeros(n);
            let ops_soa = accumulate_self_soa(&soa_pos, &mass, &mut acc_soa, 1.0, 0.05);

            prop_assert_eq!(ops_ref, ops_soa);
            for (i, want) in acc_ref.iter().enumerate() {
                prop_assert_eq!(
                    acc_soa.get(i).to_bits_triplet(),
                    want.to_bits_triplet(),
                    "particle {}", i
                );
            }
        }

        /// Same for the target×source partition kernel, with an arbitrary
        /// split point.
        #[test]
        fn partition_kernel_bits_match(
            n in 2usize..300,
            seed in 0u64..1000,
            split_ppm in 1u32..999,
        ) {
            let split = ((n as u64 * split_ppm as u64) / 1000).max(1) as usize;
            let particles = uniform_cloud(n, seed);
            let pos: Vec<Vec3> = particles.iter().map(|p| p.pos).collect();
            let mass: Vec<f64> = particles.iter().map(|p| p.mass).collect();
            let (tgt, src) = pos.split_at(split);
            let src_mass = &mass[split..];

            let mut acc_ref = vec![ZERO3; tgt.len()];
            let ops_ref = accumulate_partition(tgt, &mut acc_ref, src, src_mass, 1.0, 0.05);

            let tgt_soa = Soa3::from_vec3s(tgt);
            let src_soa = Soa3::from_vec3s(src);
            let mut acc_soa = Soa3::zeros(tgt.len());
            let ops_soa =
                accumulate_partition_soa(&tgt_soa, &mut acc_soa, &src_soa, src_mass, 1.0, 0.05);

            prop_assert_eq!(ops_ref, ops_soa);
            for (i, want) in acc_ref.iter().enumerate() {
                prop_assert_eq!(
                    acc_soa.get(i).to_bits_triplet(),
                    want.to_bits_triplet(),
                    "target {}", i
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pinned end-to-end engine fingerprints
// ---------------------------------------------------------------------------

/// One rank's pinned counters: (total, compute, wait, speculate, check,
/// correct) nanoseconds, then (speculated, misspeculated, corrections,
/// rollbacks) and the bit pattern of `max_accepted_error`.
struct RankPin {
    nanos: [u64; 6],
    counts: [u64; 4],
    maxacc_bits: u64,
}

struct RunPin {
    end_time_nanos: u64,
    particle_hash: u64,
    ranks: [RankPin; 3],
}

fn fingerprint_run(theta: f64, recompute: bool) -> ParallelRunResult {
    let particles = centered_cloud(48, 11);
    let cluster = ClusterSpec::new(vec![
        MachineSpec::new(30.0),
        MachineSpec::new(20.0),
        MachineSpec::new(10.0),
    ]);
    let mut cfg = ParallelRunConfig::new(12, 1);
    cfg.nbody = cfg.nbody.with_theta(theta);
    if recompute {
        cfg.spec = cfg.spec.with_correction(CorrectionMode::Recompute);
    }
    run_parallel(
        &particles,
        &cluster,
        ConstantLatency(SimDuration::from_millis(3)),
        Unloaded,
        cfg,
    )
    .unwrap()
}

fn particle_hash(result: &ParallelRunResult) -> u64 {
    let mut h: u64 = 0;
    for p in &result.particles {
        for v in [p.pos.x, p.pos.y, p.pos.z, p.vel.x, p.vel.y, p.vel.z] {
            h = h.rotate_left(7) ^ v.to_bits();
        }
    }
    h
}

fn assert_pinned(label: &str, result: &ParallelRunResult, pin: &RunPin) {
    assert_eq!(
        result.report.end_time.as_nanos(),
        pin.end_time_nanos,
        "{label}: virtual end time moved"
    );
    assert_eq!(
        particle_hash(result),
        pin.particle_hash,
        "{label}: particle state changed at the bit level"
    );
    for (s, want) in result.stats.per_rank.iter().zip(&pin.ranks) {
        let rank = s.rank.0;
        let got_nanos = [
            s.total_time.as_nanos(),
            s.phases.compute.as_nanos(),
            s.phases.comm_wait.as_nanos(),
            s.phases.speculate.as_nanos(),
            s.phases.check.as_nanos(),
            s.phases.correct.as_nanos(),
        ];
        assert_eq!(got_nanos, want.nanos, "{label}: rank {rank} phase times");
        let got_counts = [
            s.speculated_partitions,
            s.misspeculated_partitions,
            s.corrections,
            s.rollbacks,
        ];
        assert_eq!(got_counts, want.counts, "{label}: rank {rank} counters");
        assert_eq!(
            s.max_accepted_error.to_bits(),
            want.maxacc_bits,
            "{label}: rank {rank} max_accepted_error"
        );
    }
}

#[test]
fn engine_fingerprint_theta0_recompute() {
    // θ=0 rejects every imperfect speculation and Recompute rolls back, so
    // this pins the checkpoint/restore/re-execute path.
    let result = fingerprint_run(0.0, true);
    assert_pinned(
        "theta0_recompute",
        &result,
        &RunPin {
            end_time_nanos: 92_801_600,
            particle_hash: 0x0f74_cf5b_180e_d71e,
            ranks: [
                RankPin {
                    nanos: [92_460_800, 87_172_800, 4_932_800, 156_800, 198_400, 0],
                    counts: [32, 21, 0, 21],
                    maxacc_bits: 0,
                },
                RankPin {
                    nanos: [92_390_400, 87_172_800, 4_507_200, 316_800, 393_600, 0],
                    counts: [32, 21, 0, 21],
                    maxacc_bits: 0,
                },
                RankPin {
                    nanos: [92_801_600, 71_323_200, 20_067_200, 624_000, 787_200, 0],
                    counts: [26, 15, 0, 15],
                    maxacc_bits: 0,
                },
            ],
        },
    );
}

#[test]
fn engine_fingerprint_theta001_accepting() {
    // θ=0.01 accepts every speculation on this workload: pins the pure
    // speculate/check/accept path and the eq. 11 error values themselves.
    let result = fingerprint_run(0.01, false);
    assert_pinned(
        "theta001_accepting",
        &result,
        &RunPin {
            end_time_nanos: 39_249_600,
            particle_hash: 0x84f6_694f_fcf1_0865,
            ranks: [
                RankPin {
                    nanos: [39_176_000, 31_699_200, 7_160_000, 105_600, 211_200, 0],
                    counts: [22, 0, 0, 0],
                    maxacc_bits: 0x3f1f_9084_038a_13b0,
                },
                RankPin {
                    nanos: [39_192_000, 31_699_200, 6_859_200, 211_200, 422_400, 0],
                    counts: [22, 0, 0, 0],
                    maxacc_bits: 0x3f42_63c4_8100_f4be,
                },
                RankPin {
                    nanos: [39_249_600, 31_699_200, 5_966_400, 528_000, 1_056_000, 0],
                    counts: [22, 0, 0, 0],
                    maxacc_bits: 0x3f53_5ab7_3550_6e31,
                },
            ],
        },
    );
}

#[test]
fn engine_fingerprint_theta_tiny_incremental_correct() {
    // θ=1e-6 rejects every speculation but stays on the incremental
    // `correct` path (no rollbacks): pins the per-offender force
    // retract/reapply arithmetic and its op accounting.
    let result = fingerprint_run(1e-6, false);
    assert_pinned(
        "theta_tiny_incremental",
        &result,
        &RunPin {
            end_time_nanos: 80_046_400,
            particle_hash: 0xca47_82aa_bebb_c36b,
            ranks: [
                RankPin {
                    nanos: [
                        76_683_200, 31_699_200, 15_099_200, 105_600, 211_200, 29_568_000,
                    ],
                    counts: [22, 22, 22, 0],
                    maxacc_bits: 0,
                },
                RankPin {
                    nanos: [
                        76_792_000, 31_699_200, 5_035_200, 211_200, 422_400, 39_424_000,
                    ],
                    counts: [22, 22, 22, 0],
                    maxacc_bits: 0,
                },
                RankPin {
                    nanos: [
                        80_046_400, 31_699_200, 4_881_600, 451_200, 902_400, 42_112_000,
                    ],
                    counts: [19, 19, 19, 0],
                    maxacc_bits: 0,
                },
            ],
        },
    );
}

// ---------------------------------------------------------------------------
// Same-seed determinism across runs and transports
// ---------------------------------------------------------------------------

#[test]
fn simulated_runs_are_deterministic_across_repeats() {
    let a = fingerprint_run(0.01, false);
    let b = fingerprint_run(0.01, false);
    assert_eq!(a.report.end_time, b.report.end_time);
    assert_eq!(particle_hash(&a), particle_hash(&b));
    for (x, y) in a.stats.per_rank.iter().zip(&b.stats.per_rank) {
        assert_eq!(format!("{x:?}"), format!("{y:?}"), "rank {}", x.rank.0);
    }
}

#[test]
fn thread_transport_theta0_recompute_matches_sequential_bitwise() {
    // On the real-thread transport, message arrival timing is wall-clock
    // and nondeterministic — but with θ=0 + Recompute every imperfect
    // speculation is rolled back and re-executed from actual values, so
    // the trajectory is timing-independent and must equal the sequential
    // reference exactly, SoA engine included.
    let n = 24;
    let iters = 5u64;
    let particles = uniform_cloud(n, 6);
    let ranges = partition_proportional(n, &[1.0, 1.0, 1.0]);
    let cfg = NBodyConfig::default().with_theta(0.0);

    let outs: Vec<(Vec<nbody::Particle>, RunStats)> =
        run_thread_cluster::<IterMsg<Arc<PartitionShared>>, _, _>(
            3,
            ThreadClusterOptions::default(),
            |t| {
                let mut app = NBodyApp::new(
                    &particles,
                    ranges.clone(),
                    t.rank().0,
                    cfg,
                    SpeculationOrder::Linear,
                );
                let spec = SpecConfig::speculative(1).with_correction(CorrectionMode::Recompute);
                let stats = run_speculative(t, &mut app, iters, spec);
                (app.particles(), stats)
            },
        );

    let mut reference = particles.clone();
    for _ in 0..iters {
        step_partition_order(&mut reference, &ranges, &cfg);
    }
    let got: Vec<nbody::Particle> = outs.iter().flat_map(|(p, _)| p.clone()).collect();
    for (got, want) in got.iter().zip(&reference) {
        assert_eq!(got.pos, want.pos, "thread θ=0+recompute must be exact");
        assert_eq!(got.vel, want.vel);
    }
    for (rank, (_, s)) in outs.iter().enumerate() {
        assert_eq!(s.rank.0, rank);
        assert_eq!(s.iterations, iters);
    }
}
