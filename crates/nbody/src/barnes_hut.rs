//! Barnes–Hut O(N log N) force evaluation.
//!
//! The paper's footnote 1 notes that "a more efficient O(N log N)
//! \[algorithm\] is possible and has been implemented in the past \[4\]" —
//! Franklin & Govindan's own prior work. This module provides that
//! comparator: an octree with the standard multipole acceptance criterion
//! (`s/d < θ_bh`), so benchmarks can contrast the paper's simple O(N²)
//! kernel with the tree code.

use crate::particle::Particle;
use crate::soa::Soa3;
use crate::vec3::{Vec3, ZERO3};

/// The flat list of point-mass sources a tree walk selects for one target:
/// real bodies from opened leaves plus cell centres-of-mass accepted by the
/// multipole criterion. Kept in SoA layout so evaluation runs through the
/// vector-friendly [`crate::forces::accel_point_soa`] kernel, and reused
/// across targets so the walk allocates nothing in steady state.
#[derive(Debug, Default)]
pub struct InteractionList {
    pts: Soa3,
    mass: Vec<f64>,
}

impl InteractionList {
    /// Empty list (buffers grow on first use, then are reused).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of sources currently gathered.
    pub fn len(&self) -> usize {
        self.mass.len()
    }

    /// True when no sources are gathered.
    pub fn is_empty(&self) -> bool {
        self.mass.is_empty()
    }

    fn clear(&mut self) {
        self.pts.x.clear();
        self.pts.y.clear();
        self.pts.z.clear();
        self.mass.clear();
    }

    fn push(&mut self, pos: Vec3, mass: f64) {
        self.pts.push(pos);
        self.mass.push(mass);
    }
}

/// Parameters of the tree code.
#[derive(Clone, Copy, Debug)]
pub struct BhConfig {
    /// Opening angle θ_bh: a cell of side `s` at distance `d` is treated
    /// as a point mass when `s/d < θ_bh`. `0` forces exact summation.
    pub opening_angle: f64,
    /// Gravitational constant.
    pub g: f64,
    /// Plummer softening.
    pub softening: f64,
}

impl Default for BhConfig {
    fn default() -> Self {
        BhConfig {
            opening_angle: 0.5,
            g: 1.0,
            softening: 0.05,
        }
    }
}

const NO_CHILD: u32 = u32::MAX;

struct Node {
    center: Vec3,
    half: f64,
    /// Total mass of bodies in the subtree.
    mass: f64,
    /// Mass-weighted position sum (COM = com_sum / mass).
    com_sum: Vec3,
    count: usize,
    /// Child node indices, or NO_CHILD. Leaves with one body keep it in
    /// `body`.
    children: [u32; 8],
    body: Option<(Vec3, f64)>,
}

impl Node {
    fn new(center: Vec3, half: f64) -> Self {
        Node {
            center,
            half,
            mass: 0.0,
            com_sum: ZERO3,
            count: 0,
            children: [NO_CHILD; 8],
            body: None,
        }
    }

    fn octant_of(&self, p: Vec3) -> usize {
        (usize::from(p.x >= self.center.x))
            | (usize::from(p.y >= self.center.y) << 1)
            | (usize::from(p.z >= self.center.z) << 2)
    }

    fn child_center(&self, octant: usize) -> Vec3 {
        let q = self.half / 2.0;
        Vec3::new(
            self.center.x + if octant & 1 != 0 { q } else { -q },
            self.center.y + if octant & 2 != 0 { q } else { -q },
            self.center.z + if octant & 4 != 0 { q } else { -q },
        )
    }
}

/// An octree over a set of particles.
pub struct Octree {
    nodes: Vec<Node>,
    cfg: BhConfig,
}

impl Octree {
    /// Build a tree over `particles`.
    pub fn build(particles: &[Particle], cfg: BhConfig) -> Self {
        let mut tree = Octree {
            nodes: Vec::new(),
            cfg,
        };
        tree.rebuild(particles);
        tree
    }

    /// Rebuild the tree over a new particle set, reusing the node storage
    /// (trees are rebuilt every timestep; this keeps the per-step build
    /// allocation-free once the node vector has grown to steady size).
    pub fn rebuild(&mut self, particles: &[Particle]) {
        assert!(!particles.is_empty(), "cannot build a tree over nothing");
        // Bounding cube, padded so points on the boundary insert cleanly.
        let mut lo = particles[0].pos;
        let mut hi = particles[0].pos;
        for p in particles {
            lo.x = lo.x.min(p.pos.x);
            lo.y = lo.y.min(p.pos.y);
            lo.z = lo.z.min(p.pos.z);
            hi.x = hi.x.max(p.pos.x);
            hi.y = hi.y.max(p.pos.y);
            hi.z = hi.z.max(p.pos.z);
        }
        let center = (lo + hi) * 0.5;
        let half = ((hi.x - lo.x).max(hi.y - lo.y).max(hi.z - lo.z) * 0.5 + 1e-9) * 1.001;

        self.nodes.clear();
        self.nodes.push(Node::new(center, half));
        for p in particles {
            self.insert(0, p.pos, p.mass, 0);
        }
    }

    fn insert(&mut self, node: usize, pos: Vec3, mass: f64, depth: usize) {
        self.nodes[node].mass += mass;
        self.nodes[node].com_sum += pos * mass;
        self.nodes[node].count += 1;

        if self.nodes[node].count == 1 {
            self.nodes[node].body = Some((pos, mass));
            return;
        }

        // An occupied leaf splits: push the resident body down first.
        if let Some((bp, bm)) = self.nodes[node].body.take() {
            self.push_down(node, bp, bm, depth);
        }
        self.push_down(node, pos, mass, depth);
    }

    fn push_down(&mut self, node: usize, pos: Vec3, mass: f64, depth: usize) {
        // Coincident points would recurse forever; merge them into the
        // node's aggregate only (physically: a point mass of summed mass —
        // already accounted in mass/com_sum).
        if depth > 64 {
            return;
        }
        let octant = self.nodes[node].octant_of(pos);
        let child = self.nodes[node].children[octant];
        let child = if child == NO_CHILD {
            let center = self.nodes[node].child_center(octant);
            let half = self.nodes[node].half / 2.0;
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node::new(center, half));
            self.nodes[node].children[octant] = idx;
            idx
        } else {
            child
        };
        self.insert(child as usize, pos, mass, depth + 1);
    }

    /// Gravitational acceleration at `point`, excluding any source within
    /// ~machine epsilon of the point itself (so a particle does not attract
    /// itself).
    pub fn accel_at(&self, point: Vec3) -> Vec3 {
        self.accel_rec(0, point)
    }

    fn accel_rec(&self, node: usize, point: Vec3) -> Vec3 {
        let n = &self.nodes[node];
        if n.count == 0 {
            return ZERO3;
        }
        let com = n.com_sum / n.mass;
        let d = point.distance(com);

        // Single body, or far enough that the multipole approximation
        // applies.
        if n.count == 1 || (2.0 * n.half) < self.cfg.opening_angle * d {
            if d * d < 1e-24 {
                return ZERO3; // the queried particle itself
            }
            return crate::forces::accel_from(point, com, n.mass, self.cfg.g, self.cfg.softening);
        }

        let mut acc = ZERO3;
        let mut seen = 0;
        for &c in &n.children {
            if c != NO_CHILD {
                acc += self.accel_rec(c as usize, point);
                seen += self.nodes[c as usize].count;
            }
        }
        // Coincident bodies merged at depth cap live only in the
        // aggregate; treat the residue as a point mass at the COM.
        if seen < n.count && d * d >= 1e-24 {
            let residual_mass = n.mass
                - n.children
                    .iter()
                    .filter(|&&c| c != NO_CHILD)
                    .map(|&c| self.nodes[c as usize].mass)
                    .sum::<f64>();
            if residual_mass > 0.0 {
                acc += crate::forces::accel_from(
                    point,
                    com,
                    residual_mass,
                    self.cfg.g,
                    self.cfg.softening,
                );
            }
        }
        acc
    }

    /// Collect into `out` the point-mass sources the tree walk would use
    /// for a query at `point` — the same acceptance decisions as
    /// [`accel_at`](Self::accel_at), flattened for SoA evaluation.
    fn gather(&self, node: usize, point: Vec3, out: &mut InteractionList) {
        let n = &self.nodes[node];
        if n.count == 0 {
            return;
        }
        let com = n.com_sum / n.mass;
        let d = point.distance(com);

        if n.count == 1 || (2.0 * n.half) < self.cfg.opening_angle * d {
            if d * d >= 1e-24 {
                out.push(com, n.mass);
            }
            return;
        }

        let mut seen = 0;
        for &c in &n.children {
            if c != NO_CHILD {
                self.gather(c as usize, point, out);
                seen += self.nodes[c as usize].count;
            }
        }
        if seen < n.count && d * d >= 1e-24 {
            let residual_mass = n.mass
                - n.children
                    .iter()
                    .filter(|&&c| c != NO_CHILD)
                    .map(|&c| self.nodes[c as usize].mass)
                    .sum::<f64>();
            if residual_mass > 0.0 {
                out.push(com, residual_mass);
            }
        }
    }

    /// Acceleration at `point` via gather-then-evaluate: the tree walk only
    /// selects sources into `scratch`, and the force sum runs over the flat
    /// SoA list. Agrees with [`accel_at`](Self::accel_at) to summation
    /// reordering (the walk's tree-shaped sum becomes a flat left-to-right
    /// sum), and reuses `scratch`'s buffers across calls.
    pub fn accel_at_with(&self, point: Vec3, scratch: &mut InteractionList) -> Vec3 {
        scratch.clear();
        self.gather(0, point, scratch);
        crate::forces::accel_point_soa(
            &scratch.pts,
            &scratch.mass,
            point,
            self.cfg.g,
            self.cfg.softening,
        )
    }

    /// Accelerations on every particle (gather-based hot path).
    pub fn accel_on_all(&self, particles: &[Particle]) -> Vec<Vec3> {
        let mut acc = Vec::new();
        let mut scratch = InteractionList::new();
        self.accel_on_all_into(particles, &mut acc, &mut scratch);
        acc
    }

    /// [`accel_on_all`](Self::accel_on_all) into caller-owned buffers:
    /// `acc` is cleared and refilled, `scratch` is reused per target.
    pub fn accel_on_all_into(
        &self,
        particles: &[Particle],
        acc: &mut Vec<Vec3>,
        scratch: &mut InteractionList,
    ) {
        acc.clear();
        acc.extend(particles.iter().map(|p| self.accel_at_with(p.pos, scratch)));
    }

    /// Number of tree nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Reusable buffers for a Barnes–Hut stepping loop: the tree's node
/// storage, the per-step acceleration vector, and the gather scratch.
#[derive(Default)]
pub struct BhWorkspace {
    tree: Option<Octree>,
    acc: Vec<Vec3>,
    scratch: InteractionList,
}

impl BhWorkspace {
    /// Fresh workspace; buffers are sized lazily on the first step.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One Barnes–Hut timestep (build + force + semi-implicit Euler update).
pub fn step_barnes_hut(particles: &mut [Particle], cfg: BhConfig, dt: f64) {
    let mut ws = BhWorkspace::new();
    step_barnes_hut_with(&mut ws, particles, cfg, dt);
}

/// [`step_barnes_hut`] against a persistent [`BhWorkspace`]: after the
/// first step sizes the buffers, subsequent steps rebuild the tree and
/// evaluate forces without heap allocation (up to node-count jitter).
pub fn step_barnes_hut_with(
    ws: &mut BhWorkspace,
    particles: &mut [Particle],
    cfg: BhConfig,
    dt: f64,
) {
    match &mut ws.tree {
        Some(tree) => {
            tree.cfg = cfg;
            tree.rebuild(particles);
        }
        None => ws.tree = Some(Octree::build(particles, cfg)),
    }
    let tree = ws.tree.as_ref().expect("just built");
    tree.accel_on_all_into(particles, &mut ws.acc, &mut ws.scratch);
    crate::integrate::apply_kick_drift(particles, &ws.acc, dt);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::accel_from;
    use crate::particle::uniform_cloud;

    fn direct_accels(particles: &[Particle], g: f64, eps: f64) -> Vec<Vec3> {
        particles
            .iter()
            .map(|b| {
                let mut a = ZERO3;
                for o in particles {
                    if (o.pos - b.pos).norm_sq() >= 1e-24 {
                        a += accel_from(b.pos, o.pos, o.mass, g, eps);
                    }
                }
                a
            })
            .collect()
    }

    #[test]
    fn zero_opening_angle_is_exact() {
        let ps = uniform_cloud(50, 1);
        let cfg = BhConfig {
            opening_angle: 0.0,
            g: 1.0,
            softening: 0.05,
        };
        let tree = Octree::build(&ps, cfg);
        let bh = tree.accel_on_all(&ps);
        let exact = direct_accels(&ps, 1.0, 0.05);
        for (a, b) in bh.iter().zip(&exact) {
            assert!(
                a.distance(*b) < 1e-10 * (1.0 + b.norm()),
                "θ_bh=0 must reproduce the direct sum"
            );
        }
    }

    #[test]
    fn moderate_opening_angle_is_close() {
        let ps = uniform_cloud(200, 2);
        let cfg = BhConfig {
            opening_angle: 0.4,
            g: 1.0,
            softening: 0.05,
        };
        let tree = Octree::build(&ps, cfg);
        let bh = tree.accel_on_all(&ps);
        let exact = direct_accels(&ps, 1.0, 0.05);
        let mut max_rel: f64 = 0.0;
        for (a, b) in bh.iter().zip(&exact) {
            max_rel = max_rel.max(a.distance(*b) / (b.norm() + 1e-12));
        }
        assert!(max_rel < 0.05, "BH error too large: {max_rel}");
    }

    #[test]
    fn tree_mass_totals() {
        let ps = uniform_cloud(64, 3);
        let tree = Octree::build(&ps, BhConfig::default());
        let total: f64 = ps.iter().map(|p| p.mass).sum();
        assert!((tree.nodes[0].mass - total).abs() < 1e-12);
        assert_eq!(tree.nodes[0].count, 64);
        assert!(tree.node_count() >= 64 / 8);
    }

    #[test]
    fn two_bodies_attract_exactly() {
        let ps = vec![
            Particle {
                mass: 2.0,
                pos: Vec3::new(-1.0, 0.0, 0.0),
                vel: ZERO3,
            },
            Particle {
                mass: 3.0,
                pos: Vec3::new(1.0, 0.0, 0.0),
                vel: ZERO3,
            },
        ];
        let cfg = BhConfig {
            opening_angle: 0.5,
            g: 1.0,
            softening: 0.0,
        };
        let tree = Octree::build(&ps, cfg);
        let acc = tree.accel_on_all(&ps);
        assert!((acc[0].x - 3.0 / 4.0).abs() < 1e-12);
        assert!((acc[1].x + 2.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn coincident_particles_do_not_hang() {
        let ps = vec![
            Particle {
                mass: 1.0,
                pos: ZERO3,
                vel: ZERO3,
            },
            Particle {
                mass: 1.0,
                pos: ZERO3,
                vel: ZERO3,
            },
            Particle {
                mass: 1.0,
                pos: Vec3::new(1.0, 0.0, 0.0),
                vel: ZERO3,
            },
        ];
        let tree = Octree::build(&ps, BhConfig::default());
        let acc = tree.accel_at(Vec3::new(5.0, 0.0, 0.0));
        assert!(acc.is_finite());
        assert!(acc.x < 0.0, "must pull toward the cluster");
    }

    #[test]
    fn gather_matches_recursive_walk() {
        // The gather path makes identical acceptance decisions, so per
        // particle it differs from the recursive sum only by reassociation
        // of the same terms.
        let ps = uniform_cloud(300, 6);
        let tree = Octree::build(&ps, BhConfig::default());
        let mut scratch = InteractionList::new();
        for p in &ps {
            let rec = tree.accel_at(p.pos);
            let flat = tree.accel_at_with(p.pos, &mut scratch);
            assert!(
                rec.distance(flat) < 1e-12 * (1.0 + rec.norm()),
                "gather diverged from walk: {rec:?} vs {flat:?}"
            );
        }
        assert!(!scratch.is_empty());
    }

    #[test]
    fn rebuild_reuses_node_storage() {
        let ps = uniform_cloud(200, 7);
        let mut tree = Octree::build(&ps, BhConfig::default());
        let cap = tree.nodes.capacity();
        let ptr = tree.nodes.as_ptr();
        tree.rebuild(&ps);
        assert_eq!(tree.nodes.capacity(), cap);
        assert_eq!(tree.nodes.as_ptr(), ptr, "rebuild must not reallocate");
        assert_eq!(tree.nodes[0].count, 200);
    }

    #[test]
    fn workspace_step_matches_fresh_step() {
        let mut a = uniform_cloud(80, 8);
        let mut b = a.clone();
        let mut ws = BhWorkspace::new();
        for _ in 0..5 {
            step_barnes_hut(&mut a, BhConfig::default(), 1e-3);
            step_barnes_hut_with(&mut ws, &mut b, BhConfig::default(), 1e-3);
        }
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pos, y.pos, "workspace path must be bit-identical");
            assert_eq!(x.vel, y.vel);
        }
    }

    #[test]
    fn bh_step_conserves_momentum_approximately() {
        let mut ps = uniform_cloud(100, 4);
        let p0 = crate::integrate::momentum(&ps);
        for _ in 0..20 {
            step_barnes_hut(&mut ps, BhConfig::default(), 1e-3);
        }
        let p1 = crate::integrate::momentum(&ps);
        // BH forces are not exactly pairwise-symmetric, so allow a small
        // drift proportional to the approximation error.
        assert!((p1 - p0).norm() < 1e-3, "momentum drifted {:?}", p1 - p0);
    }
}
