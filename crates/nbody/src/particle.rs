//! Particles, simulation parameters, and initial-condition generators.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::soa::Soa3;
use crate::vec3::{Vec3, ZERO3};

/// One point mass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Particle {
    /// Mass (arbitrary units; the paper's Newtonian gravitation).
    pub mass: f64,
    /// Position.
    pub pos: Vec3,
    /// Velocity.
    pub vel: Vec3,
}

/// A body set in structure-of-arrays layout: the form the cache-blocked
/// force kernels ([`crate::forces`]) consume directly. Conversions to and
/// from `[Particle]` are cold-path only (setup, output).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SoaBodies {
    /// Positions, one lane per axis.
    pub pos: Soa3,
    /// Velocities.
    pub vel: Soa3,
    /// Masses.
    pub mass: Vec<f64>,
}

impl SoaBodies {
    /// Transpose an AoS particle slice into SoA storage.
    pub fn from_particles(particles: &[Particle]) -> Self {
        let mut out = SoaBodies {
            pos: Soa3::new(),
            vel: Soa3::new(),
            mass: Vec::with_capacity(particles.len()),
        };
        for p in particles {
            out.pos.push(p.pos);
            out.vel.push(p.vel);
            out.mass.push(p.mass);
        }
        out
    }

    /// Transpose back to AoS particles.
    pub fn to_particles(&self) -> Vec<Particle> {
        self.pos
            .iter()
            .zip(self.vel.iter())
            .zip(&self.mass)
            .map(|((pos, vel), &mass)| Particle { mass, pos, vel })
            .collect()
    }

    /// Number of bodies.
    pub fn len(&self) -> usize {
        self.mass.len()
    }

    /// True when there are no bodies.
    pub fn is_empty(&self) -> bool {
        self.mass.is_empty()
    }
}

/// Physical and numerical parameters of a simulation.
#[derive(Clone, Copy, Debug)]
pub struct NBodyConfig {
    /// Gravitational constant `G`.
    pub g: f64,
    /// Plummer softening length ε: pairwise force uses `r² + ε²`, keeping
    /// close encounters finite (the standard fix for direct O(N²) codes).
    pub softening: f64,
    /// Timestep Δt.
    pub dt: f64,
    /// Speculation error threshold θ (the paper's eq. 11 acceptance bound).
    pub theta: f64,
}

impl Default for NBodyConfig {
    fn default() -> Self {
        NBodyConfig {
            g: 1.0,
            softening: 0.05,
            dt: 1e-3,
            theta: 0.01,
        }
    }
}

impl NBodyConfig {
    /// Set θ.
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Set Δt.
    pub fn with_dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }
}

/// A uniform random cloud: positions in the unit cube centred on the
/// origin, equal masses summing to 1, small random velocities. This mirrors
/// the paper's generic 1000-particle workload.
pub fn uniform_cloud(n: usize, seed: u64) -> Vec<Particle> {
    assert!(n > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mass = 1.0 / n as f64;
    (0..n)
        .map(|_| Particle {
            mass,
            pos: Vec3::new(
                rng.gen_range(-0.5..0.5),
                rng.gen_range(-0.5..0.5),
                rng.gen_range(-0.5..0.5),
            ),
            vel: Vec3::new(
                rng.gen_range(-0.05..0.05),
                rng.gen_range(-0.05..0.05),
                rng.gen_range(-0.05..0.05),
            ),
        })
        .collect()
}

/// A uniform cloud around a heavy central mass (mass 1.0 at the origin,
/// cloud totalling 1.0). Accelerations — and therefore speculation errors —
/// then span orders of magnitude (∝ 1/r² toward the centre), giving the
/// heavy-tailed error distribution visible in the paper's Table 3, where
/// the rejected fraction scales roughly as 1/θ.
pub fn centered_cloud(n: usize, seed: u64) -> Vec<Particle> {
    assert!(n >= 2);
    let mut cloud = uniform_cloud(n - 1, seed);
    let mut out = vec![Particle {
        mass: 1.0,
        pos: ZERO3,
        vel: ZERO3,
    }];
    out.append(&mut cloud);
    out
}

/// A rotating disk: particles in the z=0 plane on circular orbits around a
/// heavy central mass. Velocities change slowly and predictably — the
/// regime where the paper's velocity-extrapolation speculation shines.
pub fn rotating_disk(n: usize, seed: u64) -> Vec<Particle> {
    assert!(n >= 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    let central_mass = 1.0;
    let mut out = Vec::with_capacity(n);
    out.push(Particle {
        mass: central_mass,
        pos: ZERO3,
        vel: ZERO3,
    });
    for _ in 1..n {
        let r = rng.gen_range(0.5..2.0);
        let phi = rng.gen_range(0.0..std::f64::consts::TAU);
        let pos = Vec3::new(r * phi.cos(), r * phi.sin(), rng.gen_range(-0.01..0.01));
        // Circular-orbit speed for G = 1 around the central mass.
        let v = (central_mass / r).sqrt();
        let vel = Vec3::new(-v * phi.sin(), v * phi.cos(), 0.0);
        out.push(Particle {
            mass: 1e-4,
            pos,
            vel,
        });
    }
    out
}

/// Two equal-mass bodies on a circular mutual orbit — the classic
/// analytically checkable configuration.
pub fn binary_pair(separation: f64, mass: f64, g: f64) -> Vec<Particle> {
    assert!(separation > 0.0 && mass > 0.0);
    let r = separation / 2.0;
    // Circular orbit about the barycentre: v² = G·m_other·r / d².
    let v = (g * mass * r).sqrt() / separation;
    vec![
        Particle {
            mass,
            pos: Vec3::new(-r, 0.0, 0.0),
            vel: Vec3::new(0.0, -v, 0.0),
        },
        Particle {
            mass,
            pos: Vec3::new(r, 0.0, 0.0),
            vel: Vec3::new(0.0, v, 0.0),
        },
    ]
}

/// Two separated uniform clouds falling toward each other ("cold
/// collision") — fast-changing dynamics that stress the speculation
/// threshold.
pub fn colliding_clouds(n: usize, seed: u64) -> Vec<Particle> {
    assert!(n >= 2);
    let half = n / 2;
    let mut a = uniform_cloud(half, seed);
    let mut b = uniform_cloud(n - half, seed.wrapping_add(1));
    for p in &mut a {
        p.pos += Vec3::new(-1.5, 0.0, 0.0);
        p.vel += Vec3::new(0.3, 0.0, 0.0);
    }
    for p in &mut b {
        p.pos += Vec3::new(1.5, 0.0, 0.0);
        p.vel += Vec3::new(-0.3, 0.0, 0.0);
    }
    a.extend(b);
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_cloud_basics() {
        let ps = uniform_cloud(100, 42);
        assert_eq!(ps.len(), 100);
        let total_mass: f64 = ps.iter().map(|p| p.mass).sum();
        assert!((total_mass - 1.0).abs() < 1e-12);
        for p in &ps {
            assert!(p.pos.norm() < 1.0);
            assert!(p.vel.norm() < 0.1);
        }
    }

    #[test]
    fn uniform_cloud_is_seeded() {
        assert_eq!(uniform_cloud(10, 7), uniform_cloud(10, 7));
        assert_ne!(uniform_cloud(10, 7), uniform_cloud(10, 8));
    }

    #[test]
    fn binary_pair_is_symmetric() {
        let ps = binary_pair(1.0, 0.5, 1.0);
        assert_eq!(ps[0].pos, -ps[1].pos);
        assert_eq!(ps[0].vel, -ps[1].vel);
        // Net momentum zero.
        let p: Vec3 = ps[0].vel * ps[0].mass + ps[1].vel * ps[1].mass;
        assert!(p.norm() < 1e-15);
    }

    #[test]
    fn rotating_disk_orbits_are_tangential() {
        let ps = rotating_disk(50, 3);
        for p in ps.iter().skip(1) {
            let radial = Vec3::new(p.pos.x, p.pos.y, 0.0);
            // velocity ⊥ radius for circular orbits
            assert!(p.vel.dot(radial).abs() < 1e-9, "orbit not tangential");
        }
    }

    #[test]
    fn colliding_clouds_approach_each_other() {
        let ps = colliding_clouds(40, 5);
        assert_eq!(ps.len(), 40);
        let left_mean_vx: f64 = ps
            .iter()
            .filter(|p| p.pos.x < 0.0)
            .map(|p| p.vel.x)
            .sum::<f64>();
        let right_mean_vx: f64 = ps
            .iter()
            .filter(|p| p.pos.x > 0.0)
            .map(|p| p.vel.x)
            .sum::<f64>();
        assert!(left_mean_vx > 0.0, "left cloud must move right");
        assert!(right_mean_vx < 0.0, "right cloud must move left");
    }

    #[test]
    fn soa_bodies_round_trip() {
        let ps = uniform_cloud(17, 9);
        let soa = SoaBodies::from_particles(&ps);
        assert_eq!(soa.len(), 17);
        assert!(!soa.is_empty());
        assert_eq!(soa.pos.get(3), ps[3].pos);
        assert_eq!(soa.to_particles(), ps);
        assert!(SoaBodies::default().is_empty());
    }

    #[test]
    fn config_builders() {
        let c = NBodyConfig::default().with_theta(0.05).with_dt(0.01);
        assert_eq!(c.theta, 0.05);
        assert_eq!(c.dt, 0.01);
    }
}
