//! Structure-of-arrays storage for 3-vectors.
//!
//! The O(N²) force kernels are memory-bandwidth- and latency-sensitive;
//! keeping `x`, `y`, `z` in three parallel `Vec<f64>` (instead of an
//! array of [`Vec3`]) lets the inner loops read contiguous unit-stride
//! lanes that the compiler can autovectorize, and lets cache blocking
//! reason about bytes per tile exactly (one 512-element tile of four
//! f64 arrays is 16 KiB — half a typical L1d).
//!
//! The layout is a *storage* choice only: every arithmetic path that
//! consumes it reproduces the exact `Vec3` expression trees, so results
//! are bit-identical to the AoS formulation (see `forces::soa_tests`).

use std::ops::Range;

use crate::vec3::Vec3;

/// Three parallel coordinate arrays: element `i` is the vector
/// `(x[i], y[i], z[i])`.
#[derive(Debug, Default, PartialEq)]
pub struct Soa3 {
    /// X components.
    pub x: Vec<f64>,
    /// Y components.
    pub y: Vec<f64>,
    /// Z components.
    pub z: Vec<f64>,
}

impl Clone for Soa3 {
    fn clone(&self) -> Self {
        Soa3 {
            x: self.x.clone(),
            y: self.y.clone(),
            z: self.z.clone(),
        }
    }

    /// Reuses the destination's existing allocations (the hot-path
    /// snapshot/checkpoint refresh relies on this being allocation-free
    /// once capacities match).
    fn clone_from(&mut self, source: &Self) {
        self.x.clone_from(&source.x);
        self.y.clone_from(&source.y);
        self.z.clone_from(&source.z);
    }
}

impl Soa3 {
    /// Empty storage.
    pub fn new() -> Self {
        Soa3::default()
    }

    /// `n` zero vectors.
    pub fn zeros(n: usize) -> Self {
        Soa3 {
            x: vec![0.0; n],
            y: vec![0.0; n],
            z: vec![0.0; n],
        }
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        debug_assert_eq!(self.x.len(), self.y.len());
        debug_assert_eq!(self.x.len(), self.z.len());
        self.x.len()
    }

    /// True when no vectors are stored.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Append one vector.
    pub fn push(&mut self, v: Vec3) {
        self.x.push(v.x);
        self.y.push(v.y);
        self.z.push(v.z);
    }

    /// Element `i` as a [`Vec3`].
    #[inline]
    pub fn get(&self, i: usize) -> Vec3 {
        Vec3::new(self.x[i], self.y[i], self.z[i])
    }

    /// Overwrite element `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: Vec3) {
        self.x[i] = v.x;
        self.y[i] = v.y;
        self.z[i] = v.z;
    }

    /// Set every component of every element to `v`.
    pub fn fill(&mut self, v: Vec3) {
        self.x.fill(v.x);
        self.y.fill(v.y);
        self.z.fill(v.z);
    }

    /// Gather from a slice of [`Vec3`] (cold path: startup / tests).
    pub fn from_vec3s(vs: &[Vec3]) -> Self {
        Soa3 {
            x: vs.iter().map(|v| v.x).collect(),
            y: vs.iter().map(|v| v.y).collect(),
            z: vs.iter().map(|v| v.z).collect(),
        }
    }

    /// Scatter back to an owned `Vec<Vec3>` (cold path: results / tests).
    pub fn to_vec3s(&self) -> Vec<Vec3> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Iterate elements as [`Vec3`] values.
    pub fn iter(&self) -> impl Iterator<Item = Vec3> + '_ {
        self.x
            .iter()
            .zip(&self.y)
            .zip(&self.z)
            .map(|((&x, &y), &z)| Vec3::new(x, y, z))
    }

    /// An owned copy of the sub-range `r` (cold path: partitioning).
    pub fn slice(&self, r: Range<usize>) -> Soa3 {
        Soa3 {
            x: self.x[r.clone()].to_vec(),
            y: self.y[r.clone()].to_vec(),
            z: self.z[r].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::ZERO3;

    #[test]
    fn round_trips_through_vec3s() {
        let vs = vec![Vec3::new(1.0, 2.0, 3.0), Vec3::new(-0.5, 0.0, 7.25), ZERO3];
        let soa = Soa3::from_vec3s(&vs);
        assert_eq!(soa.len(), 3);
        assert_eq!(soa.get(1), vs[1]);
        assert_eq!(soa.to_vec3s(), vs);
        assert_eq!(soa.iter().collect::<Vec<_>>(), vs);
    }

    #[test]
    fn push_set_fill_and_slice() {
        let mut soa = Soa3::zeros(2);
        soa.push(Vec3::new(4.0, 5.0, 6.0));
        assert_eq!(soa.len(), 3);
        soa.set(0, Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(soa.get(0), Vec3::new(1.0, 1.0, 1.0));
        let tail = soa.slice(1..3);
        assert_eq!(tail.to_vec3s(), vec![ZERO3, Vec3::new(4.0, 5.0, 6.0)]);
        soa.fill(ZERO3);
        assert_eq!(soa.get(2), ZERO3);
    }

    #[test]
    fn clone_from_reuses_capacity() {
        let src = Soa3::zeros(8);
        let mut dst = Soa3::zeros(8);
        let ptr = dst.x.as_ptr();
        dst.clone_from(&src);
        assert_eq!(dst.x.as_ptr(), ptr, "clone_from must reuse the buffer");
        assert_eq!(dst, src);
    }
}
