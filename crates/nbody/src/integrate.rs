//! Sequential reference integrator and physics diagnostics.
//!
//! The sequential simulator is the ground truth the parallel runs are
//! validated against: `step_partition_order` reproduces the parallel
//! driver's accumulation order bit-for-bit, while the diagnostics (energy,
//! momentum) validate the physics independent of ordering.

use std::ops::Range;

use crate::forces::accel_from;
use crate::particle::{NBodyConfig, Particle};
use crate::vec3::{Vec3, ZERO3};

/// Advance the whole system one timestep with symplectic (semi-implicit)
/// Euler: `v ← v + a·Δt`, then `x ← x + v·Δt`. Accumulation runs in natural
/// index order.
pub fn step_natural(particles: &mut [Particle], cfg: &NBodyConfig) {
    let n = particles.len();
    let mut acc = vec![ZERO3; n];
    for b in 0..n {
        let mut a = ZERO3;
        for j in 0..n {
            if j != b {
                a += accel_from(
                    particles[b].pos,
                    particles[j].pos,
                    particles[j].mass,
                    cfg.g,
                    cfg.softening,
                );
            }
        }
        acc[b] = a;
    }
    apply_kick_drift(particles, &acc, cfg.dt);
}

/// Advance one timestep accumulating in the *parallel driver's* order:
/// for a particle of partition `j`, first the other members of partition
/// `j`, then partitions `k = 0..p` ascending (skipping `j`). Bitwise equal
/// to a θ=0/recompute parallel run.
pub fn step_partition_order(
    particles: &mut [Particle],
    ranges: &[Range<usize>],
    cfg: &NBodyConfig,
) {
    let n = particles.len();
    let mut acc = vec![ZERO3; n];
    for (j, range) in ranges.iter().enumerate() {
        for b in range.clone() {
            let mut a = ZERO3;
            // Own partition first (the driver's begin_iteration).
            for o in range.clone() {
                if o != b {
                    a += accel_from(
                        particles[b].pos,
                        particles[o].pos,
                        particles[o].mass,
                        cfg.g,
                        cfg.softening,
                    );
                }
            }
            // Then every peer partition in rank order (the absorb loop).
            for (k, kr) in ranges.iter().enumerate() {
                if k == j {
                    continue;
                }
                for o in kr.clone() {
                    a += accel_from(
                        particles[b].pos,
                        particles[o].pos,
                        particles[o].mass,
                        cfg.g,
                        cfg.softening,
                    );
                }
            }
            acc[b] = a;
        }
    }
    apply_kick_drift(particles, &acc, cfg.dt);
}

/// The shared integration update.
pub(crate) fn apply_kick_drift(particles: &mut [Particle], acc: &[Vec3], dt: f64) {
    for (p, a) in particles.iter_mut().zip(acc) {
        p.vel += *a * dt;
        p.pos += p.vel * dt;
    }
}

/// Run `steps` timesteps of the natural-order integrator.
pub fn simulate(particles: &mut [Particle], cfg: &NBodyConfig, steps: u64) {
    for _ in 0..steps {
        step_natural(particles, cfg);
    }
}

/// Total kinetic energy `Σ ½ m v²`.
pub fn kinetic_energy(particles: &[Particle]) -> f64 {
    particles
        .iter()
        .map(|p| 0.5 * p.mass * p.vel.norm_sq())
        .sum()
}

/// Total (softened) potential energy
/// `−Σ_{a<b} G·m_a·m_b / √(r² + ε²)`.
pub fn potential_energy(particles: &[Particle], g: f64, eps: f64) -> f64 {
    let mut u = 0.0;
    for a in 0..particles.len() {
        for b in (a + 1)..particles.len() {
            let d2 = particles[a].pos.distance(particles[b].pos).powi(2) + eps * eps;
            u -= g * particles[a].mass * particles[b].mass / d2.sqrt();
        }
    }
    u
}

/// Total energy (kinetic + softened potential).
pub fn total_energy(particles: &[Particle], cfg: &NBodyConfig) -> f64 {
    kinetic_energy(particles) + potential_energy(particles, cfg.g, cfg.softening)
}

/// Total linear momentum `Σ m v`.
pub fn momentum(particles: &[Particle]) -> Vec3 {
    particles.iter().fold(ZERO3, |acc, p| acc + p.vel * p.mass)
}

/// Centre of mass.
pub fn center_of_mass(particles: &[Particle]) -> Vec3 {
    let m: f64 = particles.iter().map(|p| p.mass).sum();
    particles.iter().fold(ZERO3, |acc, p| acc + p.pos * p.mass) / m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particle::{binary_pair, uniform_cloud};
    use crate::partition::partition_proportional;

    #[test]
    fn binary_orbit_conserves_energy_well() {
        let cfg = NBodyConfig {
            g: 1.0,
            softening: 0.0,
            dt: 1e-3,
            theta: 0.01,
        };
        let mut ps = binary_pair(1.0, 0.5, cfg.g);
        let e0 = total_energy(&ps, &cfg);
        simulate(&mut ps, &cfg, 2000);
        let e1 = total_energy(&ps, &cfg);
        assert!(
            ((e1 - e0) / e0.abs()).abs() < 1e-2,
            "energy drifted: {e0} -> {e1}"
        );
    }

    #[test]
    fn binary_orbit_keeps_separation() {
        // Circular orbit: separation should stay near 1.
        let cfg = NBodyConfig {
            g: 1.0,
            softening: 0.0,
            dt: 1e-3,
            theta: 0.01,
        };
        let mut ps = binary_pair(1.0, 0.5, cfg.g);
        for _ in 0..2000 {
            step_natural(&mut ps, &cfg);
            let sep = ps[0].pos.distance(ps[1].pos);
            assert!(
                (0.95..1.05).contains(&sep),
                "separation {sep} left the circle"
            );
        }
    }

    #[test]
    fn momentum_is_conserved() {
        let cfg = NBodyConfig::default();
        let mut ps = uniform_cloud(50, 11);
        let p0 = momentum(&ps);
        simulate(&mut ps, &cfg, 100);
        let p1 = momentum(&ps);
        assert!((p1 - p0).norm() < 1e-12, "momentum drifted {:?}", p1 - p0);
    }

    #[test]
    fn cloud_energy_drift_is_bounded() {
        let cfg = NBodyConfig {
            g: 1.0,
            softening: 0.05,
            dt: 1e-3,
            theta: 0.01,
        };
        let mut ps = uniform_cloud(60, 9);
        let e0 = total_energy(&ps, &cfg);
        simulate(&mut ps, &cfg, 500);
        let e1 = total_energy(&ps, &cfg);
        assert!(
            ((e1 - e0) / e0.abs()).abs() < 0.05,
            "symplectic Euler drifted too much: {e0} -> {e1}"
        );
    }

    #[test]
    fn partition_order_matches_natural_physics() {
        // Different summation order ⇒ tiny FP differences, same physics.
        let cfg = NBodyConfig::default();
        let mut a = uniform_cloud(40, 3);
        let mut b = a.clone();
        let ranges = partition_proportional(40, &[3.0, 2.0, 1.0]);
        for _ in 0..20 {
            step_natural(&mut a, &cfg);
            step_partition_order(&mut b, &ranges, &cfg);
        }
        for (pa, pb) in a.iter().zip(&b) {
            assert!(
                pa.pos.distance(pb.pos) < 1e-9,
                "orders diverged beyond FP noise"
            );
        }
    }

    #[test]
    fn partition_order_is_deterministic() {
        let cfg = NBodyConfig::default();
        let ranges = partition_proportional(30, &[1.0, 1.0]);
        let run = || {
            let mut ps = uniform_cloud(30, 4);
            for _ in 0..10 {
                step_partition_order(&mut ps, &ranges, &cfg);
            }
            ps
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn center_of_mass_moves_inertially() {
        let cfg = NBodyConfig::default();
        let mut ps = uniform_cloud(30, 21);
        let com0 = center_of_mass(&ps);
        let p = momentum(&ps);
        let m: f64 = ps.iter().map(|x| x.mass).sum();
        simulate(&mut ps, &cfg, 200);
        let com1 = center_of_mass(&ps);
        let expected = com0 + p * (200.0 * cfg.dt / m);
        assert!(
            (com1 - expected).norm() < 1e-9,
            "COM strayed from inertial path by {:?}",
            com1 - expected
        );
    }
}
