//! The N-body partition as a [`SpeculativeApp`] — the paper's §5 case study.
//!
//! Each rank owns a contiguous slice of the particle array (allocated
//! proportionally to machine capacity) and broadcasts its particles'
//! positions and velocities every timestep. While a peer's message is in
//! flight the rank speculates the remote positions with the paper's eq. 10
//! (`r*(t) = r(t−1) + v(t−1)·Δt`), computes forces with them, and on
//! arrival applies the eq. 11 acceptance test
//! (`‖r* − r‖ / ‖r_a − r_b‖ ≤ θ`), incrementally recomputing the force
//! contributions of only the offending particles.
//!
//! ## Hot-path engineering
//!
//! State lives in [`Soa3`] structure-of-arrays storage and forces run
//! through the cache-blocked SoA kernels of [`crate::forces`] — bit-for-bit
//! equal to the scalar reference, just faster. The broadcast snapshot is an
//! `Arc<PartitionShared>` refreshed through a small slot ring
//! ([`NBodyApp::refresh_snapshot`]): peers, the driver's history, and
//! in-flight messages hold cheap `Arc` clones, and a slot is rewritten in
//! place as soon as nobody references it — so the steady-state iteration
//! path (begin/absorb/finish/checkpoint/shared) performs no heap
//! allocation. `speculate` is the exception by contract: it returns a
//! freshly predicted snapshot, which necessarily owns new buffers.

use std::ops::Range;
use std::sync::Arc;

use mpk::{Rank, WireCodec, WireSize};
use speccore::{CheckOutcome, History, SpeculativeApp};

use crate::forces::{
    accel_from, accumulate_partition_soa, accumulate_self_soa, OPS_PER_CHECK, OPS_PER_PAIR,
    OPS_PER_SPECULATE, OPS_PER_UPDATE,
};
use crate::particle::{NBodyConfig, Particle};
use crate::soa::Soa3;
use crate::vec3::{Vec3, ZERO3};

/// One partition's broadcast snapshot: positions and velocities
/// (the paper: "each processor sends the current position and velocity of
/// all its particles to all other processors").
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionShared {
    /// Positions of the partition's particles, partition-local order.
    pub pos: Soa3,
    /// Velocities, same order.
    pub vel: Soa3,
}

impl PartitionShared {
    /// Build from AoS slices (cold path: construction, tests, benches).
    pub fn from_vec3s(pos: &[Vec3], vel: &[Vec3]) -> Self {
        PartitionShared {
            pos: Soa3::from_vec3s(pos),
            vel: Soa3::from_vec3s(vel),
        }
    }

    /// Number of particles in the snapshot.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True when the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }
}

impl WireSize for PartitionShared {
    fn wire_size(&self) -> usize {
        // Modelled as the AoS binary encoding this type has always stood
        // for on the wire — two length-prefixed arrays of 24-byte vectors —
        // so the network cost model is independent of the in-memory layout.
        2 * (8 + 24 * self.pos.len())
    }
}

/// The socket wire encoding is exactly the AoS layout [`WireSize`]
/// models: two length-prefixed arrays of `(x, y, z)` triples, so
/// `wire_size` equals the encoded length byte-for-byte.
impl WireCodec for PartitionShared {
    fn encode(&self, out: &mut Vec<u8>) {
        for soa in [&self.pos, &self.vel] {
            (soa.len() as u64).encode(out);
            for i in 0..soa.len() {
                soa.x[i].encode(out);
                soa.y[i].encode(out);
                soa.z[i].encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let decode_soa = |buf: &mut &[u8]| -> Option<Soa3> {
            let len = u64::decode(buf)? as usize;
            if len.checked_mul(24)? > buf.len() {
                return None;
            }
            let mut soa = Soa3::new();
            for _ in 0..len {
                let x = f64::decode(buf)?;
                let y = f64::decode(buf)?;
                let z = f64::decode(buf)?;
                soa.push(Vec3::new(x, y, z));
            }
            Some(soa)
        };
        let pos = decode_soa(buf)?;
        let vel = decode_soa(buf)?;
        (pos.len() == vel.len()).then_some(PartitionShared { pos, vel })
    }
}

/// Which speculation function to use (the paper studies eq. 10 = `Linear`;
/// `Quadratic` is its "higher order derivatives" future-work variant,
/// `Hold` the trivial baseline).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SpeculationOrder {
    /// Predict the last received position unchanged.
    Hold,
    /// Eq. 10: extrapolate positions one (or `ahead`) velocity steps.
    #[default]
    Linear,
    /// Estimate acceleration from the last two velocity samples and
    /// extrapolate both position and velocity with it.
    Quadratic,
}

/// Rollback snapshot of a partition's dynamic state (positions and
/// velocities). Reused in place through
/// [`SpeculativeApp::checkpoint_into`].
#[derive(Clone, Debug, Default)]
pub struct NBodyCheckpoint {
    pos: Soa3,
    vel: Soa3,
}

/// One rank's partition of the N-body system.
pub struct NBodyApp {
    cfg: NBodyConfig,
    order: SpeculationOrder,
    me: usize,
    ranges: Vec<Range<usize>>,
    /// Masses of *all* particles (static data, distributed at startup).
    masses: Vec<f64>,
    /// My particles' state, structure-of-arrays.
    pos: Soa3,
    vel: Soa3,
    /// Per-iteration acceleration accumulator.
    acc: Soa3,
    /// My positions at force-accumulation time, kept so corrections can
    /// retract/reapply contributions exactly.
    pos_at_compute: Soa3,
    /// Snapshot slot ring: [`shared`](SpeculativeApp::shared) hands out
    /// `Arc` clones of `snapshots[current]`; a refresh rewrites the first
    /// slot nobody else references (in place, no allocation) and only
    /// grows the ring when every slot is still held elsewhere.
    snapshots: Vec<Arc<PartitionShared>>,
    current: usize,
}

impl NBodyApp {
    /// Build rank `me`'s partition from the full initial particle set and
    /// the global partition layout.
    pub fn new(
        all: &[Particle],
        ranges: Vec<Range<usize>>,
        me: usize,
        cfg: NBodyConfig,
        order: SpeculationOrder,
    ) -> Self {
        assert!(me < ranges.len(), "rank out of range");
        assert_eq!(
            ranges.iter().map(|r| r.len()).sum::<usize>(),
            all.len(),
            "ranges must cover all particles"
        );
        let mine = ranges[me].clone();
        let n_mine = mine.len();
        let pos: Vec<Vec3> = all[mine.clone()].iter().map(|p| p.pos).collect();
        let vel: Vec<Vec3> = all[mine].iter().map(|p| p.vel).collect();
        let pos = Soa3::from_vec3s(&pos);
        let vel = Soa3::from_vec3s(&vel);
        let snapshot = Arc::new(PartitionShared {
            pos: pos.clone(),
            vel: vel.clone(),
        });
        NBodyApp {
            cfg,
            order,
            me,
            masses: all.iter().map(|p| p.mass).collect(),
            pos,
            vel,
            acc: Soa3::zeros(n_mine),
            pos_at_compute: Soa3::zeros(n_mine),
            ranges,
            snapshots: vec![snapshot],
            current: 0,
        }
    }

    /// Number of particles this rank owns.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True if the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// This rank's particles as full [`Particle`] values.
    pub fn particles(&self) -> Vec<Particle> {
        let mass = &self.masses[self.ranges[self.me].clone()];
        self.pos
            .iter()
            .zip(self.vel.iter())
            .zip(mass)
            .map(|((pos, vel), &mass)| Particle { mass, pos, vel })
            .collect()
    }

    /// The global index range of this rank's particles.
    pub fn range(&self) -> Range<usize> {
        self.ranges[self.me].clone()
    }

    /// Bit-exact fingerprint of this rank's positions and velocities.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = obs::Fingerprint::new();
        for soa in [&self.pos, &self.vel] {
            fp.write_f64s(&soa.x);
            fp.write_f64s(&soa.y);
            fp.write_f64s(&soa.z);
        }
        fp.finish()
    }

    /// Centroid of my partition, the cheap stand-in for the per-pair
    /// denominator of eq. 11 (keeps checking at the paper's ~24 ops per
    /// particle instead of another O(N_i·N_k) pass).
    fn centroid(&self) -> Vec3 {
        if self.pos.is_empty() {
            return ZERO3;
        }
        self.pos.iter().fold(ZERO3, |a, p| a + p) / self.pos.len() as f64
    }

    /// Bring the published snapshot up to date with `pos`/`vel`. Rewrites
    /// an unreferenced ring slot in place when one exists (the steady
    /// state, once earlier broadcasts have been consumed); allocates a new
    /// slot only while every existing one is still referenced by history,
    /// in-flight messages, or pending execution records.
    fn refresh_snapshot(&mut self) {
        let free = self
            .snapshots
            .iter_mut()
            .position(|s| Arc::get_mut(s).is_some());
        match free {
            Some(i) => {
                let slot = Arc::get_mut(&mut self.snapshots[i]).expect("checked unreferenced");
                slot.pos.clone_from(&self.pos);
                slot.vel.clone_from(&self.vel);
                self.current = i;
            }
            None => {
                self.snapshots.push(Arc::new(PartitionShared {
                    pos: self.pos.clone(),
                    vel: self.vel.clone(),
                }));
                self.current = self.snapshots.len() - 1;
            }
        }
    }

    /// Shared body of `correct`/`correct_deep`: re-derive which particles
    /// of `from`'s partition exceeded θ (the same test as `check`), then
    /// retract their speculated force contribution and apply the actual
    /// one. Forces are linear in per-source terms, and with semi-implicit
    /// Euler a force delta δ present for `steps` integration steps moves v
    /// by δ·Δt and x by δ·Δt²·steps — so the post-integration state is
    /// fixed in place, the paper's `correct(X_j(t+1))`.
    fn apply_correction(
        &mut self,
        from: Rank,
        speculated: &PartitionShared,
        actual: &PartitionShared,
        steps: f64,
    ) -> u64 {
        let centroid = self.centroid();
        let dt = self.cfg.dt;
        let (g, softening, theta) = (self.cfg.g, self.cfg.softening, self.cfg.theta);
        let NBodyApp {
            masses,
            ranges,
            pos,
            vel,
            pos_at_compute,
            ..
        } = self;
        let masses = &masses[ranges[from.0].clone()];
        let n_mine = pos.len();
        let mut ops = 0u64;
        for (i, &mass_i) in masses.iter().enumerate().take(actual.pos.len()) {
            let err_abs = speculated.pos.get(i).distance(actual.pos.get(i));
            let denom = actual.pos.get(i).distance(centroid).max(softening);
            if err_abs / denom <= theta {
                continue;
            }
            for b in 0..n_mine {
                let target = pos_at_compute.get(b);
                let delta = accel_from(target, actual.pos.get(i), mass_i, g, softening)
                    - accel_from(target, speculated.pos.get(i), mass_i, g, softening);
                vel.set(b, vel.get(b) + delta * dt);
                pos.set(b, pos.get(b) + delta * (dt * dt * steps));
            }
            ops += 2 * OPS_PER_PAIR * n_mine as u64;
        }
        if ops > 0 {
            // The live state moved; the driver re-reads `shared()` next.
            self.refresh_snapshot();
        }
        ops
    }
}

impl SpeculativeApp for NBodyApp {
    type Shared = Arc<PartitionShared>;
    type Checkpoint = NBodyCheckpoint;

    fn shared(&self) -> Arc<PartitionShared> {
        Arc::clone(&self.snapshots[self.current])
    }

    fn begin_iteration(&mut self) -> u64 {
        self.acc.fill(ZERO3);
        self.pos_at_compute.clone_from(&self.pos);
        let mine = self.ranges[self.me].clone();
        accumulate_self_soa(
            &self.pos,
            &self.masses[mine],
            &mut self.acc,
            self.cfg.g,
            self.cfg.softening,
        )
    }

    fn absorb(&mut self, from: Rank, x: &Arc<PartitionShared>) -> u64 {
        debug_assert_eq!(x.pos.len(), self.ranges[from.0].len());
        let src_range = self.ranges[from.0].clone();
        accumulate_partition_soa(
            &self.pos,
            &mut self.acc,
            &x.pos,
            &self.masses[src_range],
            self.cfg.g,
            self.cfg.softening,
        )
    }

    fn finish_iteration(&mut self) -> u64 {
        fn axis(p: &mut [f64], v: &mut [f64], a: &[f64], dt: f64) {
            for ((p, v), &a) in p.iter_mut().zip(v.iter_mut()).zip(a) {
                *v += a * dt;
                *p += *v * dt;
            }
        }
        let dt = self.cfg.dt;
        axis(&mut self.pos.x, &mut self.vel.x, &self.acc.x, dt);
        axis(&mut self.pos.y, &mut self.vel.y, &self.acc.y, dt);
        axis(&mut self.pos.z, &mut self.vel.z, &self.acc.z, dt);
        self.refresh_snapshot();
        OPS_PER_UPDATE * self.pos.len() as u64
    }

    fn speculate(
        &self,
        _from: Rank,
        hist: &History<Arc<PartitionShared>>,
        ahead: u32,
    ) -> Option<(Arc<PartitionShared>, u64)> {
        let latest = hist.latest()?;
        let n = latest.pos.len() as u64;
        let h = self.cfg.dt * ahead as f64;
        let linear = |latest: &PartitionShared| {
            // Eq. 10: r* = r + v·Δt (velocity held constant).
            let extrap = |r: &[f64], v: &[f64]| r.iter().zip(v).map(|(&r, &v)| r + v * h).collect();
            let pos = Soa3 {
                x: extrap(&latest.pos.x, &latest.vel.x),
                y: extrap(&latest.pos.y, &latest.vel.y),
                z: extrap(&latest.pos.z, &latest.vel.z),
            };
            Arc::new(PartitionShared {
                pos,
                vel: latest.vel.clone(),
            })
        };
        match self.order {
            SpeculationOrder::Hold => Some((Arc::clone(latest), n)),
            SpeculationOrder::Linear => Some((linear(latest), OPS_PER_SPECULATE * n)),
            SpeculationOrder::Quadratic => {
                let Some((prev_iter, prev)) = hist.nth_back(1) else {
                    // Not enough history for an acceleration estimate;
                    // degrade to eq. 10.
                    return Some((linear(latest), OPS_PER_SPECULATE * n));
                };
                let latest_iter = hist.latest_iter().expect("non-empty");
                let span = (latest_iter - prev_iter) as f64 * self.cfg.dt;
                let mut pos = Soa3::new();
                let mut vel = Soa3::new();
                for i in 0..latest.pos.len() {
                    let a_est = (latest.vel.get(i) - prev.vel.get(i)) / span;
                    let v = latest.vel.get(i) + a_est * h;
                    pos.push(latest.pos.get(i) + latest.vel.get(i) * h + a_est * (0.5 * h * h));
                    vel.push(v);
                }
                Some((
                    Arc::new(PartitionShared { pos, vel }),
                    2 * OPS_PER_SPECULATE * n,
                ))
            }
        }
    }

    fn check(
        &self,
        _from: Rank,
        actual: &Arc<PartitionShared>,
        speculated: &Arc<PartitionShared>,
    ) -> CheckOutcome {
        let centroid = self.centroid();
        let n = actual.pos.len();
        let mut max_error: f64 = 0.0;
        let mut max_accepted: f64 = 0.0;
        let mut bad = 0u64;
        for i in 0..n {
            let err_abs = speculated.pos.get(i).distance(actual.pos.get(i));
            // Eq. 11 with the local centroid standing in for particle b.
            let denom = actual.pos.get(i).distance(centroid).max(self.cfg.softening);
            let err = err_abs / denom;
            max_error = max_error.max(err);
            if err > self.cfg.theta {
                bad += 1;
            } else {
                max_accepted = max_accepted.max(err);
            }
        }
        CheckOutcome {
            accept: bad == 0,
            max_error,
            max_accepted_error: max_accepted,
            checked_units: n as u64,
            bad_units: bad,
            ops: OPS_PER_CHECK * n as u64,
        }
    }

    fn correct(
        &mut self,
        from: Rank,
        speculated: &Arc<PartitionShared>,
        actual: &Arc<PartitionShared>,
    ) -> u64 {
        self.apply_correction(from, speculated, actual, 1.0)
    }

    fn correct_deep(
        &mut self,
        from: Rank,
        speculated: &Arc<PartitionShared>,
        actual: &Arc<PartitionShared>,
        depth: u64,
    ) -> Option<u64> {
        // First-order propagation of the force correction through the
        // `depth` iterations already executed on top: a velocity error
        // δ·Δt present for (depth + 1) integration steps displaced
        // positions by δ·Δt²·(depth + 1). The residual (the slightly wrong
        // forces used in the interim iterations) is second-order in a
        // θ-bounded quantity — the same accept-small-errors trade the
        // paper makes throughout.
        Some(self.apply_correction(from, speculated, actual, (depth + 1) as f64))
    }

    fn delta_extract(&self, shared: &Arc<PartitionShared>, out: &mut Vec<f64>) -> bool {
        // Six lanes per particle, particle-major: the layout is a pure
        // function of the partition size, so lane indices are stable across
        // iterations and identical on sender and receiver.
        out.clear();
        out.reserve(6 * shared.len());
        for i in 0..shared.len() {
            out.extend_from_slice(&[
                shared.pos.x[i],
                shared.pos.y[i],
                shared.pos.z[i],
                shared.vel.x[i],
                shared.vel.y[i],
                shared.vel.z[i],
            ]);
        }
        true
    }

    fn delta_patch(
        &self,
        base: &Arc<PartitionShared>,
        entries: &[(u32, f64)],
    ) -> Option<Arc<PartitionShared>> {
        let mut next = PartitionShared::clone(base);
        for &(lane, value) in entries {
            let (i, comp) = (lane as usize / 6, lane as usize % 6);
            let soa = if comp < 3 {
                &mut next.pos
            } else {
                &mut next.vel
            };
            match comp % 3 {
                0 => soa.x[i] = value,
                1 => soa.y[i] = value,
                _ => soa.z[i] = value,
            }
        }
        Some(Arc::new(next))
    }

    fn checkpoint(&self) -> NBodyCheckpoint {
        NBodyCheckpoint {
            pos: self.pos.clone(),
            vel: self.vel.clone(),
        }
    }

    fn checkpoint_into(&self, slot: &mut Option<NBodyCheckpoint>) {
        match slot {
            Some(c) => {
                c.pos.clone_from(&self.pos);
                c.vel.clone_from(&self.vel);
            }
            None => *slot = Some(self.checkpoint()),
        }
    }

    fn restore(&mut self, c: &NBodyCheckpoint) {
        self.pos.clone_from(&c.pos);
        self.vel.clone_from(&c.vel);
        self.refresh_snapshot();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particle::{rotating_disk, uniform_cloud};
    use crate::partition::partition_proportional;

    #[test]
    fn delta_extract_patch_roundtrip_is_exact() {
        let app = make_app(12, 2, 0, 0.1);
        let a = app.shared();
        let mut lanes_a = Vec::new();
        assert!(app.delta_extract(&a, &mut lanes_a));
        assert_eq!(lanes_a.len(), 6 * a.len());

        let mut moved = PartitionShared::clone(&a);
        moved.pos.x[3] += 0.25;
        moved.vel.z[5] -= 1.5;
        let moved = Arc::new(moved);
        let mut lanes_b = Vec::new();
        app.delta_extract(&moved, &mut lanes_b);

        let entries: Vec<(u32, f64)> = lanes_a
            .iter()
            .zip(&lanes_b)
            .enumerate()
            .filter(|(_, (x, y))| x.to_bits() != y.to_bits())
            .map(|(i, (_, y))| (i as u32, *y))
            .collect();
        assert_eq!(entries.len(), 2, "exactly the two touched lanes differ");
        let patched = app.delta_patch(&a, &entries).unwrap();
        assert_eq!(*patched, *moved);
    }

    fn hist_of(shares: &[Arc<PartitionShared>]) -> History<Arc<PartitionShared>> {
        let mut h = History::new(4);
        for (i, s) in shares.iter().enumerate() {
            h.record(i as u64, Arc::clone(s));
        }
        h
    }

    fn share(pos: Vec<Vec3>, vel: Vec<Vec3>) -> Arc<PartitionShared> {
        Arc::new(PartitionShared::from_vec3s(&pos, &vel))
    }

    fn make_app(n: usize, p: usize, me: usize, theta: f64) -> NBodyApp {
        let particles = uniform_cloud(n, 1);
        let ranges = partition_proportional(n, &vec![1.0; p]);
        NBodyApp::new(
            &particles,
            ranges,
            me,
            NBodyConfig::default().with_theta(theta),
            SpeculationOrder::Linear,
        )
    }

    #[test]
    fn construction_slices_the_partition() {
        let app = make_app(30, 3, 1, 0.01);
        assert_eq!(app.len(), 10);
        assert_eq!(app.range(), 10..20);
        assert_eq!(app.particles().len(), 10);
    }

    #[test]
    fn linear_speculation_is_eq_10() {
        let app = make_app(10, 2, 0, 0.01);
        let v = Vec3::new(1.0, -2.0, 0.5);
        let r = Vec3::new(0.1, 0.2, 0.3);
        let h = hist_of(&[share(vec![r], vec![v])]);
        let (spec, ops) = app.speculate(Rank(1), &h, 1).unwrap();
        let dt = NBodyConfig::default().dt;
        assert_eq!(spec.pos.get(0), r + v * dt);
        assert_eq!(spec.vel.get(0), v);
        assert_eq!(ops, OPS_PER_SPECULATE);
    }

    #[test]
    fn speculation_scales_with_ahead() {
        let app = make_app(10, 2, 0, 0.01);
        let v = Vec3::new(1.0, 0.0, 0.0);
        let r = ZERO3;
        let h = hist_of(&[share(vec![r], vec![v])]);
        let dt = NBodyConfig::default().dt;
        let (s1, _) = app.speculate(Rank(1), &h, 1).unwrap();
        let (s3, _) = app.speculate(Rank(1), &h, 3).unwrap();
        assert_eq!(s1.pos.get(0).x, dt);
        assert_eq!(s3.pos.get(0).x, 3.0 * dt);
    }

    #[test]
    fn quadratic_speculation_uses_acceleration() {
        let particles = uniform_cloud(10, 1);
        let ranges = partition_proportional(10, &[1.0, 1.0]);
        let app = NBodyApp::new(
            &particles,
            ranges,
            0,
            NBodyConfig::default(),
            SpeculationOrder::Quadratic,
        );
        let dt = NBodyConfig::default().dt;
        // Velocity grew from 1 to 2 over one step → a = 1/dt.
        let h = hist_of(&[
            share(vec![ZERO3], vec![Vec3::new(1.0, 0.0, 0.0)]),
            share(
                vec![Vec3::new(dt, 0.0, 0.0)],
                vec![Vec3::new(2.0, 0.0, 0.0)],
            ),
        ]);
        let (spec, _) = app.speculate(Rank(1), &h, 1).unwrap();
        // v* = 2 + (1/dt)·dt = 3; r* = dt + 2·dt + ½·(1/dt)·dt² = 3.5·dt.
        assert!((spec.vel.get(0).x - 3.0).abs() < 1e-12);
        assert!((spec.pos.get(0).x - 3.5 * dt).abs() < 1e-12);
    }

    #[test]
    fn hold_speculation_shares_the_history_snapshot() {
        let particles = uniform_cloud(10, 1);
        let ranges = partition_proportional(10, &[1.0, 1.0]);
        let app = NBodyApp::new(
            &particles,
            ranges,
            0,
            NBodyConfig::default(),
            SpeculationOrder::Hold,
        );
        let s = share(vec![ZERO3], vec![Vec3::new(1.0, 0.0, 0.0)]);
        let h = hist_of(std::slice::from_ref(&s));
        let (spec, _) = app.speculate(Rank(1), &h, 1).unwrap();
        assert!(
            Arc::ptr_eq(&spec, &s),
            "Hold must hand out an Arc clone, not a copy"
        );
    }

    #[test]
    fn empty_history_cannot_speculate() {
        let app = make_app(10, 2, 0, 0.01);
        let h: History<Arc<PartitionShared>> = History::new(4);
        assert!(app.speculate(Rank(1), &h, 1).is_none());
    }

    #[test]
    fn check_accepts_exact_speculation() {
        let app = make_app(10, 2, 0, 0.01);
        let s = share(vec![Vec3::new(5.0, 0.0, 0.0)], vec![ZERO3]);
        let out = app.check(Rank(1), &s, &s.clone());
        assert!(out.accept);
        assert_eq!(out.max_error, 0.0);
        assert_eq!(out.bad_units, 0);
        assert_eq!(out.checked_units, 1);
    }

    #[test]
    fn check_rejects_large_displacement() {
        let app = make_app(10, 2, 0, 0.01);
        let actual = share(vec![Vec3::new(5.0, 0.0, 0.0)], vec![ZERO3]);
        let spec = share(vec![Vec3::new(6.0, 0.0, 0.0)], vec![ZERO3]);
        let out = app.check(Rank(1), &actual, &spec);
        assert!(!out.accept);
        assert_eq!(out.bad_units, 1);
        assert!(out.max_error > 0.01);
    }

    #[test]
    fn check_error_scales_with_distance() {
        // Eq. 11: the same absolute displacement matters less for a farther
        // particle.
        let app = make_app(10, 2, 0, 0.01);
        let near_actual = share(vec![Vec3::new(1.0, 0.0, 0.0)], vec![ZERO3]);
        let near_spec = share(vec![Vec3::new(1.01, 0.0, 0.0)], vec![ZERO3]);
        let far_actual = share(vec![Vec3::new(100.0, 0.0, 0.0)], vec![ZERO3]);
        let far_spec = share(vec![Vec3::new(100.01, 0.0, 0.0)], vec![ZERO3]);
        let near = app.check(Rank(1), &near_actual, &near_spec);
        let far = app.check(Rank(1), &far_actual, &far_spec);
        assert!(near.max_error > far.max_error);
    }

    #[test]
    fn correction_repairs_a_misspeculated_iteration() {
        // Run one iteration twice from identical state: once with the
        // actual remote value, once with a bad speculation followed by
        // correct(). Results must agree to FP noise.
        let cfg = NBodyConfig::default().with_theta(0.0);
        let particles = uniform_cloud(20, 2);
        let ranges = partition_proportional(20, &[1.0, 1.0]);
        let remote_pos: Vec<Vec3> = particles[10..].iter().map(|p| p.pos).collect();
        let remote_vel: Vec<Vec3> = particles[10..].iter().map(|p| p.vel).collect();
        let remote_actual = share(remote_pos.clone(), remote_vel.clone());
        let spec_pos: Vec<Vec3> = remote_pos
            .iter()
            .map(|p| *p + Vec3::new(0.05, -0.02, 0.01))
            .collect();
        let remote_spec = share(spec_pos, remote_vel);

        let mut golden =
            NBodyApp::new(&particles, ranges.clone(), 0, cfg, SpeculationOrder::Linear);
        golden.begin_iteration();
        golden.absorb(Rank(1), &remote_actual);
        golden.finish_iteration();

        let mut fixed = NBodyApp::new(&particles, ranges, 0, cfg, SpeculationOrder::Linear);
        fixed.begin_iteration();
        fixed.absorb(Rank(1), &remote_spec);
        fixed.finish_iteration();
        let ops = fixed.correct(Rank(1), &remote_spec, &remote_actual);
        assert!(ops > 0);

        for (a, b) in golden.pos.iter().zip(fixed.pos.iter()) {
            assert!(a.distance(b) < 1e-12, "correction left position residue");
        }
        for (a, b) in golden.vel.iter().zip(fixed.vel.iter()) {
            assert!(a.distance(b) < 1e-12, "correction left velocity residue");
        }
    }

    #[test]
    fn correction_skips_acceptable_particles() {
        // θ large: nothing exceeds the bound, so correct() is a no-op.
        let cfg = NBodyConfig::default().with_theta(1e6);
        let particles = uniform_cloud(20, 2);
        let ranges = partition_proportional(20, &[1.0, 1.0]);
        let mut app = NBodyApp::new(&particles, ranges, 0, cfg, SpeculationOrder::Linear);
        app.begin_iteration();
        let remote_pos: Vec<Vec3> = particles[10..].iter().map(|p| p.pos).collect();
        let remote_vel: Vec<Vec3> = particles[10..].iter().map(|p| p.vel).collect();
        let actual = share(remote_pos.clone(), remote_vel.clone());
        let mut spec_pos = remote_pos;
        spec_pos[0] += Vec3::new(0.001, 0.0, 0.0);
        let spec = share(spec_pos, remote_vel);
        app.absorb(Rank(1), &spec);
        app.finish_iteration();
        let before = app.pos.clone();
        let ops = app.correct(Rank(1), &spec, &actual);
        assert_eq!(ops, 0);
        assert_eq!(app.pos, before);
    }

    #[test]
    fn checkpoint_restore_round_trips() {
        let mut app = make_app(12, 2, 0, 0.01);
        let c = app.checkpoint();
        let actual = share(vec![Vec3::new(1.0, 1.0, 1.0); 6], vec![ZERO3; 6]);
        app.begin_iteration();
        app.absorb(Rank(1), &actual);
        app.finish_iteration();
        assert_ne!(app.pos, c.pos);
        app.restore(&c);
        assert_eq!(app.pos, c.pos);
        assert_eq!(app.vel, c.vel);
    }

    #[test]
    fn checkpoint_into_reuses_the_slot() {
        let mut app = make_app(12, 2, 0, 0.01);
        let mut slot = None;
        app.checkpoint_into(&mut slot);
        let ptr = slot.as_ref().unwrap().pos.x.as_ptr();
        let actual = share(vec![Vec3::new(1.0, 1.0, 1.0); 6], vec![ZERO3; 6]);
        app.begin_iteration();
        app.absorb(Rank(1), &actual);
        app.finish_iteration();
        app.checkpoint_into(&mut slot);
        let c = slot.as_ref().unwrap();
        assert_eq!(c.pos.x.as_ptr(), ptr, "slot buffers must be reused");
        assert_eq!(c.pos, app.pos);
        assert_eq!(c.vel, app.vel);
    }

    #[test]
    fn shared_tracks_state_through_a_snapshot_ring() {
        let mut app = make_app(12, 2, 0, 0.01);
        let s0 = app.shared();
        assert_eq!(s0.pos, app.pos, "initial snapshot reflects initial state");
        let actual = share(vec![Vec3::new(1.0, 1.0, 1.0); 6], vec![ZERO3; 6]);
        app.begin_iteration();
        app.absorb(Rank(1), &actual);
        app.finish_iteration();
        let s1 = app.shared();
        assert_eq!(s1.pos, app.pos, "refresh must publish the new state");
        assert!(!Arc::ptr_eq(&s0, &s1), "s0 is still held, so a new slot");
        // Drop both outstanding clones: the next refresh may rewrite a
        // slot in place, and shared() must still agree with the state.
        drop(s0);
        drop(s1);
        app.begin_iteration();
        app.absorb(Rank(1), &actual);
        app.finish_iteration();
        assert_eq!(app.shared().pos, app.pos);
        assert!(
            app.snapshots.len() <= 2,
            "ring must not grow when slots free up (len {})",
            app.snapshots.len()
        );
    }

    #[test]
    fn disk_speculation_is_accurate() {
        // On near-circular orbits, eq. 10 should predict within a small
        // fraction of the inter-particle scale over one dt.
        let particles = rotating_disk(40, 7);
        let ranges = partition_proportional(40, &[1.0, 1.0]);
        let cfg = NBodyConfig {
            g: 1.0,
            softening: 0.02,
            dt: 1e-3,
            theta: 0.01,
        };
        let app = NBodyApp::new(&particles, ranges.clone(), 0, cfg, SpeculationOrder::Linear);

        // Evolve the real system one step to get the "actual" message.
        let mut world = particles.clone();
        crate::integrate::step_natural(&mut world, &cfg);
        let remote_now = share(
            particles[ranges[1].clone()].iter().map(|p| p.pos).collect(),
            particles[ranges[1].clone()].iter().map(|p| p.vel).collect(),
        );
        let remote_next = share(
            world[ranges[1].clone()].iter().map(|p| p.pos).collect(),
            world[ranges[1].clone()].iter().map(|p| p.vel).collect(),
        );
        let h = hist_of(&[remote_now]);
        let (spec, _) = app.speculate(Rank(1), &h, 1).unwrap();
        let out = app.check(Rank(1), &remote_next, &spec);
        assert!(
            out.accept,
            "disk speculation should pass θ=0.01, max err {}",
            out.max_error
        );
    }

    #[test]
    fn wire_size_counts_both_vectors() {
        let s = share(vec![ZERO3; 10], vec![ZERO3; 10]);
        assert_eq!(s.wire_size(), 2 * (8 + 240));
    }
}
