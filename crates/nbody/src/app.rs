//! The N-body partition as a [`SpeculativeApp`] — the paper's §5 case study.
//!
//! Each rank owns a contiguous slice of the particle array (allocated
//! proportionally to machine capacity) and broadcasts its particles'
//! positions and velocities every timestep. While a peer's message is in
//! flight the rank speculates the remote positions with the paper's eq. 10
//! (`r*(t) = r(t−1) + v(t−1)·Δt`), computes forces with them, and on
//! arrival applies the eq. 11 acceptance test
//! (`‖r* − r‖ / ‖r_a − r_b‖ ≤ θ`), incrementally recomputing the force
//! contributions of only the offending particles.

use std::ops::Range;

use mpk::{Rank, WireSize};
use speccore::{CheckOutcome, History, SpeculativeApp};

use crate::forces::{
    accel_from, accumulate_partition, accumulate_self, OPS_PER_CHECK, OPS_PER_PAIR,
    OPS_PER_SPECULATE, OPS_PER_UPDATE,
};
use crate::particle::{NBodyConfig, Particle};
use crate::vec3::{Vec3, ZERO3};

/// One partition's broadcast snapshot: positions and velocities
/// (the paper: "each processor sends the current position and velocity of
/// all its particles to all other processors").
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionShared {
    /// Positions of the partition's particles, partition-local order.
    pub pos: Vec<Vec3>,
    /// Velocities, same order.
    pub vel: Vec<Vec3>,
}

impl WireSize for PartitionShared {
    fn wire_size(&self) -> usize {
        self.pos.wire_size() + self.vel.wire_size()
    }
}

/// Which speculation function to use (the paper studies eq. 10 = `Linear`;
/// `Quadratic` is its "higher order derivatives" future-work variant,
/// `Hold` the trivial baseline).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SpeculationOrder {
    /// Predict the last received position unchanged.
    Hold,
    /// Eq. 10: extrapolate positions one (or `ahead`) velocity steps.
    #[default]
    Linear,
    /// Estimate acceleration from the last two velocity samples and
    /// extrapolate both position and velocity with it.
    Quadratic,
}

/// One rank's partition of the N-body system.
pub struct NBodyApp {
    cfg: NBodyConfig,
    order: SpeculationOrder,
    me: usize,
    ranges: Vec<Range<usize>>,
    /// Masses of *all* particles (static data, distributed at startup).
    masses: Vec<f64>,
    /// My particles' state.
    pos: Vec<Vec3>,
    vel: Vec<Vec3>,
    /// Per-iteration acceleration accumulator.
    acc: Vec<Vec3>,
    /// My positions at force-accumulation time, kept so corrections can
    /// retract/reapply contributions exactly.
    pos_at_compute: Vec<Vec3>,
}

impl NBodyApp {
    /// Build rank `me`'s partition from the full initial particle set and
    /// the global partition layout.
    pub fn new(
        all: &[Particle],
        ranges: Vec<Range<usize>>,
        me: usize,
        cfg: NBodyConfig,
        order: SpeculationOrder,
    ) -> Self {
        assert!(me < ranges.len(), "rank out of range");
        assert_eq!(
            ranges.iter().map(|r| r.len()).sum::<usize>(),
            all.len(),
            "ranges must cover all particles"
        );
        let mine = ranges[me].clone();
        let n_mine = mine.len();
        NBodyApp {
            cfg,
            order,
            me,
            masses: all.iter().map(|p| p.mass).collect(),
            pos: all[mine.clone()].iter().map(|p| p.pos).collect(),
            vel: all[mine].iter().map(|p| p.vel).collect(),
            acc: vec![ZERO3; n_mine],
            pos_at_compute: vec![ZERO3; n_mine],
            ranges,
        }
    }

    /// Number of particles this rank owns.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True if the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// This rank's particles as full [`Particle`] values.
    pub fn particles(&self) -> Vec<Particle> {
        let mass = &self.masses[self.ranges[self.me].clone()];
        self.pos
            .iter()
            .zip(&self.vel)
            .zip(mass)
            .map(|((&pos, &vel), &mass)| Particle { mass, pos, vel })
            .collect()
    }

    /// The global index range of this rank's particles.
    pub fn range(&self) -> Range<usize> {
        self.ranges[self.me].clone()
    }

    fn masses_of(&self, rank: usize) -> &[f64] {
        &self.masses[self.ranges[rank].clone()]
    }

    /// Centroid of my partition, the cheap stand-in for the per-pair
    /// denominator of eq. 11 (keeps checking at the paper's ~24 ops per
    /// particle instead of another O(N_i·N_k) pass).
    fn centroid(&self) -> Vec3 {
        if self.pos.is_empty() {
            return ZERO3;
        }
        self.pos.iter().fold(ZERO3, |a, &p| a + p) / self.pos.len() as f64
    }
}

impl SpeculativeApp for NBodyApp {
    type Shared = PartitionShared;
    type Checkpoint = (Vec<Vec3>, Vec<Vec3>);

    fn shared(&self) -> PartitionShared {
        PartitionShared {
            pos: self.pos.clone(),
            vel: self.vel.clone(),
        }
    }

    fn begin_iteration(&mut self) -> u64 {
        self.acc.fill(ZERO3);
        self.pos_at_compute.clone_from(&self.pos);
        let mine = self.ranges[self.me].clone();
        accumulate_self(
            &self.pos,
            &self.masses[mine],
            &mut self.acc,
            self.cfg.g,
            self.cfg.softening,
        )
    }

    fn absorb(&mut self, from: Rank, x: &PartitionShared) -> u64 {
        debug_assert_eq!(x.pos.len(), self.ranges[from.0].len());
        let src_range = self.ranges[from.0].clone();
        accumulate_partition(
            &self.pos,
            &mut self.acc,
            &x.pos,
            &self.masses[src_range],
            self.cfg.g,
            self.cfg.softening,
        )
    }

    fn finish_iteration(&mut self) -> u64 {
        let dt = self.cfg.dt;
        for ((p, v), a) in self.pos.iter_mut().zip(&mut self.vel).zip(&self.acc) {
            *v += *a * dt;
            *p += *v * dt;
        }
        OPS_PER_UPDATE * self.pos.len() as u64
    }

    fn speculate(
        &self,
        _from: Rank,
        hist: &History<PartitionShared>,
        ahead: u32,
    ) -> Option<(PartitionShared, u64)> {
        let latest = hist.latest()?;
        let n = latest.pos.len() as u64;
        let h = self.cfg.dt * ahead as f64;
        match self.order {
            SpeculationOrder::Hold => Some((latest.clone(), n)),
            SpeculationOrder::Linear => {
                // Eq. 10: r* = r + v·Δt (velocity held constant).
                let pos = latest
                    .pos
                    .iter()
                    .zip(&latest.vel)
                    .map(|(&r, &v)| r + v * h)
                    .collect();
                Some((
                    PartitionShared {
                        pos,
                        vel: latest.vel.clone(),
                    },
                    OPS_PER_SPECULATE * n,
                ))
            }
            SpeculationOrder::Quadratic => {
                let Some((prev_iter, prev)) = hist.nth_back(1) else {
                    // Not enough history for an acceleration estimate;
                    // degrade to eq. 10.
                    let pos = latest
                        .pos
                        .iter()
                        .zip(&latest.vel)
                        .map(|(&r, &v)| r + v * h)
                        .collect();
                    return Some((
                        PartitionShared {
                            pos,
                            vel: latest.vel.clone(),
                        },
                        OPS_PER_SPECULATE * n,
                    ));
                };
                let latest_iter = hist.latest_iter().expect("non-empty");
                let span = (latest_iter - prev_iter) as f64 * self.cfg.dt;
                let mut pos = Vec::with_capacity(latest.pos.len());
                let mut vel = Vec::with_capacity(latest.vel.len());
                for i in 0..latest.pos.len() {
                    let a_est = (latest.vel[i] - prev.vel[i]) / span;
                    let v = latest.vel[i] + a_est * h;
                    pos.push(latest.pos[i] + latest.vel[i] * h + a_est * (0.5 * h * h));
                    vel.push(v);
                }
                Some((PartitionShared { pos, vel }, 2 * OPS_PER_SPECULATE * n))
            }
        }
    }

    fn check(
        &self,
        _from: Rank,
        actual: &PartitionShared,
        speculated: &PartitionShared,
    ) -> CheckOutcome {
        let centroid = self.centroid();
        let n = actual.pos.len();
        let mut max_error: f64 = 0.0;
        let mut max_accepted: f64 = 0.0;
        let mut bad = 0u64;
        for i in 0..n {
            let err_abs = speculated.pos[i].distance(actual.pos[i]);
            // Eq. 11 with the local centroid standing in for particle b.
            let denom = actual.pos[i].distance(centroid).max(self.cfg.softening);
            let err = err_abs / denom;
            max_error = max_error.max(err);
            if err > self.cfg.theta {
                bad += 1;
            } else {
                max_accepted = max_accepted.max(err);
            }
        }
        CheckOutcome {
            accept: bad == 0,
            max_error,
            max_accepted_error: max_accepted,
            checked_units: n as u64,
            bad_units: bad,
            ops: OPS_PER_CHECK * n as u64,
        }
    }

    #[allow(clippy::needless_range_loop)] // i couples actual/speculated/masses
    fn correct(
        &mut self,
        from: Rank,
        speculated: &PartitionShared,
        actual: &PartitionShared,
    ) -> u64 {
        // Re-derive which particles exceeded the threshold (same test as
        // `check`), then retract their speculated force contribution and
        // apply the actual one. Forces are linear in per-source terms, and
        // with semi-implicit Euler a force delta δ moves v by δ·Δt and x by
        // δ·Δt², so the post-integration state can be fixed in place — the
        // paper's `correct(X_j(t+1))`.
        let centroid = self.centroid();
        let dt = self.cfg.dt;
        let masses = self.masses_of(from.0).to_vec();
        let mut ops = 0u64;
        for i in 0..actual.pos.len() {
            let err_abs = speculated.pos[i].distance(actual.pos[i]);
            let denom = actual.pos[i].distance(centroid).max(self.cfg.softening);
            if err_abs / denom <= self.cfg.theta {
                continue;
            }
            for b in 0..self.pos.len() {
                let target = self.pos_at_compute[b];
                let delta = accel_from(
                    target,
                    actual.pos[i],
                    masses[i],
                    self.cfg.g,
                    self.cfg.softening,
                ) - accel_from(
                    target,
                    speculated.pos[i],
                    masses[i],
                    self.cfg.g,
                    self.cfg.softening,
                );
                self.vel[b] += delta * dt;
                self.pos[b] += delta * (dt * dt);
            }
            ops += 2 * OPS_PER_PAIR * self.pos.len() as u64;
        }
        ops
    }

    #[allow(clippy::needless_range_loop)] // i couples actual/speculated/masses
    fn correct_deep(
        &mut self,
        from: Rank,
        speculated: &PartitionShared,
        actual: &PartitionShared,
        depth: u64,
    ) -> Option<u64> {
        // First-order propagation of the force correction through the
        // `depth` iterations already executed on top: a velocity error
        // δ·Δt present for (depth + 1) integration steps displaced
        // positions by δ·Δt²·(depth + 1). The residual (the slightly wrong
        // forces used in the interim iterations) is second-order in a
        // θ-bounded quantity — the same accept-small-errors trade the
        // paper makes throughout.
        let centroid = self.centroid();
        let dt = self.cfg.dt;
        let steps = (depth + 1) as f64;
        let masses = self.masses_of(from.0).to_vec();
        let mut ops = 0u64;
        for i in 0..actual.pos.len() {
            let err_abs = speculated.pos[i].distance(actual.pos[i]);
            let denom = actual.pos[i].distance(centroid).max(self.cfg.softening);
            if err_abs / denom <= self.cfg.theta {
                continue;
            }
            for b in 0..self.pos.len() {
                let target = self.pos_at_compute[b];
                let delta = accel_from(
                    target,
                    actual.pos[i],
                    masses[i],
                    self.cfg.g,
                    self.cfg.softening,
                ) - accel_from(
                    target,
                    speculated.pos[i],
                    masses[i],
                    self.cfg.g,
                    self.cfg.softening,
                );
                self.vel[b] += delta * dt;
                self.pos[b] += delta * (dt * dt * steps);
            }
            ops += 2 * OPS_PER_PAIR * self.pos.len() as u64;
        }
        Some(ops)
    }

    fn checkpoint(&self) -> (Vec<Vec3>, Vec<Vec3>) {
        (self.pos.clone(), self.vel.clone())
    }

    fn restore(&mut self, c: &(Vec<Vec3>, Vec<Vec3>)) {
        self.pos.clone_from(&c.0);
        self.vel.clone_from(&c.1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particle::{rotating_disk, uniform_cloud};
    use crate::partition::partition_proportional;

    fn hist_of(shares: &[PartitionShared]) -> History<PartitionShared> {
        let mut h = History::new(4);
        for (i, s) in shares.iter().enumerate() {
            h.record(i as u64, s.clone());
        }
        h
    }

    fn share(pos: Vec<Vec3>, vel: Vec<Vec3>) -> PartitionShared {
        PartitionShared { pos, vel }
    }

    fn make_app(n: usize, p: usize, me: usize, theta: f64) -> NBodyApp {
        let particles = uniform_cloud(n, 1);
        let ranges = partition_proportional(n, &vec![1.0; p]);
        NBodyApp::new(
            &particles,
            ranges,
            me,
            NBodyConfig::default().with_theta(theta),
            SpeculationOrder::Linear,
        )
    }

    #[test]
    fn construction_slices_the_partition() {
        let app = make_app(30, 3, 1, 0.01);
        assert_eq!(app.len(), 10);
        assert_eq!(app.range(), 10..20);
        assert_eq!(app.particles().len(), 10);
    }

    #[test]
    fn linear_speculation_is_eq_10() {
        let app = make_app(10, 2, 0, 0.01);
        let v = Vec3::new(1.0, -2.0, 0.5);
        let r = Vec3::new(0.1, 0.2, 0.3);
        let h = hist_of(&[share(vec![r], vec![v])]);
        let (spec, ops) = app.speculate(Rank(1), &h, 1).unwrap();
        let dt = NBodyConfig::default().dt;
        assert_eq!(spec.pos[0], r + v * dt);
        assert_eq!(spec.vel[0], v);
        assert_eq!(ops, OPS_PER_SPECULATE);
    }

    #[test]
    fn speculation_scales_with_ahead() {
        let app = make_app(10, 2, 0, 0.01);
        let v = Vec3::new(1.0, 0.0, 0.0);
        let r = ZERO3;
        let h = hist_of(&[share(vec![r], vec![v])]);
        let dt = NBodyConfig::default().dt;
        let (s1, _) = app.speculate(Rank(1), &h, 1).unwrap();
        let (s3, _) = app.speculate(Rank(1), &h, 3).unwrap();
        assert_eq!(s1.pos[0].x, dt);
        assert_eq!(s3.pos[0].x, 3.0 * dt);
    }

    #[test]
    fn quadratic_speculation_uses_acceleration() {
        let particles = uniform_cloud(10, 1);
        let ranges = partition_proportional(10, &[1.0, 1.0]);
        let app = NBodyApp::new(
            &particles,
            ranges,
            0,
            NBodyConfig::default(),
            SpeculationOrder::Quadratic,
        );
        let dt = NBodyConfig::default().dt;
        // Velocity grew from 1 to 2 over one step → a = 1/dt.
        let h = hist_of(&[
            share(vec![ZERO3], vec![Vec3::new(1.0, 0.0, 0.0)]),
            share(
                vec![Vec3::new(dt, 0.0, 0.0)],
                vec![Vec3::new(2.0, 0.0, 0.0)],
            ),
        ]);
        let (spec, _) = app.speculate(Rank(1), &h, 1).unwrap();
        // v* = 2 + (1/dt)·dt = 3; r* = dt + 2·dt + ½·(1/dt)·dt² = 3.5·dt.
        assert!((spec.vel[0].x - 3.0).abs() < 1e-12);
        assert!((spec.pos[0].x - 3.5 * dt).abs() < 1e-12);
    }

    #[test]
    fn empty_history_cannot_speculate() {
        let app = make_app(10, 2, 0, 0.01);
        let h: History<PartitionShared> = History::new(4);
        assert!(app.speculate(Rank(1), &h, 1).is_none());
    }

    #[test]
    fn check_accepts_exact_speculation() {
        let app = make_app(10, 2, 0, 0.01);
        let s = share(vec![Vec3::new(5.0, 0.0, 0.0)], vec![ZERO3]);
        let out = app.check(Rank(1), &s, &s.clone());
        assert!(out.accept);
        assert_eq!(out.max_error, 0.0);
        assert_eq!(out.bad_units, 0);
        assert_eq!(out.checked_units, 1);
    }

    #[test]
    fn check_rejects_large_displacement() {
        let app = make_app(10, 2, 0, 0.01);
        let actual = share(vec![Vec3::new(5.0, 0.0, 0.0)], vec![ZERO3]);
        let spec = share(vec![Vec3::new(6.0, 0.0, 0.0)], vec![ZERO3]);
        let out = app.check(Rank(1), &actual, &spec);
        assert!(!out.accept);
        assert_eq!(out.bad_units, 1);
        assert!(out.max_error > 0.01);
    }

    #[test]
    fn check_error_scales_with_distance() {
        // Eq. 11: the same absolute displacement matters less for a farther
        // particle.
        let app = make_app(10, 2, 0, 0.01);
        let near_actual = share(vec![Vec3::new(1.0, 0.0, 0.0)], vec![ZERO3]);
        let near_spec = share(vec![Vec3::new(1.01, 0.0, 0.0)], vec![ZERO3]);
        let far_actual = share(vec![Vec3::new(100.0, 0.0, 0.0)], vec![ZERO3]);
        let far_spec = share(vec![Vec3::new(100.01, 0.0, 0.0)], vec![ZERO3]);
        let near = app.check(Rank(1), &near_actual, &near_spec);
        let far = app.check(Rank(1), &far_actual, &far_spec);
        assert!(near.max_error > far.max_error);
    }

    #[test]
    fn correction_repairs_a_misspeculated_iteration() {
        // Run one iteration twice from identical state: once with the
        // actual remote value, once with a bad speculation followed by
        // correct(). Results must agree to FP noise.
        let cfg = NBodyConfig::default().with_theta(0.0);
        let particles = uniform_cloud(20, 2);
        let ranges = partition_proportional(20, &[1.0, 1.0]);
        let remote_actual = share(
            particles[10..].iter().map(|p| p.pos).collect(),
            particles[10..].iter().map(|p| p.vel).collect(),
        );
        let mut remote_spec = remote_actual.clone();
        for p in &mut remote_spec.pos {
            *p += Vec3::new(0.05, -0.02, 0.01);
        }

        let mut golden =
            NBodyApp::new(&particles, ranges.clone(), 0, cfg, SpeculationOrder::Linear);
        golden.begin_iteration();
        golden.absorb(Rank(1), &remote_actual);
        golden.finish_iteration();

        let mut fixed = NBodyApp::new(&particles, ranges, 0, cfg, SpeculationOrder::Linear);
        fixed.begin_iteration();
        fixed.absorb(Rank(1), &remote_spec);
        fixed.finish_iteration();
        let ops = fixed.correct(Rank(1), &remote_spec, &remote_actual);
        assert!(ops > 0);

        for (a, b) in golden.pos.iter().zip(&fixed.pos) {
            assert!(a.distance(*b) < 1e-12, "correction left position residue");
        }
        for (a, b) in golden.vel.iter().zip(&fixed.vel) {
            assert!(a.distance(*b) < 1e-12, "correction left velocity residue");
        }
    }

    #[test]
    fn correction_skips_acceptable_particles() {
        // θ large: nothing exceeds the bound, so correct() is a no-op.
        let cfg = NBodyConfig::default().with_theta(1e6);
        let particles = uniform_cloud(20, 2);
        let ranges = partition_proportional(20, &[1.0, 1.0]);
        let mut app = NBodyApp::new(&particles, ranges, 0, cfg, SpeculationOrder::Linear);
        app.begin_iteration();
        let actual = share(
            particles[10..].iter().map(|p| p.pos).collect(),
            particles[10..].iter().map(|p| p.vel).collect(),
        );
        let mut spec = actual.clone();
        spec.pos[0] += Vec3::new(0.001, 0.0, 0.0);
        app.absorb(Rank(1), &spec);
        app.finish_iteration();
        let before = app.pos.clone();
        let ops = app.correct(Rank(1), &spec, &actual);
        assert_eq!(ops, 0);
        assert_eq!(app.pos, before);
    }

    #[test]
    fn checkpoint_restore_round_trips() {
        let mut app = make_app(12, 2, 0, 0.01);
        let c = app.checkpoint();
        let actual = share(vec![Vec3::new(1.0, 1.0, 1.0); 6], vec![ZERO3; 6]);
        app.begin_iteration();
        app.absorb(Rank(1), &actual);
        app.finish_iteration();
        assert_ne!(app.pos, c.0);
        app.restore(&c);
        assert_eq!(app.pos, c.0);
        assert_eq!(app.vel, c.1);
    }

    #[test]
    fn disk_speculation_is_accurate() {
        // On near-circular orbits, eq. 10 should predict within a small
        // fraction of the inter-particle scale over one dt.
        let particles = rotating_disk(40, 7);
        let ranges = partition_proportional(40, &[1.0, 1.0]);
        let cfg = NBodyConfig {
            g: 1.0,
            softening: 0.02,
            dt: 1e-3,
            theta: 0.01,
        };
        let app = NBodyApp::new(&particles, ranges.clone(), 0, cfg, SpeculationOrder::Linear);

        // Evolve the real system one step to get the "actual" message.
        let mut world = particles.clone();
        crate::integrate::step_natural(&mut world, &cfg);
        let remote_now = share(
            particles[ranges[1].clone()].iter().map(|p| p.pos).collect(),
            particles[ranges[1].clone()].iter().map(|p| p.vel).collect(),
        );
        let remote_next = share(
            world[ranges[1].clone()].iter().map(|p| p.pos).collect(),
            world[ranges[1].clone()].iter().map(|p| p.vel).collect(),
        );
        let h = hist_of(&[remote_now]);
        let (spec, _) = app.speculate(Rank(1), &h, 1).unwrap();
        let out = app.check(Rank(1), &remote_next, &spec);
        assert!(
            out.accept,
            "disk speculation should pass θ=0.01, max err {}",
            out.max_error
        );
    }

    #[test]
    fn wire_size_counts_both_vectors() {
        let s = share(vec![ZERO3; 10], vec![ZERO3; 10]);
        assert_eq!(s.wire_size(), 2 * (8 + 240));
    }
}
