//! End-to-end parallel N-body experiment runner: partitions particles over
//! a simulated cluster, runs the speculative (or baseline) driver on every
//! rank, and reassembles results and statistics.

use std::sync::Arc;

use desim::{SimError, SimReport};
use mpk::{run_sim_cluster_with_faults, FaultSpec, Transport};
use netsim::{ClusterSpec, LoadModel, NetworkModel};
use obs::{RunTrace, SharedRecorder};
use speccore::{run_speculative, ClusterStats, IterMsg, RunStats, SpecConfig};

use crate::app::{NBodyApp, PartitionShared, SpeculationOrder};
use crate::particle::{NBodyConfig, Particle};
use crate::partition::partition_proportional;

/// Parameters of one parallel run.
#[derive(Clone, Debug)]
pub struct ParallelRunConfig {
    /// Number of timesteps.
    pub iterations: u64,
    /// Driver configuration (forward window, correction mode, BW).
    pub spec: SpecConfig,
    /// Physics parameters, including θ.
    pub nbody: NBodyConfig,
    /// Speculation function.
    pub order: SpeculationOrder,
    /// Collect structured telemetry (phase spans, message marks, gauges)
    /// into [`ParallelRunResult::traces`]. Telemetry is virtual-time only,
    /// so it does not perturb the simulated schedule.
    pub collect_trace: bool,
}

impl ParallelRunConfig {
    /// A run of `iterations` steps with the given forward window and the
    /// paper's defaults elsewhere.
    pub fn new(iterations: u64, forward_window: u32) -> Self {
        ParallelRunConfig {
            iterations,
            spec: if forward_window == 0 {
                SpecConfig::baseline()
            } else {
                SpecConfig::speculative(forward_window)
            },
            nbody: NBodyConfig::default(),
            order: SpeculationOrder::Linear,
            collect_trace: false,
        }
    }

    /// Enable structured telemetry collection.
    pub fn with_trace(mut self) -> Self {
        self.collect_trace = true;
        self
    }
}

/// Everything a parallel run produces.
#[derive(Debug)]
pub struct ParallelRunResult {
    /// Final particle state, global order.
    pub particles: Vec<Particle>,
    /// Per-rank driver statistics.
    pub stats: ClusterStats,
    /// Simulation-kernel report (end time, event counts, traces).
    pub report: SimReport,
    /// Per-rank structured telemetry (rank ascending, kernel track last),
    /// present when [`ParallelRunConfig::collect_trace`] was set.
    pub traces: Option<Vec<RunTrace>>,
}

impl ParallelRunResult {
    /// The run's virtual wall-clock: the makespan over ranks.
    pub fn elapsed_secs(&self) -> f64 {
        self.report.end_time.as_secs_f64()
    }
}

/// Simulate `particles` for `cfg.iterations` timesteps on `cluster` with
/// the given network and load models, one rank per machine, partitioned
/// proportionally to capacity (the paper's eqs. 4–5).
pub fn run_parallel(
    particles: &[Particle],
    cluster: &ClusterSpec,
    net: impl NetworkModel + 'static,
    load: impl LoadModel + 'static,
    cfg: ParallelRunConfig,
) -> Result<ParallelRunResult, SimError> {
    run_parallel_with_faults(particles, cluster, net, load, FaultSpec::none(), cfg)
}

/// [`run_parallel`] over an unreliable network: `faults` decides per
/// message whether it is delivered, duplicated, or corrupted, and can
/// schedule machine crashes. Pair with
/// [`SpecConfig::with_fault_tolerance`](speccore::SpecConfig) so the
/// driver speculates through the losses instead of deadlocking.
pub fn run_parallel_with_faults(
    particles: &[Particle],
    cluster: &ClusterSpec,
    net: impl NetworkModel + 'static,
    load: impl LoadModel + 'static,
    faults: FaultSpec<IterMsg<Arc<PartitionShared>>>,
    cfg: ParallelRunConfig,
) -> Result<ParallelRunResult, SimError> {
    let ranges = partition_proportional(particles.len(), &cluster.capacities());
    let all: Arc<Vec<Particle>> = Arc::new(particles.to_vec());
    let ranges_shared = Arc::new(ranges);
    let recorder = cfg.collect_trace.then(SharedRecorder::new);

    let (outs, report): (Vec<(Vec<Particle>, RunStats)>, SimReport) =
        run_sim_cluster_with_faults::<IterMsg<Arc<PartitionShared>>, _, _>(
            cluster,
            net,
            load,
            faults,
            false,
            {
                let all = Arc::clone(&all);
                let ranges = Arc::clone(&ranges_shared);
                let cfg = cfg.clone();
                let recorder = recorder.clone();
                move |t| {
                    if let Some(rec) = &recorder {
                        t.set_recorder(Box::new(rec.clone()));
                    }
                    let mut app = NBodyApp::new(
                        &all,
                        ranges.as_ref().clone(),
                        t.rank().0,
                        cfg.nbody,
                        cfg.order,
                    );
                    let stats = run_speculative(t, &mut app, cfg.iterations, cfg.spec.clone());
                    (app.particles(), stats)
                }
            },
        )?;

    let mut final_particles = Vec::with_capacity(particles.len());
    let mut per_rank = Vec::with_capacity(outs.len());
    for (chunk, stats) in outs {
        final_particles.extend(chunk);
        per_rank.push(stats);
    }
    let traces = recorder.map(|rec| RunTrace::split_by_rank(rec.drain()));
    Ok(ParallelRunResult {
        particles: final_particles,
        stats: ClusterStats::new(per_rank),
        report,
        traces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::step_partition_order;
    use crate::particle::uniform_cloud;
    use desim::SimDuration;
    use netsim::{ConstantLatency, Unloaded};
    use speccore::CorrectionMode;

    #[test]
    fn parallel_baseline_matches_sequential_bitwise() {
        let particles = uniform_cloud(24, 5);
        let cluster = ClusterSpec::new(vec![
            netsim::MachineSpec::new(30.0),
            netsim::MachineSpec::new(20.0),
            netsim::MachineSpec::new(10.0),
        ]);
        let iters = 5;
        let result = run_parallel(
            &particles,
            &cluster,
            ConstantLatency(SimDuration::from_millis(1)),
            Unloaded,
            ParallelRunConfig::new(iters, 0),
        )
        .unwrap();

        let ranges = partition_proportional(particles.len(), &cluster.capacities());
        let mut reference = particles.clone();
        for _ in 0..iters {
            step_partition_order(&mut reference, &ranges, &NBodyConfig::default());
        }
        for (got, want) in result.particles.iter().zip(&reference) {
            assert_eq!(got.pos, want.pos, "baseline must match sequential exactly");
            assert_eq!(got.vel, want.vel);
        }
    }

    #[test]
    fn speculative_theta_zero_recompute_matches_sequential_bitwise() {
        let particles = uniform_cloud(18, 8);
        let cluster = ClusterSpec::homogeneous(3, 10.0);
        let iters = 4;
        let mut cfg = ParallelRunConfig::new(iters, 1);
        cfg.nbody = cfg.nbody.with_theta(0.0);
        cfg.spec = cfg.spec.with_correction(CorrectionMode::Recompute);
        let result = run_parallel(
            &particles,
            &cluster,
            ConstantLatency(SimDuration::from_millis(2)),
            Unloaded,
            cfg,
        )
        .unwrap();

        let ranges = partition_proportional(particles.len(), &cluster.capacities());
        let mut reference = particles.clone();
        for _ in 0..iters {
            step_partition_order(
                &mut reference,
                &ranges,
                &NBodyConfig::default().with_theta(0.0),
            );
        }
        for (got, want) in result.particles.iter().zip(&reference) {
            assert_eq!(got.pos, want.pos, "θ=0 + recompute must be exact");
        }
        // And speculation must actually have happened for the test to mean
        // anything.
        assert!(result
            .stats
            .per_rank
            .iter()
            .any(|r| r.speculated_partitions > 0));
    }

    #[test]
    fn speculation_accepted_run_stays_physically_close() {
        let particles = uniform_cloud(30, 3);
        let cluster = ClusterSpec::homogeneous(3, 10.0);
        let iters = 10;
        let cfg = ParallelRunConfig::new(iters, 1); // θ = 0.01 default
        let result = run_parallel(
            &particles,
            &cluster,
            ConstantLatency(SimDuration::from_millis(2)),
            Unloaded,
            cfg,
        )
        .unwrap();

        let ranges = partition_proportional(particles.len(), &cluster.capacities());
        let mut reference = particles.clone();
        for _ in 0..iters {
            step_partition_order(&mut reference, &ranges, &NBodyConfig::default());
        }
        // Accepted speculations leave bounded error; trajectories must stay
        // close on this timescale.
        for (got, want) in result.particles.iter().zip(&reference) {
            assert!(
                got.pos.distance(want.pos) < 1e-3,
                "accepted-speculation drift too large: {}",
                got.pos.distance(want.pos)
            );
        }
    }

    #[test]
    fn speculation_reduces_makespan_under_latency() {
        let particles = uniform_cloud(64, 9);
        let cluster = ClusterSpec::homogeneous(4, 1.0);
        // ~64/4=16 particles/rank → begin+absorb ≈ 16·64·70 ≈ 72k ops ≈
        // 72ms at 1 MIPS; latency 30ms is worth masking.
        let run = |fw: u32| {
            run_parallel(
                &particles,
                &cluster,
                ConstantLatency(SimDuration::from_millis(30)),
                Unloaded,
                ParallelRunConfig::new(8, fw),
            )
            .unwrap()
            .elapsed_secs()
        };
        let base = run(0);
        let spec = run(1);
        assert!(
            spec < base,
            "speculation must mask the 30ms latency: base {base}s vs spec {spec}s"
        );
    }

    #[test]
    fn stats_cover_all_ranks() {
        let particles = uniform_cloud(20, 2);
        let cluster = ClusterSpec::homogeneous(4, 10.0);
        let result = run_parallel(
            &particles,
            &cluster,
            ConstantLatency(SimDuration::from_millis(1)),
            Unloaded,
            ParallelRunConfig::new(3, 1),
        )
        .unwrap();
        assert_eq!(result.stats.per_rank.len(), 4);
        assert_eq!(result.particles.len(), 20);
        for (i, r) in result.stats.per_rank.iter().enumerate() {
            assert_eq!(r.rank.0, i);
            assert_eq!(r.iterations, 3);
        }
    }
}
