//! Pairwise gravitational forces — the O(N²) kernel of the paper's §5.
//!
//! The paper counts "about 70 floating point operations" to compute the
//! force between a pair of particles, 12 to speculate a position, 24 to
//! check one; those constants parameterize the cost model so the simulated
//! timings keep the paper's compute/speculate/check ratios.

use crate::soa::Soa3;
use crate::vec3::Vec3;

/// Paper's cost of one pairwise force evaluation, in operations.
pub const OPS_PER_PAIR: u64 = 70;
/// Paper's cost of speculating one particle's position.
pub const OPS_PER_SPECULATE: u64 = 12;
/// Paper's cost of checking one particle's speculation error.
pub const OPS_PER_CHECK: u64 = 24;
/// Cost of one integration update (velocity + position) per particle.
pub const OPS_PER_UPDATE: u64 = 12;

/// Acceleration exerted on a particle at `on_pos` by a source of mass
/// `src_mass` at `src_pos`, with Plummer softening `eps`:
/// `a = G · m · (r_src − r_on) / (|r|² + ε²)^{3/2}`.
#[inline]
pub fn accel_from(on_pos: Vec3, src_pos: Vec3, src_mass: f64, g: f64, eps: f64) -> Vec3 {
    let d = src_pos - on_pos;
    let dist_sq = d.norm_sq() + eps * eps;
    let inv = 1.0 / (dist_sq * dist_sq.sqrt());
    d * (g * src_mass * inv)
}

/// Accumulate into `acc` the accelerations that every source in
/// `(src_pos, src_mass)` exerts on every target in `targets`. Returns the
/// modelled operation count (`OPS_PER_PAIR` per pair).
pub fn accumulate_partition(
    targets: &[Vec3],
    acc: &mut [Vec3],
    src_pos: &[Vec3],
    src_mass: &[f64],
    g: f64,
    eps: f64,
) -> u64 {
    debug_assert_eq!(targets.len(), acc.len());
    debug_assert_eq!(src_pos.len(), src_mass.len());
    for (b, &pb) in targets.iter().enumerate() {
        let mut a = acc[b];
        for (j, &pa) in src_pos.iter().enumerate() {
            a += accel_from(pb, pa, src_mass[j], g, eps);
        }
        acc[b] = a;
    }
    (targets.len() as u64) * (src_pos.len() as u64) * OPS_PER_PAIR
}

/// Accumulate intra-partition accelerations (each particle on every other
/// of the same partition), skipping self-interaction. Returns the op count.
pub fn accumulate_self(pos: &[Vec3], mass: &[f64], acc: &mut [Vec3], g: f64, eps: f64) -> u64 {
    debug_assert_eq!(pos.len(), mass.len());
    debug_assert_eq!(pos.len(), acc.len());
    let n = pos.len();
    for b in 0..n {
        let mut a = acc[b];
        for j in 0..n {
            if j != b {
                a += accel_from(pos[b], pos[j], mass[j], g, eps);
            }
        }
        acc[b] = a;
    }
    (n as u64) * (n.saturating_sub(1) as u64) * OPS_PER_PAIR
}

// ---------------------------------------------------------------------------
// SoA engine
// ---------------------------------------------------------------------------
//
// The kernels below are the production hot path. They are *bit-identical*
// to the AoS reference kernels above: every pair is evaluated with the
// same expression tree (`d = r_src − r_on`, `q = |d|² + ε²`,
// `inv = 1/(q·√q)`, `scale = (G·m)·inv`, `a += d·scale`) and every
// target accumulates its sources in the same ascending order — blocking
// only changes *when* a partial sum is spilled to memory, never the
// sequence of rounded additions. The modelled op counts are unchanged,
// so simulated (virtual-time) results cannot move; only wall-clock does.

/// Source-tile size for cache blocking: 512 elements × four f64 arrays
/// (x, y, z, mass) = 16 KiB, half a typical 32 KiB L1d, leaving room for
/// the target block and accumulators.
const TILE: usize = 512;

/// Register-block width for targets: eight independent accumulator chains
/// let the out-of-order core overlap the sqrt/div latency of consecutive
/// pairs, and give the autovectorizer a clean 4-lane inner loop
/// (IEEE-754 sqrt/div/mul/add are exactly rounded, so SIMD lanes produce
/// the same bits as scalar evaluation).
const LANES: usize = 8;

/// SoA twin of [`accumulate_partition`]: accelerations from every source
/// in `(src, src_mass)` onto every target, accumulated into `acc`.
/// Bit-identical to the AoS kernel; returns the same modelled op count.
pub fn accumulate_partition_soa(
    targets: &Soa3,
    acc: &mut Soa3,
    src: &Soa3,
    src_mass: &[f64],
    g: f64,
    eps: f64,
) -> u64 {
    let nt = targets.len();
    let ns = src.len();
    debug_assert_eq!(nt, acc.len());
    debug_assert_eq!(ns, src_mass.len());
    let eps2 = eps * eps;
    let (tx, ty, tz) = (&targets.x[..nt], &targets.y[..nt], &targets.z[..nt]);
    let (ax, ay, az) = (&mut acc.x, &mut acc.y, &mut acc.z);

    let mut s0 = 0usize;
    while s0 < ns {
        let s1 = (s0 + TILE).min(ns);
        let (sx, sy, sz) = (&src.x[s0..s1], &src.y[s0..s1], &src.z[s0..s1]);
        let sm = &src_mass[s0..s1];

        let mut i = 0usize;
        while i + LANES <= nt {
            let px: [f64; LANES] = tx[i..i + LANES].try_into().unwrap();
            let py: [f64; LANES] = ty[i..i + LANES].try_into().unwrap();
            let pz: [f64; LANES] = tz[i..i + LANES].try_into().unwrap();
            let mut lx: [f64; LANES] = ax[i..i + LANES].try_into().unwrap();
            let mut ly: [f64; LANES] = ay[i..i + LANES].try_into().unwrap();
            let mut lz: [f64; LANES] = az[i..i + LANES].try_into().unwrap();
            for (((&qx, &qy), &qz), &qm) in sx.iter().zip(sy).zip(sz).zip(sm) {
                let gm = g * qm;
                for l in 0..LANES {
                    let dx = qx - px[l];
                    let dy = qy - py[l];
                    let dz = qz - pz[l];
                    let dist_sq = (dx * dx + dy * dy + dz * dz) + eps2;
                    let inv = 1.0 / (dist_sq * dist_sq.sqrt());
                    let s = gm * inv;
                    lx[l] += dx * s;
                    ly[l] += dy * s;
                    lz[l] += dz * s;
                }
            }
            ax[i..i + LANES].copy_from_slice(&lx);
            ay[i..i + LANES].copy_from_slice(&ly);
            az[i..i + LANES].copy_from_slice(&lz);
            i += LANES;
        }
        while i < nt {
            let (pxi, pyi, pzi) = (tx[i], ty[i], tz[i]);
            let (mut aix, mut aiy, mut aiz) = (ax[i], ay[i], az[i]);
            for (((&qx, &qy), &qz), &qm) in sx.iter().zip(sy).zip(sz).zip(sm) {
                let dx = qx - pxi;
                let dy = qy - pyi;
                let dz = qz - pzi;
                let dist_sq = (dx * dx + dy * dy + dz * dz) + eps2;
                let inv = 1.0 / (dist_sq * dist_sq.sqrt());
                let s = (g * qm) * inv;
                aix += dx * s;
                aiy += dy * s;
                aiz += dz * s;
            }
            ax[i] = aix;
            ay[i] = aiy;
            az[i] = aiz;
            i += 1;
        }
        s0 = s1;
    }
    (nt as u64) * (ns as u64) * OPS_PER_PAIR
}

/// One symmetric sweep: target `i` against sources `js`, applying each
/// pair to both endpoints (Newton's third law). The reverse contribution
/// is written with the exact expressions the one-sided kernel would use
/// (`d' = r_i − r_j` recomputed, not `−d`, so even the sign of zero
/// matches), and `dist²`/`inv` are shared — bitwise equal both ways
/// because `(−a)² ≡ a²` under IEEE-754.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn symmetric_sweep(
    px: &[f64],
    py: &[f64],
    pz: &[f64],
    mass: &[f64],
    ax: &mut [f64],
    ay: &mut [f64],
    az: &mut [f64],
    i: usize,
    js: std::ops::Range<usize>,
    g: f64,
    eps2: f64,
) {
    // The i-side accumulation is a serial FP reduction (order is part of
    // the bit contract), which would chain the expensive divide/sqrt into
    // it if fused. Split each block: pass 1 computes displacements and
    // `inv` with no cross-iteration dependency (autovectorizes, including
    // the division and square root — both exactly rounded per IEEE lane),
    // pass 2 replays the cheap multiply/adds in serial order.
    const BLK: usize = 8;
    let (pxi, pyi, pzi) = (px[i], py[i], pz[i]);
    let gmi = g * mass[i];
    let (mut aix, mut aiy, mut aiz) = (ax[i], ay[i], az[i]);
    let mut j = js.start;
    while j + BLK <= js.end {
        let pxs: &[f64; BLK] = px[j..j + BLK].try_into().unwrap();
        let pys: &[f64; BLK] = py[j..j + BLK].try_into().unwrap();
        let pzs: &[f64; BLK] = pz[j..j + BLK].try_into().unwrap();
        let ms: &[f64; BLK] = mass[j..j + BLK].try_into().unwrap();
        let mut fix = [0.0f64; BLK];
        let mut fiy = [0.0f64; BLK];
        let mut fiz = [0.0f64; BLK];
        let mut gx = [0.0f64; BLK];
        let mut gy = [0.0f64; BLK];
        let mut gz = [0.0f64; BLK];
        for l in 0..BLK {
            let dx = pxs[l] - pxi;
            let dy = pys[l] - pyi;
            let dz = pzs[l] - pzi;
            let dist_sq = (dx * dx + dy * dy + dz * dz) + eps2;
            let inv = 1.0 / (dist_sq * dist_sq.sqrt());
            let si = (g * ms[l]) * inv;
            let sj = gmi * inv;
            fix[l] = dx * si;
            fiy[l] = dy * si;
            fiz[l] = dz * si;
            gx[l] = (pxi - pxs[l]) * sj;
            gy[l] = (pyi - pys[l]) * sj;
            gz[l] = (pzi - pzs[l]) * sj;
        }
        // The only irreducibly serial piece: the i-side sum in ascending
        // j order (three independent add chains).
        for l in 0..BLK {
            aix += fix[l];
            aiy += fiy[l];
            aiz += fiz[l];
        }
        // Each j in the block is distinct, so the reverse updates are a
        // contiguous vector add — no reduction, no ordering concern.
        let axs: &mut [f64; BLK] = (&mut ax[j..j + BLK]).try_into().unwrap();
        for l in 0..BLK {
            axs[l] += gx[l];
        }
        let ays: &mut [f64; BLK] = (&mut ay[j..j + BLK]).try_into().unwrap();
        for l in 0..BLK {
            ays[l] += gy[l];
        }
        let azs: &mut [f64; BLK] = (&mut az[j..j + BLK]).try_into().unwrap();
        for l in 0..BLK {
            azs[l] += gz[l];
        }
        j += BLK;
    }
    for j in j..js.end {
        let dx = px[j] - pxi;
        let dy = py[j] - pyi;
        let dz = pz[j] - pzi;
        let dist_sq = (dx * dx + dy * dy + dz * dz) + eps2;
        let inv = 1.0 / (dist_sq * dist_sq.sqrt());
        let si = (g * mass[j]) * inv;
        let sj = gmi * inv;
        aix += dx * si;
        aiy += dy * si;
        aiz += dz * si;
        let ex = pxi - px[j];
        let ey = pyi - py[j];
        let ez = pzi - pz[j];
        ax[j] += ex * sj;
        ay[j] += ey * sj;
        az[j] += ez * sj;
    }
    ax[i] = aix;
    ay[i] = aiy;
    az[i] = aiz;
}

/// SoA twin of [`accumulate_self`], evaluating each unordered pair once
/// and applying it to both endpoints — half the pair evaluations of the
/// reference kernel for the same bits. Tiles are visited in
/// lexicographic order (diagonal first, then off-diagonals ascending),
/// which delivers every target its sources in exactly the ascending
/// order of the one-sided loop. The returned modelled op count is
/// unchanged: the *paper's* cost model still pays `n·(n−1)` pair
/// evaluations; only our wall-clock exploits the symmetry.
pub fn accumulate_self_soa(pos: &Soa3, mass: &[f64], acc: &mut Soa3, g: f64, eps: f64) -> u64 {
    let n = pos.len();
    debug_assert_eq!(n, mass.len());
    debug_assert_eq!(n, acc.len());
    let eps2 = eps * eps;
    let (px, py, pz) = (&pos.x[..n], &pos.y[..n], &pos.z[..n]);
    let (ax, ay, az) = (&mut acc.x, &mut acc.y, &mut acc.z);

    let mut t0 = 0usize;
    while t0 < n {
        let t1 = (t0 + TILE).min(n);
        // Diagonal tile: triangular sweep within [t0, t1).
        for i in t0..t1 {
            symmetric_sweep(px, py, pz, mass, ax, ay, az, i, i + 1..t1, g, eps2);
        }
        // Off-diagonal tiles [t0, t1) × [u0, u1), ascending.
        let mut u0 = t1;
        while u0 < n {
            let u1 = (u0 + TILE).min(n);
            for i in t0..t1 {
                symmetric_sweep(px, py, pz, mass, ax, ay, az, i, u0..u1, g, eps2);
            }
            u0 = u1;
        }
        t0 = t1;
    }
    (n as u64) * (n.saturating_sub(1) as u64) * OPS_PER_PAIR
}

/// Acceleration at a single `point` from a gathered SoA interaction list
/// (positions + masses), accumulated in list order. Used by the
/// Barnes–Hut tree walk after gathering accepted nodes.
pub fn accel_point_soa(src: &Soa3, mass: &[f64], point: Vec3, g: f64, eps: f64) -> Vec3 {
    debug_assert_eq!(src.len(), mass.len());
    let eps2 = eps * eps;
    let (mut axp, mut ayp, mut azp) = (0.0f64, 0.0f64, 0.0f64);
    for (((&qx, &qy), &qz), &qm) in src.x.iter().zip(&src.y).zip(&src.z).zip(mass) {
        let dx = qx - point.x;
        let dy = qy - point.y;
        let dz = qz - point.z;
        let dist_sq = (dx * dx + dy * dy + dz * dz) + eps2;
        let inv = 1.0 / (dist_sq * dist_sq.sqrt());
        let s = (g * qm) * inv;
        axp += dx * s;
        ayp += dy * s;
        azp += dz * s;
    }
    Vec3::new(axp, ayp, azp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::ZERO3;

    const G: f64 = 1.0;

    #[test]
    fn accel_points_toward_source() {
        let a = accel_from(ZERO3, Vec3::new(2.0, 0.0, 0.0), 1.0, G, 0.0);
        assert!(a.x > 0.0);
        assert_eq!(a.y, 0.0);
        assert_eq!(a.z, 0.0);
    }

    #[test]
    fn accel_magnitude_matches_inverse_square() {
        // Unsoftened: |a| = G·m/r².
        let a = accel_from(ZERO3, Vec3::new(2.0, 0.0, 0.0), 3.0, G, 0.0);
        assert!((a.norm() - 3.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn softening_caps_close_encounters() {
        let near = accel_from(ZERO3, Vec3::new(1e-9, 0.0, 0.0), 1.0, G, 0.05);
        assert!(near.is_finite());
        assert!(near.norm() < 1.0, "softened force must stay bounded");
    }

    #[test]
    fn newton_third_law_symmetry() {
        // Accel scaled by masses gives equal and opposite forces.
        let p1 = Vec3::new(0.3, -1.0, 2.0);
        let p2 = Vec3::new(-0.7, 0.4, 0.9);
        let (m1, m2) = (2.0, 5.0);
        let f12 = accel_from(p1, p2, m2, G, 0.01) * m1;
        let f21 = accel_from(p2, p1, m1, G, 0.01) * m2;
        assert!((f12 + f21).norm() < 1e-12 * f12.norm().max(1.0));
    }

    #[test]
    fn accumulate_partition_sums_all_sources() {
        let targets = vec![ZERO3];
        let mut acc = vec![ZERO3];
        let src = vec![Vec3::new(1.0, 0.0, 0.0), Vec3::new(-1.0, 0.0, 0.0)];
        let mass = vec![1.0, 1.0];
        let ops = accumulate_partition(&targets, &mut acc, &src, &mass, G, 0.0);
        // Symmetric sources cancel.
        assert!(acc[0].norm() < 1e-15);
        assert_eq!(ops, 2 * OPS_PER_PAIR);
    }

    #[test]
    fn accumulate_self_skips_self_interaction() {
        let pos = vec![ZERO3, Vec3::new(1.0, 0.0, 0.0)];
        let mass = vec![1.0, 1.0];
        let mut acc = vec![ZERO3; 2];
        let ops = accumulate_self(&pos, &mass, &mut acc, G, 0.0);
        assert!((acc[0].x - 1.0).abs() < 1e-12);
        assert!((acc[1].x + 1.0).abs() < 1e-12);
        assert_eq!(ops, 2 * OPS_PER_PAIR);
    }

    #[test]
    fn single_particle_feels_nothing() {
        let pos = vec![ZERO3];
        let mass = vec![1.0];
        let mut acc = vec![ZERO3];
        let ops = accumulate_self(&pos, &mass, &mut acc, G, 0.0);
        assert_eq!(acc[0], ZERO3);
        assert_eq!(ops, 0);
    }

    #[test]
    fn partition_accumulation_equals_manual_loop() {
        let targets: Vec<Vec3> = (0..4)
            .map(|i| Vec3::new(i as f64 * 0.3, 0.1, -0.2))
            .collect();
        let src: Vec<Vec3> = (0..3)
            .map(|i| Vec3::new(-1.0, i as f64 * 0.5, 0.7))
            .collect();
        let mass = vec![0.5, 1.5, 2.5];
        let mut acc = vec![ZERO3; 4];
        accumulate_partition(&targets, &mut acc, &src, &mass, G, 0.02);
        for (b, &pb) in targets.iter().enumerate() {
            let mut manual = ZERO3;
            for (j, &pa) in src.iter().enumerate() {
                manual += accel_from(pb, pa, mass[j], G, 0.02);
            }
            assert_eq!(acc[b], manual);
        }
    }

    fn cloud(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let ps = crate::particle::uniform_cloud(n, seed);
        (
            ps.iter().map(|p| p.pos).collect(),
            ps.iter().map(|p| p.mass).collect(),
        )
    }

    /// Non-trivial starting accumulator, so the tests also prove the SoA
    /// kernels *accumulate* (rather than overwrite) exactly like the
    /// reference.
    fn seeded_acc(n: usize) -> Vec<Vec3> {
        (0..n)
            .map(|i| Vec3::new(i as f64 * 0.125, -(i as f64), 0.5))
            .collect()
    }

    #[test]
    fn soa_self_kernel_is_bit_identical_across_tiles() {
        // 1100 > 2·TILE: exercises the diagonal tile, off-diagonal tiles,
        // and both remainder paths.
        let (pos, mass) = cloud(1100, 3);
        let mut want = seeded_acc(pos.len());
        let ops_want = accumulate_self(&pos, &mass, &mut want, G, 0.05);

        let soa_pos = crate::soa::Soa3::from_vec3s(&pos);
        let mut got = crate::soa::Soa3::from_vec3s(&seeded_acc(pos.len()));
        let ops_got = accumulate_self_soa(&soa_pos, &mass, &mut got, G, 0.05);

        assert_eq!(ops_got, ops_want, "modelled op count must not change");
        for (i, w) in want.iter().enumerate() {
            let g = got.get(i);
            assert!(
                w.x.to_bits() == g.x.to_bits()
                    && w.y.to_bits() == g.y.to_bits()
                    && w.z.to_bits() == g.z.to_bits(),
                "particle {i}: scalar {w:?} != soa {g:?}"
            );
        }
    }

    #[test]
    fn soa_partition_kernel_is_bit_identical_across_tiles() {
        let (all, all_mass) = cloud(1200, 9);
        let (tp, sp) = all.split_at(150);
        let sm = &all_mass[150..];
        let mut want = seeded_acc(tp.len());
        let ops_want = accumulate_partition(tp, &mut want, sp, sm, G, 0.05);

        let targets = crate::soa::Soa3::from_vec3s(tp);
        let src = crate::soa::Soa3::from_vec3s(sp);
        let mut got = crate::soa::Soa3::from_vec3s(&seeded_acc(tp.len()));
        let ops_got = accumulate_partition_soa(&targets, &mut got, &src, sm, G, 0.05);

        assert_eq!(ops_got, ops_want, "modelled op count must not change");
        for (i, w) in want.iter().enumerate() {
            assert_eq!(w.to_bits_triplet(), got.get(i).to_bits_triplet(), "{i}");
        }
    }

    #[test]
    fn soa_kernels_handle_degenerate_sizes() {
        use crate::soa::Soa3;
        // Empty.
        let empty = Soa3::new();
        let mut acc = Soa3::new();
        assert_eq!(accumulate_self_soa(&empty, &[], &mut acc, G, 0.05), 0);
        assert_eq!(
            accumulate_partition_soa(&empty, &mut acc, &empty, &[], G, 0.05),
            0
        );
        // Single particle feels nothing from itself.
        let one = Soa3::from_vec3s(&[Vec3::new(1.0, 2.0, 3.0)]);
        let mut acc = Soa3::zeros(1);
        assert_eq!(accumulate_self_soa(&one, &[2.0], &mut acc, G, 0.05), 0);
        assert_eq!(acc.get(0), ZERO3);
    }

    #[test]
    fn accel_point_soa_matches_scalar_accumulation() {
        let (pos, mass) = cloud(37, 21);
        let point = Vec3::new(0.3, -0.1, 0.8);
        let mut want = ZERO3;
        for (j, &p) in pos.iter().enumerate() {
            want += accel_from(point, p, mass[j], G, 0.02);
        }
        let src = crate::soa::Soa3::from_vec3s(&pos);
        let got = accel_point_soa(&src, &mass, point, G, 0.02);
        assert_eq!(want.to_bits_triplet(), got.to_bits_triplet());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::vec3::{Vec3, ZERO3};
    use proptest::prelude::*;

    fn vec3() -> impl Strategy<Value = Vec3> {
        (-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
    }

    proptest! {
        /// Newton's third law holds for arbitrary pairs: m1·a12 = −m2·a21.
        #[test]
        fn pairwise_forces_are_antisymmetric(
            p1 in vec3(),
            p2 in vec3(),
            m1 in 0.01f64..100.0,
            m2 in 0.01f64..100.0,
            eps in 0.001f64..0.5,
        ) {
            let f12 = accel_from(p1, p2, m2, 1.0, eps) * m1;
            let f21 = accel_from(p2, p1, m1, 1.0, eps) * m2;
            let scale = f12.norm().max(1e-12);
            prop_assert!((f12 + f21).norm() <= 1e-9 * scale);
        }

        /// Softened forces are bounded: |a| ≤ G·m/(2ε²)·(3√3/... ) — we use
        /// the simpler bound G·m/ε² which dominates the softened kernel's
        /// true maximum.
        #[test]
        fn softened_accel_is_bounded(
            p1 in vec3(),
            p2 in vec3(),
            m in 0.01f64..100.0,
            eps in 0.01f64..1.0,
        ) {
            let a = accel_from(p1, p2, m, 1.0, eps);
            prop_assert!(a.is_finite());
            prop_assert!(a.norm() <= m / (eps * eps) + 1e-9);
        }

        /// Accumulating sources one partition at a time equals accumulating
        /// them all at once (associativity of the partition decomposition,
        /// up to FP noise).
        #[test]
        fn partition_split_is_consistent(
            srcs in proptest::collection::vec((vec3(), 0.1f64..5.0), 2..12),
            target in vec3(),
            split in 1usize..11,
        ) {
            let split = split.min(srcs.len() - 1);
            let pos: Vec<Vec3> = srcs.iter().map(|(p, _)| *p).collect();
            let mass: Vec<f64> = srcs.iter().map(|(_, m)| *m).collect();

            let mut whole = vec![ZERO3];
            accumulate_partition(&[target], &mut whole, &pos, &mass, 1.0, 0.05);

            let mut parts = vec![ZERO3];
            accumulate_partition(&[target], &mut parts, &pos[..split], &mass[..split], 1.0, 0.05);
            accumulate_partition(&[target], &mut parts, &pos[split..], &mass[split..], 1.0, 0.05);

            let scale = whole[0].norm().max(1e-12);
            prop_assert!((whole[0] - parts[0]).norm() <= 1e-9 * scale);
        }
    }
}
