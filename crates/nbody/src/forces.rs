//! Pairwise gravitational forces — the O(N²) kernel of the paper's §5.
//!
//! The paper counts "about 70 floating point operations" to compute the
//! force between a pair of particles, 12 to speculate a position, 24 to
//! check one; those constants parameterize the cost model so the simulated
//! timings keep the paper's compute/speculate/check ratios.

use crate::vec3::Vec3;

/// Paper's cost of one pairwise force evaluation, in operations.
pub const OPS_PER_PAIR: u64 = 70;
/// Paper's cost of speculating one particle's position.
pub const OPS_PER_SPECULATE: u64 = 12;
/// Paper's cost of checking one particle's speculation error.
pub const OPS_PER_CHECK: u64 = 24;
/// Cost of one integration update (velocity + position) per particle.
pub const OPS_PER_UPDATE: u64 = 12;

/// Acceleration exerted on a particle at `on_pos` by a source of mass
/// `src_mass` at `src_pos`, with Plummer softening `eps`:
/// `a = G · m · (r_src − r_on) / (|r|² + ε²)^{3/2}`.
#[inline]
pub fn accel_from(on_pos: Vec3, src_pos: Vec3, src_mass: f64, g: f64, eps: f64) -> Vec3 {
    let d = src_pos - on_pos;
    let dist_sq = d.norm_sq() + eps * eps;
    let inv = 1.0 / (dist_sq * dist_sq.sqrt());
    d * (g * src_mass * inv)
}

/// Accumulate into `acc` the accelerations that every source in
/// `(src_pos, src_mass)` exerts on every target in `targets`. Returns the
/// modelled operation count (`OPS_PER_PAIR` per pair).
pub fn accumulate_partition(
    targets: &[Vec3],
    acc: &mut [Vec3],
    src_pos: &[Vec3],
    src_mass: &[f64],
    g: f64,
    eps: f64,
) -> u64 {
    debug_assert_eq!(targets.len(), acc.len());
    debug_assert_eq!(src_pos.len(), src_mass.len());
    for (b, &pb) in targets.iter().enumerate() {
        let mut a = acc[b];
        for (j, &pa) in src_pos.iter().enumerate() {
            a += accel_from(pb, pa, src_mass[j], g, eps);
        }
        acc[b] = a;
    }
    (targets.len() as u64) * (src_pos.len() as u64) * OPS_PER_PAIR
}

/// Accumulate intra-partition accelerations (each particle on every other
/// of the same partition), skipping self-interaction. Returns the op count.
pub fn accumulate_self(pos: &[Vec3], mass: &[f64], acc: &mut [Vec3], g: f64, eps: f64) -> u64 {
    debug_assert_eq!(pos.len(), mass.len());
    debug_assert_eq!(pos.len(), acc.len());
    let n = pos.len();
    for b in 0..n {
        let mut a = acc[b];
        for j in 0..n {
            if j != b {
                a += accel_from(pos[b], pos[j], mass[j], g, eps);
            }
        }
        acc[b] = a;
    }
    (n as u64) * (n.saturating_sub(1) as u64) * OPS_PER_PAIR
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::ZERO3;

    const G: f64 = 1.0;

    #[test]
    fn accel_points_toward_source() {
        let a = accel_from(ZERO3, Vec3::new(2.0, 0.0, 0.0), 1.0, G, 0.0);
        assert!(a.x > 0.0);
        assert_eq!(a.y, 0.0);
        assert_eq!(a.z, 0.0);
    }

    #[test]
    fn accel_magnitude_matches_inverse_square() {
        // Unsoftened: |a| = G·m/r².
        let a = accel_from(ZERO3, Vec3::new(2.0, 0.0, 0.0), 3.0, G, 0.0);
        assert!((a.norm() - 3.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn softening_caps_close_encounters() {
        let near = accel_from(ZERO3, Vec3::new(1e-9, 0.0, 0.0), 1.0, G, 0.05);
        assert!(near.is_finite());
        assert!(near.norm() < 1.0, "softened force must stay bounded");
    }

    #[test]
    fn newton_third_law_symmetry() {
        // Accel scaled by masses gives equal and opposite forces.
        let p1 = Vec3::new(0.3, -1.0, 2.0);
        let p2 = Vec3::new(-0.7, 0.4, 0.9);
        let (m1, m2) = (2.0, 5.0);
        let f12 = accel_from(p1, p2, m2, G, 0.01) * m1;
        let f21 = accel_from(p2, p1, m1, G, 0.01) * m2;
        assert!((f12 + f21).norm() < 1e-12 * f12.norm().max(1.0));
    }

    #[test]
    fn accumulate_partition_sums_all_sources() {
        let targets = vec![ZERO3];
        let mut acc = vec![ZERO3];
        let src = vec![Vec3::new(1.0, 0.0, 0.0), Vec3::new(-1.0, 0.0, 0.0)];
        let mass = vec![1.0, 1.0];
        let ops = accumulate_partition(&targets, &mut acc, &src, &mass, G, 0.0);
        // Symmetric sources cancel.
        assert!(acc[0].norm() < 1e-15);
        assert_eq!(ops, 2 * OPS_PER_PAIR);
    }

    #[test]
    fn accumulate_self_skips_self_interaction() {
        let pos = vec![ZERO3, Vec3::new(1.0, 0.0, 0.0)];
        let mass = vec![1.0, 1.0];
        let mut acc = vec![ZERO3; 2];
        let ops = accumulate_self(&pos, &mass, &mut acc, G, 0.0);
        assert!((acc[0].x - 1.0).abs() < 1e-12);
        assert!((acc[1].x + 1.0).abs() < 1e-12);
        assert_eq!(ops, 2 * OPS_PER_PAIR);
    }

    #[test]
    fn single_particle_feels_nothing() {
        let pos = vec![ZERO3];
        let mass = vec![1.0];
        let mut acc = vec![ZERO3];
        let ops = accumulate_self(&pos, &mass, &mut acc, G, 0.0);
        assert_eq!(acc[0], ZERO3);
        assert_eq!(ops, 0);
    }

    #[test]
    fn partition_accumulation_equals_manual_loop() {
        let targets: Vec<Vec3> = (0..4)
            .map(|i| Vec3::new(i as f64 * 0.3, 0.1, -0.2))
            .collect();
        let src: Vec<Vec3> = (0..3)
            .map(|i| Vec3::new(-1.0, i as f64 * 0.5, 0.7))
            .collect();
        let mass = vec![0.5, 1.5, 2.5];
        let mut acc = vec![ZERO3; 4];
        accumulate_partition(&targets, &mut acc, &src, &mass, G, 0.02);
        for (b, &pb) in targets.iter().enumerate() {
            let mut manual = ZERO3;
            for (j, &pa) in src.iter().enumerate() {
                manual += accel_from(pb, pa, mass[j], G, 0.02);
            }
            assert_eq!(acc[b], manual);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::vec3::{Vec3, ZERO3};
    use proptest::prelude::*;

    fn vec3() -> impl Strategy<Value = Vec3> {
        (-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
    }

    proptest! {
        /// Newton's third law holds for arbitrary pairs: m1·a12 = −m2·a21.
        #[test]
        fn pairwise_forces_are_antisymmetric(
            p1 in vec3(),
            p2 in vec3(),
            m1 in 0.01f64..100.0,
            m2 in 0.01f64..100.0,
            eps in 0.001f64..0.5,
        ) {
            let f12 = accel_from(p1, p2, m2, 1.0, eps) * m1;
            let f21 = accel_from(p2, p1, m1, 1.0, eps) * m2;
            let scale = f12.norm().max(1e-12);
            prop_assert!((f12 + f21).norm() <= 1e-9 * scale);
        }

        /// Softened forces are bounded: |a| ≤ G·m/(2ε²)·(3√3/... ) — we use
        /// the simpler bound G·m/ε² which dominates the softened kernel's
        /// true maximum.
        #[test]
        fn softened_accel_is_bounded(
            p1 in vec3(),
            p2 in vec3(),
            m in 0.01f64..100.0,
            eps in 0.01f64..1.0,
        ) {
            let a = accel_from(p1, p2, m, 1.0, eps);
            prop_assert!(a.is_finite());
            prop_assert!(a.norm() <= m / (eps * eps) + 1e-9);
        }

        /// Accumulating sources one partition at a time equals accumulating
        /// them all at once (associativity of the partition decomposition,
        /// up to FP noise).
        #[test]
        fn partition_split_is_consistent(
            srcs in proptest::collection::vec((vec3(), 0.1f64..5.0), 2..12),
            target in vec3(),
            split in 1usize..11,
        ) {
            let split = split.min(srcs.len() - 1);
            let pos: Vec<Vec3> = srcs.iter().map(|(p, _)| *p).collect();
            let mass: Vec<f64> = srcs.iter().map(|(_, m)| *m).collect();

            let mut whole = vec![ZERO3];
            accumulate_partition(&[target], &mut whole, &pos, &mass, 1.0, 0.05);

            let mut parts = vec![ZERO3];
            accumulate_partition(&[target], &mut parts, &pos[..split], &mass[..split], 1.0, 0.05);
            accumulate_partition(&[target], &mut parts, &pos[split..], &mass[split..], 1.0, 0.05);

            let scale = whole[0].norm().max(1e-12);
            prop_assert!((whole[0] - parts[0]).norm() <= 1e-9 * scale);
        }
    }
}
