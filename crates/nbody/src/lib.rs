//! # nbody — the paper's §5 case study: parallel O(N²) N-body simulation
//!
//! "To illustrate the ideas and performance benefits of speculative
//! computation, the technique was implemented on a simple O(N²) N-body
//! simulation example" (Govindan & Franklin 1994, §5). This crate provides:
//!
//! * the physics: [`Vec3`] algebra, softened pairwise gravity
//!   ([`forces`]), semi-implicit Euler integration and conservation
//!   diagnostics ([`integrate`]);
//! * capacity-proportional particle [`partition`]ing (the paper's
//!   eqs. 4–5);
//! * [`NBodyApp`] — the partition as a [`speccore::SpeculativeApp`]:
//!   eq. 10 velocity-extrapolation speculation, eq. 11 relative-error
//!   checking against threshold θ, and per-particle incremental force
//!   correction;
//! * [`runner::run_parallel`] — the full experiment pipeline on a
//!   simulated heterogeneous cluster;
//! * [`barnes_hut`] — the O(N log N) comparator the paper's footnote
//!   references;
//! * initial-condition generators ([`particle`]).
//!
//! Cost constants ([`forces::OPS_PER_PAIR`] = 70,
//! [`forces::OPS_PER_SPECULATE`] = 12, [`forces::OPS_PER_CHECK`] = 24)
//! follow the paper's §5 measurements, so simulated phase timings keep the
//! paper's compute/speculate/check ratios.

#![warn(missing_docs)]

mod app;
pub mod barnes_hut;
pub mod forces;
pub mod integrate;
pub mod particle;
pub mod partition;
pub mod runner;
pub mod soa;
mod vec3;

pub use app::{NBodyApp, NBodyCheckpoint, PartitionShared, SpeculationOrder};
pub use particle::{
    binary_pair, centered_cloud, colliding_clouds, rotating_disk, uniform_cloud, NBodyConfig,
    Particle, SoaBodies,
};
pub use partition::{partition_proportional, proportionality_error, split_soa};
pub use runner::{run_parallel, run_parallel_with_faults, ParallelRunConfig, ParallelRunResult};
pub use soa::Soa3;
pub use vec3::{Vec3, ZERO3};
