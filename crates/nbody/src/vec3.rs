//! Minimal 3-vector algebra for the N-body simulation.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use mpk::WireSize;

/// A 3-component `f64` vector.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

/// The zero vector.
pub const ZERO3: Vec3 = Vec3 {
    x: 0.0,
    y: 0.0,
    z: 0.0,
};

impl Vec3 {
    /// Construct from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Distance to another point.
    pub fn distance(self, o: Vec3) -> f64 {
        (self - o).norm()
    }

    /// Cross product.
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    /// True if all components are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// The raw IEEE-754 bits of each component — for tests that assert
    /// *bit* equality rather than `==` (which conflates `0.0` and `-0.0`).
    pub fn to_bits_triplet(self) -> (u64, u64, u64) {
        (self.x.to_bits(), self.y.to_bits(), self.z.to_bits())
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl WireSize for Vec3 {
    fn wire_size(&self) -> usize {
        24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 5.0, 0.5);
        assert_eq!(a + b - b, a);
        assert_eq!(a * 2.0, a + a);
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0 + a / 2.0, a);
        assert_eq!(-a + a, ZERO3);
    }

    #[test]
    fn norms_and_distance() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(ZERO3.distance(v), 5.0);
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(x), -z);
        assert_eq!(x.cross(x), ZERO3);
    }

    #[test]
    fn finiteness() {
        assert!(Vec3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn wire_size_is_three_doubles() {
        assert_eq!(ZERO3.wire_size(), 24);
        assert_eq!(vec![ZERO3; 4].wire_size(), 8 + 96);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn vec3() -> impl Strategy<Value = Vec3> {
        (-1e3f64..1e3, -1e3f64..1e3, -1e3f64..1e3).prop_map(|(x, y, z)| Vec3::new(x, y, z))
    }

    proptest! {
        #[test]
        fn addition_commutes(a in vec3(), b in vec3()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn cross_is_orthogonal(a in vec3(), b in vec3()) {
            let c = a.cross(b);
            prop_assert!(c.dot(a).abs() <= 1e-6 * (1.0 + a.norm_sq()) * (1.0 + b.norm()));
            prop_assert!(c.dot(b).abs() <= 1e-6 * (1.0 + b.norm_sq()) * (1.0 + a.norm()));
        }

        #[test]
        fn cauchy_schwarz(a in vec3(), b in vec3()) {
            prop_assert!(a.dot(b).abs() <= a.norm() * b.norm() + 1e-9);
        }

        #[test]
        fn scaling_scales_norm(a in vec3(), s in -100.0f64..100.0) {
            let lhs = (a * s).norm();
            let rhs = s.abs() * a.norm();
            prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + rhs));
        }
    }
}
