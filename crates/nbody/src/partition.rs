//! Capacity-proportional particle partitioning — the paper's equations 4–5.
//!
//! "The N particles simulated are distributed over the p processors such
//! that each processor is allocated workload (i.e., number of particles)
//! proportional to its computing ability" (§5), subject to
//! `N_i / M_i = N_j / M_j` (eq. 4) and `Σ N_i = N` (eq. 5). With integer
//! particle counts, the equalities hold as closely as rounding allows; we
//! use the largest-remainder method, which preserves eq. 5 exactly and
//! minimizes the worst proportionality violation.

use std::ops::Range;

use crate::particle::SoaBodies;

/// Split `n` items into contiguous ranges proportional to `capacities`.
///
/// Returns one (possibly empty) range per capacity, in order, covering
/// `0..n` exactly.
///
/// # Panics
/// Panics if `capacities` is empty or contains non-positive entries.
pub fn partition_proportional(n: usize, capacities: &[f64]) -> Vec<Range<usize>> {
    assert!(!capacities.is_empty(), "need at least one processor");
    assert!(
        capacities.iter().all(|c| c.is_finite() && *c > 0.0),
        "capacities must be positive and finite"
    );
    let total: f64 = capacities.iter().sum();
    let exact: Vec<f64> = capacities.iter().map(|c| n as f64 * c / total).collect();
    let mut counts: Vec<usize> = exact.iter().map(|e| e.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    let mut leftover = n - assigned;

    // Hand out the remaining items to the largest fractional remainders,
    // breaking ties toward faster (earlier) processors for determinism.
    let mut order: Vec<usize> = (0..capacities.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = exact[a] - exact[a].floor();
        let fb = exact[b] - exact[b].floor();
        fb.partial_cmp(&fa).unwrap().then(a.cmp(&b))
    });
    for &i in &order {
        if leftover == 0 {
            break;
        }
        counts[i] += 1;
        leftover -= 1;
    }

    let mut ranges = Vec::with_capacity(counts.len());
    let mut start = 0;
    for c in counts {
        ranges.push(start..start + c);
        start += c;
    }
    debug_assert_eq!(start, n);
    ranges
}

/// Largest relative violation of eq. 4 across processors:
/// `max_i |N_i/M_i − N/ΣM| / (N/ΣM)`. Useful for diagnostics and tests.
pub fn proportionality_error(ranges: &[Range<usize>], capacities: &[f64]) -> f64 {
    let n: usize = ranges.iter().map(|r| r.len()).sum();
    if n == 0 {
        return 0.0;
    }
    let total: f64 = capacities.iter().sum();
    let ideal = n as f64 / total;
    ranges
        .iter()
        .zip(capacities)
        .map(|(r, c)| ((r.len() as f64 / c) - ideal).abs() / ideal)
        .fold(0.0, f64::max)
}

/// Slice an SoA body set into per-partition copies following `ranges`
/// (as produced by [`partition_proportional`]). Each partition keeps the
/// SoA layout, ready for the blocked kernels.
///
/// # Panics
/// Panics if any range exceeds the body count.
pub fn split_soa(bodies: &SoaBodies, ranges: &[Range<usize>]) -> Vec<SoaBodies> {
    ranges
        .iter()
        .map(|r| SoaBodies {
            pos: bodies.pos.slice(r.clone()),
            vel: bodies.vel.slice(r.clone()),
            mass: bodies.mass[r.clone()].to_vec(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particle::uniform_cloud;

    #[test]
    fn equal_capacities_split_evenly() {
        let r = partition_proportional(100, &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(
            r.iter().map(|x| x.len()).collect::<Vec<_>>(),
            vec![25, 25, 25, 25]
        );
    }

    #[test]
    fn ranges_are_contiguous_and_cover_everything() {
        let r = partition_proportional(97, &[5.0, 3.0, 2.0]);
        assert_eq!(r[0].start, 0);
        for w in r.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert_eq!(r.last().unwrap().end, 97);
    }

    #[test]
    fn proportional_to_capacity() {
        // 10:1 capacities with N=1100 → 1000 and 100.
        let r = partition_proportional(1100, &[10.0, 1.0]);
        assert_eq!(r[0].len(), 1000);
        assert_eq!(r[1].len(), 100);
    }

    #[test]
    fn paper_16_machine_ramp() {
        // The paper's §4 example: N = 1000 over the 10x linear ramp.
        let caps: Vec<f64> = (0..16).map(|i| 100.0 - (i as f64 / 15.0) * 90.0).collect();
        let r = partition_proportional(1000, &caps);
        assert_eq!(r.iter().map(|x| x.len()).sum::<usize>(), 1000);
        // Fastest machine gets ~10x the slowest machine's share.
        let ratio = r[0].len() as f64 / r[15].len() as f64;
        assert!((9.0..11.0).contains(&ratio), "ratio {ratio}");
        // eq. 4 holds within rounding.
        assert!(proportionality_error(&r, &caps) < 0.2);
    }

    #[test]
    fn fewer_items_than_processors() {
        let r = partition_proportional(2, &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(r.iter().map(|x| x.len()).sum::<usize>(), 2);
        assert!(r.iter().all(|x| x.len() <= 1));
    }

    #[test]
    fn zero_items() {
        let r = partition_proportional(0, &[2.0, 1.0]);
        assert!(r.iter().all(|x| x.is_empty()));
        assert_eq!(proportionality_error(&r, &[2.0, 1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_capacity() {
        partition_proportional(10, &[1.0, 0.0]);
    }

    #[test]
    fn split_soa_preserves_order_and_coverage() {
        let ps = uniform_cloud(23, 4);
        let bodies = SoaBodies::from_particles(&ps);
        let ranges = partition_proportional(23, &[3.0, 2.0, 1.0]);
        let parts = split_soa(&bodies, &ranges);
        assert_eq!(parts.len(), 3);
        let mut rebuilt = Vec::new();
        for part in &parts {
            rebuilt.extend(part.to_particles());
        }
        assert_eq!(rebuilt, ps);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Eq. 5 (total coverage), contiguity, and approximate eq. 4 hold
        /// for arbitrary positive capacities.
        #[test]
        fn partition_invariants(
            n in 0usize..5000,
            caps in proptest::collection::vec(0.1f64..100.0, 1..24),
        ) {
            let r = partition_proportional(n, &caps);
            prop_assert_eq!(r.len(), caps.len());
            // Coverage & contiguity.
            prop_assert_eq!(r[0].start, 0);
            for w in r.windows(2) {
                prop_assert_eq!(w[0].end, w[1].start);
            }
            prop_assert_eq!(r.last().unwrap().end, n);
            // Counts are within 1 of the exact proportional share.
            let total: f64 = caps.iter().sum();
            for (range, c) in r.iter().zip(&caps) {
                let exact = n as f64 * c / total;
                let len = range.len() as f64;
                prop_assert!(
                    (len - exact).abs() < 1.0 + 1e-9,
                    "len {len} vs exact {exact}"
                );
            }
        }
    }
}
