//! The adaptive speculation controller: online θ/FW/deadline retuning.
//!
//! Every run so far shipped with a hand-picked static `(θ, FW)` and fixed
//! [`FaultTolerance`](crate::FaultTolerance) deadlines — wrong the moment
//! delay or compute distributions drift. This module closes the loop: a
//! per-rank controller estimates per-peer delay and per-confirmation
//! compute/wait/miss statistics from the telemetry the driver already
//! commits (receive instants, phase spans, check outcomes), feeds them
//! through the perfmodel §4 equations ([`perfmodel::best_forward_window`]),
//! and periodically retunes
//!
//! * the **forward window** (argmin of the FW-generalized eq. 8),
//! * the **acceptance threshold θ** (smallest grid value covering the
//!   observed speculation-error quantile — or the most accurate grid
//!   value when there is no delay worth masking), and
//! * the **per-peer loss/grace deadlines** (quantile of observed
//!   inter-arrival gaps × headroom, clamped so they only ever *tighten*
//!   the static [`FaultTolerance`](crate::FaultTolerance) timeout).
//!
//! ## Determinism
//!
//! Decisions are a pure function of committed telemetry sampled at
//! confirmation boundaries: every input is derived from virtual-time
//! instants and counters that are themselves bit-reproducible per seed, the
//! estimator state is updated in deterministic order, and quantiles are
//! computed over a sorted copy with total ordering. No wall-clock value
//! ever enters the estimators, so per-seed bit-reproducibility and the
//! stackless/threaded equivalence harness are preserved.

use desim::{SimDuration, SimTime};

/// EWMA smoothing factor for the per-confirmation busy/wait/miss signals.
const ALPHA: f64 = 0.25;

/// Waits below this many nanoseconds per confirmation count as "no delay
/// worth masking": the controller then pins θ to the most accurate grid
/// value and leaves the window alone.
const WAIT_FLOOR_NS: f64 = 1_000.0;

/// Inter-arrival samples needed before a peer's deadline is adapted.
const MIN_GAP_SAMPLES: usize = 4;

/// Ring capacity for per-peer gap and speculation-error samples.
const RING_CAP: usize = 32;

/// Adaptive deadlines never drop below this (1 µs): a zero deadline would
/// promote losses at every scheduler step.
const DEADLINE_FLOOR_NS: u64 = 1_000;

/// Relative improvement the predicted iteration time must show before the
/// controller moves the forward window — hysteresis against ±1 flapping.
const FW_HYSTERESIS: f64 = 0.01;

/// Configuration for the adaptive controller, attached to a run with
/// [`SpecConfig::with_adaptive`](crate::SpecConfig::with_adaptive).
#[derive(Clone, Debug, PartialEq)]
pub struct ControllerConfig {
    /// Confirmations observed before the first retune. Must be ≥ 1.
    pub warmup: u64,
    /// Confirmations between retune evaluations after warmup. Must be ≥ 1.
    pub period: u64,
    /// Largest forward window the controller may choose. Must be ≥ 1.
    pub fw_max: u32,
    /// Ascending candidate acceptance thresholds. Empty leaves θ untouched.
    /// Entry 0 is the "exact" anchor the controller falls back to whenever
    /// there is no observed delay to mask (by convention `0.0`).
    pub theta_grid: Vec<f64>,
    /// Acceptable fraction of speculation misses when choosing θ, in
    /// `[0, 1)`: θ is picked to cover the `(1 − miss_target)` quantile of
    /// observed speculation errors.
    pub miss_target: f64,
    /// Quantile of observed per-peer inter-arrival gaps used for adaptive
    /// deadlines, in `(0, 1]`.
    pub delay_quantile: f64,
    /// Multiplier applied to the gap quantile to form the deadline.
    /// Must be ≥ 1.
    pub deadline_headroom: f64,
}

impl ControllerConfig {
    /// Defaults: warmup 8 confirmations, retune every 4, windows up to 4,
    /// θ untouched, 90th-percentile gaps with 2× headroom, 5% miss target.
    pub fn new() -> Self {
        ControllerConfig {
            warmup: 8,
            period: 4,
            fw_max: 4,
            theta_grid: Vec::new(),
            miss_target: 0.05,
            delay_quantile: 0.9,
            deadline_headroom: 2.0,
        }
    }

    /// Set the θ candidate grid. Panics unless the grid is ascending with
    /// finite, non-negative entries.
    pub fn with_theta_grid(mut self, grid: Vec<f64>) -> Self {
        assert!(
            grid.iter().all(|t| t.is_finite() && *t >= 0.0),
            "theta grid entries must be finite and non-negative"
        );
        assert!(
            grid.windows(2).all(|w| w[0] < w[1]),
            "theta grid must be strictly ascending"
        );
        self.theta_grid = grid;
        self
    }

    /// Set the largest window the controller may choose (≥ 1).
    pub fn with_fw_max(mut self, fw_max: u32) -> Self {
        assert!(fw_max >= 1, "fw_max must be at least 1");
        self.fw_max = fw_max;
        self
    }

    /// Set warmup and retune period, both in confirmations (≥ 1 each).
    pub fn with_cadence(mut self, warmup: u64, period: u64) -> Self {
        assert!(warmup >= 1, "warmup must be at least 1 confirmation");
        assert!(period >= 1, "period must be at least 1 confirmation");
        self.warmup = warmup;
        self.period = period;
        self
    }

    /// Set the adaptive-deadline shape: gap quantile in `(0, 1]` and
    /// headroom multiplier ≥ 1.
    pub fn with_deadline(mut self, quantile: f64, headroom: f64) -> Self {
        assert!(
            quantile > 0.0 && quantile <= 1.0,
            "delay quantile must be in (0, 1]"
        );
        assert!(
            headroom.is_finite() && headroom >= 1.0,
            "deadline headroom must be finite and at least 1"
        );
        self.delay_quantile = quantile;
        self.deadline_headroom = headroom;
        self
    }

    /// All invariants the builders enforce, re-checked in one place so
    /// struct-literal construction cannot smuggle degenerate knobs into
    /// the driver. Returns a human-readable reason on failure.
    pub fn validate(&self) -> Result<(), String> {
        if self.warmup < 1 {
            return Err("controller warmup must be at least 1 confirmation".into());
        }
        if self.period < 1 {
            return Err("controller period must be at least 1 confirmation".into());
        }
        if self.fw_max < 1 {
            return Err("controller fw_max must be at least 1".into());
        }
        if !self.theta_grid.iter().all(|t| t.is_finite() && *t >= 0.0) {
            return Err("controller theta grid entries must be finite and non-negative".into());
        }
        if !self.theta_grid.windows(2).all(|w| w[0] < w[1]) {
            return Err("controller theta grid must be strictly ascending".into());
        }
        if !(self.miss_target >= 0.0 && self.miss_target < 1.0) {
            return Err("controller miss target must be in [0, 1)".into());
        }
        if !(self.delay_quantile > 0.0 && self.delay_quantile <= 1.0) {
            return Err("controller delay quantile must be in (0, 1]".into());
        }
        if !(self.deadline_headroom.is_finite() && self.deadline_headroom >= 1.0) {
            return Err("controller deadline headroom must be finite and at least 1".into());
        }
        Ok(())
    }
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Fixed-capacity ring of `f64` samples with deterministic quantiles.
#[derive(Clone, Debug)]
struct Ring {
    buf: Vec<f64>,
    next: usize,
    cap: usize,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            buf: Vec::with_capacity(cap),
            next: 0,
            cap,
        }
    }

    fn push(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.next] = v;
            self.next = (self.next + 1) % self.cap;
        }
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    /// Quantile over a sorted copy, `q` clamped into `[0, 1]`. Total
    /// ordering (no NaN can enter) keeps this deterministic.
    fn quantile(&self, q: f64) -> Option<f64> {
        if self.buf.is_empty() {
            return None;
        }
        let mut sorted = self.buf.clone();
        sorted.sort_by(f64::total_cmp);
        let q = q.clamp(0.0, 1.0);
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        Some(sorted[idx])
    }
}

/// One retune evaluation's outcome, applied by the driver at a
/// confirmation boundary.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Decision {
    /// The forward window to run with from the next iteration on.
    pub fw: u32,
    /// The acceptance threshold to adopt, if the grid is non-empty.
    pub theta: Option<f64>,
    /// The tightest adaptive per-peer deadline now in force, in
    /// nanoseconds (0 when every peer still uses the static timeout).
    pub tightest_deadline_ns: u64,
}

/// Per-rank online estimator + decision state. Owned by the driver; all
/// methods are called at deterministic points of the iteration protocol.
#[derive(Clone, Debug)]
pub(crate) struct ControllerState {
    cfg: ControllerConfig,
    /// Per-peer inter-arrival gaps in nanoseconds.
    gaps: Vec<Ring>,
    /// Virtual instant each peer was last heard from.
    last_heard: Vec<Option<SimTime>>,
    /// Observed speculation errors from committed check outcomes.
    errors: Ring,
    busy_ewma_ns: f64,
    wait_ewma_ns: f64,
    miss_ewma: f64,
    seeded: bool,
    confirms: u64,
    cur_fw: u32,
    cur_theta: Option<f64>,
    /// Adaptive per-peer deadlines; `None` falls back to the static
    /// `FaultTolerance::loss_timeout`.
    deadlines: Vec<Option<SimDuration>>,
}

impl ControllerState {
    pub(crate) fn new(cfg: ControllerConfig, p: usize, initial_fw: u32) -> Self {
        ControllerState {
            gaps: (0..p).map(|_| Ring::new(RING_CAP)).collect(),
            last_heard: vec![None; p],
            errors: Ring::new(RING_CAP),
            busy_ewma_ns: 0.0,
            wait_ewma_ns: 0.0,
            miss_ewma: 0.0,
            seeded: false,
            confirms: 0,
            cur_fw: initial_fw,
            cur_theta: None,
            deadlines: vec![None; p],
            cfg,
        }
    }

    /// Record a message arrival from `src` at virtual instant `now`.
    pub(crate) fn on_receive(&mut self, src: usize, now: SimTime) {
        if src >= self.gaps.len() {
            return;
        }
        if let Some(prev) = self.last_heard[src] {
            self.gaps[src].push(now.duration_since(prev).as_nanos() as f64);
        }
        self.last_heard[src] = Some(now);
    }

    /// Record one committed check outcome's observed speculation error.
    pub(crate) fn observe_error(&mut self, max_error: f64) {
        self.errors.push(max_error);
    }

    /// Fold one confirmation's deltas into the estimators: partitions
    /// missed/checked since the previous confirm, wait time accumulated,
    /// and busy (compute+speculate+check+correct) time spent.
    pub(crate) fn on_confirm(
        &mut self,
        misses: u64,
        checked: u64,
        waited: SimDuration,
        busy: SimDuration,
    ) {
        let miss_frac = if checked == 0 {
            0.0
        } else {
            misses as f64 / checked as f64
        };
        let wait_ns = waited.as_nanos() as f64;
        let busy_ns = busy.as_nanos() as f64;
        if self.seeded {
            self.busy_ewma_ns += ALPHA * (busy_ns - self.busy_ewma_ns);
            self.wait_ewma_ns += ALPHA * (wait_ns - self.wait_ewma_ns);
            self.miss_ewma += ALPHA * (miss_frac - self.miss_ewma);
        } else {
            self.busy_ewma_ns = busy_ns;
            self.wait_ewma_ns = wait_ns;
            self.miss_ewma = miss_frac;
            self.seeded = true;
        }
        self.confirms += 1;
    }

    /// Evaluate a retune if one is due at this confirmation boundary.
    /// `static_timeout` is the configured `FaultTolerance::loss_timeout`
    /// ceiling for adaptive deadlines (None when fault tolerance is off —
    /// deadlines are then moot but still tracked for reporting).
    pub(crate) fn maybe_retune(&mut self, static_timeout: Option<SimDuration>) -> Option<Decision> {
        if self.confirms < self.cfg.warmup
            || !(self.confirms - self.cfg.warmup).is_multiple_of(self.cfg.period)
        {
            return None;
        }

        let busy = self.busy_ewma_ns.max(1.0);
        let delay_visible = self.wait_ewma_ns > WAIT_FLOOR_NS;

        // Forward window: invert the wait observation into a total-delay
        // estimate (wait = max(0, d − fw·busy) ⇒ d = wait + fw·busy when
        // unmasked), then argmin the FW-generalized eq. 8. Hysteresis: only
        // move when the predicted time improves by more than FW_HYSTERESIS.
        let fw = {
            let w_now = f64::from(self.cur_fw.max(1));
            let comm = if delay_visible {
                self.wait_ewma_ns + w_now * busy
            } else {
                // Fully masked: the delay estimate is unobservable below
                // (fw − 1)·busy; assume the current window is exactly right.
                (w_now - 1.0) * busy
            };
            let cand =
                perfmodel::best_forward_window(busy, comm, 0.0, self.miss_ewma, self.cfg.fw_max);
            let t_cand = perfmodel::masked_iteration_time(busy, comm, 0.0, self.miss_ewma, cand);
            let t_cur = perfmodel::masked_iteration_time(
                busy,
                comm,
                0.0,
                self.miss_ewma,
                self.cur_fw.max(1),
            );
            if t_cand < t_cur * (1.0 - FW_HYSTERESIS) {
                cand
            } else {
                self.cur_fw.max(1).min(self.cfg.fw_max)
            }
        };

        // θ: with no delay worth masking, accuracy costs nothing — pin the
        // most accurate grid value. Otherwise cover the observed error
        // quantile so at most `miss_target` of speculations miss.
        let theta = if self.cfg.theta_grid.is_empty() {
            None
        } else if !delay_visible {
            Some(self.cfg.theta_grid[0])
        } else {
            match self.errors.quantile(1.0 - self.cfg.miss_target) {
                None => Some(self.cfg.theta_grid[0]),
                Some(q) => Some(
                    self.cfg
                        .theta_grid
                        .iter()
                        .copied()
                        .find(|t| *t >= q)
                        .unwrap_or(*self.cfg.theta_grid.last().unwrap()),
                ),
            }
        };

        // Per-peer deadlines: gap quantile × headroom, clamped to
        // [DEADLINE_FLOOR_NS, static timeout] — adaptation may only ever
        // tighten the configured deadline, never loosen it.
        let mut tightest: u64 = 0;
        for (k, ring) in self.gaps.iter().enumerate() {
            if ring.len() < MIN_GAP_SAMPLES {
                continue;
            }
            let Some(q) = ring.quantile(self.cfg.delay_quantile) else {
                continue;
            };
            let mut ns = (q * self.cfg.deadline_headroom).round() as u64;
            ns = ns.max(DEADLINE_FLOOR_NS);
            if let Some(ceiling) = static_timeout {
                ns = ns.min(ceiling.as_nanos());
            }
            self.deadlines[k] = Some(SimDuration::from_nanos(ns));
            if tightest == 0 || ns < tightest {
                tightest = ns;
            }
        }

        self.cur_fw = fw;
        self.cur_theta = theta;
        Some(Decision {
            fw,
            theta,
            tightest_deadline_ns: tightest,
        })
    }

    /// The adaptive loss/grace deadline for peer `k`, if one is in force.
    pub(crate) fn deadline_for(&self, k: usize) -> Option<SimDuration> {
        self.deadlines.get(k).copied().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ControllerConfig {
        ControllerConfig::new()
            .with_cadence(2, 1)
            .with_fw_max(8)
            .with_theta_grid(vec![0.0, 0.01, 0.05])
    }

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn controller_config_builders_validate() {
        let c = cfg();
        assert_eq!(c.validate(), Ok(()));
        assert_eq!(c.warmup, 2);
        assert_eq!(c.period, 1);
        assert_eq!(c.fw_max, 8);
        let c = ControllerConfig::default().with_deadline(0.5, 3.0);
        assert_eq!(c.delay_quantile, 0.5);
        assert_eq!(c.deadline_headroom, 3.0);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn controller_config_validate_rejects_struct_literal_bypass() {
        let mut c = ControllerConfig::new();
        c.warmup = 0;
        assert!(c.validate().is_err());
        let mut c = ControllerConfig::new();
        c.period = 0;
        assert!(c.validate().is_err());
        let mut c = ControllerConfig::new();
        c.fw_max = 0;
        assert!(c.validate().is_err());
        let mut c = ControllerConfig::new();
        c.theta_grid = vec![0.05, 0.01];
        assert!(c.validate().is_err());
        let mut c = ControllerConfig::new();
        c.theta_grid = vec![f64::NAN];
        assert!(c.validate().is_err());
        let mut c = ControllerConfig::new();
        c.miss_target = 1.0;
        assert!(c.validate().is_err());
        let mut c = ControllerConfig::new();
        c.delay_quantile = 0.0;
        assert!(c.validate().is_err());
        let mut c = ControllerConfig::new();
        c.deadline_headroom = 0.5;
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn theta_grid_builder_rejects_descending() {
        let _ = ControllerConfig::new().with_theta_grid(vec![0.1, 0.01]);
    }

    #[test]
    fn no_retune_before_warmup_or_off_period() {
        let mut st = ControllerState::new(cfg().with_cadence(3, 2), 2, 1);
        st.on_confirm(0, 1, ms(0), ms(10));
        assert!(st.maybe_retune(None).is_none(), "confirm 1 < warmup");
        st.on_confirm(0, 1, ms(0), ms(10));
        assert!(st.maybe_retune(None).is_none(), "confirm 2 < warmup");
        st.on_confirm(0, 1, ms(0), ms(10));
        assert!(st.maybe_retune(None).is_some(), "confirm 3 = warmup");
        st.on_confirm(0, 1, ms(0), ms(10));
        assert!(st.maybe_retune(None).is_none(), "off-period confirm");
        st.on_confirm(0, 1, ms(0), ms(10));
        assert!(st.maybe_retune(None).is_some(), "warmup + period");
    }

    #[test]
    fn window_deepens_under_visible_wait_and_holds_when_masked() {
        let mut st = ControllerState::new(cfg(), 2, 1);
        // Busy 10ms per confirm, waiting 25ms: total delay ≈ 35ms needs a
        // deeper window.
        for _ in 0..4 {
            st.on_confirm(0, 4, ms(25), ms(10));
        }
        let d = st.maybe_retune(None).expect("due");
        assert!(
            d.fw > 1,
            "visible wait must deepen the window, got {}",
            d.fw
        );
        let deep = d.fw;

        // Now fully masked: wait ~0 (long enough for the EWMA to drain).
        // Hysteresis holds the window in place.
        for _ in 0..48 {
            st.on_confirm(0, 4, ms(0), ms(10));
        }
        let d = st.maybe_retune(None).expect("due");
        assert_eq!(d.fw, deep, "masked delay must not flap the window");
    }

    #[test]
    fn zero_wait_pins_theta_to_most_accurate_grid_value() {
        let mut st = ControllerState::new(cfg(), 2, 1);
        // Even with large observed errors, zero wait means θ stays at the
        // exact anchor.
        for _ in 0..8 {
            st.observe_error(0.04);
        }
        for _ in 0..4 {
            st.on_confirm(1, 4, SimDuration::ZERO, ms(10));
        }
        let d = st.maybe_retune(None).expect("due");
        assert_eq!(d.theta, Some(0.0));
    }

    #[test]
    fn theta_covers_error_quantile_under_delay() {
        let mut st = ControllerState::new(cfg(), 2, 1);
        for _ in 0..16 {
            st.observe_error(0.004);
        }
        for _ in 0..4 {
            st.on_confirm(1, 4, ms(20), ms(10));
        }
        let d = st.maybe_retune(None).expect("due");
        // Smallest grid value covering 0.004 is 0.01.
        assert_eq!(d.theta, Some(0.01));

        // Errors beyond the whole grid clamp to the largest candidate.
        let mut st = ControllerState::new(cfg(), 2, 1);
        for _ in 0..16 {
            st.observe_error(0.2);
        }
        for _ in 0..4 {
            st.on_confirm(1, 4, ms(20), ms(10));
        }
        let d = st.maybe_retune(None).expect("due");
        assert_eq!(d.theta, Some(0.05));
    }

    #[test]
    fn empty_theta_grid_leaves_theta_untouched() {
        let mut st = ControllerState::new(ControllerConfig::new().with_cadence(1, 1), 2, 1);
        st.on_confirm(0, 1, ms(5), ms(10));
        let d = st.maybe_retune(None).expect("due");
        assert_eq!(d.theta, None);
    }

    #[test]
    fn deadlines_are_gap_quantile_times_headroom_and_only_tighten() {
        let mut st = ControllerState::new(cfg().with_deadline(1.0, 2.0), 3, 1);
        // Peer 1 heard every 5ms; peer 2 has too few samples.
        let mut t = SimTime::ZERO;
        for _ in 0..6 {
            t += ms(5);
            st.on_receive(1, t);
        }
        st.on_receive(2, SimTime::from_nanos(ms(1).as_nanos()));
        for _ in 0..4 {
            st.on_confirm(0, 1, ms(5), ms(5));
        }
        let d = st.maybe_retune(Some(ms(50))).expect("due");
        // Max gap 5ms × headroom 2 = 10ms, well under the 50ms ceiling.
        assert_eq!(st.deadline_for(1), Some(ms(10)));
        assert_eq!(d.tightest_deadline_ns, ms(10).as_nanos());
        // Peer 2: not enough samples, stays on the static timeout.
        assert_eq!(st.deadline_for(2), None);
        // The static timeout is a hard ceiling: with a 4ms ceiling the
        // same gaps clamp down.
        let mut st2 = ControllerState::new(cfg().with_deadline(1.0, 2.0), 3, 1);
        let mut t = SimTime::ZERO;
        for _ in 0..6 {
            t += ms(5);
            st2.on_receive(1, t);
        }
        for _ in 0..4 {
            st2.on_confirm(0, 1, ms(5), ms(5));
        }
        st2.maybe_retune(Some(ms(4))).expect("due");
        assert_eq!(st2.deadline_for(1), Some(ms(4)));
    }

    #[test]
    fn estimators_ignore_out_of_range_and_non_finite_samples() {
        let mut st = ControllerState::new(cfg(), 2, 1);
        st.on_receive(99, SimTime::from_nanos(5)); // out of range: ignored
        st.observe_error(f64::NAN); // non-finite: ignored
        st.observe_error(f64::INFINITY);
        assert_eq!(st.errors.len(), 0);
        // Ring wraps deterministically past capacity.
        let mut r = Ring::new(4);
        for i in 0..10 {
            r.push(i as f64);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.quantile(1.0), Some(9.0));
        assert_eq!(r.quantile(0.0), Some(6.0));
        assert_eq!(Ring::new(4).quantile(0.5), None);
    }
}
