//! # speccore — speculative computation for synchronous iterative algorithms
//!
//! This crate is the primary contribution of Govindan & Franklin's
//! *"Speculative Computation: Overcoming Communication Delays in Parallel
//! Algorithms"* (WUCS-94-3 / ICPP 1994), implemented as a reusable library.
//!
//! In a synchronous iterative algorithm, each of `p` processors updates its
//! partition of the problem every iteration using *every* partition's
//! previous values, so each iteration ends in an all-to-all exchange and a
//! wait. When communication is slow, the wait dominates. The paper's idea:
//!
//! > "While waiting for a message, the processor **speculates** the contents
//! > of the message and uses the speculated values in its computation. …
//! > When the message \[arrives\], the speculated and actual values are
//! > compared. If the error in speculation is large, the resulting
//! > computation is corrected or recomputed. If the error is small, the
//! > resulting computation is accepted, and [the processor] has effectively
//! > *masked* the communication delay."
//!
//! ## Pieces
//!
//! * [`SpeculativeApp`] — how an application exposes its iteration structure
//!   (absorb-per-peer + finish) plus speculation, checking, correction and
//!   checkpointing hooks;
//! * [`run_baseline`] / [`run_speculative`] — the Figure 1 and Figure 3
//!   drivers; the speculative driver generalizes to any forward window
//!   (§3.2) with checkpoint/rollback, and to an adaptive window;
//! * [`History`] — the backward window (BW) of past peer values;
//! * [`speculator`] — stock speculation functions (hold, linear, quadratic,
//!   weighted-sum — the paper's §3.1 family);
//! * [`RunStats`]/[`ClusterStats`] — phase timings and miss counters
//!   matching the paper's Tables 2–3 measurements;
//! * [`ControllerConfig`] — the adaptive speculation controller: online
//!   θ/FW/deadline retuning from observed telemetry through the
//!   `perfmodel` §4 equations.
//!
//! Drivers are generic over [`mpk::Transport`], so the same application code
//! runs deterministically in virtual time (for experiments) and on real
//! threads (for demos).

#![warn(missing_docs)]

mod app;
mod config;
mod control;
mod driver;
mod history;
pub mod speculator;
mod stats;

pub use app::{CheckOutcome, SpeculativeApp};
pub use config::{
    AdaptiveWindow, CorrectionMode, DeltaExchange, FaultTolerance, SpecConfig, SupervisionConfig,
    WindowPolicy,
};
pub use control::ControllerConfig;
pub use driver::{
    run_baseline, run_baseline_aio, run_speculative, run_speculative_aio, IterMsg, MsgBody,
    DATA_TAG, RETRANS_REQ_TAG,
};
pub use history::History;
pub use stats::{ClusterStats, IterationLog, PhaseBreakdown, RunStats};
