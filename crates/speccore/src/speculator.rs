//! Reusable speculation functions.
//!
//! §3.1 of the paper: "The speculation function for `X_k(t)` might be a
//! weighted sum of its past values … `x*_i(t) = w₁x_i(t−1) + w₂x_i(t−2)…`".
//! These helpers implement that family for scalar sequences, so apps whose
//! shared state is (or contains) numeric vectors can assemble their
//! speculation functions from audited pieces.

use crate::history::History;

/// Hold: predict the newest known value unchanged (zeroth-order).
///
/// Returns `None` on an empty history.
pub fn hold_last(hist: &History<f64>) -> Option<f64> {
    hist.latest().copied()
}

/// First-order linear extrapolation from the two newest values, `ahead`
/// iterations past the newest. Falls back to [`hold_last`] with a single
/// sample; returns `None` on an empty history.
///
/// This is the scalar analogue of the paper's N-body speculation (eq. 10):
/// position extrapolated by one velocity step.
pub fn extrapolate_linear(hist: &History<f64>, ahead: u32) -> Option<f64> {
    let (i1, &v1) = hist.nth_back(0)?;
    match hist.nth_back(1) {
        Some((i0, &v0)) => {
            let slope = (v1 - v0) / (i1 - i0) as f64;
            Some(v1 + slope * ahead as f64)
        }
        None => Some(v1),
    }
}

/// Second-order extrapolation using the three newest values (captures a
/// constant "acceleration") — the higher-order-derivative variant the paper
/// lists as unstudied future work. Falls back to lower orders when history
/// is short; `None` on empty history.
///
/// Assumes the three newest samples are at consecutive iterations; with
/// gaps it degrades gracefully to using finite differences over the actual
/// spacing.
pub fn extrapolate_quadratic(hist: &History<f64>, ahead: u32) -> Option<f64> {
    let (i2, &v2) = hist.nth_back(0)?;
    let Some((i1, &v1)) = hist.nth_back(1) else {
        return Some(v2);
    };
    let Some((i0, &v0)) = hist.nth_back(2) else {
        return extrapolate_linear(hist, ahead);
    };
    // Newton divided differences over (possibly uneven) spacing: the
    // unique parabola through the three samples, evaluated `ahead` past
    // the newest.
    let f01 = (v1 - v0) / (i1 - i0) as f64;
    let f12 = (v2 - v1) / (i2 - i1) as f64;
    let f012 = (f12 - f01) / (i2 - i0) as f64;
    let x = i2 as f64 + ahead as f64;
    Some(v0 + (x - i0 as f64) * f01 + (x - i0 as f64) * (x - i1 as f64) * f012)
}

/// The paper's general weighted-sum speculator:
/// `x* = w₁·x(t−1) + w₂·x(t−2) + …` with `weights[0]` applied to the newest
/// value. Uses at most `weights.len()` history entries; returns `None` if
/// the history has fewer entries than weights.
pub fn weighted_sum(hist: &History<f64>, weights: &[f64]) -> Option<f64> {
    if hist.len() < weights.len() || weights.is_empty() {
        return None;
    }
    let mut acc = 0.0;
    for (n, w) in weights.iter().enumerate() {
        let (_, &v) = hist.nth_back(n)?;
        acc += w * v;
    }
    Some(acc)
}

/// Apply a scalar speculator elementwise over vector-valued history.
///
/// `histories` must all have the same layout (the same partition). The
/// closure receives a per-element scalar [`History`] view materialized on
/// the fly; cost is `O(len × BW)`.
pub fn elementwise<F>(hist: &History<Vec<f64>>, mut f: F) -> Option<Vec<f64>>
where
    F: FnMut(&History<f64>) -> Option<f64>,
{
    let newest = hist.latest()?;
    let len = newest.len();
    let mut out = Vec::with_capacity(len);
    for e in 0..len {
        let mut scalar = History::new(hist.capacity());
        // Rebuild oldest-to-newest so record() accepts them.
        let mut entries: Vec<(u64, f64)> = hist.recent().map(|(i, v)| (i, v[e])).collect();
        entries.reverse();
        for (i, v) in entries {
            scalar.record(i, v);
        }
        out.push(f(&scalar)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(values: &[f64]) -> History<f64> {
        let mut h = History::new(8);
        for (i, v) in values.iter().enumerate() {
            h.record(i as u64, *v);
        }
        h
    }

    #[test]
    fn hold_last_returns_newest() {
        assert_eq!(hold_last(&hist(&[1.0, 2.0, 3.0])), Some(3.0));
        assert_eq!(hold_last(&History::new(2)), None);
    }

    #[test]
    fn linear_extrapolates_a_line_exactly() {
        // 2, 4, 6 → next is 8, two ahead is 10.
        let h = hist(&[2.0, 4.0, 6.0]);
        assert_eq!(extrapolate_linear(&h, 1), Some(8.0));
        assert_eq!(extrapolate_linear(&h, 2), Some(10.0));
    }

    #[test]
    fn linear_single_sample_degrades_to_hold() {
        assert_eq!(extrapolate_linear(&hist(&[5.0]), 3), Some(5.0));
    }

    #[test]
    fn linear_handles_gapped_history() {
        let mut h = History::new(4);
        h.record(0, 0.0);
        h.record(4, 8.0); // slope 2 per iteration
        assert_eq!(extrapolate_linear(&h, 1), Some(10.0));
    }

    #[test]
    fn quadratic_extrapolates_a_parabola_exactly() {
        // v(i) = i²: 0, 1, 4 → v(3) = 9, v(4) = 16.
        let h = hist(&[0.0, 1.0, 4.0]);
        assert_eq!(extrapolate_quadratic(&h, 1), Some(9.0));
        assert_eq!(extrapolate_quadratic(&h, 2), Some(16.0));
    }

    #[test]
    fn quadratic_degrades_with_short_history() {
        assert_eq!(extrapolate_quadratic(&hist(&[2.0, 4.0]), 1), Some(6.0)); // linear
        assert_eq!(extrapolate_quadratic(&hist(&[7.0]), 1), Some(7.0)); // hold
        assert_eq!(extrapolate_quadratic(&History::new(2), 1), None);
    }

    #[test]
    fn weighted_sum_matches_manual_combination() {
        // newest = 3.0, older = 2.0; w = [0.75, 0.25] → 2.75.
        let h = hist(&[1.0, 2.0, 3.0]);
        assert_eq!(weighted_sum(&h, &[0.75, 0.25]), Some(2.75));
    }

    #[test]
    fn weighted_sum_needs_enough_history() {
        assert_eq!(weighted_sum(&hist(&[1.0]), &[0.5, 0.5]), None);
        assert_eq!(weighted_sum(&hist(&[1.0, 2.0]), &[]), None);
    }

    #[test]
    fn elementwise_applies_per_component() {
        let mut h: History<Vec<f64>> = History::new(4);
        h.record(0, vec![0.0, 10.0]);
        h.record(1, vec![1.0, 20.0]);
        h.record(2, vec![2.0, 30.0]);
        let out = elementwise(&h, |s| extrapolate_linear(s, 1)).unwrap();
        assert_eq!(out, vec![3.0, 40.0]);
    }

    #[test]
    fn elementwise_empty_history_is_none() {
        let h: History<Vec<f64>> = History::new(4);
        assert_eq!(elementwise(&h, hold_last), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Linear extrapolation is exact on affine sequences.
        #[test]
        fn linear_exact_on_affine(a in -100.0f64..100.0, b in -10.0f64..10.0, ahead in 1u32..5) {
            let mut h = History::new(4);
            for i in 0..3u64 {
                h.record(i, a + b * i as f64);
            }
            let expected = a + b * (2 + ahead as u64) as f64;
            let got = extrapolate_linear(&h, ahead).unwrap();
            prop_assert!((got - expected).abs() <= 1e-9 * (1.0 + expected.abs()));
        }

        /// weighted_sum([1.0]) equals hold_last.
        #[test]
        fn unit_weight_is_hold(values in proptest::collection::vec(-100.0f64..100.0, 1..6)) {
            let mut h = History::new(8);
            for (i, v) in values.iter().enumerate() {
                h.record(i as u64, *v);
            }
            prop_assert_eq!(weighted_sum(&h, &[1.0]), hold_last(&h));
        }
    }
}
