//! The synchronous-iterative execution drivers.
//!
//! [`run_baseline`] implements the paper's Figure 1: broadcast the
//! partition, block for every peer's values, compute. [`run_speculative`]
//! implements Figure 3 generalized to any forward window: missing inputs are
//! speculated from history, computation proceeds immediately, and arriving
//! actuals either validate the speculation (error ≤ θ), trigger an
//! incremental correction, or — when deeper speculation consumed the
//! corrupted state — roll execution back to the last confirmed checkpoint.
//!
//! ## Send-on-confirm semantics
//!
//! A rank broadcasts `X_j(t)` only once iteration `t-1` is *confirmed*
//! (every input it used was actual or validated). This matches Figure 3,
//! where the values sent at the top of an iteration were already corrected,
//! and keeps the protocol sound for FW ≥ 2: nothing tentative ever crosses
//! the network, so a misspeculation never cascades to other ranks. Forward
//! speculation still masks delays because by the time a late message
//! arrives and validates, the next iterations are already computed and
//! their broadcasts leave back-to-back (the paper's Figure 4c behaviour).

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use desim::{SimDuration, SimTime};
use mpk::{DeltaFrame, Envelope, Rank, Tag, Transport, WireCodec, WireSize, HEADER_BYTES};
use obs::{Gauge, Mark, Phase};

use crate::app::SpeculativeApp;
use crate::config::{CorrectionMode, DeltaExchange, SpecConfig, SupervisionConfig, WindowPolicy};
use crate::control::ControllerState;
use crate::history::History;
use crate::stats::{IterationLog, RunStats};

/// Wire discriminant for delta frames: the top bit of the iteration stamp.
/// Iteration counts never approach 2^63, so full frames — whose encoding
/// must stay byte-identical to the pre-delta protocol — always have it
/// clear.
const DELTA_BIT: u64 = 1 << 63;

/// The message every rank broadcasts each iteration: either its full
/// partition snapshot or a sparse [`DeltaFrame`] against the receiver's
/// shadow, stamped with the iteration it belongs to.
#[derive(Clone, Debug, PartialEq)]
pub struct IterMsg<S> {
    /// Which iteration's `X_j` this is.
    pub iter: u64,
    /// Full snapshot or sparse delta.
    pub body: MsgBody<S>,
}

/// Payload of an [`IterMsg`].
#[derive(Clone, Debug, PartialEq)]
pub enum MsgBody<S> {
    /// The complete partition snapshot (the only body before delta
    /// exchange; still used for keyframes, retransmissions and recovery).
    Full(S),
    /// Scalar lanes that moved past the quantization floor since the
    /// previous frame to the same peer. Applies only on top of the
    /// immediately preceding iteration's reconstruction.
    Delta(DeltaFrame),
}

impl<S> IterMsg<S> {
    /// A full-snapshot message.
    pub fn full(iter: u64, data: S) -> Self {
        debug_assert!(iter & DELTA_BIT == 0, "iteration stamp overflows wire tag");
        IterMsg {
            iter,
            body: MsgBody::Full(data),
        }
    }

    /// A delta-frame message.
    pub fn delta(iter: u64, frame: DeltaFrame) -> Self {
        debug_assert!(iter & DELTA_BIT == 0, "iteration stamp overflows wire tag");
        IterMsg {
            iter,
            body: MsgBody::Delta(frame),
        }
    }
}

impl<S: WireSize> WireSize for IterMsg<S> {
    fn wire_size(&self) -> usize {
        8 + match &self.body {
            MsgBody::Full(data) => data.wire_size(),
            MsgBody::Delta(frame) => frame.wire_size(),
        }
    }
}

/// The real encoding matches the [`WireSize`] model above byte-for-byte,
/// so socket runs put exactly the modelled payload on the wire. Full
/// frames encode exactly as the pre-delta `IterMsg` did (iteration stamp,
/// then payload); delta frames set [`DELTA_BIT`] in the stamp.
impl<S: WireCodec> WireCodec for IterMsg<S> {
    fn encode(&self, out: &mut Vec<u8>) {
        match &self.body {
            MsgBody::Full(data) => {
                self.iter.encode(out);
                data.encode(out);
            }
            MsgBody::Delta(frame) => {
                (self.iter | DELTA_BIT).encode(out);
                frame.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let stamp = u64::decode(buf)?;
        if stamp & DELTA_BIT == 0 {
            Some(IterMsg::full(stamp, S::decode(buf)?))
        } else {
            Some(IterMsg::delta(stamp & !DELTA_BIT, DeltaFrame::decode(buf)?))
        }
    }
}

/// Tag used for iteration data messages.
pub const DATA_TAG: Tag = Tag(1);

/// Tag used for retransmit requests. The request's payload is the
/// *requester's* latest broadcast (so even the request refreshes the
/// receiver's view of the requester); the reply is an ordinary
/// [`DATA_TAG`] re-send of the receiver's latest broadcast, which doubles
/// as the acknowledgement.
pub const RETRANS_REQ_TAG: Tag = Tag(2);

enum InputSlot<S> {
    /// Received actual value was used.
    Actual,
    /// Speculated, later validated or corrected.
    Validated,
    /// Speculated with this value; awaiting the actual.
    Speculated(S),
}

struct ExecRecord<S, C> {
    iter: u64,
    /// App state snapshot taken before executing this iteration.
    pre: C,
    /// `X_j(iter + 1)`, extracted right after execution (kept up to date
    /// through incremental corrections).
    produced: S,
    /// Input provenance per rank (own rank marked `Validated`).
    inputs: Vec<InputSlot<S>>,
}

/// Loss-detection state for one peer's missing input to the queue-head
/// iteration. Promotion of a speculated value to a committed one is
/// evidence-based: a peer that demonstrably broadcast *past* the front
/// (links deliver in order on calm networks, so the front's message
/// cannot still be in flight) is promoted at its first deadline; a peer
/// that has merely gone quiet is asked to retransmit first, and only a
/// second full timeout of silence — which itself consumed a lost request
/// or reply — promotes. This keeps merely-late broadcasts from being
/// promoted and ties every promotion to at least one genuinely dropped
/// message.
#[derive(Clone, Copy)]
enum PeerWait {
    /// Waiting for the peer's broadcast to arrive on its own.
    Armed {
        /// When this wait (re-)started.
        since: SimTime,
    },
    /// A retransmit request is in flight; waiting for any sign of life.
    Grace {
        /// When the request was sent.
        asked_at: SimTime,
    },
}

/// Flip peer `k`'s speculated input to the front record into a committed
/// one. Counted in the stats only the first time this (peer, iteration)
/// pair promotes — a rollback can make the same slot speculative again,
/// and re-flipping it is not a second loss. Returns whether this promotion
/// was freshly counted.
fn promote_loss<S: Clone, C>(
    k: usize,
    rec: &mut ExecRecord<S, C>,
    history: &mut History<S>,
    stats: &mut RunStats,
    staleness: &mut u32,
    promoted: &mut HashSet<(usize, u64)>,
) -> bool {
    let iter = rec.iter;
    let sv = match std::mem::replace(&mut rec.inputs[k], InputSlot::Validated) {
        InputSlot::Speculated(s) => s,
        _ => unreachable!("promotion of a non-speculated slot"),
    };
    // Recording the promoted value keeps the backward window anchored (a
    // late actual for the same iteration is ignored by the history's
    // freshness guard, so the promotion is final); on a re-promotion
    // after rollback the same guard makes this a no-op.
    history.record(iter, sv);
    if promoted.insert((k, iter)) {
        stats.speculate_through_loss_commits += 1;
        *staleness += 1;
        true
    } else {
        false
    }
}

/// Per-peer health in the supervision lifecycle.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PeerHealth {
    /// Contributing normally.
    Healthy,
    /// Too many consecutive promotions; may be dead.
    Suspected,
    /// Given up on: its partition is carried by speculation alone, with no
    /// loss timeout spent on it, until it is heard from again.
    Quarantined,
}

/// Driver-side supervision: per-peer health derived from the
/// consecutive-promotion staleness counters, plus the degraded-mode
/// population count. Inert (never constructed) unless the config sets both
/// a fault-tolerance policy and a supervision policy.
struct SupervisionState {
    cfg: SupervisionConfig,
    health: Vec<PeerHealth>,
    quarantined: usize,
}

impl SupervisionState {
    fn new(cfg: SupervisionConfig, p: usize) -> Self {
        SupervisionState {
            cfg,
            health: vec![PeerHealth::Healthy; p],
            quarantined: 0,
        }
    }

    fn is_quarantined(&self, k: usize) -> bool {
        self.health[k] == PeerHealth::Quarantined
    }

    /// Re-derive peer `k`'s health from its consecutive-promotion count.
    /// One step per call (the sweep runs every loop pass, so a count past
    /// both thresholds quarantines on the next pass). Returns
    /// (newly suspected, newly quarantined, entered degraded mode).
    fn observe(&mut self, k: usize, staleness: u32) -> (bool, bool, bool) {
        match self.health[k] {
            PeerHealth::Healthy if staleness >= self.cfg.suspect_after => {
                self.health[k] = PeerHealth::Suspected;
                (true, false, false)
            }
            PeerHealth::Suspected if staleness >= self.cfg.quarantine_after => {
                self.health[k] = PeerHealth::Quarantined;
                self.quarantined += 1;
                (false, true, self.quarantined == 1)
            }
            _ => (false, false, false),
        }
    }

    /// The peer spoke. Returns (readmitted from quarantine, left degraded
    /// mode).
    fn on_heard(&mut self, k: usize) -> (bool, bool) {
        let was_quarantined = self.health[k] == PeerHealth::Quarantined;
        self.health[k] = PeerHealth::Healthy;
        if was_quarantined {
            self.quarantined -= 1;
            (true, self.quarantined == 0)
        } else {
            (false, false)
        }
    }
}

/// All per-run delta-exchange state. `policy` is `Some` only when the
/// config asked for deltas *and* the app exposes scalar lanes; otherwise
/// every field stays empty and the driver's behavior (and allocations) are
/// bit-identical to the pre-delta protocol.
struct DeltaState<S> {
    policy: Option<DeltaExchange>,
    /// Per-peer sender shadow: the scalar lanes that peer has
    /// reconstructed from our stream (diff baseline). `None` until the
    /// first full frame to that peer.
    tx_shadow: Vec<Option<Vec<f64>>>,
    /// Per-sender receiver shadow: `(iter, reconstruction)` of the
    /// newest frame applied from that sender.
    rx_shadow: Vec<Option<(u64, S)>>,
    /// Highest iteration stamp seen on *any* frame from each peer —
    /// including delta frames dropped over a gap, which prove the peer
    /// advanced even though no value could be recorded. Feeds the
    /// loss-promotion evidence check alongside the history.
    seen_past: Vec<Option<u64>>,
    /// Scratch: current partition flattened to scalar lanes.
    cur: Vec<f64>,
    /// Scratch: the frame being diffed for the peer in progress.
    frame: DeltaFrame,
}

impl<S> DeltaState<S> {
    fn inert(p: usize) -> Self {
        DeltaState {
            policy: None,
            tx_shadow: (0..p).map(|_| None).collect(),
            rx_shadow: (0..p).map(|_| None).collect(),
            seen_past: vec![None; p],
            cur: Vec::new(),
            frame: DeltaFrame::new(),
        }
    }

    /// Forget everything volatile (crash recovery): shadows on both sides
    /// and the advancement evidence. The next frame to every peer will be
    /// a full keyframe, and peers' next full frames re-seed our receiver
    /// shadows.
    fn reset(&mut self) {
        self.tx_shadow.iter_mut().for_each(|s| *s = None);
        self.rx_shadow.iter_mut().for_each(|s| *s = None);
        self.seen_past.iter_mut().for_each(|s| *s = None);
    }
}

/// Send one message, keeping the modelled byte/message tallies.
async fn send_msg<T, S>(
    transport: &mut T,
    stats: &mut RunStats,
    to: Rank,
    tag: Tag,
    msg: IterMsg<S>,
) where
    S: WireSize,
    T: mpk::AsyncTransport<Msg = IterMsg<S>>,
{
    stats.bytes_sent += (HEADER_BYTES + msg.wire_size()) as u64;
    stats.messages_sent += 1;
    transport.send(to, tag, msg).await;
}

/// Send a full snapshot to one peer (retransmit request/reply, crash
/// recovery), resetting the sender-side shadow so the peer's stream
/// restarts from a known baseline.
#[allow(clippy::too_many_arguments)]
async fn send_full_state<T, A>(
    transport: &mut T,
    stats: &mut RunStats,
    app: &A,
    dx: &mut DeltaState<A::Shared>,
    to: Rank,
    tag: Tag,
    iter: u64,
    data: &A::Shared,
) where
    A: SpeculativeApp,
    A::Shared: WireSize,
    T: mpk::AsyncTransport<Msg = IterMsg<A::Shared>>,
{
    if dx.policy.is_some() {
        let capable = app.delta_extract(data, &mut dx.cur);
        debug_assert!(capable, "delta policy active on a non-capable app");
        let shadow = dx.tx_shadow[to.0].get_or_insert_with(Vec::new);
        shadow.clear();
        shadow.extend_from_slice(&dx.cur);
    }
    send_msg(transport, stats, to, tag, IterMsg::full(iter, data.clone())).await;
}

/// Run the non-speculative baseline (the paper's Figure 1) for
/// `total_iters` iterations.
pub fn run_baseline<T, A>(transport: &mut T, app: &mut A, total_iters: u64) -> RunStats
where
    A: SpeculativeApp,
    A::Shared: WireSize,
    T: Transport<Msg = IterMsg<A::Shared>>,
{
    run_speculative(transport, app, total_iters, SpecConfig::baseline())
}

/// The `async` twin of [`run_baseline`]: the non-speculative Figure 1
/// protocol on any [`mpk::AsyncTransport`].
pub async fn run_baseline_aio<T, A>(transport: &mut T, app: &mut A, total_iters: u64) -> RunStats
where
    A: SpeculativeApp,
    A::Shared: WireSize,
    T: mpk::AsyncTransport<Msg = IterMsg<A::Shared>>,
{
    run_speculative_aio(transport, app, total_iters, SpecConfig::baseline()).await
}

/// Drive to completion a future that never suspends.
///
/// The blanket `AsyncTransport` impl for blocking transports performs every
/// operation inline, so `run_speculative_aio`'s future over such a
/// transport resolves on its first poll — this is the entire "executor"
/// the sync entry points need. `Pending` here would mean the future
/// awaited something other than a blocking transport operation, which is a
/// driver bug, not a caller error.
fn poll_ready<F: std::future::Future>(fut: F) -> F::Output {
    let mut fut = std::pin::pin!(fut);
    let mut cx = std::task::Context::from_waker(std::task::Waker::noop());
    match fut.as_mut().poll(&mut cx) {
        std::task::Poll::Ready(v) => v,
        std::task::Poll::Pending => unreachable!("blocking transport returned Pending"),
    }
}

/// Run the speculative driver (the paper's Figure 3, generalized over
/// forward windows) for `total_iters` iterations.
///
/// The body is [`run_speculative_aio`]; on a blocking [`Transport`] the
/// async form completes in one poll, so this wrapper is zero-cost and
/// bit-identical to the historical synchronous driver.
pub fn run_speculative<T, A>(
    transport: &mut T,
    app: &mut A,
    total_iters: u64,
    config: SpecConfig,
) -> RunStats
where
    A: SpeculativeApp,
    A::Shared: WireSize,
    T: Transport<Msg = IterMsg<A::Shared>>,
{
    poll_ready(run_speculative_aio(transport, app, total_iters, config))
}

/// The `async` speculative driver: [`run_speculative`]'s actual body,
/// written once against [`mpk::AsyncTransport`].
///
/// On a blocking transport (every [`Transport`], via the blanket impl)
/// the returned future completes on its first poll — which is exactly how
/// the sync entry points drive it, no executor involved. On
/// [`mpk::SimIo`] each `.await` suspends the rank's state machine into
/// the `desim` event kernel, so thousands of ranks run the identical
/// driver code on one OS thread.
#[allow(clippy::needless_range_loop)] // rank indices couple several per-rank arrays
pub async fn run_speculative_aio<T, A>(
    transport: &mut T,
    app: &mut A,
    total_iters: u64,
    mut config: SpecConfig,
) -> RunStats
where
    A: SpeculativeApp,
    A::Shared: WireSize,
    T: mpk::AsyncTransport<Msg = IterMsg<A::Shared>>,
{
    config
        .validate()
        .expect("invalid SpecConfig reached the driver");
    let me = transport.rank();
    let p = transport.size();
    let start = transport.now();
    let mut stats = RunStats::new(me);
    // Telemetry identity and gauge change-detection (gauges are sampled
    // only when their value moves, to keep traces compact).
    let obs_rank = me.0 as u32;
    let mut last_inbox_depth: Option<u64> = None;
    let mut last_window: Option<u64> = None;

    // Actual values received, keyed by iteration then sender.
    let mut inbox: BTreeMap<u64, HashMap<usize, A::Shared>> = BTreeMap::new();
    // Per-peer history of actuals (the backward window).
    let mut history: Vec<History<A::Shared>> = (0..p)
        .map(|_| History::new(config.backward_window.max(1)))
        .collect();
    // Executed-but-unconfirmed iterations, oldest first.
    let mut exec_q: VecDeque<ExecRecord<A::Shared, A::Checkpoint>> = VecDeque::new();
    // Recycled checkpoint buffers: confirmed (or rolled-back) records
    // donate their `pre` snapshots back, so apps that override
    // `checkpoint_into` keep the steady-state path allocation-free. Depth
    // is bounded by the forward window, so the pool never grows past it.
    let mut checkpoint_pool: Vec<A::Checkpoint> = Vec::new();

    // ---- fault-tolerance state (inert when `config.fault` is None) ----
    let ft = config.fault.clone();
    // Peer supervision rides on the loss-promotion counters, so it is
    // inert unless fault tolerance is on too.
    let mut sup: Option<SupervisionState> = match (&ft, config.supervision) {
        (Some(_), Some(s)) => Some(SupervisionState::new(s, p)),
        _ => None,
    };
    // Latest state this rank put on the wire, re-sent on retransmit
    // requests and after crash recovery.
    let mut last_broadcast: (u64, A::Shared) = (0, app.shared());
    // Consecutive speculate-through-loss promotions per peer since its
    // last heard-from message.
    let mut staleness: Vec<u32> = vec![0; p];
    // The queue-head iteration whose missing inputs are being tracked;
    // `peer_wait` below is meaningful only while this matches the front.
    let mut front_tracked: Option<u64> = None;
    // Per-peer loss-detection state for the tracked front iteration.
    let mut peer_wait: Vec<Option<PeerWait>> = vec![None; p];
    // Virtual time each peer last delivered anything (any tag).
    let mut last_heard: Vec<SimTime> = vec![SimTime::ZERO; p];
    // (peer, iteration) pairs whose loss promotion was already counted.
    let mut promoted: HashSet<(usize, u64)> = HashSet::new();
    // When the rank first found itself with nothing in flight and nothing
    // executable (starved — e.g. iteration 0 under loss, before any
    // history exists to extrapolate from).
    let mut starved_since: Option<SimTime> = None;
    // This rank's own scripted outages, in schedule order.
    let my_crashes: Vec<_> = ft
        .as_ref()
        .map(|f| {
            let mut v: Vec<_> = f
                .crashes
                .iter()
                .filter(|c| c.rank == me.0)
                .copied()
                .collect();
            v.sort_by_key(|c| c.at);
            v
        })
        .unwrap_or_default();
    let mut next_crash = 0usize;

    // ---- adaptive-controller state (inert when `config.controller` is
    // None: no estimator runs, no stats fields move, no Marks are
    // emitted, and the window policy is never touched) ----
    let mut ctl: Option<ControllerState> = config
        .controller
        .clone()
        .map(|cc| ControllerState::new(cc, p, config.window.current()));
    // Busy-time (compute + speculate + check + correct) high-water mark at
    // the previous confirmation, so each confirm feeds the controller only
    // the interval's own busy time.
    let mut busy_at_confirm = SimDuration::ZERO;

    // ---- delta-exchange state (inert unless configured AND the app
    // exposes scalar lanes; inert means bit-identical legacy behavior) ----
    let mut dx: DeltaState<A::Shared> = DeltaState::inert(p);
    if let Some(pol) = config.delta {
        let probe = app.shared();
        if app.delta_extract(&probe, &mut dx.cur) {
            dx.policy = Some(pol);
        }
    }

    let mut t_conf: u64 = 0; // next iteration to confirm
    let mut t_exec: u64 = 0; // next iteration to execute
    let mut waited_since_confirm = SimDuration::ZERO;
    // Per-iteration timing records awaiting confirmation (only when the
    // log is enabled).
    let mut log_pending: HashMap<u64, IterationLog> = HashMap::new();
    // Snapshots for adaptive-window feedback.
    let mut checked_at_confirm = 0u64;
    let mut missed_at_confirm = 0u64;

    if total_iters == 0 {
        stats.total_time = transport.now() - start;
        return stats;
    }

    broadcast(transport, &mut stats, app, &mut dx, p, me, 0, app.shared()).await;

    'main: while t_conf < total_iters {
        // Fold in everything that has arrived.
        while let Some(env) = transport.try_recv().await {
            if let Some(c) = &mut ctl {
                c.on_receive(env.src.0, transport.now());
            }
            if ft.is_some() {
                let src = env.src;
                staleness[src.0] = 0;
                last_heard[src.0] = transport.now();
                let (rejoined, degraded_exit) = match &mut sup {
                    Some(sv) => sv.on_heard(src.0),
                    None => (false, false),
                };
                if rejoined {
                    // Readmission: forget the receive-side delta view of the
                    // peer (its stream must restart from a keyframe) and
                    // ship it our full state so its backward window re-seeds
                    // at once. The keyframe doubles as the retransmit reply.
                    stats.peer_rejoins += 1;
                    dx.rx_shadow[src.0] = None;
                    dx.seen_past[src.0] = None;
                    let t_now = transport.now();
                    if let Some(r) = transport.recorder() {
                        r.mark(
                            obs_rank,
                            t_now.as_nanos(),
                            Mark::PeerRejoined { peer: src.0 as u32 },
                        );
                        if degraded_exit {
                            r.mark(obs_rank, t_now.as_nanos(), Mark::DegradedExit);
                        }
                    }
                    send_full_state(
                        transport,
                        &mut stats,
                        app,
                        &mut dx,
                        src,
                        DATA_TAG,
                        last_broadcast.0,
                        &last_broadcast.1,
                    )
                    .await;
                } else if env.tag == RETRANS_REQ_TAG {
                    // Re-send our latest broadcast; re-delivery is the ack.
                    send_full_state(
                        transport,
                        &mut stats,
                        app,
                        &mut dx,
                        src,
                        DATA_TAG,
                        last_broadcast.0,
                        &last_broadcast.1,
                    )
                    .await;
                }
            }
            stash(
                app,
                &mut dx,
                env,
                t_conf,
                &mut inbox,
                &mut history,
                &mut stats,
            );
        }

        // ------------------------------------------------------------------
        // Fault tolerance: scripted crashes, then speculate-through-loss
        // promotion of the stuck queue head. Both no-ops without a policy.
        // ------------------------------------------------------------------
        if let Some(f) = &ft {
            if next_crash < my_crashes.len() {
                let c = my_crashes[next_crash];
                let now = transport.now();
                if now >= c.at {
                    next_crash += 1;
                    if c.is_permanent() {
                        // The machine never comes back. The confirmed
                        // prefix stands (it was validated and broadcast);
                        // peers quarantine this rank and finish in degraded
                        // mode, carrying its partition by speculation.
                        if let Some(r) = transport.recorder() {
                            r.mark(
                                obs_rank,
                                c.at.as_nanos(),
                                Mark::PeerCrashed { peer: obs_rank },
                            );
                        }
                        break 'main;
                    }
                    stats.peer_restarts += 1;
                    // Volatile state dies with the machine: roll back to the
                    // last confirmed checkpoint (the confirmed prefix
                    // [0, t_conf) is durable — it was validated and
                    // broadcast before the crash).
                    if let Some(front) = exec_q.front() {
                        app.restore(&front.pre);
                    }
                    t_exec = t_conf;
                    for rec in exec_q.drain(..) {
                        checkpoint_pool.push(rec.pre);
                    }
                    inbox.clear();
                    for h in history.iter_mut() {
                        *h = History::new(config.backward_window.max(1));
                    }
                    dx.reset();
                    staleness.iter_mut().for_each(|s| *s = 0);
                    front_tracked = None;
                    peer_wait.iter_mut().for_each(|w| *w = None);
                    starved_since = None;
                    if let Some(r) = transport.recorder() {
                        r.mark(
                            obs_rank,
                            c.at.as_nanos(),
                            Mark::PeerCrashed { peer: obs_rank },
                        );
                        r.gauge(obs_rank, c.at.as_nanos(), Gauge::ExecQueueDepth, 0);
                    }
                    let wake = c.at + c.restart_after;
                    if wake > now {
                        let outage = wake.duration_since(now);
                        transport.sleep(outage).await;
                        stats.downtime += outage;
                    }
                    // Mail delivered while the machine was down is lost.
                    while transport.try_recv().await.is_some() {}
                    let t_up = transport.now();
                    if let Some(r) = transport.recorder() {
                        r.mark(
                            obs_rank,
                            t_up.as_nanos(),
                            Mark::PeerRecovered { peer: obs_rank },
                        );
                    }
                    // Ask every peer for its latest state to rebuild the
                    // backward windows; the requests carry our own state.
                    for k in 0..p {
                        if k != me.0 {
                            send_full_state(
                                transport,
                                &mut stats,
                                app,
                                &mut dx,
                                Rank(k),
                                RETRANS_REQ_TAG,
                                last_broadcast.0,
                                &last_broadcast.1,
                            )
                            .await;
                            stats.retransmit_requests += 1;
                        }
                    }
                    continue 'main;
                }
            }

            let now = transport.now();
            // Re-anchor the per-peer waits whenever the queue head changes
            // (confirmation, rollback, drain): `since` stamps from a
            // previous front must never promote inputs of the new one.
            let front_now = exec_q.front().map(|rec| rec.iter);
            if front_now != front_tracked {
                front_tracked = front_now;
                peer_wait.iter_mut().for_each(|w| *w = None);
            }
            if let Some(front_iter) = front_tracked {
                let mut ask_retransmit: Vec<usize> = Vec::new();
                for k in 0..p {
                    if k == me.0 {
                        continue;
                    }
                    // A peer whose slot is no longer speculative — or whose
                    // actual already sits in the inbox awaiting its check —
                    // needs no loss tracking.
                    let have_actual = inbox
                        .get(&front_iter)
                        .map(|m| m.contains_key(&k))
                        .unwrap_or(false);
                    if have_actual || !matches!(exec_q[0].inputs[k], InputSlot::Speculated(_)) {
                        peer_wait[k] = None;
                        continue;
                    }
                    // Degraded mode: a quarantined peer gets no loss timeout
                    // at all — its speculated input is promoted the moment
                    // it blocks the front, so the cluster's pace no longer
                    // depends on the dead rank.
                    if sup.as_ref().is_some_and(|sv| sv.is_quarantined(k)) {
                        if promote_loss(
                            k,
                            &mut exec_q[0],
                            &mut history[k],
                            &mut stats,
                            &mut staleness[k],
                            &mut promoted,
                        ) {
                            stats.degraded_commits += 1;
                        }
                        peer_wait[k] = None;
                        continue;
                    }
                    // Evidence of a genuine loss: the peer already broadcast
                    // an iteration past the front, so (links delivering in
                    // order) the front's message is not merely late. A delta
                    // frame dropped over a gap proves advancement just as a
                    // recorded value does — without it, a delta stream whose
                    // frames all miss their baseline would never build
                    // evidence through the history alone.
                    let evidence = history[k].latest_iter().is_some_and(|li| li > front_iter)
                        || dx.seen_past[k].is_some_and(|si| si > front_iter);
                    // Adaptive per-peer deadline: the controller's delay
                    // quantile × headroom, clamped to never exceed the
                    // static timeout. Falls back to the static timeout
                    // while the controller lacks samples (or is off).
                    let loss_deadline = ctl
                        .as_ref()
                        .and_then(|c| c.deadline_for(k))
                        .unwrap_or(f.loss_timeout);
                    match peer_wait[k] {
                        None => peer_wait[k] = Some(PeerWait::Armed { since: now }),
                        Some(PeerWait::Armed { since }) => {
                            if now.duration_since(since) >= loss_deadline {
                                if evidence {
                                    promote_loss(
                                        k,
                                        &mut exec_q[0],
                                        &mut history[k],
                                        &mut stats,
                                        &mut staleness[k],
                                        &mut promoted,
                                    );
                                    peer_wait[k] = None;
                                } else {
                                    // No proof the message was lost rather
                                    // than the peer slow: ask once before
                                    // giving up on it.
                                    ask_retransmit.push(k);
                                    peer_wait[k] = Some(PeerWait::Grace { asked_at: now });
                                }
                            }
                        }
                        Some(PeerWait::Grace { asked_at }) => {
                            if evidence {
                                // The reply (or a late broadcast) proved the
                                // peer is past the front: the front's
                                // message is gone for good.
                                promote_loss(
                                    k,
                                    &mut exec_q[0],
                                    &mut history[k],
                                    &mut stats,
                                    &mut staleness[k],
                                    &mut promoted,
                                );
                                peer_wait[k] = None;
                            } else if last_heard[k] > asked_at {
                                // The peer answered but is behind the front:
                                // merely late, not lost. Wait afresh from
                                // its last sign of life.
                                peer_wait[k] = Some(PeerWait::Armed {
                                    since: last_heard[k],
                                });
                            } else if now.duration_since(asked_at) >= loss_deadline {
                                // Total silence through the grace period:
                                // the request or its reply was lost too.
                                promote_loss(
                                    k,
                                    &mut exec_q[0],
                                    &mut history[k],
                                    &mut stats,
                                    &mut staleness[k],
                                    &mut promoted,
                                );
                                peer_wait[k] = None;
                            }
                        }
                    }
                }
                for k in ask_retransmit {
                    send_full_state(
                        transport,
                        &mut stats,
                        app,
                        &mut dx,
                        Rank(k),
                        RETRANS_REQ_TAG,
                        last_broadcast.0,
                        &last_broadcast.1,
                    )
                    .await;
                    stats.retransmit_requests += 1;
                }
            }

            // Supervision sweep: re-derive per-peer health from the
            // consecutive-promotion counters and mark the transitions. One
            // step per pass, so thresholds crossed together still resolve.
            if let Some(sv) = &mut sup {
                let t_now = transport.now();
                for k in 0..p {
                    if k == me.0 {
                        continue;
                    }
                    let (suspected, quarantined, degraded_enter) = sv.observe(k, staleness[k]);
                    if suspected {
                        stats.peers_suspected += 1;
                        if let Some(r) = transport.recorder() {
                            r.mark(
                                obs_rank,
                                t_now.as_nanos(),
                                Mark::PeerSuspected { peer: k as u32 },
                            );
                        }
                    }
                    if quarantined {
                        stats.peers_quarantined += 1;
                        if let Some(r) = transport.recorder() {
                            r.mark(
                                obs_rank,
                                t_now.as_nanos(),
                                Mark::PeerQuarantined { peer: k as u32 },
                            );
                            if degraded_enter {
                                r.mark(obs_rank, t_now.as_nanos(), Mark::DegradedEnter);
                            }
                        }
                    }
                }
            }
        }

        let inbox_depth = inbox.len() as u64;
        if last_inbox_depth != Some(inbox_depth) {
            last_inbox_depth = Some(inbox_depth);
            let t_now = transport.now();
            if let Some(r) = transport.recorder() {
                r.gauge(obs_rank, t_now.as_nanos(), Gauge::InboxDepth, inbox_depth);
            }
        }

        // ------------------------------------------------------------------
        // Phase 1: validate and confirm the oldest unconfirmed iteration.
        // ------------------------------------------------------------------
        if !exec_q.is_empty() {
            let front_iter = exec_q[0].iter;
            let mut rollback = false;
            for k in 0..p {
                let spec = match &exec_q[0].inputs[k] {
                    InputSlot::Speculated(s) => s.clone(),
                    _ => continue,
                };
                let Some(actual) = inbox.get(&front_iter).and_then(|m| m.get(&k)).cloned() else {
                    continue;
                };
                let t0 = transport.now();
                let outcome = app.check(Rank(k), &actual, &spec);
                if let Some(c) = &mut ctl {
                    c.observe_error(outcome.max_error);
                }
                transport.compute(outcome.ops).await;
                let t1 = transport.now();
                stats.phases.check += t1 - t0;
                if let Some(r) = transport.recorder() {
                    r.span_begin(
                        obs_rank,
                        t0.as_nanos(),
                        Phase::Check,
                        Some(front_iter),
                        None,
                    );
                    r.span_end(obs_rank, t1.as_nanos(), Phase::Check);
                }
                stats.checked_partitions += 1;
                stats.checked_units += outcome.checked_units;
                stats.bad_units += outcome.bad_units;

                stats.max_accepted_error = stats.max_accepted_error.max(outcome.max_accepted_error);
                if outcome.accept {
                    stats.accepted_partitions += 1;
                    exec_q[0].inputs[k] = InputSlot::Validated;
                } else {
                    stats.misspeculated_partitions += 1;
                    if let Some(r) = transport.recorder() {
                        r.mark(
                            obs_rank,
                            t1.as_nanos(),
                            Mark::Misspeculation {
                                peer: k as u32,
                                iter: front_iter,
                            },
                        );
                    }
                    if config.correction == CorrectionMode::Incremental {
                        let depth = exec_q.len() as u64 - 1;
                        let t0 = transport.now();
                        let ops = if depth == 0 {
                            // Fix the single in-flight iteration in place:
                            // the paper's `correct(X_j(t+1))`.
                            let ops = app.correct(Rank(k), &spec, &actual);
                            exec_q[0].produced = app.shared();
                            Some(ops)
                        } else {
                            // Iterations were already computed on top; let
                            // the app propagate the correction forward if
                            // it can (first-order, bounded residual).
                            app.correct_deep(Rank(k), &spec, &actual, depth)
                        };
                        match ops {
                            Some(ops) => {
                                transport.compute(ops).await;
                                let t1 = transport.now();
                                stats.phases.correct += t1 - t0;
                                stats.corrections += 1;
                                if let Some(r) = transport.recorder() {
                                    r.span_begin(
                                        obs_rank,
                                        t0.as_nanos(),
                                        Phase::Correct,
                                        Some(front_iter),
                                        Some(depth),
                                    );
                                    r.span_end(obs_rank, t1.as_nanos(), Phase::Correct);
                                    r.mark(
                                        obs_rank,
                                        t1.as_nanos(),
                                        Mark::Correction {
                                            peer: k as u32,
                                            depth,
                                        },
                                    );
                                }
                                exec_q[0].inputs[k] = InputSlot::Validated;
                                if depth > 0 {
                                    // The live state changed; refresh the
                                    // newest pending broadcast. (Interim
                                    // records keep a bounded θ-order
                                    // residual — the paper's accepted-
                                    // error philosophy.)
                                    let last = exec_q.len() - 1;
                                    exec_q[last].produced = app.shared();
                                }
                            }
                            None => {
                                rollback = true;
                                break;
                            }
                        }
                    } else {
                        // Exact recomputation requested: roll back to the
                        // pre-state of the oldest record and re-execute
                        // with the actuals now in the inbox.
                        rollback = true;
                        break;
                    }
                }
            }

            if rollback {
                app.restore(&exec_q[0].pre);
                t_exec = front_iter;
                for rec in exec_q.drain(..) {
                    checkpoint_pool.push(rec.pre);
                }
                stats.rollbacks += 1;
                let t_now = transport.now();
                if let Some(r) = transport.recorder() {
                    r.mark(
                        obs_rank,
                        t_now.as_nanos(),
                        Mark::Rollback {
                            to_iter: front_iter,
                        },
                    );
                    r.gauge(obs_rank, t_now.as_nanos(), Gauge::ExecQueueDepth, 0);
                }
                continue 'main;
            }

            let resolved = exec_q[0]
                .inputs
                .iter()
                .all(|s| matches!(s, InputSlot::Actual | InputSlot::Validated));
            if resolved {
                let rec = exec_q.pop_front().expect("non-empty queue");
                checkpoint_pool.push(rec.pre);
                t_conf = rec.iter + 1;
                stats.iterations += 1;
                // Feed the resume handshake: a transport with supervision
                // reports this high-water mark to peers that reconnect.
                transport.note_progress(rec.iter);
                let t_now = transport.now();
                let queue_depth = exec_q.len() as u64;
                if let Some(r) = transport.recorder() {
                    r.mark(obs_rank, t_now.as_nanos(), Mark::Commit { iter: rec.iter });
                    r.gauge(
                        obs_rank,
                        t_now.as_nanos(),
                        Gauge::ExecQueueDepth,
                        queue_depth,
                    );
                }
                if config.collect_log {
                    if let Some(mut entry) = log_pending.remove(&rec.iter) {
                        entry.confirmed_at = transport.now();
                        stats.iteration_log.push(entry);
                    }
                }
                let misses_delta = stats.misspeculated_partitions - missed_at_confirm;
                let checked_delta = stats.checked_partitions - checked_at_confirm;
                config
                    .window
                    .on_confirm(misses_delta, checked_delta, waited_since_confirm);
                if let Some(c) = &mut ctl {
                    let busy_total = stats.phases.compute
                        + stats.phases.speculate
                        + stats.phases.check
                        + stats.phases.correct;
                    c.on_confirm(
                        misses_delta,
                        checked_delta,
                        waited_since_confirm,
                        busy_total - busy_at_confirm,
                    );
                    busy_at_confirm = busy_total;
                    if let Some(d) = c.maybe_retune(ft.as_ref().map(|f| f.loss_timeout)) {
                        stats.controller_retunes += 1;
                        stats.controller_fw = u64::from(d.fw);
                        stats.controller_theta = d.theta.unwrap_or(0.0);
                        // The controller owns the window: decisions land as
                        // a fixed policy (construction rejects pairing the
                        // controller with an adaptive window policy).
                        config.window = WindowPolicy::Fixed(d.fw);
                        if let Some(th) = d.theta {
                            app.set_speculation_threshold(th);
                        }
                        if let Some(r) = transport.recorder() {
                            r.mark(
                                obs_rank,
                                t_now.as_nanos(),
                                Mark::ControllerRetune {
                                    fw: d.fw,
                                    theta_ppb: d
                                        .theta
                                        .map(|t| (t * 1e9) as u64)
                                        .unwrap_or(u64::MAX),
                                    deadline_ns: d.tightest_deadline_ns,
                                },
                            );
                        }
                    }
                }
                missed_at_confirm = stats.misspeculated_partitions;
                checked_at_confirm = stats.checked_partitions;
                waited_since_confirm = SimDuration::ZERO;
                if t_conf < total_iters {
                    if ft.is_some() {
                        last_broadcast = (t_conf, rec.produced.clone());
                    }
                    broadcast(
                        transport,
                        &mut stats,
                        app,
                        &mut dx,
                        p,
                        me,
                        t_conf,
                        rec.produced,
                    )
                    .await;
                }
                // Everything below t_conf is fully consumed.
                inbox = inbox.split_off(&t_conf);
                continue 'main;
            }
        }

        // ------------------------------------------------------------------
        // Phase 2: execute the next iteration if the window allows it.
        // ------------------------------------------------------------------
        let window = config.window.current();
        if last_window != Some(u64::from(window)) {
            last_window = Some(u64::from(window));
            let t_now = transport.now();
            if let Some(r) = transport.recorder() {
                r.gauge(
                    obs_rank,
                    t_now.as_nanos(),
                    Gauge::WindowSize,
                    u64::from(window),
                );
            }
        }
        let depth = t_exec - t_conf;
        // Starvation breaker: with fault tolerance on, a rank that has had
        // nothing in flight and nothing executable for a full loss timeout
        // executes anyway, skipping inputs it cannot even extrapolate
        // (e.g. iteration 0 under total loss, where no history exists).
        let force_execute = match (&ft, starved_since) {
            (Some(f), Some(s)) if exec_q.is_empty() => {
                transport.now().duration_since(s) >= f.loss_timeout
            }
            _ => false,
        };
        if t_exec < total_iters && depth < u64::from(window.max(1)) {
            let empty = HashMap::new();
            let avail = inbox.get(&t_exec).unwrap_or(&empty);
            let missing: Vec<usize> = (0..p)
                .filter(|k| *k != me.0 && !avail.contains_key(k))
                .collect();

            // Pre-compute speculations (read-only on the app) so we can
            // abandon the attempt without side effects if any peer is
            // unpredictable (e.g. empty history at iteration 0).
            let mut speculations: Vec<(usize, A::Shared, u64, u32)> = Vec::new();
            let mut speculable = window >= 1;
            if speculable {
                for &k in &missing {
                    let ahead = history[k]
                        .latest_iter()
                        .map(|li| t_exec.saturating_sub(li).max(1) as u32);
                    match ahead.and_then(|a| {
                        app.speculate(Rank(k), &history[k], a)
                            .map(|(sv, ops)| (sv, ops, a))
                    }) {
                        Some((sv, ops, a)) => speculations.push((k, sv, ops, a)),
                        None => {
                            speculable = false;
                            if ft.is_none() {
                                break;
                            }
                            // Under fault tolerance, keep collecting what
                            // *can* be speculated: a forced execution uses
                            // every extrapolation it has.
                        }
                    }
                }
            }

            if missing.is_empty() || speculable || force_execute {
                stats.executions += 1;
                stats.max_depth_used = stats.max_depth_used.max(depth + 1);
                let exec_start = transport.now();
                let mut pre_slot = checkpoint_pool.pop();
                app.checkpoint_into(&mut pre_slot);
                let pre = pre_slot.expect("checkpoint_into must fill the slot");
                let mut inputs: Vec<InputSlot<A::Shared>> =
                    (0..p).map(|_| InputSlot::Validated).collect();

                let mut comp_ops = app.begin_iteration();
                let mut spec_ops = 0u64;
                // Peers whose staleness budget ran out during a forced
                // execution (empty unless fault tolerance forced the skip
                // path below, so the fault-free hot path never allocates).
                let mut ask_retransmit: Vec<usize> = Vec::new();
                for k in 0..p {
                    if k == me.0 {
                        continue;
                    }
                    if let Some(actual) = avail.get(&k) {
                        comp_ops += app.absorb(Rank(k), actual);
                        inputs[k] = InputSlot::Actual;
                    } else if let Some((_, sv, ops, ahead)) =
                        speculations.iter().find(|(kk, _, _, _)| *kk == k)
                    {
                        spec_ops += ops;
                        comp_ops += app.absorb(Rank(k), sv);
                        stats.speculated_partitions += 1;
                        if let Some(r) = transport.recorder() {
                            r.mark(
                                obs_rank,
                                exec_start.as_nanos(),
                                Mark::Speculation {
                                    peer: k as u32,
                                    ahead: *ahead,
                                },
                            );
                        }
                        inputs[k] = InputSlot::Speculated(sv.clone());
                    } else {
                        // Forced execution with no history to extrapolate
                        // from: proceed without this peer's contribution.
                        // Only reachable with fault tolerance on.
                        debug_assert!(force_execute);
                        if promoted.insert((k, t_exec)) {
                            stats.speculate_through_loss_commits += 1;
                            staleness[k] += 1;
                        }
                        if let Some(f) = &ft {
                            if staleness[k] >= f.staleness_budget
                                && staleness[k].is_multiple_of(f.staleness_budget)
                            {
                                ask_retransmit.push(k);
                            }
                        }
                    }
                }
                comp_ops += app.finish_iteration();
                for k in ask_retransmit {
                    send_full_state(
                        transport,
                        &mut stats,
                        app,
                        &mut dx,
                        Rank(k),
                        RETRANS_REQ_TAG,
                        last_broadcast.0,
                        &last_broadcast.1,
                    )
                    .await;
                    stats.retransmit_requests += 1;
                }

                if spec_ops > 0 {
                    let t0 = transport.now();
                    transport.compute(spec_ops).await;
                    let t1 = transport.now();
                    stats.phases.speculate += t1 - t0;
                    if let Some(r) = transport.recorder() {
                        r.span_begin(
                            obs_rank,
                            t0.as_nanos(),
                            Phase::Speculate,
                            Some(t_exec),
                            Some(depth),
                        );
                        r.span_end(obs_rank, t1.as_nanos(), Phase::Speculate);
                    }
                }
                let t0 = transport.now();
                transport.compute(comp_ops).await;
                let t1 = transport.now();
                stats.phases.compute += t1 - t0;
                if let Some(r) = transport.recorder() {
                    r.span_begin(
                        obs_rank,
                        t0.as_nanos(),
                        Phase::Compute,
                        Some(t_exec),
                        Some(depth),
                    );
                    r.span_end(obs_rank, t1.as_nanos(), Phase::Compute);
                }

                if config.collect_log {
                    let rerun = log_pending.contains_key(&t_exec);
                    let entry = log_pending.entry(t_exec).or_insert(IterationLog {
                        iter: t_exec,
                        exec_start,
                        exec_end: exec_start,
                        confirmed_at: exec_start,
                        speculated_inputs: 0,
                        re_executions: 0,
                    });
                    if rerun {
                        entry.re_executions += 1;
                    }
                    entry.exec_start = exec_start;
                    entry.exec_end = transport.now();
                    entry.speculated_inputs = inputs
                        .iter()
                        .filter(|s| matches!(s, InputSlot::Speculated(_)))
                        .count() as u32;
                }

                exec_q.push_back(ExecRecord {
                    iter: t_exec,
                    pre,
                    produced: app.shared(),
                    inputs,
                });
                let queue_depth = exec_q.len() as u64;
                let t_now = transport.now();
                if let Some(r) = transport.recorder() {
                    r.gauge(
                        obs_rank,
                        t_now.as_nanos(),
                        Gauge::ExecQueueDepth,
                        queue_depth,
                    );
                }
                t_exec += 1;
                starved_since = None;
                continue 'main;
            }
        }

        // ------------------------------------------------------------------
        // Phase 3: nothing to compute — block for the next message. With
        // fault tolerance on, the wait is bounded by whichever comes first:
        // a missing peer's loss deadline (armed or in grace), the
        // starvation timeout, or this rank's next scripted crash. The
        // transport wakes exactly at the arrival or the deadline, so
        // θ-acceptance decisions do not depend on any poll interval.
        // ------------------------------------------------------------------
        let t0 = transport.now();
        let env = if let Some(f) = &ft {
            if exec_q.is_empty() && starved_since.is_none() {
                starved_since = Some(t0);
            }
            let mut deadline: Option<SimTime> = None;
            let mut consider = |d: SimTime| {
                deadline = Some(match deadline {
                    Some(cur) if cur <= d => cur,
                    _ => d,
                });
            };
            for (k, w) in peer_wait.iter().enumerate() {
                let Some(w) = w else { continue };
                // Mirror the promotion check's deadline exactly, or the
                // wakeup would fire early/late relative to the promotion.
                let loss_deadline = ctl
                    .as_ref()
                    .and_then(|c| c.deadline_for(k))
                    .unwrap_or(f.loss_timeout);
                match w {
                    PeerWait::Armed { since } => consider(*since + loss_deadline),
                    PeerWait::Grace { asked_at } => consider(*asked_at + loss_deadline),
                }
            }
            if let Some(s) = starved_since {
                consider(s + f.loss_timeout);
            }
            if let Some(c) = my_crashes.get(next_crash) {
                consider(c.at);
            }
            match deadline {
                Some(d) if d > t0 => transport.recv_timeout(d.duration_since(t0)).await,
                // A deadline is already due: act on it at the loop top.
                Some(_) => None,
                // Unreachable with fault tolerance on (one of the waits
                // above is always armed), kept for safety.
                None => Some(transport.recv().await),
            }
        } else {
            Some(transport.recv().await)
        };
        let t1 = transport.now();
        let waited = t1 - t0;
        stats.phases.comm_wait += waited;
        waited_since_confirm += waited;
        if waited > SimDuration::ZERO || ft.is_none() {
            if let Some(r) = transport.recorder() {
                r.span_begin(obs_rank, t0.as_nanos(), Phase::CommWait, Some(t_conf), None);
                r.span_end(obs_rank, t1.as_nanos(), Phase::CommWait);
            }
        }
        if let Some(env) = env {
            if let Some(c) = &mut ctl {
                c.on_receive(env.src.0, transport.now());
            }
            if ft.is_some() {
                let src = env.src;
                staleness[src.0] = 0;
                last_heard[src.0] = transport.now();
                let (rejoined, degraded_exit) = match &mut sup {
                    Some(sv) => sv.on_heard(src.0),
                    None => (false, false),
                };
                if rejoined {
                    stats.peer_rejoins += 1;
                    dx.rx_shadow[src.0] = None;
                    dx.seen_past[src.0] = None;
                    let t_now = transport.now();
                    if let Some(r) = transport.recorder() {
                        r.mark(
                            obs_rank,
                            t_now.as_nanos(),
                            Mark::PeerRejoined { peer: src.0 as u32 },
                        );
                        if degraded_exit {
                            r.mark(obs_rank, t_now.as_nanos(), Mark::DegradedExit);
                        }
                    }
                    send_full_state(
                        transport,
                        &mut stats,
                        app,
                        &mut dx,
                        src,
                        DATA_TAG,
                        last_broadcast.0,
                        &last_broadcast.1,
                    )
                    .await;
                } else if env.tag == RETRANS_REQ_TAG {
                    send_full_state(
                        transport,
                        &mut stats,
                        app,
                        &mut dx,
                        src,
                        DATA_TAG,
                        last_broadcast.0,
                        &last_broadcast.1,
                    )
                    .await;
                }
            }
            stash(
                app,
                &mut dx,
                env,
                t_conf,
                &mut inbox,
                &mut history,
                &mut stats,
            );
        }
    }

    stats.messages_lost = transport.fault_counters().dropped;
    stats.total_time = transport.now() - start;
    stats
}

/// Broadcast this iteration's partition to every peer. Without a delta
/// policy every peer gets the full snapshot, exactly as before. With one,
/// each peer gets either a keyframe (on the keyframe cadence, or when its
/// shadow is missing) or the sparse diff against its sender shadow; the
/// shadow is then advanced by *what was sent* — not by the true state —
/// so quantization error never compounds across iterations.
#[allow(clippy::too_many_arguments)] // the driver's send path in one place
async fn broadcast<T, A>(
    transport: &mut T,
    stats: &mut RunStats,
    app: &A,
    dx: &mut DeltaState<A::Shared>,
    p: usize,
    me: Rank,
    iter: u64,
    data: A::Shared,
) where
    A: SpeculativeApp,
    A::Shared: WireSize,
    T: mpk::AsyncTransport<Msg = IterMsg<A::Shared>>,
{
    let Some(pol) = dx.policy else {
        for k in 0..p {
            if k != me.0 {
                send_msg(
                    transport,
                    stats,
                    Rank(k),
                    DATA_TAG,
                    IterMsg::full(iter, data.clone()),
                )
                .await;
            }
        }
        return;
    };
    let capable = app.delta_extract(&data, &mut dx.cur);
    debug_assert!(capable, "delta policy active on a non-capable app");
    let full_bytes = (HEADER_BYTES + 8 + data.wire_size()) as u64;
    let keyframe_due = iter.is_multiple_of(pol.keyframe_interval);
    let obs_rank = me.0 as u32;
    for k in 0..p {
        if k == me.0 {
            continue;
        }
        match &mut dx.tx_shadow[k] {
            Some(shadow) if !keyframe_due => {
                dx.frame.diff_into(&dx.cur, shadow, pol.floor);
                dx.frame.apply(shadow);
                let msg = IterMsg::delta(iter, dx.frame.clone());
                let suppressed = full_bytes.saturating_sub((HEADER_BYTES + msg.wire_size()) as u64);
                stats.delta_suppressed_bytes += suppressed;
                let t_now = transport.now().as_nanos();
                if let Some(r) = transport.recorder() {
                    r.mark(
                        obs_rank,
                        t_now,
                        Mark::DeltaSuppressed {
                            to: k as u32,
                            bytes: suppressed,
                        },
                    );
                }
                send_msg(transport, stats, Rank(k), DATA_TAG, msg).await;
            }
            shadow => {
                let shadow = shadow.get_or_insert_with(Vec::new);
                shadow.clear();
                shadow.extend_from_slice(&dx.cur);
                send_msg(
                    transport,
                    stats,
                    Rank(k),
                    DATA_TAG,
                    IterMsg::full(iter, data.clone()),
                )
                .await;
            }
        }
    }
}

/// Fold one received frame into the inbox and history. Full frames behave
/// exactly as the pre-delta protocol did (and additionally re-seed the
/// receiver shadow); a delta frame reconstructs the sender's snapshot by
/// patching the shadow, but only when it extends it by exactly one
/// iteration — duplicates and gap frames are dropped without touching the
/// history or inbox, so they can never fabricate promotion evidence or
/// corrupt a reconstruction. Gaps heal when the next keyframe, retransmit
/// reply, or recovery request (all full frames) re-seeds the shadow.
fn stash<A: SpeculativeApp>(
    app: &A,
    dx: &mut DeltaState<A::Shared>,
    env: Envelope<IterMsg<A::Shared>>,
    t_conf: u64,
    inbox: &mut BTreeMap<u64, HashMap<usize, A::Shared>>,
    history: &mut [History<A::Shared>],
    stats: &mut RunStats,
) where
    A::Shared: WireSize,
{
    stats.messages_received += 1;
    stats.bytes_received += (HEADER_BYTES + env.msg.wire_size()) as u64;
    let src = env.src.0;
    let IterMsg { iter, body } = env.msg;
    match &mut dx.seen_past[src] {
        Some(sp) => *sp = (*sp).max(iter),
        sp => *sp = Some(iter),
    }
    let data = match body {
        MsgBody::Full(data) => {
            if dx.policy.is_some() {
                // Never regress the shadow: a stale (reordered or
                // duplicated) full frame must not break the chain the
                // newer deltas continue from.
                match &dx.rx_shadow[src] {
                    Some((si, _)) if *si > iter => {}
                    _ => dx.rx_shadow[src] = Some((iter, data.clone())),
                }
            }
            data
        }
        MsgBody::Delta(frame) => match dx.rx_shadow[src].take() {
            Some((si, base)) if si + 1 == iter => {
                let next = app
                    .delta_patch(&base, &frame.entries)
                    .expect("delta frame for a non-delta-capable app");
                dx.rx_shadow[src] = Some((iter, next.clone()));
                next
            }
            other => {
                dx.rx_shadow[src] = other;
                stats.delta_frames_dropped += 1;
                return;
            }
        },
    };
    history[src].record(iter, data.clone());
    if iter >= t_conf {
        inbox.entry(iter).or_default().insert(src, data);
    }
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::CheckOutcome;
    use crate::config::WindowPolicy;
    use desim::SimDuration;
    use mpk::run_sim_cluster;
    use netsim::{ClusterSpec, ConstantLatency, ScriptedDelays, Unloaded};

    /// A linear toy app: each rank owns one scalar; every iteration
    /// `x_j ← a·x_j + b·Σ_{k≠j} x_k`. Linearity makes incremental
    /// correction exact, and smooth trajectories make linear extrapolation
    /// a good speculator.
    #[derive(Clone)]
    struct Toy {
        #[allow(dead_code)] // identifies the rank in debug dumps
        me: usize,
        x: f64,
        pending: f64,
        theta: f64,
        a: f64,
        b: f64,
    }

    impl Toy {
        fn new(me: usize, p: usize, theta: f64) -> Self {
            Toy {
                me,
                x: 1.0 + me as f64,
                pending: 0.0,
                theta,
                a: 0.6,
                b: 0.3 / p as f64,
            }
        }
    }

    impl SpeculativeApp for Toy {
        type Shared = f64;
        type Checkpoint = f64;

        fn shared(&self) -> f64 {
            self.x
        }
        fn begin_iteration(&mut self) -> u64 {
            self.pending = self.a * self.x;
            1
        }
        fn absorb(&mut self, _from: Rank, x: &f64) -> u64 {
            self.pending += self.b * x;
            100
        }
        fn finish_iteration(&mut self) -> u64 {
            self.x = self.pending;
            1
        }
        fn speculate(&self, _from: Rank, hist: &History<f64>, ahead: u32) -> Option<(f64, u64)> {
            let (i1, &v1) = hist.nth_back(0)?;
            match hist.nth_back(1) {
                Some((i0, &v0)) => {
                    let slope = (v1 - v0) / (i1 - i0) as f64;
                    Some((v1 + slope * ahead as f64, 2))
                }
                None => Some((v1, 1)),
            }
        }
        fn check(&self, _from: Rank, actual: &f64, speculated: &f64) -> CheckOutcome {
            let err = (actual - speculated).abs() / actual.abs().max(1e-12);
            let accept = err <= self.theta;
            CheckOutcome {
                accept,
                max_error: err,
                max_accepted_error: if accept { err } else { 0.0 },
                checked_units: 1,
                bad_units: u64::from(!accept),
                ops: 2,
            }
        }
        fn correct(&mut self, _from: Rank, speculated: &f64, actual: &f64) -> u64 {
            // Exact for a linear absorb.
            self.x += self.b * (actual - speculated);
            100
        }
        fn set_speculation_threshold(&mut self, theta: f64) {
            self.theta = theta;
        }
        fn delta_extract(&self, shared: &f64, out: &mut Vec<f64>) -> bool {
            out.clear();
            out.push(*shared);
            true
        }
        fn delta_patch(&self, base: &f64, entries: &[(u32, f64)]) -> Option<f64> {
            let mut v = *base;
            for &(lane, value) in entries {
                debug_assert_eq!(lane, 0, "toy app has a single lane");
                v = value;
            }
            Some(v)
        }
        fn checkpoint(&self) -> f64 {
            self.x
        }
        fn restore(&mut self, c: &f64) {
            self.x = *c;
        }
    }

    /// Sequential reference for the toy recurrence.
    fn toy_reference(p: usize, iters: u64) -> Vec<f64> {
        let a = 0.6;
        let b = 0.3 / p as f64;
        let mut x: Vec<f64> = (0..p).map(|m| 1.0 + m as f64).collect();
        for _ in 0..iters {
            // Accumulate in exactly the driver's order (begin, then absorb
            // k = 0..p ascending) so results are bit-comparable.
            let next: Vec<f64> = (0..p)
                .map(|j| {
                    let mut pending = a * x[j];
                    for (k, v) in x.iter().enumerate() {
                        if k != j {
                            pending += b * v;
                        }
                    }
                    pending
                })
                .collect();
            x = next;
        }
        x
    }

    fn run_toy(
        p: usize,
        iters: u64,
        theta: f64,
        config: SpecConfig,
        latency_ms: u64,
    ) -> (Vec<(f64, RunStats)>, SimDuration) {
        let cluster = ClusterSpec::homogeneous(p, 100.0);
        let (out, report) = run_sim_cluster::<IterMsg<f64>, _, _>(
            &cluster,
            ConstantLatency(SimDuration::from_millis(latency_ms)),
            Unloaded,
            false,
            move |t| {
                let mut app = Toy::new(t.rank().0, t.size(), theta);
                let stats = run_speculative(t, &mut app, iters, config.clone());
                (app.x, stats)
            },
        )
        .unwrap();
        (out, report.end_time.duration_since(desim::SimTime::ZERO))
    }

    /// Entry point for the property tests below: run the toy app with an
    /// arbitrary configuration.
    pub fn run_any_config(
        p: usize,
        iters: u64,
        theta: f64,
        config: SpecConfig,
        latency_ms: u64,
    ) -> (Vec<(f64, RunStats)>, SimDuration) {
        run_toy(p, iters, theta, config, latency_ms)
    }

    #[test]
    fn baseline_matches_sequential_reference() {
        let p = 4;
        let iters = 10;
        let (out, _) = run_toy(p, iters, 0.0, SpecConfig::baseline(), 1);
        let reference = toy_reference(p, iters);
        for (j, (x, stats)) in out.iter().enumerate() {
            assert_eq!(*x, reference[j], "rank {j} diverged from reference");
            assert_eq!(stats.iterations, iters);
            assert_eq!(stats.speculated_partitions, 0);
            assert_eq!(stats.rollbacks, 0);
            assert_eq!(stats.messages_sent, (p as u64 - 1) * iters);
        }
    }

    #[test]
    fn theta_zero_recompute_is_bit_exact_with_baseline() {
        let p = 5;
        let iters = 12;
        let cfg = SpecConfig::speculative(1).with_correction(CorrectionMode::Recompute);
        let (out, _) = run_toy(p, iters, 0.0, cfg, 3);
        let reference = toy_reference(p, iters);
        for (j, (x, stats)) in out.iter().enumerate() {
            assert_eq!(*x, reference[j], "rank {j}: θ=0 + recompute must be exact");
            assert_eq!(stats.iterations, iters);
        }
    }

    #[test]
    fn theta_zero_fw2_recompute_is_bit_exact_with_baseline() {
        let p = 3;
        let iters = 15;
        let cfg = SpecConfig::speculative(2).with_correction(CorrectionMode::Recompute);
        let (out, _) = run_toy(p, iters, 0.0, cfg, 5);
        let reference = toy_reference(p, iters);
        for (j, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, reference[j], "rank {j}: FW=2 θ=0 must be exact");
        }
    }

    #[test]
    fn incremental_correction_with_theta_zero_is_close_to_reference() {
        // Incremental correction is algebraically exact for the linear toy
        // but floating-point non-associative; expect tiny drift only.
        let p = 4;
        let iters = 10;
        let cfg = SpecConfig::speculative(1); // Incremental
        let (out, _) = run_toy(p, iters, 0.0, cfg, 3);
        let reference = toy_reference(p, iters);
        for (j, (x, _)) in out.iter().enumerate() {
            assert!((x - reference[j]).abs() < 1e-9, "rank {j} drifted: {x}");
        }
    }

    #[test]
    fn loose_threshold_accepts_speculations() {
        let (out, _) = run_toy(4, 10, 1e9, SpecConfig::speculative(1), 3);
        for (_, stats) in &out {
            assert!(stats.speculated_partitions > 0, "must have speculated");
            assert_eq!(stats.misspeculated_partitions, 0);
            assert_eq!(stats.corrections, 0);
            assert_eq!(stats.rollbacks, 0);
            assert_eq!(stats.checked_partitions, stats.accepted_partitions);
        }
    }

    #[test]
    fn speculation_masks_latency() {
        // With latency comparable to compute time, FW=1 must beat FW=0.
        let iters = 20;
        let (_, t_base) = run_toy(4, iters, 0.05, SpecConfig::baseline(), 2);
        let (out, t_spec) = run_toy(4, iters, 0.05, SpecConfig::speculative(1), 2);
        assert!(
            t_spec < t_base,
            "speculation should mask latency: spec {t_spec} vs base {t_base}"
        );
        assert!(out.iter().any(|(_, s)| s.speculated_partitions > 0));
    }

    #[test]
    fn forward_window_two_masks_transient_delay() {
        // Scripted: the 3rd message from rank 0 to rank 1 is hugely delayed
        // (the paper's Figure 4 scenario). FW=2 should absorb it better
        // than FW=1. The machines are slow enough that one iteration's
        // compute (~20 ms) is comparable to the transient delay (40 ms) —
        // the regime where a deeper window pays off (Fig. 4c).
        let iters = 12;
        let run = |fw: u32| {
            let cluster = ClusterSpec::homogeneous(3, 0.01);
            let net = ScriptedDelays::new(
                ConstantLatency(SimDuration::from_millis(1)),
                vec![(0, 1, 3, SimDuration::from_millis(40))],
            );
            let cfg = SpecConfig::speculative(fw);
            let (_, report) =
                run_sim_cluster::<IterMsg<f64>, _, _>(&cluster, net, Unloaded, false, move |t| {
                    let mut app = Toy::new(t.rank().0, t.size(), 0.5);
                    run_speculative(t, &mut app, iters, cfg.clone());
                })
                .unwrap();
            report.end_time
        };
        let t1 = run(1);
        let t2 = run(2);
        assert!(
            t2 < t1,
            "FW=2 ({t2}) should beat FW=1 ({t1}) under a transient delay"
        );
    }

    #[test]
    fn tight_threshold_triggers_corrections() {
        // θ tiny but nonzero: speculations get rejected, corrections happen,
        // and the run still completes with near-reference results.
        let p = 4;
        let iters = 10;
        let (out, _) = run_toy(p, iters, 1e-12, SpecConfig::speculative(1), 3);
        let total_misses: u64 = out.iter().map(|(_, s)| s.misspeculated_partitions).sum();
        let total_corrections: u64 = out.iter().map(|(_, s)| s.corrections).sum();
        assert!(total_misses > 0, "tiny θ must reject some speculations");
        assert_eq!(
            total_misses, total_corrections,
            "FW=1 misses must be corrected in place"
        );
        let reference = toy_reference(p, iters);
        for (j, (x, _)) in out.iter().enumerate() {
            assert!((x - reference[j]).abs() < 1e-9);
        }
    }

    #[test]
    fn recompute_mode_rolls_back_instead_of_correcting() {
        let p = 4;
        let iters = 10;
        let cfg = SpecConfig::speculative(1).with_correction(CorrectionMode::Recompute);
        let (out, _) = run_toy(p, iters, 1e-12, cfg, 3);
        let total_rollbacks: u64 = out.iter().map(|(_, s)| s.rollbacks).sum();
        let total_corrections: u64 = out.iter().map(|(_, s)| s.corrections).sum();
        assert!(total_rollbacks > 0);
        assert_eq!(total_corrections, 0);
    }

    #[test]
    fn single_rank_needs_no_messages() {
        let (out, _) = run_toy(1, 7, 0.01, SpecConfig::speculative(2), 1);
        let (x, stats) = &out[0];
        assert_eq!(stats.iterations, 7);
        assert_eq!(stats.messages_sent, 0);
        assert_eq!(stats.speculated_partitions, 0);
        assert_eq!(*x, toy_reference(1, 7)[0]);
    }

    #[test]
    fn zero_iterations_is_a_no_op() {
        let (out, end) = run_toy(3, 0, 0.01, SpecConfig::speculative(1), 1);
        for (x, stats) in &out {
            assert_eq!(stats.iterations, 0);
            assert_eq!(stats.messages_sent, 0);
            assert_eq!(
                *x,
                toy_reference(3, 0)[out.iter().position(|(y, _)| y == x).unwrap()]
            );
        }
        assert_eq!(end, SimDuration::ZERO);
    }

    #[test]
    fn adaptive_window_completes_and_deepens_under_latency() {
        let cluster = ClusterSpec::homogeneous(4, 100.0);
        let cfg = SpecConfig {
            window: WindowPolicy::adaptive(1, 3),
            backward_window: 2,
            correction: CorrectionMode::Incremental,
            collect_log: false,
            fault: None,
            delta: None,
            supervision: None,
            controller: None,
        };
        let iters = 40;
        let (out, _) = run_sim_cluster::<IterMsg<f64>, _, _>(
            &cluster,
            ConstantLatency(SimDuration::from_millis(10)),
            Unloaded,
            false,
            move |t| {
                let mut app = Toy::new(t.rank().0, t.size(), 0.5);
                run_speculative(t, &mut app, iters, cfg.clone())
            },
        )
        .unwrap();
        for stats in &out {
            assert_eq!(stats.iterations, iters);
            assert!(
                stats.max_depth_used >= 2,
                "adaptive window should deepen under heavy latency, got {}",
                stats.max_depth_used
            );
        }
    }

    #[test]
    fn controller_retunes_and_theta_zero_grid_stays_exact() {
        // A θ grid pinned to {0.0} with recompute correction is exact for
        // ANY forward-window schedule, so the controller may retune freely
        // without perturbing the result. Asserts the integration actually
        // fires (decisions recorded in stats) and stays bit-exact.
        use crate::control::ControllerConfig;
        let p = 4;
        let iters = 24;
        let cfg = SpecConfig::speculative(1)
            .with_correction(CorrectionMode::Recompute)
            .with_adaptive(
                ControllerConfig::new()
                    .with_theta_grid(vec![0.0])
                    .with_cadence(2, 2)
                    .with_fw_max(3),
            );
        let (out, _) = run_toy(p, iters, 0.0, cfg, 3);
        let reference = toy_reference(p, iters);
        for (j, (x, stats)) in out.iter().enumerate() {
            assert_eq!(*x, reference[j], "rank {j}: θ=0 grid must stay exact");
            assert_eq!(stats.iterations, iters);
            assert!(
                stats.controller_retunes > 0,
                "controller must have evaluated retunes"
            );
            assert_eq!(stats.controller_theta, 0.0);
            assert!(stats.controller_fw >= 1 && stats.controller_fw <= 3);
        }
    }

    #[test]
    fn controller_off_leaves_new_stats_fields_zero() {
        let (out, _) = run_toy(3, 8, 0.05, SpecConfig::speculative(1), 2);
        for (_, stats) in &out {
            assert_eq!(stats.controller_retunes, 0);
            assert_eq!(stats.controller_fw, 0);
            assert_eq!(stats.controller_theta, 0.0);
        }
    }

    #[test]
    fn phase_times_account_for_total() {
        // compute + wait + speculate + check + correct should equal the
        // rank's total time (the driver does no unaccounted virtual work).
        let (out, _) = run_toy(4, 10, 0.05, SpecConfig::speculative(1), 2);
        for (_, stats) in &out {
            let sum = stats.phases.total();
            assert_eq!(sum, stats.total_time, "phases must partition total time");
        }
    }

    #[test]
    fn stats_message_counts() {
        let p = 5;
        let iters = 8;
        let (out, _) = run_toy(p, iters, 0.05, SpecConfig::speculative(1), 2);
        for (_, stats) in &out {
            assert_eq!(stats.messages_sent, (p as u64 - 1) * iters);
            assert!(stats.messages_received <= (p as u64 - 1) * iters);
        }
    }

    #[test]
    fn iteration_log_records_every_iteration_in_order() {
        let p = 3;
        let iters = 9;
        let cluster = ClusterSpec::homogeneous(p, 100.0);
        let cfg = SpecConfig::speculative(1).with_iteration_log();
        let (out, _) = run_sim_cluster::<IterMsg<f64>, _, _>(
            &cluster,
            ConstantLatency(SimDuration::from_millis(2)),
            Unloaded,
            false,
            move |t| {
                let mut app = Toy::new(t.rank().0, t.size(), 0.5);
                run_speculative(t, &mut app, iters, cfg.clone())
            },
        )
        .unwrap();
        for stats in &out {
            assert_eq!(stats.iteration_log.len() as u64, iters);
            for (i, l) in stats.iteration_log.iter().enumerate() {
                assert_eq!(l.iter, i as u64, "log must be in confirmation order");
                assert!(l.exec_start <= l.exec_end);
                assert!(l.exec_end <= l.confirmed_at);
            }
            // Iteration 0 cannot be speculated (no history); later ones
            // should be under this latency.
            assert_eq!(stats.iteration_log[0].speculated_inputs, 0);
            assert!(stats
                .iteration_log
                .iter()
                .skip(1)
                .any(|l| l.speculated_inputs > 0));
        }
    }

    #[test]
    fn iteration_log_absent_by_default() {
        let (out, _) = run_toy(3, 5, 0.5, SpecConfig::speculative(1), 2);
        for (_, stats) in &out {
            assert!(stats.iteration_log.is_empty());
        }
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let (out, end) = run_toy(4, 15, 0.01, SpecConfig::speculative(2), 3);
            let xs: Vec<f64> = out.iter().map(|(x, _)| *x).collect();
            let specs: Vec<u64> = out.iter().map(|(_, s)| s.speculated_partitions).collect();
            (xs, specs, end)
        };
        assert_eq!(run(), run());
    }

    // ---- fault tolerance ------------------------------------------------

    use crate::config::FaultTolerance;
    use mpk::{run_sim_cluster_with_faults, FaultSpec};
    use netsim::{Loss, MachineCrash};

    fn run_toy_with_faults(
        p: usize,
        iters: u64,
        theta: f64,
        config: SpecConfig,
        latency_ms: u64,
        faults: FaultSpec<IterMsg<f64>>,
    ) -> Vec<(f64, RunStats)> {
        run_toy_with_faults_timed(p, iters, theta, config, latency_ms, faults).0
    }

    fn run_toy_with_faults_timed(
        p: usize,
        iters: u64,
        theta: f64,
        config: SpecConfig,
        latency_ms: u64,
        faults: FaultSpec<IterMsg<f64>>,
    ) -> (Vec<(f64, RunStats)>, SimDuration) {
        let cluster = ClusterSpec::homogeneous(p, 100.0);
        let (out, report) = run_sim_cluster_with_faults::<IterMsg<f64>, _, _>(
            &cluster,
            ConstantLatency(SimDuration::from_millis(latency_ms)),
            Unloaded,
            faults,
            false,
            move |t| {
                let mut app = Toy::new(t.rank().0, t.size(), theta);
                let stats = run_speculative(t, &mut app, iters, config.clone());
                (app.x, stats)
            },
        )
        .unwrap();
        (out, report.end_time.duration_since(desim::SimTime::ZERO))
    }

    #[test]
    fn total_loss_with_fault_tolerance_still_terminates() {
        // Loss(1.0): no message ever crosses the network. The staleness
        // machinery must still drive every rank through all iterations.
        let iters = 6;
        let ft = FaultTolerance::new(SimDuration::from_millis(5)).with_staleness_budget(2);
        let cfg = SpecConfig::speculative(1).with_fault_tolerance(ft);
        let out = run_toy_with_faults(3, iters, 1e9, cfg, 1, FaultSpec::new(Loss::new(1.0, 11)));
        for (x, stats) in &out {
            assert!(x.is_finite());
            assert_eq!(stats.iterations, iters, "rank must not deadlock");
            assert!(stats.messages_lost > 0, "every send should be dropped");
            assert!(
                stats.speculate_through_loss_commits > 0,
                "progress must come from promoted speculations"
            );
            assert!(
                stats.retransmit_requests > 0,
                "staleness budget should trigger retransmit requests"
            );
        }
    }

    #[test]
    fn total_loss_without_speculation_window_still_terminates() {
        // The hardest liveness case: FW=0 (baseline) plus total loss means
        // no speculation machinery at all — only the starvation breaker
        // can make progress.
        let iters = 4;
        let ft = FaultTolerance::new(SimDuration::from_millis(5));
        let cfg = SpecConfig::baseline().with_fault_tolerance(ft);
        let out = run_toy_with_faults(2, iters, 1e9, cfg, 1, FaultSpec::new(Loss::new(1.0, 3)));
        for (x, stats) in &out {
            assert!(x.is_finite());
            assert_eq!(stats.iterations, iters);
        }
    }

    #[test]
    fn moderate_loss_stays_close_to_fault_free_run() {
        // With a checked θ, every *delivered* speculation is validated or
        // corrected, so both runs track the true trajectory; only promoted
        // (lost) inputs carry unchecked extrapolation error. The drift must
        // stay a small multiple of what θ already tolerates per input.
        let p = 4;
        let iters = 30;
        let theta = 0.01;
        let ft = FaultTolerance::new(SimDuration::from_millis(10));
        let cfg = SpecConfig::speculative(2).with_fault_tolerance(ft);
        let golden = run_toy(p, iters, theta, SpecConfig::speculative(2), 2).0;
        let lossy =
            run_toy_with_faults(p, iters, theta, cfg, 2, FaultSpec::new(Loss::new(0.05, 42)));
        let mut promoted = 0;
        for (j, (x, stats)) in lossy.iter().enumerate() {
            assert_eq!(stats.iterations, iters);
            promoted += stats.speculate_through_loss_commits;
            let rel = (x - golden[j].0).abs() / golden[j].0.abs().max(1e-12);
            assert!(
                rel < 0.15,
                "rank {j}: 5% loss drifted {rel:.2e} from fault-free"
            );
        }
        assert!(promoted > 0, "5% loss must force some promotions");
    }

    #[test]
    fn scripted_crash_recovers_from_checkpoint_and_completes() {
        let p = 3;
        let iters = 20;
        let crash = MachineCrash {
            rank: 1,
            at: desim::SimTime::from_nanos(40_000_000),
            restart_after: SimDuration::from_millis(15),
        };
        let ft = FaultTolerance::new(SimDuration::from_millis(8)).with_crashes(vec![crash]);
        let cfg = SpecConfig::speculative(1).with_fault_tolerance(ft);
        let out = run_toy_with_faults(p, iters, 1e9, cfg, 2, FaultSpec::none());
        for (j, (x, stats)) in out.iter().enumerate() {
            assert!(x.is_finite());
            assert_eq!(stats.iterations, iters, "rank {j} must finish");
        }
        let crashed = &out[1].1;
        assert_eq!(crashed.peer_restarts, 1);
        assert!(crashed.downtime >= SimDuration::from_millis(10));
        assert_eq!(
            crashed.phases.total() + crashed.downtime,
            crashed.total_time,
            "downtime must account for the outage exactly"
        );
        assert_eq!(out[0].1.peer_restarts, 0);
        assert!(
            crashed.retransmit_requests >= (p as u64 - 1),
            "restart must ask every peer for its state"
        );
    }

    #[test]
    fn quarantine_bypasses_the_loss_timeout() {
        // A rank dead from t = 0 never rejoins. Without supervision every
        // front pays the full Armed→Grace loss timeout on its slot; with
        // supervision the peer is quarantined after its first promotion
        // and subsequent fronts promote instantly — so the supervised run
        // must finish in a fraction of the unsupervised virtual time.
        let p = 3;
        let iters = 12;
        let crash = MachineCrash::permanent(1, desim::SimTime::ZERO);
        let ft = || FaultTolerance::new(SimDuration::from_millis(10)).with_crashes(vec![crash]);
        let slow_cfg = SpecConfig::speculative(1).with_fault_tolerance(ft());
        let fast_cfg = slow_cfg
            .clone()
            .with_supervision(SupervisionConfig::new(1, 1));
        let faults = || FaultSpec::none().with_crashes(netsim::CrashPlan::new(vec![crash]));
        let slow = run_toy_with_faults_timed(p, iters, 1e9, slow_cfg, 2, faults());
        let fast = run_toy_with_faults_timed(p, iters, 1e9, fast_cfg, 2, faults());
        for j in [0, 2] {
            let s = &fast.0[j].1;
            assert_eq!(s.iterations, iters, "survivor {j} must finish");
            assert!(
                s.peers_suspected >= 1,
                "survivor {j} never suspected rank 1"
            );
            assert!(
                s.peers_quarantined >= 1,
                "survivor {j} never quarantined rank 1"
            );
            assert!(s.degraded_commits >= 1, "survivor {j} never ran degraded");
            assert!(
                s.degraded_commits <= s.speculate_through_loss_commits,
                "degraded commits must be a subset of loss promotions"
            );
            assert_eq!(s.peer_rejoins, 0, "a dead rank must never rejoin");
        }
        assert_eq!(
            fast.0[1].1.iterations, 0,
            "the dead rank exits at its crash"
        );
        assert!(
            fast.1 * 2 < slow.1,
            "degraded mode must outpace per-front timeouts: {:?} vs {:?}",
            fast.1,
            slow.1
        );
    }

    #[test]
    fn heard_again_after_quarantine_counts_a_rejoin() {
        // Down long enough (50 ms ≫ 2 × 8 ms timeout at thresholds (1,1))
        // that survivors quarantine the rank before its restart; its
        // retransmit requests then readmit it on both survivors.
        let p = 3;
        let iters = 30;
        let crash = MachineCrash {
            rank: 1,
            at: desim::SimTime::ZERO,
            restart_after: SimDuration::from_millis(50),
        };
        let ft = FaultTolerance::new(SimDuration::from_millis(8)).with_crashes(vec![crash]);
        let cfg = SpecConfig::speculative(1)
            .with_fault_tolerance(ft)
            .with_supervision(SupervisionConfig::new(1, 1));
        let out = run_toy_with_faults(
            p,
            iters,
            1e9,
            cfg,
            2,
            FaultSpec::none().with_crashes(netsim::CrashPlan::new(vec![crash])),
        );
        for (j, (x, stats)) in out.iter().enumerate() {
            assert!(x.is_finite());
            assert_eq!(stats.iterations, iters, "rank {j} must finish");
        }
        assert_eq!(out[1].1.peer_restarts, 1);
        for j in [0, 2] {
            let s = &out[j].1;
            assert!(
                s.peers_quarantined >= 1,
                "survivor {j} never quarantined rank 1"
            );
            assert!(s.peer_rejoins >= 1, "survivor {j} never readmitted rank 1");
        }
    }

    #[test]
    fn supervision_without_fault_tolerance_is_inert() {
        // Supervision rides on the loss-promotion staleness counters; with
        // no fault-tolerance policy there is nothing to drive it, and the
        // run must be bit-identical to the plain config.
        let p = 3;
        let iters = 10;
        let plain = run_toy(p, iters, 0.05, SpecConfig::speculative(1), 2).0;
        let sup_cfg = SpecConfig::speculative(1).with_supervision(SupervisionConfig::default());
        let sup = run_toy(p, iters, 0.05, sup_cfg, 2).0;
        for (j, (x, stats)) in sup.iter().enumerate() {
            assert_eq!(*x, plain[j].0, "rank {j} values must match exactly");
            assert_eq!(stats.peers_suspected, 0);
            assert_eq!(stats.peers_quarantined, 0);
            assert_eq!(stats.degraded_commits, 0);
        }
    }

    #[test]
    fn fault_tolerant_config_on_reliable_net_matches_fault_free_values() {
        // Same network, same app; the only difference is the bounded waits.
        // Those waits are event-driven (the transport wakes exactly at the
        // arrival or the deadline), so not just the committed values and
        // message counts but the per-rank timings must match exactly, and
        // nothing may be promoted.
        let p = 4;
        let iters = 12;
        let plain = run_toy(p, iters, 0.05, SpecConfig::speculative(1), 2).0;
        let ft = FaultTolerance::new(SimDuration::from_millis(50));
        let cfg = SpecConfig::speculative(1).with_fault_tolerance(ft);
        let tolerant = run_toy_with_faults(p, iters, 0.05, cfg, 2, FaultSpec::none());
        for (j, (x, stats)) in tolerant.iter().enumerate() {
            assert_eq!(*x, plain[j].0, "rank {j} values must match exactly");
            assert_eq!(
                stats.total_time, plain[j].1.total_time,
                "rank {j} timing must match exactly"
            );
            assert_eq!(stats.iterations, iters);
            assert_eq!(stats.speculate_through_loss_commits, 0);
            assert_eq!(stats.peer_restarts, 0);
            assert_eq!(stats.messages_lost, 0);
        }
    }

    #[test]
    fn fault_runs_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let ft = FaultTolerance::new(SimDuration::from_millis(6));
            let cfg = SpecConfig::speculative(2).with_fault_tolerance(ft);
            let out = run_toy_with_faults(3, 15, 1e9, cfg, 2, FaultSpec::new(Loss::new(0.2, seed)));
            out.iter()
                .map(|(x, s)| {
                    (
                        x.to_bits(),
                        s.messages_lost,
                        s.speculate_through_loss_commits,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9), "same seed must reproduce bit-exactly");
        assert_ne!(run(9), run(10), "different seeds should differ");
    }

    #[test]
    fn lossless_delta_is_bit_identical_to_full_broadcast() {
        let p = 4;
        let iters = 16;
        let theta = 0.05;
        let full_cfg = SpecConfig::speculative(2);
        let delta_cfg = full_cfg
            .clone()
            .with_delta_exchange(DeltaExchange::lossless());
        let (full, t_full) = run_toy(p, iters, theta, full_cfg, 3);
        let (delta, t_delta) = run_toy(p, iters, theta, delta_cfg, 3);
        assert_eq!(t_full, t_delta, "floor=0 must not change the schedule");
        for (j, ((xf, sf), (xd, sd))) in full.iter().zip(&delta).enumerate() {
            assert_eq!(
                xf.to_bits(),
                xd.to_bits(),
                "rank {j}: floor=0 delta must be bit-identical"
            );
            assert_eq!(sf.messages_sent, sd.messages_sent);
            assert_eq!(sd.delta_frames_dropped, 0, "reliable net drops nothing");
            assert_eq!(sf.total_time, sd.total_time);
        }
    }

    #[test]
    fn delta_mode_preserves_send_count_and_meters_bytes() {
        let p = 4;
        let iters = 12;
        let cfg = SpecConfig::speculative(1).with_delta_exchange(DeltaExchange::new(1e-3, 4));
        let (out, _) = run_toy(p, iters, 1e9, cfg, 2);
        for (_, stats) in &out {
            assert_eq!(stats.messages_sent, (p as u64 - 1) * iters);
            assert!(stats.bytes_sent > 0, "sends must be metered");
            assert!(stats.bytes_received > 0, "receives must be metered");
            assert_eq!(stats.iterations, iters);
        }
    }

    #[test]
    fn keyframe_every_iteration_degenerates_to_full_broadcast() {
        let p = 3;
        let iters = 10;
        let full_cfg = SpecConfig::speculative(1);
        let kf_cfg = full_cfg
            .clone()
            .with_delta_exchange(DeltaExchange::new(0.5, 1));
        let (full, _) = run_toy(p, iters, 0.05, full_cfg, 2);
        let (kf, _) = run_toy(p, iters, 0.05, kf_cfg, 2);
        for (j, ((xf, sf), (xk, sk))) in full.iter().zip(&kf).enumerate() {
            assert_eq!(xf.to_bits(), xk.to_bits(), "rank {j}: K=1 is full frames");
            assert_eq!(sf.bytes_sent, sk.bytes_sent, "rank {j}: same wire bytes");
            assert_eq!(sk.delta_suppressed_bytes, 0);
        }
    }

    #[test]
    fn quantized_delta_error_stays_bounded() {
        // The toy map is a contraction (|a| + (p-1)|b| < 1), so a per-value
        // quantization error of `floor` perturbs the fixed point by
        // O(floor / (1 - ρ)) — far below this generous bound.
        let p = 4;
        let iters = 30;
        let floor = 1e-3;
        let cfg = SpecConfig::speculative(1).with_delta_exchange(DeltaExchange::new(floor, 8));
        let (out, _) = run_toy(p, iters, 1e9, cfg, 2);
        let reference = toy_reference(p, iters);
        for (j, (x, stats)) in out.iter().enumerate() {
            assert!(
                (x - reference[j]).abs() < 0.05,
                "rank {j} drifted past the quantization bound: {x} vs {}",
                reference[j]
            );
            assert_eq!(stats.iterations, iters);
        }
    }

    #[test]
    fn stash_drops_gap_and_duplicate_delta_frames() {
        use std::collections::{BTreeMap, HashMap};

        let app = Toy::new(0, 2, 0.0);
        let mut dx: DeltaState<f64> = DeltaState::inert(2);
        dx.policy = Some(DeltaExchange::lossless());
        let mut inbox: BTreeMap<u64, HashMap<usize, f64>> = BTreeMap::new();
        let mut history = vec![History::new(4), History::new(4)];
        let mut stats = RunStats::new(Rank(0));
        let env = |iter: u64, body: MsgBody<f64>| Envelope {
            src: Rank(1),
            tag: DATA_TAG,
            msg: IterMsg { iter, body },
        };
        let frame = |v: f64| DeltaFrame {
            entries: vec![(0, v)],
        };

        // A full frame seeds the shadow.
        stash(
            &app,
            &mut dx,
            env(5, MsgBody::Full(2.0)),
            0,
            &mut inbox,
            &mut history,
            &mut stats,
        );
        assert_eq!(dx.rx_shadow[1], Some((5, 2.0)));

        // A gap delta (iter 7 against shadow 5) is dropped untouched.
        stash(
            &app,
            &mut dx,
            env(7, MsgBody::Delta(frame(9.0))),
            0,
            &mut inbox,
            &mut history,
            &mut stats,
        );
        assert_eq!(stats.delta_frames_dropped, 1);
        assert_eq!(history[1].latest_iter(), Some(5));
        assert_eq!(
            dx.rx_shadow[1],
            Some((5, 2.0)),
            "gap must not move the shadow"
        );

        // The in-order delta applies and advances the shadow.
        stash(
            &app,
            &mut dx,
            env(6, MsgBody::Delta(frame(3.0))),
            0,
            &mut inbox,
            &mut history,
            &mut stats,
        );
        assert_eq!(dx.rx_shadow[1], Some((6, 3.0)));
        assert_eq!(history[1].latest_iter(), Some(6));
        assert_eq!(inbox.get(&6).and_then(|m| m.get(&1)), Some(&3.0));

        // A duplicate of that delta is inert.
        stash(
            &app,
            &mut dx,
            env(6, MsgBody::Delta(frame(3.0))),
            0,
            &mut inbox,
            &mut history,
            &mut stats,
        );
        assert_eq!(stats.delta_frames_dropped, 2);
        assert_eq!(dx.rx_shadow[1], Some((6, 3.0)));

        // A stale full frame never regresses the shadow.
        stash(
            &app,
            &mut dx,
            env(4, MsgBody::Full(1.0)),
            0,
            &mut inbox,
            &mut history,
            &mut stats,
        );
        assert_eq!(dx.rx_shadow[1], Some((6, 3.0)));

        // `seen_past` remembers the gap frame's iteration as promotion
        // evidence even though its payload was dropped.
        assert_eq!(dx.seen_past[1], Some(7));
        assert_eq!(stats.messages_received, 5);
    }
}

#[cfg(test)]
mod proptests {
    use super::tests::run_any_config;
    use crate::config::{CorrectionMode, SpecConfig};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// For arbitrary small configurations, every rank completes all
        /// iterations, phase times partition total time, message counts
        /// match the protocol, and counters are internally consistent.
        #[test]
        fn driver_invariants_hold(
            p in 1usize..6,
            iters in 0u64..12,
            fw in 0u32..4,
            theta in prop_oneof![Just(0.0), Just(1e-6), Just(0.05), Just(1e9)],
            latency_ms in 0u64..8,
            recompute in any::<bool>(),
        ) {
            let mode = if recompute {
                CorrectionMode::Recompute
            } else {
                CorrectionMode::Incremental
            };
            let cfg = if fw == 0 {
                SpecConfig::baseline().with_correction(mode)
            } else {
                SpecConfig::speculative(fw).with_correction(mode)
            };
            let (out, _) = run_any_config(p, iters, theta, cfg, latency_ms);
            for (x, stats) in &out {
                prop_assert!(x.is_finite());
                prop_assert_eq!(stats.iterations, iters);
                prop_assert_eq!(stats.phases.total(), stats.total_time);
                prop_assert_eq!(stats.messages_sent, (p as u64 - 1) * iters);
                prop_assert!(stats.messages_received <= (p as u64 - 1) * iters);
                prop_assert!(stats.accepted_partitions + stats.misspeculated_partitions
                    == stats.checked_partitions);
                prop_assert!(stats.checked_partitions <= stats.speculated_partitions);
                prop_assert!(stats.bad_units <= stats.checked_units);
                prop_assert!(stats.max_depth_used <= u64::from(fw.max(1)));
                prop_assert!(stats.executions >= stats.iterations);
            }
        }

        /// θ = +∞ accepts everything: no misspeculations, corrections, or
        /// rollbacks, ever.
        #[test]
        fn infinite_theta_never_corrects(
            p in 2usize..5,
            iters in 1u64..10,
            fw in 1u32..4,
            latency_ms in 1u64..6,
        ) {
            let (out, _) =
                run_any_config(p, iters, 1e18, SpecConfig::speculative(fw), latency_ms);
            for (_, stats) in &out {
                prop_assert_eq!(stats.misspeculated_partitions, 0);
                prop_assert_eq!(stats.corrections, 0);
                prop_assert_eq!(stats.rollbacks, 0);
            }
        }
    }
}
