//! ASCII timelines in the style of the paper's Figures 2 and 4: per-rank
//! execution bars over virtual time, showing how speculation overlaps
//! computation with communication.
//!
//! Rendering needs per-iteration records, so the run must have been
//! configured with [`SpecConfig::with_iteration_log`].
//!
//! [`SpecConfig::with_iteration_log`]: crate::SpecConfig::with_iteration_log

use crate::stats::RunStats;

/// Render one row per rank. Each confirmed iteration paints its compute
/// span with its iteration digit (`0`–`9`, cycling); speculative
/// executions (any speculated input) paint `*` over the span's first cell,
/// waits show as `·`, and the commit instant as `|`.
///
/// `width` is the number of character cells for the full time axis.
pub fn render(stats: &[RunStats], width: usize) -> String {
    assert!(width >= 10, "timeline needs at least 10 columns");
    let horizon = stats
        .iter()
        .flat_map(|r| r.iteration_log.iter())
        .map(|l| l.confirmed_at.as_nanos())
        .max()
        .unwrap_or(0);
    if horizon == 0 {
        return String::from("(no iteration log — run with SpecConfig::with_iteration_log)\n");
    }

    let cell = |ns: u64| ((ns as u128 * (width as u128 - 1)) / horizon as u128) as usize;

    let mut out = String::new();
    out.push_str(&format!(
        "time 0 {:·>w$} {:.4}s\n",
        "",
        horizon as f64 * 1e-9,
        w = width.saturating_sub(10)
    ));
    for r in stats {
        let mut row = vec!['·'; width];
        for l in &r.iteration_log {
            let a = cell(l.exec_start.as_nanos());
            let b = cell(l.exec_end.as_nanos()).max(a);
            let digit = char::from_digit((l.iter % 10) as u32, 10).unwrap_or('?');
            for c in row.iter_mut().take(b + 1).skip(a) {
                *c = digit;
            }
            if l.speculated_inputs > 0 {
                row[a] = '*';
            }
            let commit = cell(l.confirmed_at.as_nanos());
            if row[commit] == '·' {
                row[commit] = '|';
            }
        }
        out.push_str(&format!("{:<5} ", format!("{}", r.rank)));
        out.extend(row);
        out.push('\n');
    }
    out.push_str("legend: digit = computing that iteration, * = used speculated inputs,\n        · = waiting, | = commit while idle\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::IterationLog;
    use desim::SimTime;
    use mpk::Rank;

    fn log(iter: u64, start: u64, end: u64, conf: u64, spec: u32) -> IterationLog {
        IterationLog {
            iter,
            exec_start: SimTime::from_nanos(start),
            exec_end: SimTime::from_nanos(end),
            confirmed_at: SimTime::from_nanos(conf),
            speculated_inputs: spec,
            re_executions: 0,
        }
    }

    #[test]
    fn empty_log_renders_hint() {
        let stats = vec![RunStats::new(Rank(0))];
        let s = render(&stats, 40);
        assert!(s.contains("no iteration log"));
    }

    #[test]
    fn bars_cover_compute_spans() {
        let mut r = RunStats::new(Rank(0));
        r.iteration_log.push(log(0, 0, 500, 500, 0));
        r.iteration_log.push(log(1, 500, 1000, 1000, 2));
        let s = render(&[r], 42);
        // Iteration digits present; speculation marked.
        assert!(s.contains('0'));
        assert!(s.contains('1'));
        assert!(s.contains('*'));
        assert!(s.contains("legend"));
    }

    #[test]
    fn rows_align_per_rank() {
        let mut a = RunStats::new(Rank(0));
        a.iteration_log.push(log(0, 0, 100, 100, 0));
        let mut b = RunStats::new(Rank(1));
        b.iteration_log.push(log(0, 0, 200, 200, 0));
        let s = render(&[a, b], 30);
        let rows: Vec<&str> = s.lines().filter(|l| l.starts_with('P')).collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].starts_with("P1"));
        assert!(rows[1].starts_with("P2"));
        assert_eq!(rows[0].chars().count(), rows[1].chars().count());
    }

    #[test]
    #[should_panic(expected = "at least 10")]
    fn rejects_tiny_width() {
        render(&[RunStats::new(Rank(0))], 3);
    }
}
