//! The application-side contract of the speculative driver.
//!
//! A synchronous iterative algorithm in the paper's model (§2) evaluates
//! `X(t+1) = F(X(t), X(t-1), …)` with `X` partitioned across processors;
//! each processor contributes its partition's update and consumes every
//! other partition's values. [`SpeculativeApp`] decomposes one iteration
//! into *absorbing* each peer partition's contribution plus a local
//! *finish* step, which is what lets the driver substitute speculated
//! values per peer and correct or re-execute afterwards.
//!
//! Every mutating method returns its cost in abstract *operations*; the
//! driver charges them through [`Transport::compute`], so the same code
//! is timed by the virtual-time backend and spun by the thread backend.
//!
//! [`Transport::compute`]: mpk::Transport::compute

use mpk::Rank;

use crate::history::History;

/// Result of comparing a speculated partition value with the actual one.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CheckOutcome {
    /// True if the speculation is acceptable as-is (no correction needed).
    /// Typically `max_error <= θ` for an app-defined threshold θ.
    pub accept: bool,
    /// Largest per-unit error observed (the paper's eq. 11 metric for
    /// N-body).
    pub max_error: f64,
    /// Largest error among units that *passed* the threshold — the error
    /// the computation silently absorbs even when corrections run
    /// (Table 3's "max error in force" column).
    pub max_accepted_error: f64,
    /// Number of fine-grained units (e.g. particles) compared.
    pub checked_units: u64,
    /// Units whose error exceeded the threshold (to be recomputed).
    pub bad_units: u64,
    /// Cost of the comparison, in operations (`f_check` per unit).
    pub ops: u64,
}

/// A partitioned synchronous iterative algorithm, speculation-ready.
///
/// The driver calls, per iteration `t`:
/// 1. [`begin_iteration`](Self::begin_iteration) once;
/// 2. [`absorb`](Self::absorb) once per peer, passing either the received
///    `X_k(t)` or a value obtained from [`speculate`](Self::speculate);
/// 3. [`finish_iteration`](Self::finish_iteration) once — after which
///    [`shared`](Self::shared) must return `X_j(t+1)`;
/// 4. for inputs that were speculated, [`check`](Self::check) when the
///    actual arrives, and on rejection either
///    [`correct`](Self::correct) (incremental fix-up) or a checkpoint
///    rollback followed by re-execution.
pub trait SpeculativeApp {
    /// The partition snapshot broadcast every iteration (`X_j(t)`).
    type Shared: Clone + Send + 'static;
    /// Opaque state snapshot used for forward-window rollback.
    type Checkpoint;

    /// Current value of this rank's partition, to broadcast.
    fn shared(&self) -> Self::Shared;

    /// Start a new iteration; returns setup cost in operations.
    fn begin_iteration(&mut self) -> u64;

    /// Incorporate partition `from`'s values into the iteration in
    /// progress; returns the cost in operations (`f_comp` work).
    fn absorb(&mut self, from: Rank, x: &Self::Shared) -> u64;

    /// Complete the iteration (local state update); returns its cost.
    /// After this, [`shared`](Self::shared) reflects the new iteration.
    fn finish_iteration(&mut self) -> u64;

    /// Predict partition `from`'s value `ahead` iterations past the newest
    /// entry of `hist` (`ahead ≥ 1`). Returns the prediction and its cost
    /// (`f_spec` work), or `None` if the history is insufficient.
    fn speculate(
        &self,
        from: Rank,
        hist: &History<Self::Shared>,
        ahead: u32,
    ) -> Option<(Self::Shared, u64)>;

    /// Compare a speculated input with the actual value that has now
    /// arrived. The app owns the error metric and threshold.
    fn check(&self, from: Rank, actual: &Self::Shared, speculated: &Self::Shared) -> CheckOutcome;

    /// Incrementally repair the current iteration's result after `from`'s
    /// speculated input was rejected: retract the contribution computed
    /// from `speculated` and apply the one from `actual` (only for the
    /// units that exceeded the threshold, matching the paper's selective
    /// recomputation). Returns the cost in operations.
    ///
    /// Only invoked when this is the sole unconfirmed iteration; deeper
    /// speculation consults [`correct_deep`](Self::correct_deep) and rolls
    /// back if it declines.
    fn correct(&mut self, from: Rank, speculated: &Self::Shared, actual: &Self::Shared) -> u64;

    /// Repair a misspeculated input of the *oldest* unconfirmed iteration
    /// when `depth` further iterations have already been executed on top
    /// of it. Returns the cost if the app can propagate the correction
    /// through those iterations (typically a first-order update, accepting
    /// a second-order residual — the paper's bounded-error philosophy), or
    /// `None` to request a checkpoint rollback and exact re-execution.
    ///
    /// The default declines, which is always sound.
    fn correct_deep(
        &mut self,
        from: Rank,
        speculated: &Self::Shared,
        actual: &Self::Shared,
        depth: u64,
    ) -> Option<u64> {
        let _ = (from, speculated, actual, depth);
        None
    }

    /// Flatten a [`Shared`](Self::Shared) snapshot into scalar lanes for
    /// delta exchange, appending into `out` (cleared first). Returns
    /// `false` — the default — when the app does not support deltas, in
    /// which case the driver ignores any
    /// [`DeltaExchange`](crate::config::DeltaExchange) policy and keeps
    /// broadcasting full snapshots.
    ///
    /// The lane layout must be a pure, stable function of the partition
    /// shape: the same index always refers to the same scalar across the
    /// whole run, on every rank. An app that returns `true` here must also
    /// implement [`delta_patch`](Self::delta_patch).
    fn delta_extract(&self, shared: &Self::Shared, out: &mut Vec<f64>) -> bool {
        let _ = (shared, out);
        false
    }

    /// Rebuild a [`Shared`](Self::Shared) snapshot from `base` with the
    /// given `(lane, value)` entries applied — the receiving side of
    /// [`delta_extract`](Self::delta_extract)'s lane layout. Returns
    /// `None` when the app does not support deltas (the default).
    fn delta_patch(&self, base: &Self::Shared, entries: &[(u32, f64)]) -> Option<Self::Shared> {
        let _ = (base, entries);
        None
    }

    /// Update the acceptance threshold θ the app uses in
    /// [`check`](Self::check). Invoked by the adaptive speculation
    /// controller when a retune changes θ; apps with a fixed or
    /// app-managed threshold may ignore it (the default is a no-op, which
    /// keeps every existing app working unchanged and makes the
    /// controller's θ channel opt-in).
    fn set_speculation_threshold(&mut self, theta: f64) {
        let _ = theta;
    }

    /// Snapshot the state needed to re-execute from the current point.
    fn checkpoint(&self) -> Self::Checkpoint;

    /// Snapshot into a reusable slot. The driver recycles the checkpoints
    /// of confirmed (or rolled-back) iterations through this method, so an
    /// app whose `Checkpoint` owns buffers can overwrite them in place and
    /// keep the steady-state iteration path allocation-free. The default
    /// simply stores a fresh [`checkpoint`](Self::checkpoint); `slot` is
    /// always `Some` on return.
    fn checkpoint_into(&self, slot: &mut Option<Self::Checkpoint>) {
        *slot = Some(self.checkpoint());
    }

    /// Restore a snapshot taken by [`checkpoint`](Self::checkpoint).
    fn restore(&mut self, c: &Self::Checkpoint);
}
