//! Driver configuration: forward-window policy and correction mode.

use desim::SimDuration;

/// How misspeculated inputs are repaired.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CorrectionMode {
    /// Ask the app to incrementally retract/reapply the affected
    /// contribution ([`SpeculativeApp::correct`]) when only one iteration
    /// is unconfirmed; roll back otherwise. This is the paper's mode.
    ///
    /// [`SpeculativeApp::correct`]: crate::SpeculativeApp::correct
    #[default]
    Incremental,
    /// Always roll back to the last confirmed checkpoint and re-execute
    /// with actual values. Slower but bit-exact with the non-speculative
    /// execution when the acceptance threshold is zero.
    Recompute,
}

/// The forward window (FW): how many unconfirmed iterations may be in
/// flight (§3.2 of the paper). `Fixed(0)` disables speculation entirely —
/// the Figure 1 baseline; `Fixed(1)` is the Figure 3 algorithm; larger
/// values add forward speculation (Figure 4); [`WindowPolicy::adaptive`]
/// resizes the window at runtime from observed miss rates and wait times —
/// one of the paper's proposed future-work extensions.
#[derive(Clone, Debug)]
pub enum WindowPolicy {
    /// A constant forward window.
    Fixed(u32),
    /// A self-tuning forward window.
    Adaptive(AdaptiveWindow),
}

impl WindowPolicy {
    /// Convenience constructor for the adaptive policy with sane defaults.
    pub fn adaptive(min: u32, max: u32) -> Self {
        WindowPolicy::Adaptive(AdaptiveWindow::new(min, max))
    }

    /// The window size to respect right now.
    pub fn current(&self) -> u32 {
        match self {
            WindowPolicy::Fixed(w) => *w,
            WindowPolicy::Adaptive(a) => a.current(),
        }
    }

    /// Feed back one confirmed iteration's outcome.
    pub fn on_confirm(&mut self, misses: u64, checked: u64, waited: SimDuration) {
        if let WindowPolicy::Adaptive(a) = self {
            a.observe(misses, checked, waited);
        }
    }
}

/// Miss-rate/wait-driven forward-window controller.
///
/// Grows the window when the rank is observed waiting on messages while
/// speculation is reliable; shrinks it when the miss rate climbs, since
/// deep misspeculation forces expensive rollbacks.
#[derive(Clone, Debug)]
pub struct AdaptiveWindow {
    min: u32,
    max: u32,
    cur: u32,
    miss_ewma: f64,
    wait_ewma_ns: f64,
    alpha: f64,
    /// Shrink when the smoothed miss rate exceeds this.
    hi_miss: f64,
    /// Grow only when the smoothed miss rate is below this.
    lo_miss: f64,
    /// Grow only when smoothed per-iteration wait exceeds this.
    wait_floor_ns: f64,
    confirms: u64,
    /// Re-evaluate every this many confirmations.
    period: u64,
}

impl AdaptiveWindow {
    /// A controller bounded to `[min, max]`, starting at `min.max(1)`.
    pub fn new(min: u32, max: u32) -> Self {
        assert!(min <= max, "adaptive window needs min <= max");
        assert!(max >= 1, "adaptive window must allow speculation");
        AdaptiveWindow {
            min,
            max,
            cur: min.max(1),
            miss_ewma: 0.0,
            wait_ewma_ns: 0.0,
            alpha: 0.2,
            hi_miss: 0.25,
            lo_miss: 0.05,
            wait_floor_ns: 1000.0,
            confirms: 0,
            period: 4,
        }
    }

    /// Current window size.
    pub fn current(&self) -> u32 {
        self.cur
    }

    /// Smoothed miss rate (for diagnostics).
    pub fn miss_rate(&self) -> f64 {
        self.miss_ewma
    }

    /// Record one confirmed iteration: `misses` of `checked` speculated
    /// inputs were rejected, and the rank waited `waited` on messages.
    pub fn observe(&mut self, misses: u64, checked: u64, waited: SimDuration) {
        let miss_rate = if checked == 0 {
            0.0
        } else {
            misses as f64 / checked as f64
        };
        self.miss_ewma = self.alpha * miss_rate + (1.0 - self.alpha) * self.miss_ewma;
        self.wait_ewma_ns =
            self.alpha * waited.as_nanos() as f64 + (1.0 - self.alpha) * self.wait_ewma_ns;
        self.confirms += 1;
        if !self.confirms.is_multiple_of(self.period) {
            return;
        }
        if self.miss_ewma > self.hi_miss && self.cur > self.min.max(1) {
            self.cur -= 1;
        } else if self.miss_ewma < self.lo_miss
            && self.wait_ewma_ns > self.wait_floor_ns
            && self.cur < self.max
        {
            self.cur += 1;
        }
    }
}

/// Complete driver configuration.
#[derive(Clone, Debug)]
pub struct SpecConfig {
    /// Forward-window policy.
    pub window: WindowPolicy,
    /// Number of past values retained per peer (the backward window, BW).
    pub backward_window: usize,
    /// Misspeculation repair strategy.
    pub correction: CorrectionMode,
    /// Collect per-iteration timing records into
    /// [`RunStats::iteration_log`](crate::RunStats::iteration_log).
    pub collect_log: bool,
}

impl SpecConfig {
    /// The non-speculative Figure 1 baseline.
    pub fn baseline() -> Self {
        SpecConfig {
            window: WindowPolicy::Fixed(0),
            backward_window: 1,
            correction: CorrectionMode::Incremental,
            collect_log: false,
        }
    }

    /// The paper's Figure 3 algorithm with the given forward window.
    pub fn speculative(forward_window: u32) -> Self {
        SpecConfig {
            window: WindowPolicy::Fixed(forward_window),
            backward_window: 2,
            correction: CorrectionMode::Incremental,
            collect_log: false,
        }
    }

    /// Enable the per-iteration timing log (for timeline rendering).
    pub fn with_iteration_log(mut self) -> Self {
        self.collect_log = true;
        self
    }

    /// Set the backward window.
    pub fn with_backward_window(mut self, bw: usize) -> Self {
        self.backward_window = bw;
        self
    }

    /// Set the correction mode.
    pub fn with_correction(mut self, mode: CorrectionMode) -> Self {
        self.correction = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_is_constant() {
        let mut w = WindowPolicy::Fixed(2);
        assert_eq!(w.current(), 2);
        w.on_confirm(100, 100, SimDuration::from_millis(50));
        assert_eq!(w.current(), 2);
    }

    #[test]
    fn adaptive_grows_under_reliable_waiting() {
        let mut a = AdaptiveWindow::new(1, 4);
        for _ in 0..40 {
            a.observe(0, 10, SimDuration::from_millis(5));
        }
        assert!(a.current() > 1, "should grow when waiting with no misses");
        assert!(a.current() <= 4);
    }

    #[test]
    fn adaptive_shrinks_under_heavy_misses() {
        let mut a = AdaptiveWindow::new(1, 4);
        for _ in 0..40 {
            a.observe(0, 10, SimDuration::from_millis(5));
        }
        let grown = a.current();
        for _ in 0..40 {
            a.observe(8, 10, SimDuration::from_millis(5));
        }
        assert!(
            a.current() < grown,
            "should shrink when speculation misfires"
        );
        assert!(a.current() >= 1);
    }

    #[test]
    fn adaptive_does_not_grow_when_not_waiting() {
        let mut a = AdaptiveWindow::new(1, 4);
        for _ in 0..40 {
            a.observe(0, 10, SimDuration::ZERO);
        }
        assert_eq!(
            a.current(),
            1,
            "no wait means no reason to deepen the window"
        );
    }

    #[test]
    fn config_builders() {
        let c = SpecConfig::speculative(2)
            .with_backward_window(3)
            .with_correction(CorrectionMode::Recompute);
        assert_eq!(c.window.current(), 2);
        assert_eq!(c.backward_window, 3);
        assert_eq!(c.correction, CorrectionMode::Recompute);
        assert_eq!(SpecConfig::baseline().window.current(), 0);
    }
}
