//! Driver configuration: forward-window policy, correction mode, and
//! fault-tolerance knobs.

use crate::control::ControllerConfig;
use desim::SimDuration;
use netsim::MachineCrash;

/// How misspeculated inputs are repaired.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CorrectionMode {
    /// Ask the app to incrementally retract/reapply the affected
    /// contribution ([`SpeculativeApp::correct`]) when only one iteration
    /// is unconfirmed; roll back otherwise. This is the paper's mode.
    ///
    /// [`SpeculativeApp::correct`]: crate::SpeculativeApp::correct
    #[default]
    Incremental,
    /// Always roll back to the last confirmed checkpoint and re-execute
    /// with actual values. Slower but bit-exact with the non-speculative
    /// execution when the acceptance threshold is zero.
    Recompute,
}

/// The forward window (FW): how many unconfirmed iterations may be in
/// flight (§3.2 of the paper). `Fixed(0)` disables speculation entirely —
/// the Figure 1 baseline; `Fixed(1)` is the Figure 3 algorithm; larger
/// values add forward speculation (Figure 4); [`WindowPolicy::adaptive`]
/// resizes the window at runtime from observed miss rates and wait times —
/// one of the paper's proposed future-work extensions.
#[derive(Clone, Debug)]
pub enum WindowPolicy {
    /// A constant forward window.
    Fixed(u32),
    /// A self-tuning forward window.
    Adaptive(AdaptiveWindow),
}

impl WindowPolicy {
    /// Convenience constructor for the adaptive policy with sane defaults.
    pub fn adaptive(min: u32, max: u32) -> Self {
        WindowPolicy::Adaptive(AdaptiveWindow::new(min, max))
    }

    /// The window size to respect right now.
    pub fn current(&self) -> u32 {
        match self {
            WindowPolicy::Fixed(w) => *w,
            WindowPolicy::Adaptive(a) => a.current(),
        }
    }

    /// Feed back one confirmed iteration's outcome.
    pub fn on_confirm(&mut self, misses: u64, checked: u64, waited: SimDuration) {
        if let WindowPolicy::Adaptive(a) = self {
            a.observe(misses, checked, waited);
        }
    }
}

/// Miss-rate/wait-driven forward-window controller.
///
/// Grows the window when the rank is observed waiting on messages while
/// speculation is reliable; shrinks it when the miss rate climbs, since
/// deep misspeculation forces expensive rollbacks.
#[derive(Clone, Debug)]
pub struct AdaptiveWindow {
    min: u32,
    max: u32,
    cur: u32,
    miss_ewma: f64,
    wait_ewma_ns: f64,
    alpha: f64,
    /// Shrink when the smoothed miss rate exceeds this.
    hi_miss: f64,
    /// Grow only when the smoothed miss rate is below this.
    lo_miss: f64,
    /// Grow only when smoothed per-iteration wait exceeds this.
    wait_floor_ns: f64,
    confirms: u64,
    /// Re-evaluate every this many confirmations.
    period: u64,
}

impl AdaptiveWindow {
    /// A controller bounded to `[min, max]`, starting at `min.max(1)`.
    pub fn new(min: u32, max: u32) -> Self {
        assert!(min <= max, "adaptive window needs min <= max");
        assert!(max >= 1, "adaptive window must allow speculation");
        AdaptiveWindow {
            min,
            max,
            cur: min.max(1),
            miss_ewma: 0.0,
            wait_ewma_ns: 0.0,
            alpha: 0.2,
            hi_miss: 0.25,
            lo_miss: 0.05,
            wait_floor_ns: 1000.0,
            confirms: 0,
            period: 4,
        }
    }

    /// Current window size.
    pub fn current(&self) -> u32 {
        self.cur
    }

    /// Smoothed miss rate (for diagnostics).
    pub fn miss_rate(&self) -> f64 {
        self.miss_ewma
    }

    /// Record one confirmed iteration: `misses` of `checked` speculated
    /// inputs were rejected, and the rank waited `waited` on messages.
    pub fn observe(&mut self, misses: u64, checked: u64, waited: SimDuration) {
        let miss_rate = if checked == 0 {
            0.0
        } else {
            misses as f64 / checked as f64
        };
        self.miss_ewma = self.alpha * miss_rate + (1.0 - self.alpha) * self.miss_ewma;
        self.wait_ewma_ns =
            self.alpha * waited.as_nanos() as f64 + (1.0 - self.alpha) * self.wait_ewma_ns;
        self.confirms += 1;
        if !self.confirms.is_multiple_of(self.period) {
            return;
        }
        if self.miss_ewma > self.hi_miss && self.cur > self.min.max(1) {
            self.cur -= 1;
        } else if self.miss_ewma < self.lo_miss
            && self.wait_ewma_ns > self.wait_floor_ns
            && self.cur < self.max
        {
            self.cur += 1;
        }
    }
}

/// Fault-tolerance policy: when to stop waiting for a lossy peer and
/// speculate *through* the loss instead of around mere delay.
///
/// The paper's algorithm tolerates late messages by extrapolating from the
/// backward window; under an unreliable transport the same machinery covers
/// *lost* messages, except the driver must decide a message is lost (it
/// never arrives) rather than merely late. This struct sets that decision:
/// after `loss_timeout` with the oldest in-flight iteration stuck on a
/// missing input, the driver promotes its BW extrapolation to a committed
/// value and moves on.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultTolerance {
    /// How long the oldest unconfirmed iteration may wait on a missing
    /// input before the driver commits the speculated value in its place.
    pub loss_timeout: SimDuration,
    /// How many *consecutive* iterations a peer's input may be promoted
    /// from speculation before the driver asks that peer to retransmit its
    /// latest state (and again every further `staleness_budget` promotions).
    pub staleness_budget: u32,
    /// Scripted crashes of this run's own ranks. Each rank sleeps through
    /// its outages and re-seeds from its confirmed checkpoint on restart.
    pub crashes: Vec<MachineCrash>,
}

impl FaultTolerance {
    /// Speculate-through-loss after `loss_timeout`, with a default
    /// staleness budget of 4 promoted iterations per peer and no crashes.
    pub fn new(loss_timeout: SimDuration) -> Self {
        assert!(
            loss_timeout > SimDuration::ZERO,
            "loss timeout must be positive"
        );
        FaultTolerance {
            loss_timeout,
            staleness_budget: 4,
            crashes: Vec::new(),
        }
    }

    /// Set the per-peer staleness budget (must be at least 1).
    pub fn with_staleness_budget(mut self, budget: u32) -> Self {
        assert!(budget >= 1, "staleness budget must be at least 1");
        self.staleness_budget = budget;
        self
    }

    /// Script machine crashes into the run.
    pub fn with_crashes(mut self, crashes: Vec<MachineCrash>) -> Self {
        self.crashes = crashes;
        self
    }
}

/// Peer-supervision policy: a per-peer health lifecycle layered on top of
/// [`FaultTolerance`].
///
/// Loss timeouts treat every missing message independently; supervision
/// tracks the *peer*. A peer that has contributed nothing for
/// `suspect_after` promotions in a row is `Suspected`; after
/// `quarantine_after` it is `Quarantined` — the driver stops spending the
/// loss timeout on it entirely and carries its partition forward by
/// speculation alone (degraded mode). The moment a quarantined peer is
/// heard from again it is readmitted: the driver ships it a full keyframe,
/// resets the delta shadows on both ends, and resumes θ-checking against
/// its actual values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SupervisionConfig {
    /// Consecutive speculate-through-loss promotions of a peer's input
    /// before the peer is marked `Suspected` (at least 1).
    pub suspect_after: u32,
    /// Consecutive promotions before a suspected peer is `Quarantined`
    /// (must be ≥ `suspect_after`).
    pub quarantine_after: u32,
}

impl SupervisionConfig {
    /// Suspect after `suspect_after` consecutive promotions, quarantine
    /// after `quarantine_after`.
    pub fn new(suspect_after: u32, quarantine_after: u32) -> Self {
        assert!(suspect_after >= 1, "suspect_after must be at least 1");
        assert!(
            quarantine_after >= suspect_after,
            "quarantine_after must be >= suspect_after"
        );
        SupervisionConfig {
            suspect_after,
            quarantine_after,
        }
    }
}

impl Default for SupervisionConfig {
    /// Suspect after 3 consecutive promotions, quarantine after 8.
    fn default() -> Self {
        SupervisionConfig::new(3, 8)
    }
}

/// Delta-exchange policy: broadcast sparse updates against per-peer
/// shadows instead of full partition snapshots.
///
/// Each sender keeps, per peer, a shadow of what that peer last
/// reconstructed from this rank's stream, and sends only the scalar lanes
/// whose change since the shadow exceeds `floor` (see
/// [`mpk::DeltaFrame`]). `floor == 0.0` makes the stream lossless —
/// bit-identical to full broadcasts — while a positive floor bounds each
/// lane's staleness by `floor` and suppresses traffic for lanes that
/// barely move. Every `keyframe_interval` iterations (and whenever a
/// shadow is missing — bootstrap, retransmit, crash recovery) the full
/// state is sent instead, bounding drift and re-synchronising peers that
/// missed frames.
///
/// Delta frames assume per-link FIFO delivery (true of all three
/// transports and of size-independent simulated latency): a frame only
/// applies on top of its immediate predecessor, and a receiver drops
/// frames that arrive over a gap. Under loss or reordering, combine with
/// [`FaultTolerance`] so dropped frames heal via retransmission, the next
/// keyframe, or speculate-through-loss promotion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeltaExchange {
    /// Largest per-lane change that may be suppressed. `0.0` compares bit
    /// patterns: the delta stream is exactly lossless.
    pub floor: f64,
    /// Broadcast a full keyframe whenever `iter % keyframe_interval == 0`
    /// (at least 1; 1 degenerates to full broadcast every iteration).
    pub keyframe_interval: u64,
}

impl DeltaExchange {
    /// A delta policy with the given floor and keyframe interval.
    pub fn new(floor: f64, keyframe_interval: u64) -> Self {
        assert!(
            floor >= 0.0 && floor.is_finite(),
            "quantization floor must be finite and non-negative"
        );
        assert!(keyframe_interval >= 1, "keyframe interval must be >= 1");
        DeltaExchange {
            floor,
            keyframe_interval,
        }
    }

    /// Lossless deltas (floor 0) with the default keyframe cadence of 32.
    pub fn lossless() -> Self {
        DeltaExchange::new(0.0, 32)
    }
}

/// Complete driver configuration.
#[derive(Clone, Debug)]
pub struct SpecConfig {
    /// Forward-window policy.
    pub window: WindowPolicy,
    /// Number of past values retained per peer (the backward window, BW).
    pub backward_window: usize,
    /// Misspeculation repair strategy.
    pub correction: CorrectionMode,
    /// Collect per-iteration timing records into
    /// [`RunStats::iteration_log`](crate::RunStats::iteration_log).
    pub collect_log: bool,
    /// Fault-tolerance policy; `None` (the default) assumes a reliable
    /// transport and keeps the driver's behavior bit-identical to the
    /// fault-unaware implementation.
    pub fault: Option<FaultTolerance>,
    /// Delta-exchange policy; `None` (the default) broadcasts full
    /// partition snapshots exactly as before. Ignored for apps that do not
    /// expose scalar lanes (see
    /// [`SpeculativeApp::delta_extract`](crate::SpeculativeApp::delta_extract)).
    pub delta: Option<DeltaExchange>,
    /// Peer-supervision policy; `None` (the default) keeps the flat
    /// per-message loss handling of [`FaultTolerance`] with no health
    /// lifecycle. Only meaningful when `fault` is also set — without a
    /// loss timeout no promotions happen, so no peer is ever suspected.
    pub supervision: Option<SupervisionConfig>,
    /// Adaptive speculation controller; `None` (the default) keeps every
    /// knob static and the driver's behavior bit-identical to the
    /// controller-unaware implementation. Requires a
    /// [`WindowPolicy::Fixed`] window (the controller owns window sizing;
    /// combining two window controllers is rejected by
    /// [`SpecConfig::validate`]).
    pub controller: Option<ControllerConfig>,
}

impl SpecConfig {
    /// The non-speculative Figure 1 baseline.
    pub fn baseline() -> Self {
        SpecConfig {
            window: WindowPolicy::Fixed(0),
            backward_window: 1,
            correction: CorrectionMode::Incremental,
            collect_log: false,
            fault: None,
            delta: None,
            supervision: None,
            controller: None,
        }
    }

    /// The paper's Figure 3 algorithm with the given forward window.
    pub fn speculative(forward_window: u32) -> Self {
        SpecConfig {
            window: WindowPolicy::Fixed(forward_window),
            backward_window: 2,
            correction: CorrectionMode::Incremental,
            collect_log: false,
            fault: None,
            delta: None,
            supervision: None,
            controller: None,
        }
    }

    /// Enable the per-iteration timing log (for timeline rendering).
    pub fn with_iteration_log(mut self) -> Self {
        self.collect_log = true;
        self
    }

    /// Set the backward window.
    pub fn with_backward_window(mut self, bw: usize) -> Self {
        self.backward_window = bw;
        self
    }

    /// Set the correction mode.
    pub fn with_correction(mut self, mode: CorrectionMode) -> Self {
        self.correction = mode;
        self
    }

    /// Enable fault tolerance (speculate-through-loss, retransmit
    /// requests, crash recovery).
    pub fn with_fault_tolerance(mut self, ft: FaultTolerance) -> Self {
        self.fault = Some(ft);
        self
    }

    /// Broadcast delta frames against per-peer shadows instead of full
    /// partition snapshots.
    pub fn with_delta_exchange(mut self, delta: DeltaExchange) -> Self {
        self.delta = Some(delta);
        self
    }

    /// Track per-peer health and quarantine persistently silent peers
    /// (requires [`SpecConfig::with_fault_tolerance`] to have any effect).
    pub fn with_supervision(mut self, sup: SupervisionConfig) -> Self {
        self.supervision = Some(sup);
        self
    }

    /// Retune θ, the forward window, and per-peer loss deadlines online
    /// from observed telemetry (see [`ControllerConfig`]). Requires a
    /// fixed window policy.
    pub fn with_adaptive(mut self, controller: ControllerConfig) -> Self {
        assert!(
            matches!(self.window, WindowPolicy::Fixed(_)),
            "adaptive controller requires a fixed window policy (it owns window sizing)"
        );
        controller.validate().expect("invalid controller config");
        self.controller = Some(controller);
        self
    }

    /// Cross-field validation of the whole configuration, re-checking every
    /// invariant the individual builders assert so that struct-literal
    /// construction (the fields are deliberately public) cannot smuggle a
    /// zero or degenerate knob past the constructors and livelock or
    /// divide-by-zero deep inside the driver. The drivers call this once at
    /// entry and panic with the returned reason.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(f) = &self.fault {
            if f.loss_timeout == SimDuration::ZERO {
                return Err("fault tolerance loss timeout must be positive".into());
            }
            if f.staleness_budget < 1 {
                return Err("fault tolerance staleness budget must be at least 1".into());
            }
        }
        if let Some(d) = &self.delta {
            if !(d.floor.is_finite() && d.floor >= 0.0) {
                return Err("delta quantization floor must be finite and non-negative".into());
            }
            if d.keyframe_interval < 1 {
                return Err("delta keyframe interval must be at least 1".into());
            }
        }
        if let Some(s) = &self.supervision {
            if s.suspect_after < 1 {
                return Err("supervision suspect_after must be at least 1".into());
            }
            if s.quarantine_after < s.suspect_after {
                return Err("supervision quarantine_after must be >= suspect_after".into());
            }
        }
        if let Some(c) = &self.controller {
            c.validate()?;
            if !matches!(self.window, WindowPolicy::Fixed(_)) {
                return Err(
                    "adaptive controller requires a fixed window policy (it owns window sizing)"
                        .into(),
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_is_constant() {
        let mut w = WindowPolicy::Fixed(2);
        assert_eq!(w.current(), 2);
        w.on_confirm(100, 100, SimDuration::from_millis(50));
        assert_eq!(w.current(), 2);
    }

    #[test]
    fn adaptive_grows_under_reliable_waiting() {
        let mut a = AdaptiveWindow::new(1, 4);
        for _ in 0..40 {
            a.observe(0, 10, SimDuration::from_millis(5));
        }
        assert!(a.current() > 1, "should grow when waiting with no misses");
        assert!(a.current() <= 4);
    }

    #[test]
    fn adaptive_shrinks_under_heavy_misses() {
        let mut a = AdaptiveWindow::new(1, 4);
        for _ in 0..40 {
            a.observe(0, 10, SimDuration::from_millis(5));
        }
        let grown = a.current();
        for _ in 0..40 {
            a.observe(8, 10, SimDuration::from_millis(5));
        }
        assert!(
            a.current() < grown,
            "should shrink when speculation misfires"
        );
        assert!(a.current() >= 1);
    }

    #[test]
    fn adaptive_does_not_grow_when_not_waiting() {
        let mut a = AdaptiveWindow::new(1, 4);
        for _ in 0..40 {
            a.observe(0, 10, SimDuration::ZERO);
        }
        assert_eq!(
            a.current(),
            1,
            "no wait means no reason to deepen the window"
        );
    }

    #[test]
    fn config_builders() {
        let c = SpecConfig::speculative(2)
            .with_backward_window(3)
            .with_correction(CorrectionMode::Recompute);
        assert_eq!(c.window.current(), 2);
        assert_eq!(c.backward_window, 3);
        assert_eq!(c.correction, CorrectionMode::Recompute);
        assert!(c.fault.is_none());
        assert_eq!(SpecConfig::baseline().window.current(), 0);
    }

    #[test]
    fn fault_tolerance_builder() {
        use desim::SimTime;
        let ft = FaultTolerance::new(SimDuration::from_millis(5))
            .with_staleness_budget(2)
            .with_crashes(vec![MachineCrash {
                rank: 1,
                at: SimTime::from_nanos(100),
                restart_after: SimDuration::from_nanos(50),
            }]);
        assert_eq!(ft.loss_timeout, SimDuration::from_millis(5));
        assert_eq!(ft.staleness_budget, 2);
        assert_eq!(ft.crashes.len(), 1);
        let c = SpecConfig::speculative(1).with_fault_tolerance(ft.clone());
        assert_eq!(c.fault, Some(ft));
    }

    #[test]
    #[should_panic(expected = "loss timeout must be positive")]
    fn zero_loss_timeout_is_rejected() {
        let _ = FaultTolerance::new(SimDuration::ZERO);
    }

    #[test]
    fn delta_exchange_builder() {
        let d = DeltaExchange::new(0.25, 8);
        assert_eq!(d.floor, 0.25);
        assert_eq!(d.keyframe_interval, 8);
        let c = SpecConfig::speculative(1).with_delta_exchange(d);
        assert_eq!(c.delta, Some(d));
        assert!(SpecConfig::baseline().delta.is_none());
        let lossless = DeltaExchange::lossless();
        assert_eq!(lossless.floor, 0.0);
    }

    #[test]
    #[should_panic(expected = "keyframe interval must be >= 1")]
    fn zero_keyframe_interval_is_rejected() {
        let _ = DeltaExchange::new(0.0, 0);
    }

    #[test]
    #[should_panic(expected = "quantization floor must be finite")]
    fn negative_floor_is_rejected() {
        let _ = DeltaExchange::new(-1.0, 4);
    }

    #[test]
    #[should_panic(expected = "staleness budget must be at least 1")]
    fn zero_staleness_budget_is_rejected() {
        let _ = FaultTolerance::new(SimDuration::from_millis(5)).with_staleness_budget(0);
    }

    #[test]
    fn validate_catches_struct_literal_bypass() {
        // The builders assert, but the fields are public: a struct literal
        // can carry degenerate knobs straight to the driver. validate()
        // is the driver's backstop.
        let ok = SpecConfig::speculative(1);
        assert_eq!(ok.validate(), Ok(()));

        let mut c = SpecConfig::speculative(1);
        c.fault = Some(FaultTolerance {
            loss_timeout: SimDuration::ZERO,
            staleness_budget: 4,
            crashes: Vec::new(),
        });
        assert!(c.validate().unwrap_err().contains("loss timeout"));

        let mut c = SpecConfig::speculative(1);
        c.fault = Some(FaultTolerance {
            loss_timeout: SimDuration::from_millis(5),
            staleness_budget: 0,
            crashes: Vec::new(),
        });
        assert!(c.validate().unwrap_err().contains("staleness budget"));

        let mut c = SpecConfig::speculative(1);
        c.delta = Some(DeltaExchange {
            floor: 0.0,
            keyframe_interval: 0,
        });
        assert!(c.validate().unwrap_err().contains("keyframe interval"));

        let mut c = SpecConfig::speculative(1);
        c.delta = Some(DeltaExchange {
            floor: f64::NAN,
            keyframe_interval: 8,
        });
        assert!(c.validate().unwrap_err().contains("floor"));

        let mut c = SpecConfig::speculative(1);
        c.supervision = Some(SupervisionConfig {
            suspect_after: 0,
            quarantine_after: 4,
        });
        assert!(c.validate().unwrap_err().contains("suspect_after"));

        let mut c = SpecConfig::speculative(1);
        c.supervision = Some(SupervisionConfig {
            suspect_after: 5,
            quarantine_after: 4,
        });
        assert!(c.validate().unwrap_err().contains("quarantine_after"));

        let mut c = SpecConfig::speculative(1);
        let mut cc = ControllerConfig::new();
        cc.period = 0;
        c.controller = Some(cc);
        assert!(c.validate().unwrap_err().contains("period"));
    }

    #[test]
    fn with_adaptive_attaches_a_controller() {
        let c = SpecConfig::speculative(1).with_adaptive(ControllerConfig::new());
        assert!(c.controller.is_some());
        assert_eq!(c.validate(), Ok(()));
        assert!(SpecConfig::baseline().controller.is_none());
    }

    #[test]
    #[should_panic(expected = "fixed window policy")]
    fn controller_rejects_adaptive_window_policy() {
        let mut c = SpecConfig::speculative(1);
        c.window = WindowPolicy::adaptive(1, 4);
        let _ = c.with_adaptive(ControllerConfig::new());
    }

    #[test]
    fn validate_rejects_controller_with_adaptive_window() {
        let mut c = SpecConfig::speculative(1);
        c.controller = Some(ControllerConfig::new());
        c.window = WindowPolicy::adaptive(1, 4);
        assert!(c.validate().unwrap_err().contains("fixed window"));
    }
}
