//! Execution statistics matching the paper's measurement methodology.
//!
//! Table 2 of the paper breaks each iteration into computation,
//! communication(-wait), speculation and check time; Table 3 and the model's
//! `k` need counts of speculated and misspeculated variables. [`RunStats`]
//! collects exactly those, per rank; [`ClusterStats`] aggregates them.

use desim::{SimDuration, SimTime};
use mpk::Rank;

/// One confirmed iteration's timing record (collected only when
/// [`SpecConfig::with_iteration_log`] is set — it costs memory, not
/// virtual time).
///
/// [`SpecConfig::with_iteration_log`]: crate::SpecConfig::with_iteration_log
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterationLog {
    /// Iteration number.
    pub iter: u64,
    /// When the (final) execution of this iteration started.
    pub exec_start: SimTime,
    /// When its computation finished.
    pub exec_end: SimTime,
    /// When every input was validated and the iteration committed.
    pub confirmed_at: SimTime,
    /// Peer inputs that were speculated in the final execution.
    pub speculated_inputs: u32,
    /// Extra executions this iteration needed (rollback re-runs).
    pub re_executions: u32,
}

/// Virtual time spent in each phase of the speculative driver.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Useful computation (absorbing inputs, finishing iterations),
    /// including re-execution after rollbacks.
    pub compute: SimDuration,
    /// Time blocked waiting for messages.
    pub comm_wait: SimDuration,
    /// Time producing speculated values (the paper's `f_spec` cost).
    pub speculate: SimDuration,
    /// Time comparing speculated with actual values (`f_check`).
    pub check: SimDuration,
    /// Time spent in incremental corrections of misspeculated inputs.
    pub correct: SimDuration,
}

impl PhaseBreakdown {
    /// Sum of all phases (equals total time when accounting is exhaustive).
    pub fn total(&self) -> SimDuration {
        self.compute + self.comm_wait + self.speculate + self.check + self.correct
    }
}

/// Everything one rank measured during a run.
///
/// `PartialEq` so differential suites can assert two kernels produced
/// identical statistics wholesale.
#[derive(Clone, Debug, PartialEq)]
pub struct RunStats {
    /// The rank these statistics belong to.
    pub rank: Rank,
    /// Number of confirmed iterations.
    pub iterations: u64,
    /// Per-phase virtual time.
    pub phases: PhaseBreakdown,
    /// Virtual time from start to this rank's finish.
    pub total_time: SimDuration,
    /// Partition values absorbed from speculated inputs.
    pub speculated_partitions: u64,
    /// Partition values validated against a later actual.
    pub checked_partitions: u64,
    /// Partition checks that passed the error threshold.
    pub accepted_partitions: u64,
    /// Partition checks that failed (triggered correction or rollback).
    pub misspeculated_partitions: u64,
    /// Finer-grained units checked (e.g. particles), app-defined.
    pub checked_units: u64,
    /// Finer-grained units beyond the threshold (recomputed).
    pub bad_units: u64,
    /// Incremental corrections applied.
    pub corrections: u64,
    /// Checkpoint rollbacks (forward-window misspeculations).
    pub rollbacks: u64,
    /// Iterations executed, including speculative re-executions.
    pub executions: u64,
    /// Messages sent by this rank.
    pub messages_sent: u64,
    /// Messages received by this rank.
    pub messages_received: u64,
    /// Modelled bytes this rank put on the wire (payload plus per-message
    /// header), across data messages, retransmit traffic and replies.
    pub bytes_sent: u64,
    /// Modelled bytes received, same accounting as
    /// [`bytes_sent`](Self::bytes_sent).
    pub bytes_received: u64,
    /// Bytes the delta exchange avoided sending: for every delta frame,
    /// the size of the full snapshot it replaced minus the frame's own
    /// size (never negative). Zero without a delta policy.
    pub delta_suppressed_bytes: u64,
    /// Delta frames received that could not be applied because their
    /// predecessor never arrived (a gap) or because the frame was a
    /// duplicate of one already applied. Gaps heal via retransmission or
    /// the next keyframe; zero on fault-free FIFO links.
    pub delta_frames_dropped: u64,
    /// Largest forward window actually used.
    pub max_depth_used: u64,
    /// Largest error among *accepted* speculations — the residual error
    /// the run silently absorbed (drives the paper's Table 3 "max error
    /// in force" column).
    pub max_accepted_error: f64,
    /// Messages the fault layer dropped from this rank's sends (loss,
    /// partitions, crashed destinations). Zero on reliable transports.
    pub messages_lost: u64,
    /// Speculated inputs promoted to committed values because the actual
    /// message was declared lost (speculate-through-loss commits).
    pub speculate_through_loss_commits: u64,
    /// Retransmit requests this rank sent to stale peers.
    pub retransmit_requests: u64,
    /// Times this rank crashed and re-seeded itself from its confirmed
    /// checkpoint.
    pub peer_restarts: u64,
    /// Loss-promotions committed while the missing peer was *quarantined*
    /// — degraded-mode commits that skipped the loss timeout entirely.
    /// A subset of [`speculate_through_loss_commits`](Self::speculate_through_loss_commits).
    pub degraded_commits: u64,
    /// Peers this rank marked `Suspected` (transitions, not peers — a peer
    /// that recovers and goes silent again counts twice).
    pub peers_suspected: u64,
    /// Peers this rank quarantined.
    pub peers_quarantined: u64,
    /// Quarantined peers readmitted after being heard from again.
    pub peer_rejoins: u64,
    /// Virtual time this rank spent down (crashed), excluded from the
    /// phase breakdown: `phases.total() + downtime == total_time`.
    pub downtime: SimDuration,
    /// Retune evaluations the adaptive controller performed. Zero when the
    /// controller is off.
    pub controller_retunes: u64,
    /// Forward window most recently chosen by the controller (0 until the
    /// first retune, and always 0 when the controller is off).
    pub controller_fw: u64,
    /// Acceptance threshold most recently chosen by the controller (0.0
    /// until the first retune or when the grid is empty/controller off).
    pub controller_theta: f64,
    /// Per-iteration timing records (empty unless the config enabled the
    /// iteration log).
    pub iteration_log: Vec<IterationLog>,
}

impl RunStats {
    /// Fresh zeroed statistics for `rank`.
    pub fn new(rank: Rank) -> Self {
        RunStats {
            rank,
            iterations: 0,
            phases: PhaseBreakdown::default(),
            total_time: SimDuration::ZERO,
            speculated_partitions: 0,
            checked_partitions: 0,
            accepted_partitions: 0,
            misspeculated_partitions: 0,
            checked_units: 0,
            bad_units: 0,
            corrections: 0,
            rollbacks: 0,
            executions: 0,
            messages_sent: 0,
            messages_received: 0,
            bytes_sent: 0,
            bytes_received: 0,
            delta_suppressed_bytes: 0,
            delta_frames_dropped: 0,
            max_depth_used: 0,
            max_accepted_error: 0.0,
            messages_lost: 0,
            speculate_through_loss_commits: 0,
            retransmit_requests: 0,
            peer_restarts: 0,
            degraded_commits: 0,
            peers_suspected: 0,
            peers_quarantined: 0,
            peer_rejoins: 0,
            downtime: SimDuration::ZERO,
            controller_retunes: 0,
            controller_fw: 0,
            controller_theta: 0.0,
            iteration_log: Vec::new(),
        }
    }

    /// The paper's `k`: fraction of checked units that had to be recomputed
    /// because of speculation error. `0` when nothing was checked.
    pub fn recomputation_fraction(&self) -> f64 {
        if self.checked_units == 0 {
            0.0
        } else {
            self.bad_units as f64 / self.checked_units as f64
        }
    }

    /// Fraction of partition-level checks that were rejected.
    pub fn partition_miss_rate(&self) -> f64 {
        if self.checked_partitions == 0 {
            0.0
        } else {
            self.misspeculated_partitions as f64 / self.checked_partitions as f64
        }
    }

    /// Average per-iteration phase times (Table 2 reports per-iteration
    /// seconds). Returns zeroes for a zero-iteration run.
    pub fn per_iteration(&self) -> PhaseBreakdown {
        if self.iterations == 0 {
            return PhaseBreakdown::default();
        }
        let n = self.iterations;
        PhaseBreakdown {
            compute: self.phases.compute / n,
            comm_wait: self.phases.comm_wait / n,
            speculate: self.phases.speculate / n,
            check: self.phases.check / n,
            correct: self.phases.correct / n,
        }
    }
}

/// Statistics of every rank of one run, with cluster-level summaries.
#[derive(Clone, Debug)]
pub struct ClusterStats {
    /// Per-rank statistics, rank order.
    pub per_rank: Vec<RunStats>,
}

impl ClusterStats {
    /// Wrap per-rank stats.
    pub fn new(per_rank: Vec<RunStats>) -> Self {
        assert!(!per_rank.is_empty());
        ClusterStats { per_rank }
    }

    /// The run's makespan: the slowest rank's total time (eq. 9's `max`).
    pub fn makespan(&self) -> SimDuration {
        self.per_rank
            .iter()
            .map(|r| r.total_time)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Cluster-wide recomputation fraction `k`.
    pub fn recomputation_fraction(&self) -> f64 {
        let checked: u64 = self.per_rank.iter().map(|r| r.checked_units).sum();
        let bad: u64 = self.per_rank.iter().map(|r| r.bad_units).sum();
        if checked == 0 {
            0.0
        } else {
            bad as f64 / checked as f64
        }
    }

    /// Mean per-iteration phase breakdown across ranks (the aggregation the
    /// paper's Table 2 reports).
    pub fn mean_per_iteration(&self) -> PhaseBreakdown {
        let n = self.per_rank.len() as u64;
        let mut acc = PhaseBreakdown::default();
        for r in &self.per_rank {
            let pi = r.per_iteration();
            acc.compute += pi.compute;
            acc.comm_wait += pi.comm_wait;
            acc.speculate += pi.speculate;
            acc.check += pi.check;
            acc.correct += pi.correct;
        }
        PhaseBreakdown {
            compute: acc.compute / n,
            comm_wait: acc.comm_wait / n,
            speculate: acc.speculate / n,
            check: acc.check / n,
            correct: acc.correct / n,
        }
    }

    /// Total rollbacks across ranks.
    pub fn total_rollbacks(&self) -> u64 {
        self.per_rank.iter().map(|r| r.rollbacks).sum()
    }

    /// Total messages the fault layer dropped, across ranks.
    pub fn total_messages_lost(&self) -> u64 {
        self.per_rank.iter().map(|r| r.messages_lost).sum()
    }

    /// Total speculate-through-loss commits, across ranks.
    pub fn total_loss_commits(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|r| r.speculate_through_loss_commits)
            .sum()
    }

    /// Total crash/restart cycles, across ranks.
    pub fn total_restarts(&self) -> u64 {
        self.per_rank.iter().map(|r| r.peer_restarts).sum()
    }

    /// Total degraded-mode commits (promotions of quarantined peers'
    /// inputs), across ranks.
    pub fn total_degraded_commits(&self) -> u64 {
        self.per_rank.iter().map(|r| r.degraded_commits).sum()
    }

    /// Total quarantine events, across ranks.
    pub fn total_quarantines(&self) -> u64 {
        self.per_rank.iter().map(|r| r.peers_quarantined).sum()
    }

    /// Total rejoin readmissions, across ranks.
    pub fn total_rejoins(&self) -> u64 {
        self.per_rank.iter().map(|r| r.peer_rejoins).sum()
    }

    /// Total modelled bytes sent, across ranks.
    pub fn total_bytes_sent(&self) -> u64 {
        self.per_rank.iter().map(|r| r.bytes_sent).sum()
    }

    /// Total modelled bytes received, across ranks.
    pub fn total_bytes_received(&self) -> u64 {
        self.per_rank.iter().map(|r| r.bytes_received).sum()
    }

    /// Total bytes the delta exchange suppressed, across ranks.
    pub fn total_delta_suppressed_bytes(&self) -> u64 {
        self.per_rank.iter().map(|r| r.delta_suppressed_bytes).sum()
    }

    /// Total delta frames dropped over gaps or duplicates, across ranks.
    pub fn total_delta_frames_dropped(&self) -> u64 {
        self.per_rank.iter().map(|r| r.delta_frames_dropped).sum()
    }

    /// Total adaptive-controller retune evaluations, across ranks. Zero
    /// when the controller is off.
    pub fn total_controller_retunes(&self) -> u64 {
        self.per_rank.iter().map(|r| r.controller_retunes).sum()
    }

    /// Largest error among accepted speculations, across ranks.
    pub fn max_accepted_error(&self) -> f64 {
        self.per_rank
            .iter()
            .map(|r| r.max_accepted_error)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_of_empty_stats_are_zero() {
        let s = RunStats::new(Rank(0));
        assert_eq!(s.recomputation_fraction(), 0.0);
        assert_eq!(s.partition_miss_rate(), 0.0);
        assert_eq!(s.per_iteration(), PhaseBreakdown::default());
    }

    #[test]
    fn recomputation_fraction_counts_units() {
        let mut s = RunStats::new(Rank(0));
        s.checked_units = 200;
        s.bad_units = 4;
        assert!((s.recomputation_fraction() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn per_iteration_divides_by_iterations() {
        let mut s = RunStats::new(Rank(0));
        s.iterations = 4;
        s.phases.compute = SimDuration::from_millis(40);
        s.phases.comm_wait = SimDuration::from_millis(8);
        let pi = s.per_iteration();
        assert_eq!(pi.compute, SimDuration::from_millis(10));
        assert_eq!(pi.comm_wait, SimDuration::from_millis(2));
    }

    #[test]
    fn makespan_is_max_over_ranks() {
        let mut a = RunStats::new(Rank(0));
        a.total_time = SimDuration::from_millis(5);
        let mut b = RunStats::new(Rank(1));
        b.total_time = SimDuration::from_millis(9);
        let c = ClusterStats::new(vec![a, b]);
        assert_eq!(c.makespan(), SimDuration::from_millis(9));
    }

    #[test]
    fn phase_total_sums_components() {
        let p = PhaseBreakdown {
            compute: SimDuration::from_millis(1),
            comm_wait: SimDuration::from_millis(2),
            speculate: SimDuration::from_millis(3),
            check: SimDuration::from_millis(4),
            correct: SimDuration::from_millis(5),
        };
        assert_eq!(p.total(), SimDuration::from_millis(15));
    }

    #[test]
    fn cluster_recomputation_fraction_pools_units() {
        let mut a = RunStats::new(Rank(0));
        a.checked_units = 100;
        a.bad_units = 10;
        let mut b = RunStats::new(Rank(1));
        b.checked_units = 300;
        b.bad_units = 0;
        let c = ClusterStats::new(vec![a, b]);
        assert!((c.recomputation_fraction() - 0.025).abs() < 1e-12);
    }
}
