//! Per-peer value history — the paper's *backward window* (BW).
//!
//! §3.2: "we define a backward window (BW) as the maximum number of past
//! values of the variables used in the speculation function. The speculated
//! value of a variable is an extrapolation of its present value and previous
//! BW values." A [`History`] holds the most recent `capacity` *actual*
//! (received) values of one peer's partition, newest last.

use std::collections::VecDeque;

/// Ring buffer of the last `capacity` received values from one peer.
#[derive(Clone, Debug)]
pub struct History<S> {
    entries: VecDeque<(u64, S)>,
    capacity: usize,
}

impl<S> History<S> {
    /// An empty history retaining at most `capacity` values.
    ///
    /// # Panics
    /// Panics if `capacity` is zero — a speculation function needs at least
    /// one past value.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "backward window must be at least 1");
        History {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Record the actual value of iteration `iter`. Values that do not
    /// advance the newest recorded iteration are ignored (late, reordered
    /// deliveries add no prediction power once newer data exists).
    pub fn record(&mut self, iter: u64, value: S) {
        if let Some(&(newest, _)) = self.entries.back() {
            if iter <= newest {
                return;
            }
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back((iter, value));
    }

    /// Iteration number of the newest recorded value.
    pub fn latest_iter(&self) -> Option<u64> {
        self.entries.back().map(|(i, _)| *i)
    }

    /// The newest recorded value.
    pub fn latest(&self) -> Option<&S> {
        self.entries.back().map(|(_, v)| v)
    }

    /// The `n`-th most recent value (`0` = newest) with its iteration.
    pub fn nth_back(&self, n: usize) -> Option<(u64, &S)> {
        let len = self.entries.len();
        if n >= len {
            return None;
        }
        self.entries.get(len - 1 - n).map(|(i, v)| (*i, v))
    }

    /// All recorded values, newest first.
    pub fn recent(&self) -> impl Iterator<Item = (u64, &S)> {
        self.entries.iter().rev().map(|(i, v)| (*i, v))
    }

    /// Number of recorded values (≤ capacity).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of retained values (the BW).
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history() {
        let h: History<f64> = History::new(3);
        assert!(h.is_empty());
        assert_eq!(h.latest(), None);
        assert_eq!(h.latest_iter(), None);
        assert_eq!(h.nth_back(0), None);
    }

    #[test]
    fn records_in_order_and_evicts_oldest() {
        let mut h = History::new(2);
        h.record(0, 10.0);
        h.record(1, 11.0);
        h.record(2, 12.0);
        assert_eq!(h.len(), 2);
        assert_eq!(h.latest(), Some(&12.0));
        assert_eq!(h.nth_back(1), Some((1, &11.0)));
        assert_eq!(h.nth_back(2), None);
    }

    #[test]
    fn stale_values_are_ignored() {
        let mut h = History::new(3);
        h.record(5, 50.0);
        h.record(3, 30.0); // late arrival of an older iteration
        h.record(5, 51.0); // duplicate
        assert_eq!(h.len(), 1);
        assert_eq!(h.latest(), Some(&50.0));
    }

    #[test]
    fn recent_iterates_newest_first() {
        let mut h = History::new(3);
        for i in 0..3u64 {
            h.record(i, i as f64);
        }
        let got: Vec<u64> = h.recent().map(|(i, _)| i).collect();
        assert_eq!(got, vec![2, 1, 0]);
    }

    #[test]
    fn gaps_are_allowed() {
        let mut h = History::new(3);
        h.record(0, 0.0);
        h.record(4, 4.0); // iterations 1..3 never arrived (speculated through)
        assert_eq!(h.latest_iter(), Some(4));
        assert_eq!(h.nth_back(1), Some((0, &0.0)));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        History::<f64>::new(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// After any record sequence: len ≤ capacity, iterations strictly
        /// increase front-to-back, and the newest value is the max recorded.
        #[test]
        fn invariants_hold(
            cap in 1usize..8,
            iters in proptest::collection::vec(0u64..50, 0..100),
        ) {
            let mut h = History::new(cap);
            let mut best: Option<u64> = None;
            for (k, i) in iters.iter().enumerate() {
                h.record(*i, k as f64);
                if best.is_none_or(|b| *i > b) {
                    best = Some(*i);
                }
            }
            prop_assert!(h.len() <= cap);
            prop_assert_eq!(h.latest_iter(), best);
            let seq: Vec<u64> = h.recent().map(|(i, _)| i).collect();
            for w in seq.windows(2) {
                prop_assert!(w[0] > w[1], "iterations must strictly decrease newest-first");
            }
        }
    }
}
