//! # workloads — additional synchronous iterative applications
//!
//! The paper's §2 lists the algorithm family its technique targets:
//! "iterative techniques to solve linear and non-linear equations, solution
//! of partial differential equations, numerical integration, particle
//! simulation". Beyond the N-body case study (the `nbody` crate), this
//! crate implements three more members of that family against
//! [`speccore::SpeculativeApp`]:
//!
//! * [`SyntheticApp`] — the §4 abstract workload (`N` variables, explicit
//!   `f_comp`/`f_spec`/`f_check` costs, tunable jump probability that
//!   controls the misspeculation fraction `k`);
//! * [`HeatApp`] / [`Heat2dApp`] — 1-D and 2-D Jacobi heat diffusion with
//!   speculative halo exchange (the PDE case);
//! * [`JacobiApp`] — Jacobi iteration on a dense diagonally dominant
//!   linear system (the dense all-to-all case, O(N_i·N_k) coupling);
//! * [`PageRankApp`] — power iteration over a seeded random graph.
//!
//! All three have exact incremental corrections (their updates are linear
//! in the remote values) and sequential references for validation.

#![warn(missing_docs)]

mod heat;
mod heat2d;
mod jacobi;
mod pagerank;
mod synthetic;

pub use heat::{heat_reference, Halo, HeatApp, HeatConfig};
pub use heat2d::{heat2d_reference, Heat2dApp, Heat2dConfig, RowHalo};
pub use jacobi::{jacobi_reference, JacobiApp, JacobiConfig, LinearSystem};
pub use pagerank::{pagerank_reference, Graph, PageRankApp, PageRankConfig};
pub use synthetic::{synthetic_reference, SyntheticApp, SyntheticConfig};
