//! The paper's §4 abstract workload, made executable.
//!
//! `N` scalar variables are partitioned over `p` ranks. Every iteration,
//! each variable relaxes toward the global mean and occasionally *jumps*
//! (with a seeded, per-(variable, iteration) deterministic probability) —
//! jumps are what break speculation, so the jump probability directly
//! controls the misspeculation fraction `k` that the performance model
//! takes as input. Per-variable operation costs are explicit parameters,
//! mirroring Table 1's `f_comp`, `f_spec`, `f_check`.

use std::ops::Range;

use desim::rng::derive_seed;
use mpk::Rank;
use speccore::{speculator, CheckOutcome, History, SpeculativeApp};

/// Cost and dynamics parameters of the synthetic workload.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticConfig {
    /// Operations charged per owned variable per iteration (`f_comp`).
    pub f_comp: u64,
    /// Operations charged per speculated variable (`f_spec`).
    pub f_spec: u64,
    /// Operations charged per checked variable (`f_check`).
    pub f_check: u64,
    /// Relative error threshold θ for accepting a speculated variable.
    pub theta: f64,
    /// Relaxation rate toward the global mean per iteration.
    pub alpha: f64,
    /// Probability that a variable jumps in a given iteration.
    pub jump_prob: f64,
    /// Jump magnitude (relative to the variable's value).
    pub jump_size: f64,
    /// Master seed for the jump process.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            f_comp: 70_000,
            f_spec: 140,
            f_check: 280,
            theta: 0.01,
            alpha: 0.1,
            jump_prob: 0.0,
            jump_size: 0.5,
            seed: 0,
        }
    }
}

/// Deterministic per-(variable, iteration) jump: returns the multiplicative
/// disturbance (0 when no jump fires). Pure function of the seed so
/// re-execution after a rollback reproduces it exactly.
fn jump(cfg: &SyntheticConfig, var: usize, iter: u64) -> f64 {
    if cfg.jump_prob <= 0.0 {
        return 0.0;
    }
    let h = derive_seed(cfg.seed, (var as u64) << 32 | iter);
    // Map the top 53 bits to [0, 1).
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    if u < cfg.jump_prob {
        // Deterministic sign from another bit.
        let sign = if h & 1 == 0 { 1.0 } else { -1.0 };
        sign * cfg.jump_size
    } else {
        0.0
    }
}

/// One rank's slice of the synthetic variable set.
pub struct SyntheticApp {
    cfg: SyntheticConfig,
    n_total: usize,
    range: Range<usize>,
    x: Vec<f64>,
    iter: u64,
    /// Partial global sum accumulated during the current iteration.
    sum: f64,
}

impl SyntheticApp {
    /// Build rank `me`'s partition given the global layout. Initial value
    /// of variable `i` is `1 + i/N`, a smooth deterministic ramp.
    pub fn new(n_total: usize, ranges: &[Range<usize>], me: usize, cfg: SyntheticConfig) -> Self {
        let range = ranges[me].clone();
        let x = range
            .clone()
            .map(|i| 1.0 + i as f64 / n_total as f64)
            .collect();
        SyntheticApp {
            cfg,
            n_total,
            range,
            x,
            iter: 0,
            sum: 0.0,
        }
    }

    /// Current values of this rank's variables.
    pub fn values(&self) -> &[f64] {
        &self.x
    }

    /// Bit-exact fingerprint of this rank's variables.
    pub fn fingerprint(&self) -> u64 {
        obs::fingerprint_f64s(&self.x)
    }

    /// Number of owned variables.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True if this rank owns nothing.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

impl SpeculativeApp for SyntheticApp {
    type Shared = Vec<f64>;
    type Checkpoint = (Vec<f64>, u64);

    fn shared(&self) -> Vec<f64> {
        self.x.clone()
    }

    fn begin_iteration(&mut self) -> u64 {
        self.sum = self.x.iter().sum();
        self.x.len() as u64
    }

    fn absorb(&mut self, _from: Rank, xs: &Vec<f64>) -> u64 {
        self.sum += xs.iter().sum::<f64>();
        xs.len() as u64
    }

    fn finish_iteration(&mut self) -> u64 {
        let mean = self.sum / self.n_total as f64;
        let alpha = self.cfg.alpha;
        for (offset, v) in self.x.iter_mut().enumerate() {
            let var = self.range.start + offset;
            let j = jump(&self.cfg, var, self.iter);
            *v = *v + alpha * (mean - *v) + j * *v;
        }
        self.iter += 1;
        self.cfg.f_comp * self.x.len() as u64
    }

    fn speculate(
        &self,
        _from: Rank,
        hist: &History<Vec<f64>>,
        ahead: u32,
    ) -> Option<(Vec<f64>, u64)> {
        let values = speculator::elementwise(hist, |h| speculator::extrapolate_linear(h, ahead))?;
        let cost = self.cfg.f_spec * values.len() as u64;
        Some((values, cost))
    }

    fn check(&self, _from: Rank, actual: &Vec<f64>, speculated: &Vec<f64>) -> CheckOutcome {
        let mut max_error: f64 = 0.0;
        let mut max_accepted: f64 = 0.0;
        let mut bad = 0u64;
        for (a, s) in actual.iter().zip(speculated) {
            let err = (a - s).abs() / a.abs().max(1e-12);
            max_error = max_error.max(err);
            if err > self.cfg.theta {
                bad += 1;
            } else {
                max_accepted = max_accepted.max(err);
            }
        }
        CheckOutcome {
            accept: bad == 0,
            max_error,
            max_accepted_error: max_accepted,
            checked_units: actual.len() as u64,
            bad_units: bad,
            ops: self.cfg.f_check * actual.len() as u64,
        }
    }

    fn set_speculation_threshold(&mut self, theta: f64) {
        self.cfg.theta = theta;
    }

    fn correct(&mut self, _from: Rank, speculated: &Vec<f64>, actual: &Vec<f64>) -> u64 {
        // The iteration consumed only Σ of the peer's values; the update is
        // linear in the mean, so the finished state can be repaired exactly
        // (each owned variable moved by α·Δmean).
        let delta_sum: f64 = actual.iter().zip(speculated).map(|(a, s)| a - s).sum();
        let delta_mean = delta_sum / self.n_total as f64;
        for v in self.x.iter_mut() {
            *v += self.cfg.alpha * delta_mean;
        }
        self.cfg.f_comp / 10 * self.x.len() as u64
    }

    fn delta_extract(&self, shared: &Vec<f64>, out: &mut Vec<f64>) -> bool {
        out.clear();
        out.extend_from_slice(shared);
        true
    }

    fn delta_patch(&self, base: &Vec<f64>, entries: &[(u32, f64)]) -> Option<Vec<f64>> {
        let mut next = base.clone();
        for &(lane, value) in entries {
            next[lane as usize] = value;
        }
        Some(next)
    }

    fn checkpoint(&self) -> (Vec<f64>, u64) {
        (self.x.clone(), self.iter)
    }

    fn restore(&mut self, c: &(Vec<f64>, u64)) {
        self.x.clone_from(&c.0);
        self.iter = c.1;
    }
}

/// Sequential reference: evolve all `n` variables for `iters` iterations
/// (matching the parallel semantics exactly when θ = 0 with recompute).
pub fn synthetic_reference(
    n: usize,
    ranges: &[Range<usize>],
    cfg: SyntheticConfig,
    iters: u64,
) -> Vec<f64> {
    let mut x: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 / n as f64).collect();
    for t in 0..iters {
        // Per-partition sums in the driver's accumulation order (own
        // partition first, then peers ascending) — addition order matters
        // for bitwise comparisons.
        let sums: Vec<f64> = ranges.iter().map(|r| x[r.clone()].iter().sum()).collect();
        let mut next = x.clone();
        for (j, r) in ranges.iter().enumerate() {
            let mut total = sums[j];
            for (k, s) in sums.iter().enumerate() {
                if k != j {
                    total += s;
                }
            }
            let mean = total / n as f64;
            for i in r.clone() {
                let jv = jump(&cfg, i, t);
                next[i] = x[i] + cfg.alpha * (mean - x[i]) + jv * x[i];
            }
        }
        x = next;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn even_ranges(n: usize, p: usize) -> Vec<Range<usize>> {
        (0..p).map(|i| i * n / p..(i + 1) * n / p).collect()
    }

    #[test]
    fn jump_is_deterministic() {
        let cfg = SyntheticConfig {
            jump_prob: 0.3,
            ..Default::default()
        };
        for var in 0..50 {
            for iter in 0..10 {
                assert_eq!(jump(&cfg, var, iter), jump(&cfg, var, iter));
            }
        }
    }

    #[test]
    fn jump_rate_tracks_probability() {
        let cfg = SyntheticConfig {
            jump_prob: 0.2,
            ..Default::default()
        };
        let fired = (0..10_000).filter(|&v| jump(&cfg, v, 0) != 0.0).count();
        let rate = fired as f64 / 10_000.0;
        assert!(
            (rate - 0.2).abs() < 0.02,
            "jump rate {rate} too far from 0.2"
        );
    }

    #[test]
    fn zero_prob_never_jumps() {
        let cfg = SyntheticConfig::default();
        assert!((0..1000).all(|v| jump(&cfg, v, 3) == 0.0));
    }

    #[test]
    fn variables_relax_toward_common_mean() {
        let n = 40;
        let ranges = even_ranges(n, 4);
        let cfg = SyntheticConfig::default();
        let x = synthetic_reference(n, &ranges, cfg, 200);
        let mean = x.iter().sum::<f64>() / n as f64;
        for v in &x {
            assert!(
                (v - mean).abs() < 1e-3,
                "variables should converge, got {v} vs {mean}"
            );
        }
    }

    #[test]
    fn app_single_iteration_matches_reference() {
        let n = 20;
        let ranges = even_ranges(n, 2);
        let cfg = SyntheticConfig::default();
        let mut a0 = SyntheticApp::new(n, &ranges, 0, cfg);
        let a1 = SyntheticApp::new(n, &ranges, 1, cfg);
        let other = a1.shared();
        a0.begin_iteration();
        a0.absorb(Rank(1), &other);
        a0.finish_iteration();
        let reference = synthetic_reference(n, &ranges, cfg, 1);
        for (got, want) in a0.values().iter().zip(&reference[..10]) {
            assert_eq!(got, want, "single-step semantics must match the reference");
        }
    }

    #[test]
    fn correction_is_exact_for_the_mean_coupling() {
        let n = 20;
        let ranges = even_ranges(n, 2);
        let cfg = SyntheticConfig::default();
        let actual: Vec<f64> = (10..20).map(|i| 1.0 + i as f64 / 20.0).collect();
        let spec: Vec<f64> = actual.iter().map(|v| v + 0.1).collect();

        let mut golden = SyntheticApp::new(n, &ranges, 0, cfg);
        golden.begin_iteration();
        golden.absorb(Rank(1), &actual);
        golden.finish_iteration();

        let mut fixed = SyntheticApp::new(n, &ranges, 0, cfg);
        fixed.begin_iteration();
        fixed.absorb(Rank(1), &spec);
        fixed.finish_iteration();
        fixed.correct(Rank(1), &spec, &actual);

        for (a, b) in golden.values().iter().zip(fixed.values()) {
            assert!((a - b).abs() < 1e-12, "correction residue: {a} vs {b}");
        }
    }

    #[test]
    fn checkpoint_roundtrip() {
        let n = 10;
        let ranges = even_ranges(n, 2);
        let mut app = SyntheticApp::new(n, &ranges, 0, SyntheticConfig::default());
        let c = app.checkpoint();
        app.begin_iteration();
        app.absorb(Rank(1), &vec![2.0; 5]);
        app.finish_iteration();
        assert_ne!(app.values(), &c.0[..]);
        app.restore(&c);
        assert_eq!(app.values(), &c.0[..]);
    }

    #[test]
    fn check_flags_only_bad_variables() {
        let n = 10;
        let ranges = even_ranges(n, 2);
        let app = SyntheticApp::new(n, &ranges, 0, SyntheticConfig::default());
        let actual = vec![1.0, 2.0, 3.0];
        let spec = vec![1.0, 2.5, 3.0]; // one 25% error
        let out = app.check(Rank(1), &actual, &spec);
        assert!(!out.accept);
        assert_eq!(out.bad_units, 1);
        assert_eq!(out.checked_units, 3);
        assert!((out.max_error - 0.25).abs() < 1e-12);
    }
}
