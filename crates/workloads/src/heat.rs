//! 1-D Jacobi heat diffusion — the PDE-style synchronous iterative
//! algorithm the paper's §2 cites ("solution of partial differential
//! equations") — with speculative halo exchange.
//!
//! The rod is split into contiguous strips, one per rank. Each iteration a
//! rank needs only its neighbours' boundary cells, so the broadcast payload
//! is two scalars; non-neighbour messages are absorbed as no-ops. The
//! update is linear in the halo values, so misspeculated boundaries can be
//! corrected in place exactly.

use std::ops::Range;

use mpk::{Rank, WireSize};
use speccore::{speculator, CheckOutcome, History, SpeculativeApp};

/// The two boundary cells a rank exposes to its neighbours.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Halo {
    /// Value of the strip's leftmost cell.
    pub left: f64,
    /// Value of the strip's rightmost cell.
    pub right: f64,
}

impl WireSize for Halo {
    fn wire_size(&self) -> usize {
        16
    }
}

/// Parameters of the diffusion problem.
#[derive(Clone, Copy, Debug)]
pub struct HeatConfig {
    /// Diffusion coefficient β per step (stability needs β ≤ 0.5).
    pub beta: f64,
    /// Relative error threshold θ for speculated halo values.
    pub theta: f64,
    /// Operations charged per owned cell per iteration.
    pub ops_per_cell: u64,
    /// Fixed boundary temperatures at the rod's two ends (Dirichlet).
    pub ends: (f64, f64),
}

impl Default for HeatConfig {
    fn default() -> Self {
        HeatConfig {
            beta: 0.25,
            theta: 0.01,
            ops_per_cell: 10,
            ends: (1.0, 0.0),
        }
    }
}

/// One rank's strip of the rod.
pub struct HeatApp {
    cfg: HeatConfig,
    me: usize,
    p: usize,
    u: Vec<f64>,
    /// Halo values used by the iteration in progress.
    left_in: f64,
    right_in: f64,
    /// Previous values of my boundary-adjacent cells, for exact correction.
    edge_before: (f64, f64),
}

impl HeatApp {
    /// Build rank `me`'s strip. The initial temperature profile is a spike
    /// in the middle of the rod.
    pub fn new(n_total: usize, ranges: &[Range<usize>], me: usize, cfg: HeatConfig) -> Self {
        let range = ranges[me].clone();
        assert!(!range.is_empty(), "heat strips must be non-empty");
        let u = range
            .clone()
            .map(|i| if i == n_total / 2 { 1.0 } else { 0.0 })
            .collect();
        HeatApp {
            cfg,
            me,
            p: ranges.len(),
            u,
            left_in: 0.0,
            right_in: 0.0,
            edge_before: (0.0, 0.0),
        }
    }

    /// The strip's current temperatures.
    pub fn cells(&self) -> &[f64] {
        &self.u
    }

    /// Bit-exact fingerprint of the strip's temperatures.
    pub fn fingerprint(&self) -> u64 {
        obs::fingerprint_f64s(&self.u)
    }

    fn is_left_neighbor(&self, k: usize) -> bool {
        self.me > 0 && k == self.me - 1
    }

    fn is_right_neighbor(&self, k: usize) -> bool {
        k == self.me + 1 && k < self.p
    }
}

impl SpeculativeApp for HeatApp {
    type Shared = Halo;
    type Checkpoint = Vec<f64>;

    fn shared(&self) -> Halo {
        Halo {
            left: self.u[0],
            right: *self.u.last().expect("non-empty strip"),
        }
    }

    fn begin_iteration(&mut self) -> u64 {
        // Dirichlet ends for the outermost strips; interior defaults are
        // overwritten by absorb().
        self.left_in = if self.me == 0 { self.cfg.ends.0 } else { 0.0 };
        self.right_in = if self.me == self.p - 1 {
            self.cfg.ends.1
        } else {
            0.0
        };
        1
    }

    fn absorb(&mut self, from: Rank, halo: &Halo) -> u64 {
        if self.is_left_neighbor(from.0) {
            self.left_in = halo.right;
            1
        } else if self.is_right_neighbor(from.0) {
            self.right_in = halo.left;
            1
        } else {
            0 // non-neighbour partitions do not couple in one step
        }
    }

    #[allow(clippy::needless_range_loop)] // stencil needs i-1/i/i+1 with halos
    fn finish_iteration(&mut self) -> u64 {
        let n = self.u.len();
        let beta = self.cfg.beta;
        self.edge_before = (self.u[0], self.u[n - 1]);
        let mut next = vec![0.0; n];
        for i in 0..n {
            let left = if i == 0 { self.left_in } else { self.u[i - 1] };
            let right = if i == n - 1 {
                self.right_in
            } else {
                self.u[i + 1]
            };
            next[i] = self.u[i] + beta * (left - 2.0 * self.u[i] + right);
        }
        self.u = next;
        self.cfg.ops_per_cell * n as u64
    }

    fn speculate(&self, _from: Rank, hist: &History<Halo>, ahead: u32) -> Option<(Halo, u64)> {
        // Extrapolate each boundary linearly from its history.
        let mut lh = History::new(hist.capacity());
        let mut rh = History::new(hist.capacity());
        let mut entries: Vec<(u64, Halo)> = hist.recent().map(|(i, h)| (i, *h)).collect();
        entries.reverse();
        for (i, h) in entries {
            lh.record(i, h.left);
            rh.record(i, h.right);
        }
        let left = speculator::extrapolate_linear(&lh, ahead)?;
        let right = speculator::extrapolate_linear(&rh, ahead)?;
        Some((Halo { left, right }, 4))
    }

    fn check(&self, from: Rank, actual: &Halo, speculated: &Halo) -> CheckOutcome {
        // Only the side we consumed matters. Temperatures can be near
        // zero, so use an absolute-plus-relative error.
        let err_of = |a: f64, s: f64| (a - s).abs() / a.abs().max(0.1);
        let err = if self.is_left_neighbor(from.0) {
            err_of(actual.right, speculated.right)
        } else if self.is_right_neighbor(from.0) {
            err_of(actual.left, speculated.left)
        } else {
            0.0
        };
        let accept = err <= self.cfg.theta;
        CheckOutcome {
            accept,
            max_error: err,
            max_accepted_error: if accept { err } else { 0.0 },
            checked_units: 1,
            bad_units: u64::from(!accept),
            ops: 4,
        }
    }

    fn correct(&mut self, from: Rank, speculated: &Halo, actual: &Halo) -> u64 {
        // Each halo value enters exactly one cell's update, linearly:
        // u_edge gains β·(actual − speculated).
        let beta = self.cfg.beta;
        if self.is_left_neighbor(from.0) {
            self.u[0] += beta * (actual.right - speculated.right);
        } else if self.is_right_neighbor(from.0) {
            let n = self.u.len();
            self.u[n - 1] += beta * (actual.left - speculated.left);
        }
        2
    }

    fn checkpoint(&self) -> Vec<f64> {
        self.u.clone()
    }

    fn restore(&mut self, c: &Vec<f64>) {
        self.u.clone_from(c);
    }
}

/// Sequential reference for the whole rod.
pub fn heat_reference(n: usize, cfg: HeatConfig, iters: u64) -> Vec<f64> {
    let mut u: Vec<f64> = (0..n).map(|i| if i == n / 2 { 1.0 } else { 0.0 }).collect();
    for _ in 0..iters {
        let mut next = vec![0.0; n];
        for i in 0..n {
            let left = if i == 0 { cfg.ends.0 } else { u[i - 1] };
            let right = if i == n - 1 { cfg.ends.1 } else { u[i + 1] };
            next[i] = u[i] + cfg.beta * (left - 2.0 * u[i] + right);
        }
        u = next;
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;

    fn even_ranges(n: usize, p: usize) -> Vec<Range<usize>> {
        (0..p).map(|i| i * n / p..(i + 1) * n / p).collect()
    }

    /// Drive the apps by hand, exchanging halos synchronously.
    fn run_parallel_by_hand(n: usize, p: usize, iters: u64) -> Vec<f64> {
        let ranges = even_ranges(n, p);
        let cfg = HeatConfig::default();
        let mut apps: Vec<HeatApp> = (0..p).map(|me| HeatApp::new(n, &ranges, me, cfg)).collect();
        for _ in 0..iters {
            let halos: Vec<Halo> = apps.iter().map(|a| a.shared()).collect();
            for (me, app) in apps.iter_mut().enumerate() {
                app.begin_iteration();
                for (k, halo) in halos.iter().enumerate() {
                    if k != me {
                        app.absorb(Rank(k), halo);
                    }
                }
                app.finish_iteration();
            }
        }
        apps.iter()
            .flat_map(|a| a.cells().iter().copied())
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let n = 60;
        let got = run_parallel_by_hand(n, 4, 50);
        let want = heat_reference(n, HeatConfig::default(), 50);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g, w, "hand-driven parallel heat diverged");
        }
    }

    #[test]
    fn heat_diffuses_and_stays_bounded() {
        let u = heat_reference(100, HeatConfig::default(), 2000);
        // Profile must interpolate between the Dirichlet ends (1.0 → 0.0)
        // and stay within them.
        for v in &u {
            assert!(
                (-1e-9..=1.0 + 1e-9).contains(v),
                "temperature {v} out of bounds"
            );
        }
        assert!(
            u[0] > u[99],
            "heat must flow from the hot end to the cold end"
        );
    }

    #[test]
    fn correction_is_exact() {
        let n = 30;
        let ranges = even_ranges(n, 3);
        let cfg = HeatConfig::default();
        let actual = Halo {
            left: 0.4,
            right: 0.7,
        };
        let spec = Halo {
            left: 0.1,
            right: 0.2,
        };

        let mut golden = HeatApp::new(n, &ranges, 1, cfg);
        golden.begin_iteration();
        golden.absorb(Rank(0), &actual);
        golden.absorb(
            Rank(2),
            &Halo {
                left: 0.0,
                right: 0.0,
            },
        );
        golden.finish_iteration();

        let mut fixed = HeatApp::new(n, &ranges, 1, cfg);
        fixed.begin_iteration();
        fixed.absorb(Rank(0), &spec);
        fixed.absorb(
            Rank(2),
            &Halo {
                left: 0.0,
                right: 0.0,
            },
        );
        fixed.finish_iteration();
        fixed.correct(Rank(0), &spec, &actual);

        for (a, b) in golden.cells().iter().zip(fixed.cells()) {
            assert!((a - b).abs() < 1e-15, "correction residue {a} vs {b}");
        }
    }

    #[test]
    fn non_neighbors_do_not_couple() {
        let n = 30;
        let ranges = even_ranges(n, 3);
        let mut app = HeatApp::new(n, &ranges, 0, HeatConfig::default());
        app.begin_iteration();
        // Rank 2 is not adjacent to rank 0.
        let cost = app.absorb(
            Rank(2),
            &Halo {
                left: 99.0,
                right: 99.0,
            },
        );
        assert_eq!(cost, 0);
        let before = app.cells().to_vec();
        app.absorb(
            Rank(1),
            &Halo {
                left: 0.0,
                right: 0.0,
            },
        );
        app.finish_iteration();
        let _ = before;
        let out = app.check(
            Rank(2),
            &Halo {
                left: 0.0,
                right: 0.0,
            },
            &Halo {
                left: 5.0,
                right: 5.0,
            },
        );
        assert!(out.accept, "unused halos are always acceptable");
    }

    #[test]
    fn speculation_extrapolates_halo_trends() {
        let ranges = even_ranges(30, 3);
        let app = HeatApp::new(30, &ranges, 1, HeatConfig::default());
        let mut h = History::new(3);
        h.record(
            0,
            Halo {
                left: 0.0,
                right: 1.0,
            },
        );
        h.record(
            1,
            Halo {
                left: 0.1,
                right: 0.9,
            },
        );
        let (spec, _) = app.speculate(Rank(0), &h, 1).unwrap();
        assert!((spec.left - 0.2).abs() < 1e-12);
        assert!((spec.right - 0.8).abs() < 1e-12);
    }

    #[test]
    fn dirichlet_ends_hold() {
        // With a long run the ends approach the boundary conditions.
        let cfg = HeatConfig::default();
        let u = heat_reference(50, cfg, 20_000);
        assert!((u[0] - cfg.ends.0).abs() < 0.1);
        assert!((u[49] - cfg.ends.1).abs() < 0.1);
    }
}
