//! Jacobi iteration for dense linear systems `A·x = b` — the first family
//! member §2 lists ("iterative techniques to solve linear and non-linear
//! equations"), and the one whose absorb cost is O(N_i·N_k) like the
//! N-body kernel (dense coupling), unlike the sparse heat and PageRank
//! workloads.
//!
//! Each rank owns a row block of `A` and the matching slice of `x`; every
//! iteration it needs the whole of `x(t)`, making this a textbook
//! all-to-all synchronous iterative algorithm. The update is linear in the
//! remote values, so corrections are exact.

use std::ops::Range;

use desim::rng::derive_seed;
use mpk::Rank;
use speccore::{speculator, CheckOutcome, History, SpeculativeApp};

/// A dense, diagonally dominant system `A·x = b` (dominance guarantees
/// Jacobi convergence), generated deterministically from a seed.
#[derive(Clone, Debug)]
pub struct LinearSystem {
    /// Dimension.
    pub n: usize,
    /// Row-major dense matrix.
    pub a: Vec<f64>,
    /// Right-hand side.
    pub b: Vec<f64>,
}

impl LinearSystem {
    /// Generate an `n×n` system with off-diagonal entries in `[-1, 1]`
    /// and diagonals sized for strict dominance (row sum × 1.5).
    pub fn random(n: usize, seed: u64) -> Self {
        assert!(n >= 1);
        let mut a = vec![0.0; n * n];
        let mut b = vec![0.0; n];
        let unit = |h: u64| (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
        for i in 0..n {
            let mut off_sum = 0.0;
            for j in 0..n {
                if i != j {
                    let v = unit(derive_seed(seed, (i as u64) << 24 | j as u64));
                    a[i * n + j] = v;
                    off_sum += v.abs();
                }
            }
            a[i * n + i] = 1.5 * off_sum.max(1.0);
            b[i] = unit(derive_seed(seed ^ 0xB, i as u64)) * 10.0;
        }
        LinearSystem { n, a, b }
    }

    /// Residual norm `‖A·x − b‖₂`.
    pub fn residual(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n);
        (0..self.n)
            .map(|i| {
                let row = &self.a[i * self.n..(i + 1) * self.n];
                let ax: f64 = row.iter().zip(x).map(|(aij, xj)| aij * xj).sum();
                (ax - self.b[i]).powi(2)
            })
            .sum::<f64>()
            .sqrt()
    }
}

/// Parameters of the Jacobi workload.
#[derive(Clone, Copy, Debug)]
pub struct JacobiConfig {
    /// Relative error threshold θ for speculated `x` entries.
    pub theta: f64,
    /// Operations charged per matrix entry touched.
    pub ops_per_entry: u64,
}

impl Default for JacobiConfig {
    fn default() -> Self {
        JacobiConfig {
            theta: 0.01,
            ops_per_entry: 4,
        }
    }
}

/// One rank's row block of the Jacobi iteration.
pub struct JacobiApp {
    cfg: JacobiConfig,
    sys: LinearSystem,
    ranges: Vec<Range<usize>>,
    me: usize,
    /// My slice of the iterate `x`.
    x: Vec<f64>,
    /// Off-diagonal accumulator `Σ_{j∉mine or j≠i} a_ij·x_j` per owned row.
    acc: Vec<f64>,
}

impl JacobiApp {
    /// Build rank `me`'s row block; `x` starts at zero.
    pub fn new(sys: LinearSystem, ranges: &[Range<usize>], me: usize, cfg: JacobiConfig) -> Self {
        let mine = ranges[me].clone();
        JacobiApp {
            cfg,
            sys,
            ranges: ranges.to_vec(),
            me,
            x: vec![0.0; mine.len()],
            acc: vec![0.0; mine.len()],
        }
    }

    /// My slice of the current iterate.
    pub fn values(&self) -> &[f64] {
        &self.x
    }

    /// Bit-exact fingerprint of my slice of the iterate.
    pub fn fingerprint(&self) -> u64 {
        obs::fingerprint_f64s(&self.x)
    }
}

/// Accumulate `a_ij·x_j` for `j` in the `cols` column block into every
/// `mine` row's accumulator. A free function over disjoint borrows so
/// `begin_iteration` can feed the app's own `x` without cloning it.
/// Returns entries touched.
fn accumulate_block(
    sys: &LinearSystem,
    mine: Range<usize>,
    cols: Range<usize>,
    xs: &[f64],
    acc: &mut [f64],
) -> u64 {
    debug_assert_eq!(xs.len(), cols.len());
    let n = sys.n;
    let mut touched = 0u64;
    for (local_i, i) in mine.enumerate() {
        let row = &sys.a[i * n..(i + 1) * n];
        let mut s = 0.0;
        for (offset, j) in cols.clone().enumerate() {
            if j != i {
                s += row[j] * xs[offset];
                touched += 1;
            }
        }
        acc[local_i] += s;
    }
    touched
}

impl SpeculativeApp for JacobiApp {
    type Shared = Vec<f64>;
    type Checkpoint = Vec<f64>;

    fn shared(&self) -> Vec<f64> {
        self.x.clone()
    }

    fn begin_iteration(&mut self) -> u64 {
        self.acc.fill(0.0);
        let mine = self.ranges[self.me].clone();
        let touched = accumulate_block(&self.sys, mine.clone(), mine, &self.x, &mut self.acc);
        self.cfg.ops_per_entry * touched
    }

    fn absorb(&mut self, from: Rank, xs: &Vec<f64>) -> u64 {
        let mine = self.ranges[self.me].clone();
        let cols = self.ranges[from.0].clone();
        let touched = accumulate_block(&self.sys, mine, cols, xs, &mut self.acc);
        self.cfg.ops_per_entry * touched
    }

    fn finish_iteration(&mut self) -> u64 {
        let mine = self.ranges[self.me].clone();
        let n = self.sys.n;
        for (local_i, i) in mine.enumerate() {
            let diag = self.sys.a[i * n + i];
            self.x[local_i] = (self.sys.b[i] - self.acc[local_i]) / diag;
        }
        3 * self.x.len() as u64
    }

    fn speculate(
        &self,
        _from: Rank,
        hist: &History<Vec<f64>>,
        ahead: u32,
    ) -> Option<(Vec<f64>, u64)> {
        let values = speculator::elementwise(hist, |h| speculator::extrapolate_linear(h, ahead))?;
        let cost = 4 * values.len() as u64;
        Some((values, cost))
    }

    fn check(&self, _from: Rank, actual: &Vec<f64>, speculated: &Vec<f64>) -> CheckOutcome {
        let mut max_error: f64 = 0.0;
        let mut max_accepted: f64 = 0.0;
        let mut bad = 0u64;
        for (a, s) in actual.iter().zip(speculated) {
            let err = (a - s).abs() / a.abs().max(1e-6);
            max_error = max_error.max(err);
            if err > self.cfg.theta {
                bad += 1;
            } else {
                max_accepted = max_accepted.max(err);
            }
        }
        CheckOutcome {
            accept: bad == 0,
            max_error,
            max_accepted_error: max_accepted,
            checked_units: actual.len() as u64,
            bad_units: bad,
            ops: 4 * actual.len() as u64,
        }
    }

    fn correct(&mut self, from: Rank, speculated: &Vec<f64>, actual: &Vec<f64>) -> u64 {
        // x_i = (b_i − Σ a_ij x_j)/a_ii is linear in every x_j: repair by
        // re-applying the column deltas through the diagonal.
        let mine = self.ranges[self.me].clone();
        let cols = self.ranges[from.0].clone();
        let n = self.sys.n;
        let mut touched = 0u64;
        for (local_i, i) in mine.enumerate() {
            let row = &self.sys.a[i * n..(i + 1) * n];
            let diag = self.sys.a[i * n + i];
            let mut delta = 0.0;
            for (offset, j) in cols.clone().enumerate() {
                if j != i {
                    delta += row[j] * (actual[offset] - speculated[offset]);
                    touched += 1;
                }
            }
            self.x[local_i] -= delta / diag;
        }
        self.cfg.ops_per_entry * touched
    }

    fn delta_extract(&self, shared: &Vec<f64>, out: &mut Vec<f64>) -> bool {
        out.clear();
        out.extend_from_slice(shared);
        true
    }

    fn delta_patch(&self, base: &Vec<f64>, entries: &[(u32, f64)]) -> Option<Vec<f64>> {
        let mut next = base.clone();
        for &(lane, value) in entries {
            next[lane as usize] = value;
        }
        Some(next)
    }

    fn checkpoint(&self) -> Vec<f64> {
        self.x.clone()
    }

    fn checkpoint_into(&self, slot: &mut Option<Vec<f64>>) {
        match slot {
            Some(c) => c.clone_from(&self.x),
            None => *slot = Some(self.checkpoint()),
        }
    }

    fn restore(&mut self, c: &Vec<f64>) {
        self.x.clone_from(c);
    }
}

/// Sequential Jacobi reference.
pub fn jacobi_reference(sys: &LinearSystem, iters: u64) -> Vec<f64> {
    let n = sys.n;
    let mut x = vec![0.0; n];
    for _ in 0..iters {
        let mut next = vec![0.0; n];
        for i in 0..n {
            let row = &sys.a[i * n..(i + 1) * n];
            let mut s = 0.0;
            for (j, xj) in x.iter().enumerate() {
                if j != i {
                    s += row[j] * xj;
                }
            }
            next[i] = (sys.b[i] - s) / row[i];
        }
        x = next;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn even_ranges(n: usize, p: usize) -> Vec<Range<usize>> {
        (0..p).map(|i| i * n / p..(i + 1) * n / p).collect()
    }

    fn run_by_hand(sys: &LinearSystem, p: usize, iters: u64) -> Vec<f64> {
        let ranges = even_ranges(sys.n, p);
        let cfg = JacobiConfig::default();
        let mut apps: Vec<JacobiApp> = (0..p)
            .map(|me| JacobiApp::new(sys.clone(), &ranges, me, cfg))
            .collect();
        for _ in 0..iters {
            let shared: Vec<Vec<f64>> = apps.iter().map(|a| a.shared()).collect();
            for (me, app) in apps.iter_mut().enumerate() {
                app.begin_iteration();
                for (k, xs) in shared.iter().enumerate() {
                    if k != me {
                        app.absorb(Rank(k), xs);
                    }
                }
                app.finish_iteration();
            }
        }
        apps.iter()
            .flat_map(|a| a.values().iter().copied())
            .collect()
    }

    #[test]
    fn system_is_diagonally_dominant() {
        let sys = LinearSystem::random(30, 5);
        for i in 0..sys.n {
            let row = &sys.a[i * sys.n..(i + 1) * sys.n];
            let off: f64 = row
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(row[i] > off, "row {i} not dominant");
        }
    }

    #[test]
    fn jacobi_converges_to_the_solution() {
        let sys = LinearSystem::random(25, 7);
        let x = jacobi_reference(&sys, 200);
        assert!(sys.residual(&x) < 1e-8, "residual {}", sys.residual(&x));
    }

    #[test]
    fn parallel_matches_sequential_closely() {
        let sys = LinearSystem::random(24, 3);
        let got = run_by_hand(&sys, 4, 30);
        let want = jacobi_reference(&sys, 30);
        for (a, b) in got.iter().zip(&want) {
            assert!(
                (a - b).abs() < 1e-12,
                "parallel jacobi diverged: {a} vs {b}"
            );
        }
    }

    #[test]
    fn correction_is_exact() {
        let sys = LinearSystem::random(20, 9);
        let ranges = even_ranges(20, 2);
        let cfg = JacobiConfig::default();
        let actual = vec![0.5; 10];
        let spec: Vec<f64> = actual.iter().map(|v| v + 0.07).collect();

        let mut golden = JacobiApp::new(sys.clone(), &ranges, 0, cfg);
        golden.begin_iteration();
        golden.absorb(Rank(1), &actual);
        golden.finish_iteration();

        let mut fixed = JacobiApp::new(sys, &ranges, 0, cfg);
        fixed.begin_iteration();
        fixed.absorb(Rank(1), &spec);
        fixed.finish_iteration();
        fixed.correct(Rank(1), &spec, &actual);

        for (a, b) in golden.values().iter().zip(fixed.values()) {
            assert!((a - b).abs() < 1e-12, "correction residue {a} vs {b}");
        }
    }

    #[test]
    fn residual_detects_wrong_solutions() {
        let sys = LinearSystem::random(10, 1);
        let solved = jacobi_reference(&sys, 300);
        let mut wrong = solved.clone();
        wrong[0] += 1.0;
        assert!(sys.residual(&solved) < 1e-9);
        assert!(sys.residual(&wrong) > 0.1);
    }

    #[test]
    fn generation_is_seeded() {
        let a = LinearSystem::random(12, 3);
        let b = LinearSystem::random(12, 3);
        let c = LinearSystem::random(12, 4);
        assert_eq!(a.a, b.a);
        assert_ne!(a.a, c.a);
    }
}
