//! PageRank power iteration as a speculative synchronous iterative
//! algorithm.
//!
//! Node ranks are partitioned over processors; every iteration each rank
//! broadcasts its partition's scores, absorbs every peer's scores through
//! the (globally known, seeded) edge structure, and applies the damped
//! update. Scores change slowly once the iteration starts converging, so
//! linear extrapolation speculates them well — and contributions are
//! linear in the scores, so corrections are exact.

use std::ops::Range;

use desim::rng::derive_seed;
use mpk::Rank;
use speccore::{speculator, CheckOutcome, History, SpeculativeApp};

/// A seeded random directed graph with a fixed out-degree.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Number of nodes.
    pub n: usize,
    /// `edges[j]` lists the targets of node `j`'s out-edges.
    pub edges: Vec<Vec<usize>>,
}

impl Graph {
    /// Generate a graph where every node has `out_degree` random out-edges
    /// (self-loops excluded, duplicates allowed as in a multigraph).
    pub fn random(n: usize, out_degree: usize, seed: u64) -> Self {
        assert!(n >= 2);
        let edges = (0..n)
            .map(|j| {
                (0..out_degree)
                    .map(|e| {
                        let h = derive_seed(seed, (j as u64) << 24 | e as u64);
                        let mut t = (h % (n as u64 - 1)) as usize;
                        if t >= j {
                            t += 1; // skip self
                        }
                        t
                    })
                    .collect()
            })
            .collect();
        Graph { n, edges }
    }

    /// Out-degree of node `j`.
    pub fn out_degree(&self, j: usize) -> usize {
        self.edges[j].len()
    }
}

/// PageRank parameters.
#[derive(Clone, Copy, Debug)]
pub struct PageRankConfig {
    /// Damping factor d (usually 0.85).
    pub damping: f64,
    /// Relative error threshold θ for speculated scores.
    pub theta: f64,
    /// Operations charged per edge scanned.
    pub ops_per_edge: u64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            theta: 0.01,
            ops_per_edge: 10,
        }
    }
}

/// One rank's partition of the score vector.
pub struct PageRankApp {
    cfg: PageRankConfig,
    graph: Graph,
    ranges: Vec<Range<usize>>,
    me: usize,
    /// Scores of my nodes.
    r: Vec<f64>,
    /// Incoming contribution accumulator for my nodes.
    acc: Vec<f64>,
}

impl PageRankApp {
    /// Build rank `me`'s partition. Scores start uniform (1/n).
    pub fn new(graph: Graph, ranges: &[Range<usize>], me: usize, cfg: PageRankConfig) -> Self {
        let mine = ranges[me].clone();
        let r = vec![1.0 / graph.n as f64; mine.len()];
        let acc = vec![0.0; mine.len()];
        PageRankApp {
            cfg,
            graph,
            ranges: ranges.to_vec(),
            me,
            r,
            acc,
        }
    }

    /// My nodes' current scores.
    pub fn scores(&self) -> &[f64] {
        &self.r
    }

    /// Bit-exact fingerprint of my nodes' scores.
    pub fn fingerprint(&self) -> u64 {
        obs::fingerprint_f64s(&self.r)
    }

    /// Add the contributions of partition `k` (scores `xs`) into `acc`.
    /// Returns edges scanned.
    fn scatter(&mut self, k: usize, xs: &[f64]) -> u64 {
        let mine = self.ranges[self.me].clone();
        let start = self.ranges[k].start;
        let mut scanned = 0u64;
        for (offset, &score) in xs.iter().enumerate() {
            let j = start + offset;
            let share = score / self.graph.out_degree(j) as f64;
            for &t in &self.graph.edges[j] {
                scanned += 1;
                if mine.contains(&t) {
                    self.acc[t - mine.start] += share;
                }
            }
        }
        scanned
    }
}

impl SpeculativeApp for PageRankApp {
    type Shared = Vec<f64>;
    type Checkpoint = Vec<f64>;

    fn shared(&self) -> Vec<f64> {
        self.r.clone()
    }

    fn begin_iteration(&mut self) -> u64 {
        self.acc.fill(0.0);
        let mine = self.shared();
        let edges = self.scatter(self.me, &mine);
        self.cfg.ops_per_edge * edges
    }

    fn absorb(&mut self, from: Rank, xs: &Vec<f64>) -> u64 {
        let edges = self.scatter(from.0, xs);
        self.cfg.ops_per_edge * edges
    }

    fn finish_iteration(&mut self) -> u64 {
        let n = self.graph.n as f64;
        let d = self.cfg.damping;
        for (r, a) in self.r.iter_mut().zip(&self.acc) {
            *r = (1.0 - d) / n + d * a;
        }
        self.r.len() as u64 * 4
    }

    fn speculate(
        &self,
        _from: Rank,
        hist: &History<Vec<f64>>,
        ahead: u32,
    ) -> Option<(Vec<f64>, u64)> {
        let values = speculator::elementwise(hist, |h| speculator::extrapolate_linear(h, ahead))?;
        let cost = 4 * values.len() as u64;
        Some((values, cost))
    }

    fn check(&self, _from: Rank, actual: &Vec<f64>, speculated: &Vec<f64>) -> CheckOutcome {
        let mut max_error: f64 = 0.0;
        let mut max_accepted: f64 = 0.0;
        let mut bad = 0u64;
        for (a, s) in actual.iter().zip(speculated) {
            let err = (a - s).abs() / a.abs().max(1e-12);
            max_error = max_error.max(err);
            if err > self.cfg.theta {
                bad += 1;
            } else {
                max_accepted = max_accepted.max(err);
            }
        }
        CheckOutcome {
            accept: bad == 0,
            max_error,
            max_accepted_error: max_accepted,
            checked_units: actual.len() as u64,
            bad_units: bad,
            ops: 6 * actual.len() as u64,
        }
    }

    fn correct(&mut self, from: Rank, speculated: &Vec<f64>, actual: &Vec<f64>) -> u64 {
        // Contributions are linear in the source scores: re-scatter the
        // score deltas through the damping factor.
        let mine = self.ranges[self.me].clone();
        let start = self.ranges[from.0].start;
        let d = self.cfg.damping;
        let mut scanned = 0u64;
        for (offset, (&a, &s)) in actual.iter().zip(speculated).enumerate() {
            let delta = a - s;
            if delta == 0.0 {
                continue;
            }
            let j = start + offset;
            let share = delta / self.graph.out_degree(j) as f64;
            for &t in &self.graph.edges[j] {
                scanned += 1;
                if mine.contains(&t) {
                    self.r[t - mine.start] += d * share;
                }
            }
        }
        self.cfg.ops_per_edge * scanned
    }

    fn delta_extract(&self, shared: &Vec<f64>, out: &mut Vec<f64>) -> bool {
        out.clear();
        out.extend_from_slice(shared);
        true
    }

    fn delta_patch(&self, base: &Vec<f64>, entries: &[(u32, f64)]) -> Option<Vec<f64>> {
        let mut next = base.clone();
        for &(lane, value) in entries {
            next[lane as usize] = value;
        }
        Some(next)
    }

    fn checkpoint(&self) -> Vec<f64> {
        self.r.clone()
    }

    fn restore(&mut self, c: &Vec<f64>) {
        self.r.clone_from(c);
    }
}

/// Sequential reference PageRank (`iters` power iterations).
pub fn pagerank_reference(graph: &Graph, cfg: PageRankConfig, iters: u64) -> Vec<f64> {
    let n = graph.n;
    let mut r = vec![1.0 / n as f64; n];
    for _ in 0..iters {
        let mut acc = vec![0.0; n];
        #[allow(clippy::needless_range_loop)] // j indexes both scores and edges
        for j in 0..n {
            let share = r[j] / graph.out_degree(j) as f64;
            for &t in &graph.edges[j] {
                acc[t] += share;
            }
        }
        for i in 0..n {
            r[i] = (1.0 - cfg.damping) / n as f64 + cfg.damping * acc[i];
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn even_ranges(n: usize, p: usize) -> Vec<Range<usize>> {
        (0..p).map(|i| i * n / p..(i + 1) * n / p).collect()
    }

    fn run_by_hand(graph: &Graph, p: usize, iters: u64) -> Vec<f64> {
        let ranges = even_ranges(graph.n, p);
        let cfg = PageRankConfig::default();
        let mut apps: Vec<PageRankApp> = (0..p)
            .map(|me| PageRankApp::new(graph.clone(), &ranges, me, cfg))
            .collect();
        for _ in 0..iters {
            let shared: Vec<Vec<f64>> = apps.iter().map(|a| a.shared()).collect();
            for (me, app) in apps.iter_mut().enumerate() {
                app.begin_iteration();
                for (k, xs) in shared.iter().enumerate() {
                    if k != me {
                        app.absorb(Rank(k), xs);
                    }
                }
                app.finish_iteration();
            }
        }
        apps.iter()
            .flat_map(|a| a.scores().iter().copied())
            .collect()
    }

    #[test]
    fn graph_has_no_self_loops() {
        let g = Graph::random(50, 4, 3);
        for (j, targets) in g.edges.iter().enumerate() {
            assert_eq!(targets.len(), 4);
            assert!(targets.iter().all(|&t| t != j && t < 50));
        }
    }

    #[test]
    fn graph_is_seeded() {
        assert_eq!(Graph::random(20, 3, 9).edges, Graph::random(20, 3, 9).edges);
        assert_ne!(
            Graph::random(20, 3, 9).edges,
            Graph::random(20, 3, 10).edges
        );
    }

    #[test]
    fn scores_sum_to_one() {
        let g = Graph::random(40, 3, 1);
        let r = pagerank_reference(&g, PageRankConfig::default(), 50);
        let total: f64 = r.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "PageRank mass leaked: {total}");
        assert!(r.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn parallel_matches_sequential_closely() {
        let g = Graph::random(40, 3, 2);
        let got = run_by_hand(&g, 4, 30);
        let want = pagerank_reference(&g, PageRankConfig::default(), 30);
        for (a, b) in got.iter().zip(&want) {
            assert!(
                (a - b).abs() < 1e-12,
                "parallel pagerank diverged: {a} vs {b}"
            );
        }
    }

    #[test]
    fn power_iteration_converges() {
        let g = Graph::random(30, 4, 7);
        let cfg = PageRankConfig::default();
        let r30 = pagerank_reference(&g, cfg, 30);
        let r60 = pagerank_reference(&g, cfg, 60);
        let diff: f64 = r30.iter().zip(&r60).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff < 1e-6, "not converged: {diff}");
    }

    #[test]
    fn correction_is_exact() {
        let g = Graph::random(20, 3, 5);
        let ranges = even_ranges(20, 2);
        let cfg = PageRankConfig::default();
        let actual = vec![0.05; 10];
        let spec: Vec<f64> = actual.iter().map(|v| v + 0.01).collect();

        let mut golden = PageRankApp::new(g.clone(), &ranges, 0, cfg);
        golden.begin_iteration();
        golden.absorb(Rank(1), &actual);
        golden.finish_iteration();

        let mut fixed = PageRankApp::new(g, &ranges, 0, cfg);
        fixed.begin_iteration();
        fixed.absorb(Rank(1), &spec);
        fixed.finish_iteration();
        fixed.correct(Rank(1), &spec, &actual);

        for (a, b) in golden.scores().iter().zip(fixed.scores()) {
            assert!((a - b).abs() < 1e-15, "correction residue {a} vs {b}");
        }
    }

    #[test]
    fn check_counts_bad_scores() {
        let g = Graph::random(20, 3, 5);
        let ranges = even_ranges(20, 2);
        let app = PageRankApp::new(g, &ranges, 0, PageRankConfig::default());
        let actual = vec![0.05, 0.05];
        let spec = vec![0.05, 0.10];
        let out = app.check(Rank(1), &actual, &spec);
        assert!(!out.accept);
        assert_eq!(out.bad_units, 1);
    }
}
