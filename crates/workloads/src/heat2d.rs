//! 2-D Jacobi heat diffusion with speculative row-halo exchange.
//!
//! The grid is split into horizontal strips, one per rank; each iteration a
//! strip needs its neighbours' edge *rows* (vectors, unlike the scalar
//! halos of the 1-D solver), making this the realistic PDE workload: halo
//! messages of meaningful size, per-cell error checking, and exact
//! per-cell incremental correction.

use std::ops::Range;

use mpk::{Rank, WireSize};
use speccore::{speculator, CheckOutcome, History, SpeculativeApp};

/// The two edge rows a strip exposes to its neighbours.
#[derive(Clone, Debug, PartialEq)]
pub struct RowHalo {
    /// The strip's first (top) row.
    pub top: Vec<f64>,
    /// The strip's last (bottom) row.
    pub bottom: Vec<f64>,
}

impl WireSize for RowHalo {
    fn wire_size(&self) -> usize {
        self.top.wire_size() + self.bottom.wire_size()
    }
}

/// Parameters of the 2-D diffusion problem.
#[derive(Clone, Copy, Debug)]
pub struct Heat2dConfig {
    /// Diffusion coefficient per step (2-D stability needs β ≤ 0.25).
    pub beta: f64,
    /// Error threshold θ for speculated halo cells (absolute + relative).
    pub theta: f64,
    /// Operations charged per owned cell per iteration.
    pub ops_per_cell: u64,
}

impl Default for Heat2dConfig {
    fn default() -> Self {
        Heat2dConfig {
            beta: 0.2,
            theta: 0.01,
            ops_per_cell: 12,
        }
    }
}

/// One rank's horizontal strip of the grid (row-major storage).
pub struct Heat2dApp {
    cfg: Heat2dConfig,
    me: usize,
    p: usize,
    cols: usize,
    rows: usize,
    u: Vec<f64>,
    /// Scratch grid `finish_iteration` writes into before swapping with
    /// `u`, so the stencil sweep allocates nothing per step.
    next: Vec<f64>,
    top_in: Vec<f64>,
    bottom_in: Vec<f64>,
}

impl Heat2dApp {
    /// Build rank `me`'s strip of an `n_rows × cols` grid whose initial
    /// condition is a hot square in the grid centre.
    pub fn new(
        n_rows: usize,
        cols: usize,
        row_ranges: &[Range<usize>],
        me: usize,
        cfg: Heat2dConfig,
    ) -> Self {
        let range = row_ranges[me].clone();
        assert!(!range.is_empty(), "strips must be non-empty");
        let rows = range.len();
        let mut u = vec![0.0; rows * cols];
        for (local_r, global_r) in range.clone().enumerate() {
            for c in 0..cols {
                if (n_rows / 3..2 * n_rows / 3).contains(&global_r)
                    && (cols / 3..2 * cols / 3).contains(&c)
                {
                    u[local_r * cols + c] = 1.0;
                }
            }
        }
        Heat2dApp {
            cfg,
            me,
            p: row_ranges.len(),
            cols,
            rows,
            next: vec![0.0; u.len()],
            u,
            top_in: vec![0.0; cols],
            bottom_in: vec![0.0; cols],
        }
    }

    /// The strip's cells, row-major.
    pub fn cells(&self) -> &[f64] {
        &self.u
    }

    /// Bit-exact fingerprint of the strip's cells.
    pub fn fingerprint(&self) -> u64 {
        obs::fingerprint_f64s(&self.u)
    }

    /// Grid dimensions of this strip (rows, cols).
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    fn at(&self, r: usize, c: usize) -> f64 {
        self.u[r * self.cols + c]
    }

    fn is_top_neighbor(&self, k: usize) -> bool {
        self.me > 0 && k == self.me - 1
    }

    fn is_bottom_neighbor(&self, k: usize) -> bool {
        k == self.me + 1 && k < self.p
    }

    fn cell_err(&self, actual: f64, spec: f64) -> f64 {
        (actual - spec).abs() / actual.abs().max(0.1)
    }
}

impl SpeculativeApp for Heat2dApp {
    type Shared = RowHalo;
    type Checkpoint = Vec<f64>;

    fn shared(&self) -> RowHalo {
        RowHalo {
            top: self.u[..self.cols].to_vec(),
            bottom: self.u[(self.rows - 1) * self.cols..].to_vec(),
        }
    }

    fn begin_iteration(&mut self) -> u64 {
        // Zero-flux (insulated) outer boundaries by default; interior
        // strips get their halos from absorb().
        self.top_in.fill(0.0);
        self.bottom_in.fill(0.0);
        if self.me == 0 {
            self.top_in.copy_from_slice(&self.u[..self.cols]);
        }
        if self.me == self.p - 1 {
            self.bottom_in
                .copy_from_slice(&self.u[(self.rows - 1) * self.cols..]);
        }
        self.cols as u64
    }

    fn absorb(&mut self, from: Rank, halo: &RowHalo) -> u64 {
        if self.is_top_neighbor(from.0) {
            self.top_in.copy_from_slice(&halo.bottom);
            self.cols as u64
        } else if self.is_bottom_neighbor(from.0) {
            self.bottom_in.copy_from_slice(&halo.top);
            self.cols as u64
        } else {
            0
        }
    }

    fn finish_iteration(&mut self) -> u64 {
        let (rows, cols, beta) = (self.rows, self.cols, self.cfg.beta);
        for r in 0..rows {
            for c in 0..cols {
                let centre = self.at(r, c);
                let up = if r == 0 {
                    self.top_in[c]
                } else {
                    self.at(r - 1, c)
                };
                let down = if r == rows - 1 {
                    self.bottom_in[c]
                } else {
                    self.at(r + 1, c)
                };
                // Zero-flux side walls.
                let left = if c == 0 { centre } else { self.at(r, c - 1) };
                let right = if c == cols - 1 {
                    centre
                } else {
                    self.at(r, c + 1)
                };
                self.next[r * cols + c] = centre + beta * (up + down + left + right - 4.0 * centre);
            }
        }
        std::mem::swap(&mut self.u, &mut self.next);
        self.cfg.ops_per_cell * (rows * cols) as u64
    }

    fn speculate(
        &self,
        _from: Rank,
        hist: &History<RowHalo>,
        ahead: u32,
    ) -> Option<(RowHalo, u64)> {
        // Extrapolate each halo row elementwise.
        let project = |pick: fn(&RowHalo) -> &Vec<f64>| -> Option<Vec<f64>> {
            let mut h: History<Vec<f64>> = History::new(hist.capacity());
            let mut entries: Vec<(u64, Vec<f64>)> =
                hist.recent().map(|(i, v)| (i, pick(v).clone())).collect();
            entries.reverse();
            for (i, v) in entries {
                h.record(i, v);
            }
            speculator::elementwise(&h, |s| speculator::extrapolate_linear(s, ahead))
        };
        let top = project(|h| &h.top)?;
        let bottom = project(|h| &h.bottom)?;
        let cost = 4 * (top.len() + bottom.len()) as u64;
        Some((RowHalo { top, bottom }, cost))
    }

    fn check(&self, from: Rank, actual: &RowHalo, speculated: &RowHalo) -> CheckOutcome {
        // Only the row we consumed matters.
        let (a, s): (&[f64], &[f64]) = if self.is_top_neighbor(from.0) {
            (&actual.bottom, &speculated.bottom)
        } else if self.is_bottom_neighbor(from.0) {
            (&actual.top, &speculated.top)
        } else {
            (&[], &[])
        };
        let mut max_error: f64 = 0.0;
        let mut max_accepted: f64 = 0.0;
        let mut bad = 0u64;
        for (&av, &sv) in a.iter().zip(s) {
            let err = self.cell_err(av, sv);
            max_error = max_error.max(err);
            if err > self.cfg.theta {
                bad += 1;
            } else {
                max_accepted = max_accepted.max(err);
            }
        }
        CheckOutcome {
            accept: bad == 0,
            max_error,
            max_accepted_error: max_accepted,
            checked_units: a.len() as u64,
            bad_units: bad,
            ops: 4 * a.len() as u64,
        }
    }

    fn correct(&mut self, from: Rank, speculated: &RowHalo, actual: &RowHalo) -> u64 {
        // Each halo cell feeds exactly one edge cell, linearly (β·value),
        // and only cells beyond θ are repaired — per-cell selective
        // recomputation, as in the paper's N-body correction.
        let beta = self.cfg.beta;
        let theta = self.cfg.theta;
        let cols = self.cols;
        let mut ops = 0u64;
        if self.is_top_neighbor(from.0) {
            for c in 0..cols {
                let (av, sv) = (actual.bottom[c], speculated.bottom[c]);
                if (av - sv).abs() / av.abs().max(0.1) > theta {
                    self.u[c] += beta * (av - sv);
                    ops += 2;
                }
            }
        } else if self.is_bottom_neighbor(from.0) {
            let base = (self.rows - 1) * cols;
            for c in 0..cols {
                let (av, sv) = (actual.top[c], speculated.top[c]);
                if (av - sv).abs() / av.abs().max(0.1) > theta {
                    self.u[base + c] += beta * (av - sv);
                    ops += 2;
                }
            }
        }
        ops
    }

    fn checkpoint(&self) -> Vec<f64> {
        self.u.clone()
    }

    fn checkpoint_into(&self, slot: &mut Option<Vec<f64>>) {
        match slot {
            Some(c) => c.clone_from(&self.u),
            None => *slot = Some(self.checkpoint()),
        }
    }

    fn restore(&mut self, c: &Vec<f64>) {
        self.u.clone_from(c);
    }
}

/// Sequential reference for the full grid (same boundary conditions).
pub fn heat2d_reference(n_rows: usize, cols: usize, cfg: Heat2dConfig, iters: u64) -> Vec<f64> {
    let mut u = vec![0.0; n_rows * cols];
    for r in n_rows / 3..2 * n_rows / 3 {
        for c in cols / 3..2 * cols / 3 {
            u[r * cols + c] = 1.0;
        }
    }
    for _ in 0..iters {
        let mut next = vec![0.0; n_rows * cols];
        for r in 0..n_rows {
            for c in 0..cols {
                let centre = u[r * cols + c];
                let up = if r == 0 {
                    centre
                } else {
                    u[(r - 1) * cols + c]
                };
                let down = if r == n_rows - 1 {
                    centre
                } else {
                    u[(r + 1) * cols + c]
                };
                let left = if c == 0 { centre } else { u[r * cols + c - 1] };
                let right = if c == cols - 1 {
                    centre
                } else {
                    u[r * cols + c + 1]
                };
                next[r * cols + c] = centre + cfg.beta * (up + down + left + right - 4.0 * centre);
            }
        }
        u = next;
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;

    fn even_ranges(n: usize, p: usize) -> Vec<Range<usize>> {
        (0..p).map(|i| i * n / p..(i + 1) * n / p).collect()
    }

    /// Drive strips by hand with synchronous halo exchange.
    fn run_by_hand(n_rows: usize, cols: usize, p: usize, iters: u64) -> Vec<f64> {
        let ranges = even_ranges(n_rows, p);
        let cfg = Heat2dConfig::default();
        let mut apps: Vec<Heat2dApp> = (0..p)
            .map(|me| Heat2dApp::new(n_rows, cols, &ranges, me, cfg))
            .collect();
        for _ in 0..iters {
            let halos: Vec<RowHalo> = apps.iter().map(|a| a.shared()).collect();
            for (me, app) in apps.iter_mut().enumerate() {
                app.begin_iteration();
                for (k, halo) in halos.iter().enumerate() {
                    if k != me {
                        app.absorb(Rank(k), halo);
                    }
                }
                app.finish_iteration();
            }
        }
        apps.iter()
            .flat_map(|a| a.cells().iter().copied())
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let (rows, cols) = (24, 16);
        let got = run_by_hand(rows, cols, 3, 30);
        let want = heat2d_reference(rows, cols, Heat2dConfig::default(), 30);
        assert_eq!(got, want, "strip decomposition changed the PDE");
    }

    #[test]
    fn heat_is_conserved_with_zero_flux_walls() {
        // Insulated boundaries: total heat is invariant.
        let (rows, cols) = (18, 18);
        let before: f64 = heat2d_reference(rows, cols, Heat2dConfig::default(), 0)
            .iter()
            .sum();
        let after: f64 = heat2d_reference(rows, cols, Heat2dConfig::default(), 200)
            .iter()
            .sum();
        assert!(
            (before - after).abs() < 1e-9,
            "heat leaked: {before} -> {after}"
        );
    }

    #[test]
    fn diffusion_flattens_the_square() {
        let (rows, cols) = (18, 18);
        let u = heat2d_reference(rows, cols, Heat2dConfig::default(), 2000);
        let mean = u.iter().sum::<f64>() / u.len() as f64;
        for v in &u {
            assert!((v - mean).abs() < 1e-2, "not flattened: {v} vs mean {mean}");
        }
    }

    #[test]
    fn correction_is_exact_per_cell() {
        let (rows, cols) = (12, 8);
        let ranges = even_ranges(rows, 3);
        let cfg = Heat2dConfig {
            theta: 0.0,
            ..Default::default()
        };
        let actual = RowHalo {
            top: vec![0.3; cols],
            bottom: vec![0.7; cols],
        };
        let spec = RowHalo {
            top: vec![0.1; cols],
            bottom: vec![0.2; cols],
        };
        let quiet = RowHalo {
            top: vec![0.0; cols],
            bottom: vec![0.0; cols],
        };

        let mut golden = Heat2dApp::new(rows, cols, &ranges, 1, cfg);
        golden.begin_iteration();
        golden.absorb(Rank(0), &actual);
        golden.absorb(Rank(2), &quiet);
        golden.finish_iteration();

        let mut fixed = Heat2dApp::new(rows, cols, &ranges, 1, cfg);
        fixed.begin_iteration();
        fixed.absorb(Rank(0), &spec);
        fixed.absorb(Rank(2), &quiet);
        fixed.finish_iteration();
        fixed.correct(Rank(0), &spec, &actual);

        for (a, b) in golden.cells().iter().zip(fixed.cells()) {
            assert!((a - b).abs() < 1e-15, "residue {a} vs {b}");
        }
    }

    #[test]
    fn check_is_per_cell() {
        let (rows, cols) = (12, 8);
        let ranges = even_ranges(rows, 3);
        let app = Heat2dApp::new(rows, cols, &ranges, 1, Heat2dConfig::default());
        let mut actual = RowHalo {
            top: vec![0.5; cols],
            bottom: vec![0.5; cols],
        };
        let mut spec = actual.clone();
        // Rank 0 is the top neighbour: its *bottom* row is what we consume.
        spec.bottom[3] = 0.9;
        actual.bottom[3] = 0.5;
        let out = app.check(Rank(0), &actual, &spec);
        assert!(!out.accept);
        assert_eq!(out.bad_units, 1);
        assert_eq!(out.checked_units, cols as u64);
    }

    #[test]
    fn speculation_tracks_halo_trends() {
        let (rows, cols) = (12, 8);
        let ranges = even_ranges(rows, 3);
        let app = Heat2dApp::new(rows, cols, &ranges, 1, Heat2dConfig::default());
        let mut h = History::new(3);
        h.record(
            0,
            RowHalo {
                top: vec![0.0; cols],
                bottom: vec![1.0; cols],
            },
        );
        h.record(
            1,
            RowHalo {
                top: vec![0.1; cols],
                bottom: vec![0.9; cols],
            },
        );
        let (s, _) = app.speculate(Rank(0), &h, 1).unwrap();
        assert!(s.top.iter().all(|v| (v - 0.2).abs() < 1e-12));
        assert!(s.bottom.iter().all(|v| (v - 0.8).abs() < 1e-12));
    }

    #[test]
    fn wire_size_counts_both_rows() {
        let h = RowHalo {
            top: vec![0.0; 10],
            bottom: vec![0.0; 10],
        };
        assert_eq!(h.wire_size(), 2 * (8 + 80));
    }
}
