//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. backward window (BW) size vs speculation accuracy — the §3.2
//!    accuracy/complexity trade-off;
//! 2. speculation function order (hold / eq.10 linear / quadratic) — the
//!    "higher order derivatives" variant §5 leaves unstudied;
//! 3. forward window sweep (FW 0–4) — §3.2's masking-depth trade-off;
//! 4. adaptive vs fixed windows under transient-heavy networks — the
//!    future-work extension;
//! 5. incremental correction vs full recomputation — §3.1's "corrected or
//!    recomputed" choice.

use desim::rng::derive_seed;
use nbody::{centered_cloud, run_parallel, ParallelRunConfig, SpeculationOrder};
use netsim::{ClusterSpec, Unloaded};
use spec_bench::experiments::{experiment_nbody_config, testbed_network};
use spec_bench::Scale;
use speccore::{CorrectionMode, SpecConfig, WindowPolicy};

fn scale() -> Scale {
    match std::env::var("SPEC_BENCH_SCALE").as_deref() {
        Ok("quick") => Scale::quick(),
        _ => Scale {
            n_particles: 500,
            iterations: 8,
            p_values: vec![8],
            seed: 42,
        },
    }
}

fn run(scale: &Scale, cfg: ParallelRunConfig, stream: u64) -> nbody::ParallelRunResult {
    let cluster = ClusterSpec::paper_testbed().fastest(8);
    let particles = centered_cloud(scale.n_particles, scale.seed);
    run_parallel(
        &particles,
        &cluster,
        testbed_network(derive_seed(scale.seed, stream), scale.n_particles),
        Unloaded,
        cfg,
    )
    .expect("ablation run failed")
}

fn main() {
    let scale = scale();
    println!(
        "# Ablations (N = {}, p = 8, {} iterations)\n",
        scale.n_particles, scale.iterations
    );

    // ------------------------------------------------------------------
    println!("## 1. Backward window (quadratic speculation needs history)");
    println!("BW | rejected % | max accepted err");
    for bw in 1..=4usize {
        let mut cfg = ParallelRunConfig::new(scale.iterations, 1);
        cfg.nbody = experiment_nbody_config();
        cfg.order = SpeculationOrder::Quadratic;
        cfg.spec = SpecConfig::speculative(1).with_backward_window(bw);
        let r = run(&scale, cfg, 10 + bw as u64);
        println!(
            " {bw} | {:>9.2} | {:.2e}",
            100.0 * r.stats.recomputation_fraction(),
            r.stats.max_accepted_error()
        );
    }

    // ------------------------------------------------------------------
    println!("\n## 2. Speculation function (the paper uses eq. 10 = linear)");
    println!("order     | rejected % | time (s)");
    for (name, order) in [
        ("hold", SpeculationOrder::Hold),
        ("linear", SpeculationOrder::Linear),
        ("quadratic", SpeculationOrder::Quadratic),
    ] {
        let mut cfg = ParallelRunConfig::new(scale.iterations, 1);
        cfg.nbody = experiment_nbody_config();
        cfg.order = order;
        let r = run(&scale, cfg, 20);
        println!(
            "{name:<9} | {:>9.2} | {:.4}",
            100.0 * r.stats.recomputation_fraction(),
            r.elapsed_secs()
        );
    }

    // ------------------------------------------------------------------
    println!("\n## 3. Forward window sweep");
    println!("FW | time (s) | rollbacks | max depth used");
    for fw in 0..=4u32 {
        let mut cfg = ParallelRunConfig::new(scale.iterations, fw);
        cfg.nbody = experiment_nbody_config();
        let r = run(&scale, cfg, 30);
        println!(
            " {fw} | {:>7.4} | {:>9} | {}",
            r.elapsed_secs(),
            r.stats.total_rollbacks(),
            r.stats
                .per_rank
                .iter()
                .map(|x| x.max_depth_used)
                .max()
                .unwrap_or(0)
        );
    }

    // ------------------------------------------------------------------
    println!("\n## 4. Fixed vs adaptive forward window");
    println!("policy       | time (s) | max depth used");
    for (name, window) in [
        ("fixed(1)", WindowPolicy::Fixed(1)),
        ("fixed(3)", WindowPolicy::Fixed(3)),
        ("adaptive1-3", WindowPolicy::adaptive(1, 3)),
    ] {
        let mut cfg = ParallelRunConfig::new(scale.iterations, 1);
        cfg.nbody = experiment_nbody_config();
        cfg.spec = SpecConfig {
            window,
            backward_window: 2,
            correction: CorrectionMode::Incremental,
            collect_log: false,
            fault: None,
            delta: None,
            supervision: None,
            controller: None,
        };
        let r = run(&scale, cfg, 40);
        println!(
            "{name:<12} | {:>7.4} | {}",
            r.elapsed_secs(),
            r.stats
                .per_rank
                .iter()
                .map(|x| x.max_depth_used)
                .max()
                .unwrap_or(0)
        );
    }

    // ------------------------------------------------------------------
    println!("\n## 5. Correction strategy ('corrected or recomputed', §3.1)");
    println!("strategy    | time (s) | corrections | rollbacks");
    for (name, mode) in [
        ("incremental", CorrectionMode::Incremental),
        ("recompute", CorrectionMode::Recompute),
    ] {
        let mut cfg = ParallelRunConfig::new(scale.iterations, 1);
        cfg.nbody = experiment_nbody_config().with_theta(0.003); // force misses
        cfg.spec = SpecConfig::speculative(1).with_correction(mode);
        let r = run(&scale, cfg, 50);
        println!(
            "{name:<11} | {:>7.4} | {:>11} | {}",
            r.elapsed_secs(),
            r.stats.per_rank.iter().map(|x| x.corrections).sum::<u64>(),
            r.stats.total_rollbacks()
        );
    }
}
