//! Criterion microbenchmarks of the simulation substrate itself: event
//! queue throughput, process context-switch cost, and a full all-to-all
//! cluster round — the overheads that bound how large an experiment the
//! virtual-time harness can run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use desim::{EventKind, EventQueue, ProcessId, SimDuration, SimTime, Simulation};
use mpk::{run_sim_cluster, Tag, Transport};
use netsim::{ClusterSpec, ConstantLatency, Unloaded};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [1_000u64, 100_000] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    q.push(
                        SimTime::from_nanos((i * 7919) % 1_000_000),
                        EventKind::Wake(ProcessId(0)),
                    );
                }
                let mut drained = 0u64;
                while let Some((key, _)) = q.pop_event() {
                    black_box(key);
                    drained += 1;
                }
                black_box(drained)
            });
        });
    }
    group.finish();
}

fn bench_context_switch(c: &mut Criterion) {
    // One advance() = one request/response handshake + one heap op.
    c.bench_function("process_advance_10k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            sim.spawn("p", |h| {
                for _ in 0..10_000 {
                    h.advance(SimDuration::from_nanos(1));
                }
            });
            black_box(sim.run().unwrap().events_processed)
        });
    });
}

fn bench_cluster_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_to_all_round");
    group.sample_size(10);
    for p in [4usize, 16] {
        group.bench_with_input(BenchmarkId::new("ranks", p), &p, |b, &p| {
            let cluster = ClusterSpec::homogeneous(p, 100.0);
            b.iter(|| {
                let (outs, _) = run_sim_cluster::<u64, _, _>(
                    &cluster,
                    ConstantLatency(SimDuration::from_micros(10)),
                    Unloaded,
                    false,
                    |t| {
                        let mut acc = 0u64;
                        for round in 0..10u64 {
                            t.broadcast(Tag(0), round);
                            for _ in 0..t.size() - 1 {
                                acc += t.recv().msg;
                            }
                        }
                        acc
                    },
                )
                .unwrap();
                black_box(outs)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_context_switch,
    bench_cluster_round
);
criterion_main!(benches);
