//! Regenerates the paper's Figure 5 (model speedups vs processor count).
fn main() {
    let rows = spec_bench::experiments::fig5();
    println!("{}", spec_bench::render::fig5(&rows));
}
