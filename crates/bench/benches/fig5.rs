//! Regenerates the paper's Figure 5 (model speedups vs processor count):
//! prints the text rendering and writes the `BENCH_fig5.json` artifact.
fn main() {
    let rows = spec_bench::experiments::fig5();
    println!("{}", spec_bench::render::fig5(&rows));
    let doc = spec_bench::artifact::fig5_json(&rows);
    let path = spec_bench::artifact::write("fig5", &doc).expect("writing BENCH_fig5.json");
    println!("wrote {}", path.display());
}
