//! Criterion microbenchmarks of the computational kernels — the O(N²)
//! force accumulation, the eq. 10 speculation and eq. 11 check (the paper's
//! 70/12/24-operation cost trio), the Barnes–Hut comparator — plus a
//! wall-clock throughput A/B of the scalar reference force kernels against
//! the cache-blocked SoA engine, persisted as `BENCH_kernels.json`.
//!
//! The throughput numbers are wall-clock only: both engines charge the
//! identical modelled op counts to the virtual-time simulation, so nothing
//! here feeds back into the paper-reproduction figures.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use mpk::Rank;
use nbody::barnes_hut::{BhConfig, Octree};
use nbody::forces::{
    accumulate_partition, accumulate_partition_soa, accumulate_self, accumulate_self_soa,
};
use nbody::{
    partition_proportional, split_soa, uniform_cloud, NBodyApp, NBodyConfig, PartitionShared, Soa3,
    SoaBodies, SpeculationOrder, Vec3, ZERO3,
};
use spec_bench::artifact::{kernels_json, KernelRow};
use speccore::{History, SpeculativeApp};

fn remote_share(particles: &[nbody::Particle], range: std::ops::Range<usize>) -> PartitionShared {
    let pos: Vec<Vec3> = particles[range.clone()].iter().map(|p| p.pos).collect();
    let vel: Vec<Vec3> = particles[range].iter().map(|p| p.vel).collect();
    PartitionShared::from_vec3s(&pos, &vel)
}

fn bench_force_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("force_kernel");
    group.sample_size(20);
    for n in [100usize, 400] {
        let particles = uniform_cloud(n, 1);
        let ranges = partition_proportional(n, &[1.0, 1.0]);
        group.bench_with_input(BenchmarkId::new("partition_absorb", n), &n, |b, _| {
            let mut app = NBodyApp::new(
                &particles,
                ranges.clone(),
                0,
                NBodyConfig::default(),
                SpeculationOrder::Linear,
            );
            let remote = std::sync::Arc::new(remote_share(&particles, n / 2..n));
            b.iter(|| {
                app.begin_iteration();
                let ops = app.absorb(Rank(1), black_box(&remote));
                app.finish_iteration();
                black_box(ops)
            });
        });
    }
    group.finish();
}

fn bench_speculate_and_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("speculation");
    group.sample_size(30);
    let n = 400;
    let particles = uniform_cloud(n, 2);
    let ranges = partition_proportional(n, &[1.0, 1.0]);
    let app = NBodyApp::new(
        &particles,
        ranges,
        0,
        NBodyConfig::default(),
        SpeculationOrder::Linear,
    );
    let remote = std::sync::Arc::new(remote_share(&particles, n / 2..n));
    let mut hist = History::new(3);
    hist.record(0, remote.clone());
    hist.record(1, remote.clone());

    group.bench_function("speculate_eq10_200_particles", |b| {
        b.iter(|| black_box(app.speculate(Rank(1), black_box(&hist), 1)));
    });
    let (spec, _) = app.speculate(Rank(1), &hist, 1).unwrap();
    group.bench_function("check_eq11_200_particles", |b| {
        b.iter(|| black_box(app.check(Rank(1), black_box(&remote), black_box(&spec))));
    });
    group.finish();
}

fn bench_barnes_hut_vs_direct(c: &mut Criterion) {
    let mut group = c.benchmark_group("bh_vs_direct");
    group.sample_size(10);
    for n in [200usize, 800] {
        let particles = uniform_cloud(n, 3);
        group.bench_with_input(BenchmarkId::new("direct_n2", n), &n, |b, _| {
            let ranges = partition_proportional(n, &[1.0]);
            let mut app = NBodyApp::new(
                &particles,
                ranges,
                0,
                NBodyConfig::default(),
                SpeculationOrder::Linear,
            );
            b.iter(|| {
                black_box(app.begin_iteration());
            });
        });
        group.bench_with_input(BenchmarkId::new("barnes_hut", n), &n, |b, _| {
            b.iter(|| {
                let tree = Octree::build(black_box(&particles), BhConfig::default());
                black_box(tree.accel_on_all(&particles))
            });
        });
    }
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let caps: Vec<f64> = (0..16).map(|i| 120.0 - 7.0 * i as f64).collect();
    c.bench_function("partition_proportional_100k_over_16", |b| {
        b.iter(|| black_box(partition_proportional(black_box(100_000), &caps)));
    });
}

criterion_group!(
    benches,
    bench_force_kernel,
    bench_speculate_and_check,
    bench_barnes_hut_vs_direct,
    bench_partitioning
);

/// Median wall-clock seconds for one call of `eval`, over `samples`
/// batches of `reps` calls each (reps sized so a batch is long enough for
/// `Instant` resolution).
fn median_secs(samples: usize, reps: u32, mut eval: impl FnMut()) -> f64 {
    eval(); // warm caches and page in the buffers
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..reps {
                eval();
            }
            t0.elapsed().as_secs_f64() / reps as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Scalar-vs-SoA throughput A/B at the ISSUE's N ∈ {1024, 4096}, reported
/// in modelled pairs/sec (the desim accounting's pair counts, so the SoA
/// self-kernel's Newton's-third-law halving shows up as throughput).
fn throughput_ab() -> Vec<KernelRow> {
    let samples = 5;
    let mut rows = Vec::new();
    for n in [1024usize, 4096] {
        // Each sample batch should take O(10ms): one N=4096 self-eval is
        // already ~10⁷ pair updates, so scale reps down as N² grows.
        let reps: u32 = if n <= 1024 { 8 } else { 1 };
        let bodies = SoaBodies::from_particles(&uniform_cloud(n, 42));
        let ranges = partition_proportional(n, &[1.0, 1.0]);
        let parts = split_soa(&bodies, &ranges);
        let (half_a, half_b) = (&parts[0], &parts[1]);

        // AoS mirrors for the scalar reference kernels.
        let pos = bodies.pos.to_vec3s();
        let mass = bodies.mass.clone();
        let a_pos = half_a.pos.to_vec3s();
        let b_pos = half_b.pos.to_vec3s();
        let b_mass = half_b.mass.clone();

        let self_pairs = (n as u64) * (n as u64 - 1);
        let part_pairs = (half_a.len() as u64) * (half_b.len() as u64);

        let mut acc_aos = vec![ZERO3; n];
        rows.push(KernelRow {
            kernel: "scalar_self".into(),
            n,
            pairs: self_pairs,
            secs: median_secs(samples, reps, || {
                acc_aos.iter_mut().for_each(|a| *a = ZERO3);
                black_box(accumulate_self(
                    black_box(&pos),
                    &mass,
                    &mut acc_aos,
                    1.0,
                    0.05,
                ));
            }),
        });
        let mut acc_soa = Soa3::zeros(n);
        rows.push(KernelRow {
            kernel: "soa_self".into(),
            n,
            pairs: self_pairs,
            secs: median_secs(samples, reps, || {
                acc_soa.fill(ZERO3);
                black_box(accumulate_self_soa(
                    black_box(&bodies.pos),
                    &mass,
                    &mut acc_soa,
                    1.0,
                    0.05,
                ));
            }),
        });

        let mut acc_aos = vec![ZERO3; half_a.len()];
        rows.push(KernelRow {
            kernel: "scalar_partition".into(),
            n,
            pairs: part_pairs,
            secs: median_secs(samples, reps, || {
                acc_aos.iter_mut().for_each(|a| *a = ZERO3);
                black_box(accumulate_partition(
                    black_box(&a_pos),
                    &mut acc_aos,
                    &b_pos,
                    &b_mass,
                    1.0,
                    0.05,
                ));
            }),
        });
        let mut acc_soa = Soa3::zeros(half_a.len());
        rows.push(KernelRow {
            kernel: "soa_partition".into(),
            n,
            pairs: part_pairs,
            secs: median_secs(samples, reps, || {
                acc_soa.fill(ZERO3);
                black_box(accumulate_partition_soa(
                    black_box(&half_a.pos),
                    &mut acc_soa,
                    &half_b.pos,
                    &b_mass,
                    1.0,
                    0.05,
                ));
            }),
        });
    }
    rows
}

fn main() {
    benches();

    println!("\nforce-kernel throughput (modelled pairs/sec):");
    let rows = throughput_ab();
    for row in &rows {
        println!(
            "  {:<18} N={:<5} {:>8.2} Mpairs/s  ({:.3} ms/eval)",
            row.kernel,
            row.n,
            row.pairs_per_sec() / 1e6,
            row.secs * 1e3
        );
    }
    let speedup_at = |n: usize| {
        let get = |k: &str| {
            rows.iter()
                .find(|r| r.kernel == k && r.n == n)
                .map(KernelRow::pairs_per_sec)
                .unwrap_or(f64::NAN)
        };
        (
            get("soa_self") / get("scalar_self"),
            get("soa_partition") / get("scalar_partition"),
        )
    };
    for n in [1024usize, 4096] {
        let (s, p) = speedup_at(n);
        println!("  N={n}: SoA speedup self {s:.2}x, partition {p:.2}x");
    }
    match spec_bench::artifact::write("kernels", &kernels_json(&rows)) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write kernels artifact: {e}"),
    }
}
