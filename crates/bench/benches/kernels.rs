//! Criterion microbenchmarks of the computational kernels: the O(N²)
//! force accumulation, the eq. 10 speculation and eq. 11 check (the paper's
//! 70/12/24-operation cost trio), and the Barnes–Hut comparator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mpk::Rank;
use nbody::barnes_hut::{BhConfig, Octree};
use nbody::{partition_proportional, uniform_cloud, NBodyApp, NBodyConfig, SpeculationOrder};
use speccore::{History, SpeculativeApp};

fn bench_force_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("force_kernel");
    group.sample_size(20);
    for n in [100usize, 400] {
        let particles = uniform_cloud(n, 1);
        let ranges = partition_proportional(n, &[1.0, 1.0]);
        group.bench_with_input(BenchmarkId::new("partition_absorb", n), &n, |b, _| {
            let mut app = NBodyApp::new(
                &particles,
                ranges.clone(),
                0,
                NBodyConfig::default(),
                SpeculationOrder::Linear,
            );
            let remote = nbody::PartitionShared {
                pos: particles[n / 2..].iter().map(|p| p.pos).collect(),
                vel: particles[n / 2..].iter().map(|p| p.vel).collect(),
            };
            b.iter(|| {
                app.begin_iteration();
                let ops = app.absorb(Rank(1), black_box(&remote));
                app.finish_iteration();
                black_box(ops)
            });
        });
    }
    group.finish();
}

fn bench_speculate_and_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("speculation");
    group.sample_size(30);
    let n = 400;
    let particles = uniform_cloud(n, 2);
    let ranges = partition_proportional(n, &[1.0, 1.0]);
    let app = NBodyApp::new(
        &particles,
        ranges,
        0,
        NBodyConfig::default(),
        SpeculationOrder::Linear,
    );
    let remote = nbody::PartitionShared {
        pos: particles[n / 2..].iter().map(|p| p.pos).collect(),
        vel: particles[n / 2..].iter().map(|p| p.vel).collect(),
    };
    let mut hist = History::new(3);
    hist.record(0, remote.clone());
    hist.record(1, remote.clone());

    group.bench_function("speculate_eq10_200_particles", |b| {
        b.iter(|| black_box(app.speculate(Rank(1), black_box(&hist), 1)));
    });
    let (spec, _) = app.speculate(Rank(1), &hist, 1).unwrap();
    group.bench_function("check_eq11_200_particles", |b| {
        b.iter(|| black_box(app.check(Rank(1), black_box(&remote), black_box(&spec))));
    });
    group.finish();
}

fn bench_barnes_hut_vs_direct(c: &mut Criterion) {
    let mut group = c.benchmark_group("bh_vs_direct");
    group.sample_size(10);
    for n in [200usize, 800] {
        let particles = uniform_cloud(n, 3);
        group.bench_with_input(BenchmarkId::new("direct_n2", n), &n, |b, _| {
            let ranges = partition_proportional(n, &[1.0]);
            let mut app = NBodyApp::new(
                &particles,
                ranges,
                0,
                NBodyConfig::default(),
                SpeculationOrder::Linear,
            );
            b.iter(|| {
                black_box(app.begin_iteration());
            });
        });
        group.bench_with_input(BenchmarkId::new("barnes_hut", n), &n, |b, _| {
            b.iter(|| {
                let tree = Octree::build(black_box(&particles), BhConfig::default());
                black_box(tree.accel_on_all(&particles))
            });
        });
    }
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let caps: Vec<f64> = (0..16).map(|i| 120.0 - 7.0 * i as f64).collect();
    c.bench_function("partition_proportional_100k_over_16", |b| {
        b.iter(|| black_box(partition_proportional(black_box(100_000), &caps)));
    });
}

criterion_group!(
    benches,
    bench_force_kernel,
    bench_speculate_and_check,
    bench_barnes_hut_vs_direct,
    bench_partitioning
);
criterion_main!(benches);
