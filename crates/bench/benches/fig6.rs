//! Regenerates the paper's Figure 6 (model speedup vs recomputation %):
//! prints the text rendering and writes the `BENCH_fig6.json` artifact.
fn main() {
    let rows = spec_bench::experiments::fig6();
    println!("{}", spec_bench::render::fig6(&rows));
    let doc = spec_bench::artifact::fig6_json(&rows);
    let path = spec_bench::artifact::write("fig6", &doc).expect("writing BENCH_fig6.json");
    println!("wrote {}", path.display());
}
