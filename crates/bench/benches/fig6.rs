//! Regenerates the paper's Figure 6 (model speedup vs recomputation %).
fn main() {
    let rows = spec_bench::experiments::fig6();
    println!("{}", spec_bench::render::fig6(&rows));
}
