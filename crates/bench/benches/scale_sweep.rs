//! Regenerate `BENCH_scale.json`: the stackless kernel's rank-scaling
//! sweep (1k / 10k / 100k event-scheduled ranks, zero OS threads per
//! rank). See `spec_bench::scale` for the workload; `ci/bench_gate.sh`
//! gates `events_per_sec` (floor) and `rss_bytes_per_rank` (ceiling)
//! per row against `ci/bench_budgets.json`.

use spec_bench::artifact;
use spec_bench::scale::scale_sweep;

fn main() {
    let rows = scale_sweep(3, 42);
    println!("stackless scale sweep (ring, heterogeneous delays):");
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>14} {:>14} {:>12}",
        "ranks", "rounds", "wall s", "events", "events/s", "rank-rounds/s", "rss B/rank"
    );
    for r in &rows {
        println!(
            "{:>8} {:>8} {:>10.3} {:>12} {:>14.0} {:>14.0} {:>12.0}",
            r.ranks,
            r.rounds,
            r.wall_secs,
            r.events,
            r.events_per_sec(),
            r.ranks_per_sec(),
            r.rss_bytes_per_rank()
        );
    }
    let path = artifact::write("scale", &artifact::scale_json(&rows)).expect("write artifact");
    println!("wrote {}", path.display());
}
