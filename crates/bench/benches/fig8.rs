//! Regenerates the paper's Figure 8 (measured N-body speedups vs p).
//! Scale selected by SPEC_BENCH_SCALE (paper|quick, default paper).
//!
//! Besides the text rendering, writes `BENCH_fig8.json`: the raw sweep
//! data plus a full telemetry run report (per-rank phase totals, message
//! counters, span histograms) of the flagship configuration.
fn main() {
    let scale = spec_bench::Scale::from_env();
    let data = spec_bench::experiments::fig8_data(&scale);
    let rows = spec_bench::experiments::fig8_rows(&data, &scale);
    println!("{}", spec_bench::render::fig8(&rows));
    let report = spec_bench::experiments::fig8_run_report(&scale);
    let doc = spec_bench::artifact::fig8_json(&data, &report);
    let path = spec_bench::artifact::write("fig8", &doc).expect("writing BENCH_fig8.json");
    println!("wrote {}", path.display());
}
