//! Regenerates the paper's Figure 8 (measured N-body speedups vs p).
//! Scale selected by SPEC_BENCH_SCALE (paper|quick, default paper).
fn main() {
    let scale = spec_bench::Scale::from_env();
    let rows = spec_bench::experiments::fig8(&scale);
    println!("{}", spec_bench::render::fig8(&rows));
}
