//! Regenerates the paper's Table 2 (per-iteration phase times).
fn main() {
    let scale = spec_bench::Scale::from_env();
    let p = scale.p_values.iter().copied().max().unwrap_or(16).max(2);
    let rows = spec_bench::experiments::table2(&scale);
    println!("{}", spec_bench::render::table2(&rows, p));
}
