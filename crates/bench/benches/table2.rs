//! Regenerates the paper's Table 2 (per-iteration phase times):
//! prints the text rendering and writes the `BENCH_table2.json` artifact.
fn main() {
    let scale = spec_bench::Scale::from_env();
    let p = scale.p_values.iter().copied().max().unwrap_or(16).max(2);
    let rows = spec_bench::experiments::table2(&scale);
    println!("{}", spec_bench::render::table2(&rows, p));
    let doc = spec_bench::artifact::table2_json(&rows);
    let path = spec_bench::artifact::write("table2", &doc).expect("writing BENCH_table2.json");
    println!("wrote {}", path.display());
}
