//! Regenerates the paper's Figure 9 (model vs measured speedups).
fn main() {
    let scale = spec_bench::Scale::from_env();
    let data = spec_bench::experiments::fig8_data(&scale);
    let rows = spec_bench::experiments::fig9_rows(&scale, &data);
    println!("{}", spec_bench::render::fig9(&rows));
}
