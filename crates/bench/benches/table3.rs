//! Regenerates the paper's Table 3 (θ sweep: recomputations vs accepted error).
fn main() {
    let scale = spec_bench::Scale::from_env();
    let rows = spec_bench::experiments::table3(&scale);
    println!("{}", spec_bench::render::table3(&rows));
}
