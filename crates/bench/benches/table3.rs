//! Regenerates the paper's Table 3 (θ sweep: recomputations vs accepted error):
//! prints the text rendering and writes the `BENCH_table3.json` artifact.
fn main() {
    let scale = spec_bench::Scale::from_env();
    let rows = spec_bench::experiments::table3(&scale);
    println!("{}", spec_bench::render::table3(&rows));
    let doc = spec_bench::artifact::table3_json(&rows);
    let path = spec_bench::artifact::write("table3", &doc).expect("writing BENCH_table3.json");
    println!("wrote {}", path.display());
}
