//! Transport backend regression bench: the same two traffic patterns —
//! all-to-all broadcast throughput and two-rank ping-pong latency — run
//! over all three `Transport` backends (virtual-time sim, in-process
//! threads, loopback TCP sockets), in the style of a networking stack's
//! notifications-protocol benches.
//!
//! Each row is the best-of-9 wall-clock time of the *whole cluster run*,
//! setup included: the bench measures the backend as deployed (socket
//! rows pay their mesh handshake, sim rows pay the event kernel), so a
//! regression in any layer — codec, framing, mailbox, scheduler — moves
//! the number. Rows persist as `BENCH_transport.json`;
//! `ci/bench_gate.sh` fails CI when any `msgs_per_sec` falls more than
//! 25% below the checked-in budget (`ci/bench_budgets.json`, refreshed
//! with `BENCH_UPDATE_BUDGETS=1`).
//!
//! The artifact also carries two deterministic *bytes-on-wire* rows: the
//! N-body exchange phase broadcast as full snapshots vs delta frames on
//! the simulator. The gate holds each row under its checked-in byte
//! ceiling and requires the delta row to stay at least 3× cheaper per
//! iteration than the full row.

use std::time::Instant;

use desim::SimDuration;
use mpk::{
    run_sim_cluster, run_socket_cluster, run_thread_cluster, Rank, SocketClusterOptions, Tag,
    ThreadClusterOptions, Transport,
};
use nbody::{run_parallel, uniform_cloud, ParallelRunConfig};
use netsim::{ClusterSpec, ConstantLatency, Unloaded};
use spec_bench::artifact::{transport_json, ExchangeRow, TransportRow};
use speccore::DeltaExchange;

const BROADCAST_P: usize = 4;
const BROADCAST_FLOATS: usize = 256;
const BROADCAST_ITERS: u64 = 64;
const PINGPONG_FLOATS: usize = 8;
const PINGPONG_ROUNDS: u64 = 256;

/// Best (minimum) seconds for one call of `run`, over `samples` calls.
/// Scheduler and load noise only ever add time, so the minimum is the
/// stablest estimator for a regression gate — a real code regression
/// moves it, a busy CI machine mostly doesn't.
fn best_secs(samples: usize, mut run: impl FnMut()) -> f64 {
    run(); // warm-up: page in code, prime the loopback stack
    (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Every rank broadcasts a payload and drains its `p − 1` inbound copies,
/// each iteration — the exact traffic shape of the speculative driver's
/// exchange phase.
fn broadcast_driver<T: Transport<Msg = Vec<f64>>>(t: &mut T, floats: usize, iters: u64) -> u64 {
    let payload = vec![1.0f64; floats];
    let mut received = 0u64;
    for _ in 0..iters {
        t.broadcast(Tag(0), payload.clone());
        for _ in 0..t.size() - 1 {
            let env = t.recv();
            received += env.msg.len() as u64;
        }
    }
    received
}

/// Rank 0 sends and awaits the echo; rank 1 echoes — round-trip latency.
fn pingpong_driver<T: Transport<Msg = Vec<f64>>>(t: &mut T, floats: usize, rounds: u64) -> u64 {
    let payload = vec![1.0f64; floats];
    let mut received = 0u64;
    for _ in 0..rounds {
        if t.rank() == Rank(0) {
            t.send(Rank(1), Tag(0), payload.clone());
            received += t.recv().msg.len() as u64;
        } else {
            let env = t.recv();
            received += env.msg.len() as u64;
            t.send(Rank(0), Tag(0), env.msg);
        }
    }
    received
}

fn run_backend(backend: &str, mode: &str) -> TransportRow {
    let (p, floats, iters, msgs) = match mode {
        "broadcast" => (
            BROADCAST_P,
            BROADCAST_FLOATS,
            BROADCAST_ITERS,
            (BROADCAST_P * (BROADCAST_P - 1)) as u64 * BROADCAST_ITERS,
        ),
        "pingpong" => (2, PINGPONG_FLOATS, PINGPONG_ROUNDS, 2 * PINGPONG_ROUNDS),
        other => unreachable!("unknown mode {other}"),
    };
    let is_broadcast = mode == "broadcast";
    let secs = match backend {
        "sim" => best_secs(9, || {
            let cluster = ClusterSpec::homogeneous(p, 1000.0);
            let (outs, _) = run_sim_cluster::<Vec<f64>, _, _>(
                &cluster,
                ConstantLatency(SimDuration::from_micros(10)),
                Unloaded,
                false,
                move |t| {
                    if is_broadcast {
                        broadcast_driver(t, floats, iters)
                    } else {
                        pingpong_driver(t, floats, iters)
                    }
                },
            )
            .unwrap();
            assert!(outs.iter().all(|&r| r > 0));
        }),
        "thread" => best_secs(9, || {
            let outs = run_thread_cluster::<Vec<f64>, _, _>(
                p,
                ThreadClusterOptions::default(),
                move |t| {
                    if is_broadcast {
                        broadcast_driver(t, floats, iters)
                    } else {
                        pingpong_driver(t, floats, iters)
                    }
                },
            );
            assert!(outs.iter().all(|&r| r > 0));
        }),
        "socket" => best_secs(9, || {
            let outs = run_socket_cluster::<Vec<f64>, _, _>(
                p,
                SocketClusterOptions::default(),
                move |t| {
                    if is_broadcast {
                        broadcast_driver(t, floats, iters)
                    } else {
                        pingpong_driver(t, floats, iters)
                    }
                },
            );
            assert!(outs.iter().all(|&r| r > 0));
        }),
        other => unreachable!("unknown backend {other}"),
    };
    TransportRow {
        backend: backend.into(),
        mode: mode.into(),
        p,
        payload_floats: floats,
        msgs,
        secs,
    }
}

const EXCHANGE_P: usize = 4;
const EXCHANGE_BODIES: usize = 64;
const EXCHANGE_ITERS: u64 = 64;
const EXCHANGE_FLOOR: f64 = 1e-2;
const EXCHANGE_KEYFRAME: u64 = 32;

/// Bytes-on-wire of the driver's exchange phase: the paper-testbed
/// N-body workload at steady state, broadcast either as full partition
/// snapshots or as quantized delta frames. Runs on the virtual-time
/// simulator, so the byte counters are deterministic — the gate compares
/// them exactly, with no best-of-N sampling.
fn run_exchange(delta: Option<DeltaExchange>) -> ExchangeRow {
    let particles = uniform_cloud(EXCHANGE_BODIES, 11);
    let cluster = ClusterSpec::homogeneous(EXCHANGE_P, 1000.0);
    let mut cfg = ParallelRunConfig::new(EXCHANGE_ITERS, 2);
    if let Some(d) = delta {
        cfg.spec = cfg.spec.with_delta_exchange(d);
    }
    let result = run_parallel(
        &particles,
        &cluster,
        ConstantLatency(SimDuration::from_millis(2)),
        Unloaded,
        cfg,
    )
    .unwrap();
    ExchangeRow {
        mode: if delta.is_some() { "delta" } else { "full" }.into(),
        p: EXCHANGE_P,
        bodies: EXCHANGE_BODIES,
        iters: EXCHANGE_ITERS,
        floor: delta.map_or(0.0, |d| d.floor),
        keyframe: delta.map_or(0, |d| d.keyframe_interval),
        bytes_sent: result.stats.per_rank.iter().map(|s| s.bytes_sent).sum(),
        suppressed_bytes: result
            .stats
            .per_rank
            .iter()
            .map(|s| s.delta_suppressed_bytes)
            .sum(),
    }
}

fn main() {
    let mut rows = Vec::new();
    for backend in ["sim", "thread", "socket"] {
        for mode in ["broadcast", "pingpong"] {
            rows.push(run_backend(backend, mode));
        }
    }
    let exchange = vec![
        run_exchange(None),
        run_exchange(Some(DeltaExchange::new(EXCHANGE_FLOOR, EXCHANGE_KEYFRAME))),
    ];

    println!("transport backend regression (messages/sec, setup included):");
    for row in &rows {
        println!(
            "  {:<7} {:<10} p={} payload={:>4} f64  {:>10.0} msgs/s  ({:.3} ms/run)",
            row.backend,
            row.mode,
            row.p,
            row.payload_floats,
            row.msgs_per_sec(),
            row.secs * 1e3
        );
    }

    println!("exchange bytes on wire (nbody, sim backend, deterministic):");
    for row in &exchange {
        println!(
            "  {:<6} p={} bodies={} floor={:.0e} keyframe={:>2}  {:>8.0} bytes/iter  \
             (suppressed {} B total)",
            row.mode,
            row.p,
            row.bodies,
            row.floor,
            row.keyframe,
            row.bytes_per_iter(),
            row.suppressed_bytes,
        );
    }
    let full_bpi = exchange[0].bytes_per_iter();
    let delta_bpi = exchange[1].bytes_per_iter();
    println!(
        "  delta cuts steady-state bytes/iter {:.1}x vs full",
        full_bpi / delta_bpi
    );

    match spec_bench::artifact::write("transport", &transport_json(&rows, &exchange)) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write transport artifact: {e}");
            std::process::exit(1);
        }
    }
}
