//! Regenerate `BENCH_controller.json`: the adaptive speculation
//! controller on a heterogeneous-delay cluster, against an offline grid
//! search over fixed `(θ, FW)` points.
//!
//! Four ranks send through per-source one-way latencies spanning 16×
//! (0.5 / 2 / 8 / 1 ms) with deterministic transient spikes on top, so
//! the fixed `(θ, FW)` grid has genuinely bad corners (deep windows pay
//! speculation and check work; tight θ pays corrections). The fixed rows
//! sweep θ ∈ {0.01, 0.05} × FW ∈ 1..=6; the adaptive row starts from
//! (θ = 0.01, FW = 1) and must retune itself to a makespan within
//! `ratio_ceiling` of the best fixed point — that ratio is what
//! `ci/bench_gate.sh` gates against `ci/bench_budgets.json`.
//!
//! Everything runs on the virtual-time simulator, so every number here is
//! a deterministic function of the scenario: the gate compares exact
//! nanoseconds across checkouts, not wall-clock noise.

use desim::SimDuration;
use mpk::{run_sim_cluster_with_options, FaultSpec, SimClusterOptions, Transport};
use netsim::{ClusterSpec, MachineSpec, MsgCtx, NetworkModel, TransientDelays, Unloaded};
use spec_bench::artifact::{self, ControllerRow};
use speccore::{run_speculative, ControllerConfig, IterMsg, RunStats, SpecConfig};
use workloads::{SyntheticApp, SyntheticConfig};

const P: usize = 4;
const N_VARS: usize = 32;
const ITERS: u64 = 60;
const MIPS: f64 = 100.0;
/// Per-source one-way latency, microseconds: rank 2 is 16× slower than
/// rank 0, so the best window depth differs per peer.
const LATENCY_US: [u64; P] = [500, 2_000, 8_000, 1_000];
const THETAS: [f64; 2] = [0.01, 0.05];
const FW_MAX: u32 = 6;
/// Transient spike injection: probability per message and extra delay.
/// Constant latency alone is absorbed by the send-on-confirm pipeline at
/// any depth — it is delay *variation* that deeper windows compute
/// through (the paper's §1 premise), so the spikes are what give the FW
/// axis of the sweep its dynamic range.
const SPIKE_PROB: f64 = 0.25;
const SPIKE_EXTRA_MS: u64 = 30;
const SPIKE_SEED: u64 = 7;

/// Per-source constant latency: each sender's messages take its own
/// fixed one-way delay, regardless of destination or size.
struct HeteroLatency;

impl NetworkModel for HeteroLatency {
    fn delay(&mut self, ctx: &MsgCtx) -> SimDuration {
        SimDuration::from_micros(LATENCY_US[ctx.src % P])
    }
}

fn app_cfg(theta: f64) -> SyntheticConfig {
    SyntheticConfig {
        theta,
        seed: 42,
        // ~1 ms of compute per iteration at 100 MIPS: small against the
        // spike scale, so window depth genuinely trades masking against
        // speculation work.
        f_comp: 3_000,
        ..Default::default()
    }
}

/// One deterministic cluster run; returns (virtual ns, per-rank stats).
fn run(theta: f64, cfg: SpecConfig) -> (u64, Vec<RunStats>) {
    let cluster = ClusterSpec::new(vec![MachineSpec::new(MIPS); P]);
    let ranges: Vec<_> = (0..P)
        .map(|i| i * N_VARS / P..(i + 1) * N_VARS / P)
        .collect();
    let net = TransientDelays::new(
        HeteroLatency,
        SPIKE_PROB,
        SimDuration::from_millis(SPIKE_EXTRA_MS),
        SPIKE_SEED,
    );
    let (stats, report) = run_sim_cluster_with_options::<IterMsg<Vec<f64>>, _, _>(
        &cluster,
        net,
        Unloaded,
        FaultSpec::none(),
        SimClusterOptions::default(),
        move |t| {
            let mut app = SyntheticApp::new(N_VARS, &ranges, t.rank().0, app_cfg(theta));
            run_speculative(t, &mut app, ITERS, cfg.clone())
        },
    )
    .expect("controller sweep run failed");
    (report.end_time.as_nanos(), stats)
}

fn main() {
    println!("controller vs fixed (θ, FW) grid, heterogeneous delays {LATENCY_US:?} µs:");
    println!("{:>8} {:>4} {:>14}", "theta", "fw", "makespan ms");

    let mut rows = Vec::new();
    for &theta in &THETAS {
        for fw in 1..=FW_MAX {
            let (elapsed_ns, _) = run(theta, SpecConfig::speculative(fw));
            println!("{:>8} {:>4} {:>14.3}", theta, fw, elapsed_ns as f64 / 1e6);
            rows.push(ControllerRow {
                theta,
                fw,
                elapsed_ns,
            });
        }
    }
    let best_fixed_ns = rows.iter().map(|r| r.elapsed_ns).min().expect("grid");

    // Adaptive run: start at the worst corner of the grid and let the
    // controller retune θ over the same values and FW over the same range.
    let ctl = ControllerConfig::new()
        .with_theta_grid(THETAS.to_vec())
        .with_cadence(6, 2)
        .with_fw_max(FW_MAX);
    let (adaptive_ns, stats) = run(THETAS[0], SpecConfig::speculative(1).with_adaptive(ctl));
    let s0 = &stats[0];
    println!(
        "{:>8} {:>4} {:>14.3}  (controller: fw {} theta {} after {} retunes)",
        "adapt",
        "-",
        adaptive_ns as f64 / 1e6,
        s0.controller_fw,
        s0.controller_theta,
        s0.controller_retunes
    );
    println!(
        "best fixed {:.3} ms, adaptive {:.3} ms, ratio {:.3}",
        best_fixed_ns as f64 / 1e6,
        adaptive_ns as f64 / 1e6,
        adaptive_ns as f64 / best_fixed_ns as f64
    );

    let doc = artifact::controller_json(
        &rows,
        best_fixed_ns,
        adaptive_ns,
        s0.controller_fw,
        s0.controller_theta,
        stats.iter().map(|s| s.controller_retunes).sum(),
    );
    let path = artifact::write("controller", &doc).expect("write artifact");
    println!("wrote {}", path.display());
}
