//! The six experiment regenerators.

use desim::rng::derive_seed;
use desim::SimDuration;
use nbody::{centered_cloud, run_parallel, NBodyConfig, ParallelRunConfig, ParallelRunResult};
use netsim::{ClusterSpec, Jitter, NetworkModel, SharedMedium, TransientDelays, Unloaded};
use perfmodel::{fig5_series, fig6_series, CommModel, Fig5Row, Fig6Row, ModelParams};
use speccore::CorrectionMode;

use crate::Scale;

// ---------------------------------------------------------------------------
// Shared experiment environment
// ---------------------------------------------------------------------------

/// The network standing in for the paper's shared 10 Mb/s Ethernet:
/// a contended shared medium with ±30% jitter and rare large transient
/// delays (the paper: delays are "large and often subject to large
/// variations due to non-deterministic network traffic").
///
/// Parameters are derived from the particle count so that at p = 16 the
/// per-iteration communication-to-computation ratio lands near the paper's
/// Table 2 (4.73 s comm vs 5.83 s comp ⇒ ≈ 0.8) at *any* problem size —
/// the quick CI scale then probes the same regime as the paper scale.
pub fn testbed_network(seed: u64, n_particles: usize) -> impl NetworkModel + 'static {
    let cluster = ClusterSpec::paper_testbed();
    let total_ops_per_sec: f64 = cluster.capacities().iter().map(|m| m * 1e6).sum();
    let n = n_particles as f64;
    // Balanced compute per iteration at p = 16 (70 ops per pair).
    let comp16 = 70.0 * n * n / total_ops_per_sec;
    // Bytes on the bus per iteration: every rank broadcasts its partition.
    let bytes_per_iter = 15.0 * (48.0 * n + 16.0 * 72.0);
    let bandwidth = bytes_per_iter / (0.8 * comp16);

    let bus = SharedMedium::new(SimDuration::from_secs_f64(comp16 / 134.0), bandwidth);
    let jittered = Jitter::new(bus, 0.3, derive_seed(seed, 0xA));
    // Rare but long stalls (~2 compute phases): the Figure 4 regime where
    // a deeper forward window pays off.
    TransientDelays::new(
        jittered,
        0.01,
        SimDuration::from_secs_f64(1.8 * comp16),
        derive_seed(seed, 0xB),
    )
}

/// Physics parameters for the measured experiments. `G` and `dt` are set
/// so the cloud is dynamically hot: close encounters produce speculation
/// errors spanning the paper's θ sweep (otherwise every θ accepts
/// everything and Table 3 degenerates).
pub fn experiment_nbody_config() -> NBodyConfig {
    NBodyConfig {
        g: 1.0,
        softening: 0.01,
        dt: 1e-2,
        theta: 0.01,
    }
}

fn run_case(
    particles: &[nbody::Particle],
    cluster: &ClusterSpec,
    fw: u32,
    ncfg: NBodyConfig,
    scale: &Scale,
    net_stream: u64,
) -> ParallelRunResult {
    let mut cfg = ParallelRunConfig::new(scale.iterations, fw);
    cfg.nbody = ncfg;
    cfg.spec = cfg.spec.with_correction(CorrectionMode::Incremental);
    run_parallel(
        particles,
        cluster,
        testbed_network(derive_seed(scale.seed, net_stream), particles.len()),
        Unloaded,
        cfg,
    )
    .expect("experiment run failed")
}

// ---------------------------------------------------------------------------
// Figure 5 and Figure 6 (model)
// ---------------------------------------------------------------------------

/// Figure 5: model speedups versus processor count for the §4 example
/// (k = 2%).
pub fn fig5() -> Vec<Fig5Row> {
    fig5_series(&ModelParams::paper_example(), 16)
}

/// Figure 6: model speedup on 8 processors versus recomputation
/// percentage.
pub fn fig6() -> Vec<Fig6Row> {
    let ks: Vec<f64> = (0..=30).map(|i| i as f64 * 0.01).collect();
    fig6_series(&ModelParams::paper_example(), 8, &ks)
}

// ---------------------------------------------------------------------------
// Figure 8 (measured speedups) + raw data for Figure 9
// ---------------------------------------------------------------------------

/// One measured N-body run's summary.
#[derive(Clone, Debug)]
pub struct Fig8Run {
    /// Processor count.
    pub p: usize,
    /// Forward window.
    pub fw: u32,
    /// Total virtual run time, seconds.
    pub elapsed: f64,
    /// Mean communication wait per iteration per rank, seconds.
    pub comm_wait_per_iter: f64,
    /// Mean compute time per iteration per rank, seconds.
    pub compute_per_iter: f64,
    /// Measured recomputation fraction `k`.
    pub k: f64,
    /// Largest error among accepted speculations.
    pub max_accepted_error: f64,
    /// Full per-phase mean per-iteration breakdown.
    pub phases: speccore::PhaseBreakdown,
}

/// Figure 8's raw data: every `(p, FW)` run plus the single-processor
/// reference time.
#[derive(Clone, Debug)]
pub struct Fig8Data {
    /// Execution time on the fastest machine alone, seconds.
    pub t1: f64,
    /// All parallel runs.
    pub runs: Vec<Fig8Run>,
    /// The cluster used (fastest-first).
    pub cluster: ClusterSpec,
}

impl Fig8Data {
    /// The run for `(p, fw)`.
    pub fn run(&self, p: usize, fw: u32) -> &Fig8Run {
        self.runs
            .iter()
            .find(|r| r.p == p && r.fw == fw)
            .expect("no such run")
    }

    /// Measured speedup of `(p, fw)` relative to the fastest machine.
    pub fn speedup(&self, p: usize, fw: u32) -> f64 {
        self.t1 / self.run(p, fw).elapsed
    }
}

/// Run the full measured N-body sweep (p × FW ∈ {0, 1, 2}).
pub fn fig8_data(scale: &Scale) -> Fig8Data {
    let cluster = ClusterSpec::paper_testbed();
    let particles = centered_cloud(scale.n_particles, scale.seed);
    let ncfg = experiment_nbody_config();

    let single = run_case(&particles, &cluster.fastest(1), 0, ncfg, scale, 1);
    let t1 = single.elapsed_secs();

    let mut runs = Vec::new();
    for &p in &scale.p_values {
        if p < 2 {
            continue;
        }
        let sub = cluster.fastest(p);
        for fw in 0..=2u32 {
            let result = run_case(&particles, &sub, fw, ncfg, scale, p as u64);
            let phases = result.stats.mean_per_iteration();
            runs.push(Fig8Run {
                p,
                fw,
                elapsed: result.elapsed_secs(),
                comm_wait_per_iter: phases.comm_wait.as_secs_f64(),
                compute_per_iter: phases.compute.as_secs_f64(),
                k: result.stats.recomputation_fraction(),
                max_accepted_error: result.stats.max_accepted_error(),
                phases,
            });
        }
    }
    Fig8Data { t1, runs, cluster }
}

/// One row of Figure 8: measured speedups per forward window plus the
/// attainable maximum.
#[derive(Clone, Copy, Debug)]
pub struct Fig8Row {
    /// Processor count.
    pub p: usize,
    /// Speedup without speculation (FW = 0).
    pub fw0: f64,
    /// Speedup with FW = 1.
    pub fw1: f64,
    /// Speedup with FW = 2.
    pub fw2: f64,
    /// `Σ M_i / M_1`.
    pub max: f64,
}

/// Figure 8 rows derived from raw data.
pub fn fig8_rows(data: &Fig8Data, scale: &Scale) -> Vec<Fig8Row> {
    scale
        .p_values
        .iter()
        .filter(|&&p| p >= 2)
        .map(|&p| Fig8Row {
            p,
            fw0: data.speedup(p, 0),
            fw1: data.speedup(p, 1),
            fw2: data.speedup(p, 2),
            max: data.cluster.max_speedup(p),
        })
        .collect()
}

/// Figure 8, end to end.
pub fn fig8(scale: &Scale) -> Vec<Fig8Row> {
    fig8_rows(&fig8_data(scale), scale)
}

/// Re-run the flagship Figure 8 configuration (largest `p`, FW = 1) with
/// structured telemetry enabled and digest it into an [`obs::RunReport`]:
/// per-rank phase totals, message counters, span histograms. This is the
/// machine-readable run report embedded in `BENCH_fig8.json`.
pub fn fig8_run_report(scale: &Scale) -> obs::RunReport {
    let cluster = ClusterSpec::paper_testbed();
    let particles = centered_cloud(scale.n_particles, scale.seed);
    let p = scale.p_values.iter().copied().max().unwrap_or(16).max(2);
    let sub = cluster.fastest(p);
    let mut cfg = ParallelRunConfig::new(scale.iterations, 1).with_trace();
    cfg.nbody = experiment_nbody_config();
    cfg.spec = cfg.spec.with_correction(CorrectionMode::Incremental);
    let result = run_parallel(
        &particles,
        &sub,
        testbed_network(derive_seed(scale.seed, p as u64), particles.len()),
        Unloaded,
        cfg,
    )
    .expect("traced fig8 run failed");
    let traces = result.traces.as_deref().expect("collect_trace was set");
    obs::RunReport::from_traces(format!("fig8_p{p}_fw1"), traces)
}

// ---------------------------------------------------------------------------
// Table 2: phase breakdown at the largest processor count
// ---------------------------------------------------------------------------

/// One row of Table 2: mean per-iteration seconds in each phase.
#[derive(Clone, Copy, Debug)]
pub struct Table2Row {
    /// Forward window.
    pub fw: u32,
    /// Computation time (including corrections, as the paper folds
    /// recomputation into computation).
    pub computation: f64,
    /// Communication wait.
    pub communication: f64,
    /// Speculation time.
    pub speculation: f64,
    /// Checking time.
    pub check: f64,
    /// Makespan per iteration.
    pub total: f64,
}

/// Table 2: measured per-iteration phase times for the largest `p` in the
/// sweep (the paper's caption says 16), FW ∈ {0, 1, 2}.
pub fn table2(scale: &Scale) -> Vec<Table2Row> {
    let cluster = ClusterSpec::paper_testbed();
    let particles = centered_cloud(scale.n_particles, scale.seed);
    let ncfg = experiment_nbody_config();
    let p = scale.p_values.iter().copied().max().unwrap_or(16).max(2);
    let sub = cluster.fastest(p);

    (0..=2u32)
        .map(|fw| {
            let result = run_case(&particles, &sub, fw, ncfg, scale, 1000 + fw as u64);
            let ph = result.stats.mean_per_iteration();
            Table2Row {
                fw,
                computation: ph.compute.as_secs_f64() + ph.correct.as_secs_f64(),
                communication: ph.comm_wait.as_secs_f64(),
                speculation: ph.speculate.as_secs_f64(),
                check: ph.check.as_secs_f64(),
                total: result.elapsed_secs() / scale.iterations as f64,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 3: θ sweep
// ---------------------------------------------------------------------------

/// One row of Table 3.
#[derive(Clone, Copy, Debug)]
pub struct Table3Row {
    /// Acceptance threshold θ.
    pub theta: f64,
    /// Percentage of checked particles rejected (recomputed) — the
    /// paper's "Incorrect speculations".
    pub incorrect_pct: f64,
    /// Maximum force error silently accepted, in percent. The eq. 11
    /// metric bounds the relative position error; with inverse-square
    /// forces the induced force error is ≈ 2× that, which is exactly the
    /// factor visible in the paper's own table (θ = 0.1 → 20%).
    pub max_force_error_pct: f64,
}

/// Table 3: effect of the error bound θ on recomputations and accepted
/// force error (FW = 1, largest p).
pub fn table3(scale: &Scale) -> Vec<Table3Row> {
    let cluster = ClusterSpec::paper_testbed();
    let particles = centered_cloud(scale.n_particles, scale.seed);
    let p = scale.p_values.iter().copied().max().unwrap_or(16).max(2);
    let sub = cluster.fastest(p);

    [0.1, 0.05, 0.01, 0.005, 0.001]
        .iter()
        .map(|&theta| {
            let ncfg = experiment_nbody_config().with_theta(theta);
            let result = run_case(&particles, &sub, 1, ncfg, scale, 2000);
            Table3Row {
                theta,
                incorrect_pct: 100.0 * result.stats.recomputation_fraction(),
                max_force_error_pct: 200.0 * result.stats.max_accepted_error(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 9: model vs measured
// ---------------------------------------------------------------------------

/// One row of Figure 9.
#[derive(Clone, Copy, Debug)]
pub struct Fig9Row {
    /// Processor count.
    pub p: usize,
    /// Measured speedup, no speculation.
    pub measured_nospec: f64,
    /// Model-predicted speedup, no speculation.
    pub model_nospec: f64,
    /// Measured speedup, FW = 1.
    pub measured_spec: f64,
    /// Model-predicted speedup, FW = 1.
    pub model_spec: f64,
}

/// Build the §4 model parameterized from the N-body experiment, the way
/// the paper does for its Figure 9: per-variable costs from the kernel's
/// operation counts (70·N compute, 12 speculate, 24 check), capacities
/// from the testbed, `t_comm(p)` from the measured baseline communication
/// waits, and `k` from the measured FW = 1 recomputation fractions.
pub fn calibrated_model(scale: &Scale, data: &Fig8Data) -> ModelParams {
    let n = scale.n_particles as f64;
    let capacities: Vec<f64> = data.cluster.capacities().iter().map(|m| m * 1e6).collect();

    let max_p = *scale.p_values.iter().max().expect("non-empty sweep");
    let mut t_comm = vec![0.0; max_p];
    for &p in &scale.p_values {
        if p >= 2 {
            t_comm[p - 1] = data.run(p, 0).comm_wait_per_iter;
        }
    }
    let ks: Vec<f64> = scale
        .p_values
        .iter()
        .filter(|&&p| p >= 2)
        .map(|&p| data.run(p, 1).k)
        .collect();
    let k = ks.iter().sum::<f64>() / ks.len().max(1) as f64;

    ModelParams {
        n,
        f_comp: nbody::forces::OPS_PER_PAIR as f64 * n,
        f_spec: nbody::forces::OPS_PER_SPECULATE as f64,
        f_check: nbody::forces::OPS_PER_CHECK as f64,
        capacities,
        comm: CommModel::Table(t_comm),
        k,
    }
}

/// Figure 9 rows from already-collected Figure 8 data.
pub fn fig9_rows(scale: &Scale, data: &Fig8Data) -> Vec<Fig9Row> {
    let model = calibrated_model(scale, data);
    scale
        .p_values
        .iter()
        .filter(|&&p| p >= 2)
        .map(|&p| Fig9Row {
            p,
            measured_nospec: data.speedup(p, 0),
            model_nospec: model.speedup_nospec(p),
            measured_spec: data.speedup(p, 1),
            model_spec: model.speedup_spec(p),
        })
        .collect()
}

/// Figure 9, end to end (runs the measured sweep internally).
pub fn fig9(scale: &Scale) -> Vec<Fig9Row> {
    let data = fig8_data(scale);
    fig9_rows(scale, &data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale {
            n_particles: 60,
            iterations: 4,
            p_values: vec![1, 2, 4],
            seed: 7,
        }
    }

    #[test]
    fn fig5_and_fig6_are_cheap_and_shaped() {
        let f5 = fig5();
        assert_eq!(f5.len(), 16);
        let f6 = fig6();
        assert_eq!(f6.len(), 31);
    }

    #[test]
    fn fig8_data_is_complete_and_deterministic() {
        let scale = tiny_scale();
        let a = fig8_data(&scale);
        let b = fig8_data(&scale);
        assert_eq!(a.runs.len(), 6); // p ∈ {2,4} × FW ∈ {0,1,2}
        assert!(a.t1 > 0.0);
        for (ra, rb) in a.runs.iter().zip(&b.runs) {
            assert_eq!(ra.elapsed, rb.elapsed, "experiments must be deterministic");
        }
    }

    #[test]
    fn table2_and_table3_have_expected_rows() {
        let scale = tiny_scale();
        let t2 = table2(&scale);
        assert_eq!(t2.len(), 3);
        assert_eq!(t2[0].fw, 0);
        assert_eq!(t2[0].speculation, 0.0, "FW=0 must not speculate");
        let t3 = table3(&scale);
        assert_eq!(t3.len(), 5);
        // Tighter θ ⇒ (weakly) more recomputations and less accepted error.
        for w in t3.windows(2) {
            assert!(w[0].theta > w[1].theta);
            assert!(
                w[0].incorrect_pct <= w[1].incorrect_pct + 1e-9,
                "θ {} -> {}% vs θ {} -> {}%",
                w[0].theta,
                w[0].incorrect_pct,
                w[1].theta,
                w[1].incorrect_pct
            );
        }
    }

    #[test]
    fn fig9_model_is_in_the_same_ballpark_as_measured() {
        let scale = tiny_scale();
        let rows = fig9(&scale);
        for r in rows {
            let rel = (r.model_nospec - r.measured_nospec).abs() / r.measured_nospec;
            assert!(rel < 0.5, "model vs measured at p={} off by {rel}", r.p);
        }
    }
}
