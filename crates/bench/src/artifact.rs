//! Machine-readable bench artifacts (`BENCH_*.json`).
//!
//! Every regenerator persists its rows — and, for measured experiments, a
//! full [`obs::RunReport`] digest of a traced run — alongside the rendered
//! text, so plots and regression checks never re-parse terminal output.
//! Artifacts land in the directory named by `SPEC_BENCH_OUT` (default:
//! the current working directory) as `BENCH_<name>.json`.

use std::path::PathBuf;

use obs::{Json, RunReport};

use crate::experiments::{Fig8Data, Table2Row, Table3Row};
use perfmodel::{Fig5Row, Fig6Row};

/// The artifact output directory: `SPEC_BENCH_OUT` or `.`.
pub fn out_dir() -> PathBuf {
    std::env::var_os("SPEC_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Write `doc` as `BENCH_<name>.json` under [`out_dir`] and return the
/// path. Creates the directory if needed.
pub fn write(name: &str, doc: &Json) -> std::io::Result<PathBuf> {
    let dir = out_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, format!("{doc}\n"))?;
    Ok(path)
}

fn f(v: f64) -> Json {
    Json::F64(v)
}

/// Figure 5 rows (model speedups vs processor count) as JSON.
pub fn fig5_json(rows: &[Fig5Row]) -> Json {
    Json::obj([
        ("name", Json::Str("fig5".into())),
        ("kind", Json::Str("model_speedup_vs_p".into())),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("p", Json::U64(r.p as u64)),
                            ("no_spec", f(r.no_spec)),
                            ("spec", f(r.spec)),
                            ("max", f(r.max)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Figure 6 rows (model speedup vs recomputation fraction) as JSON.
pub fn fig6_json(rows: &[Fig6Row]) -> Json {
    Json::obj([
        ("name", Json::Str("fig6".into())),
        ("kind", Json::Str("model_speedup_vs_k".into())),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("k", f(r.k)),
                            ("spec", f(r.spec)),
                            ("no_spec", f(r.no_spec)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Figure 8 raw data (measured N-body sweep) plus a full telemetry digest
/// of the flagship configuration, as one JSON artifact.
pub fn fig8_json(data: &Fig8Data, report: &RunReport) -> Json {
    Json::obj([
        ("name", Json::Str("fig8".into())),
        ("kind", Json::Str("measured_nbody_speedups".into())),
        ("t1_secs", f(data.t1)),
        (
            "runs",
            Json::Arr(
                data.runs
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("p", Json::U64(r.p as u64)),
                            ("fw", Json::U64(u64::from(r.fw))),
                            ("elapsed_secs", f(r.elapsed)),
                            ("speedup", f(data.t1 / r.elapsed)),
                            ("comm_wait_per_iter_secs", f(r.comm_wait_per_iter)),
                            ("compute_per_iter_secs", f(r.compute_per_iter)),
                            ("k", f(r.k)),
                            ("max_accepted_error", f(r.max_accepted_error)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("traced_run", report.to_json()),
    ])
}

/// One wall-clock throughput measurement of a force kernel: `pairs`
/// modelled pair interactions evaluated in `secs` median seconds.
#[derive(Clone, Debug)]
pub struct KernelRow {
    /// Kernel under test (`"scalar_self"`, `"soa_self"`, …).
    pub kernel: String,
    /// Problem size N.
    pub n: usize,
    /// Modelled pair interactions per evaluation (N·(N−1) for the
    /// self-kernel, N_t·N_s for the partition kernel) — the same count the
    /// desim op accounting charges, so speedups here never touch the
    /// simulated-time results.
    pub pairs: u64,
    /// Median seconds per evaluation.
    pub secs: f64,
}

impl KernelRow {
    /// Throughput in modelled pair interactions per second.
    pub fn pairs_per_sec(&self) -> f64 {
        self.pairs as f64 / self.secs
    }
}

/// Kernel throughput rows (scalar vs SoA A/B) as JSON.
pub fn kernels_json(rows: &[KernelRow]) -> Json {
    Json::obj([
        ("name", Json::Str("kernels".into())),
        ("kind", Json::Str("force_kernel_throughput".into())),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("kernel", Json::Str(r.kernel.clone())),
                            ("n", Json::U64(r.n as u64)),
                            ("pairs", Json::U64(r.pairs)),
                            ("secs", f(r.secs)),
                            ("pairs_per_sec", f(r.pairs_per_sec())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// One wall-clock measurement of a transport backend moving messages:
/// `msgs` messages in `secs` best-of-N seconds (cluster setup included —
/// the row measures the backend as deployed, not an idealized steady
/// state).
#[derive(Clone, Debug)]
pub struct TransportRow {
    /// Backend under test (`"sim"`, `"thread"`, `"socket"`).
    pub backend: String,
    /// Traffic pattern (`"broadcast"` for all-to-all throughput,
    /// `"pingpong"` for two-rank latency).
    pub mode: String,
    /// Cluster size.
    pub p: usize,
    /// Payload size in f64 elements per message.
    pub payload_floats: usize,
    /// Messages moved per run (every rank's sends, summed).
    pub msgs: u64,
    /// Best-of-N seconds per run (min filters scheduler noise).
    pub secs: f64,
}

impl TransportRow {
    /// Throughput in messages per second — the budget-gated metric.
    pub fn msgs_per_sec(&self) -> f64 {
        self.msgs as f64 / self.secs
    }
}

/// One deterministic bytes-on-wire measurement of the speculative
/// driver's exchange phase: an N-body run on the virtual-time simulator
/// with the given broadcast mode, reduced to total metered send bytes.
/// Virtual time makes the row bit-reproducible — the byte gate compares
/// exact counter sums, not a noisy wall clock.
#[derive(Clone, Debug)]
pub struct ExchangeRow {
    /// Broadcast mode (`"full"` for snapshot frames, `"delta"` for
    /// shadow-diffed frames under a quantization floor).
    pub mode: String,
    /// Cluster size.
    pub p: usize,
    /// Total bodies across all partitions.
    pub bodies: usize,
    /// Timesteps driven.
    pub iters: u64,
    /// Quantization floor (0 for the full-broadcast row).
    pub floor: f64,
    /// Keyframe interval (0 for the full-broadcast row).
    pub keyframe: u64,
    /// Metered wire bytes sent, summed over all ranks.
    pub bytes_sent: u64,
    /// Bytes the delta encoder suppressed versus full frames.
    pub suppressed_bytes: u64,
}

impl ExchangeRow {
    /// Cluster-total bytes placed on the wire per iteration — the
    /// byte-ceiling-gated metric.
    pub fn bytes_per_iter(&self) -> f64 {
        self.bytes_sent as f64 / self.iters as f64
    }
}

/// Transport throughput/latency rows (sim vs thread vs socket) plus
/// full-vs-delta exchange byte rows as JSON — the artifact
/// `ci/bench_gate.sh` compares against checked-in budgets and byte
/// ceilings.
pub fn transport_json(rows: &[TransportRow], exchange: &[ExchangeRow]) -> Json {
    Json::obj([
        ("name", Json::Str("transport".into())),
        ("kind", Json::Str("transport_backend_regression".into())),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("backend", Json::Str(r.backend.clone())),
                            ("mode", Json::Str(r.mode.clone())),
                            ("p", Json::U64(r.p as u64)),
                            ("payload_floats", Json::U64(r.payload_floats as u64)),
                            ("msgs", Json::U64(r.msgs)),
                            ("secs", f(r.secs)),
                            ("msgs_per_sec", f(r.msgs_per_sec())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "exchange",
            Json::Arr(
                exchange
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("mode", Json::Str(r.mode.clone())),
                            ("p", Json::U64(r.p as u64)),
                            ("bodies", Json::U64(r.bodies as u64)),
                            ("iters", Json::U64(r.iters)),
                            ("floor", f(r.floor)),
                            ("keyframe", Json::U64(r.keyframe)),
                            ("bytes_sent", Json::U64(r.bytes_sent)),
                            ("suppressed_bytes", Json::U64(r.suppressed_bytes)),
                            ("bytes_per_iter", f(r.bytes_per_iter())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Table 2 rows (per-phase seconds per iteration) as JSON.
pub fn table2_json(rows: &[Table2Row]) -> Json {
    Json::obj([
        ("name", Json::Str("table2".into())),
        ("kind", Json::Str("phase_breakdown".into())),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("fw", Json::U64(u64::from(r.fw))),
                            ("computation_secs", f(r.computation)),
                            ("communication_secs", f(r.communication)),
                            ("speculation_secs", f(r.speculation)),
                            ("check_secs", f(r.check)),
                            ("total_secs", f(r.total)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Table 3 rows (θ sweep) as JSON.
pub fn table3_json(rows: &[Table3Row]) -> Json {
    Json::obj([
        ("name", Json::Str("table3".into())),
        ("kind", Json::Str("theta_sweep".into())),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("theta", f(r.theta)),
                            ("incorrect_pct", f(r.incorrect_pct)),
                            ("max_force_error_pct", f(r.max_force_error_pct)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Stackless-kernel scale sweep rows as JSON (`BENCH_scale.json`).
pub fn scale_json(rows: &[crate::scale::ScaleRow]) -> Json {
    Json::obj([
        ("name", Json::Str("scale".into())),
        ("kind", Json::Str("stackless_rank_scaling".into())),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("ranks", Json::U64(r.ranks as u64)),
                            ("rounds", Json::U64(r.rounds)),
                            ("wall_secs", f(r.wall_secs)),
                            ("events", Json::U64(r.events)),
                            ("messages", Json::U64(r.messages)),
                            ("events_per_sec", f(r.events_per_sec())),
                            ("ranks_per_sec", f(r.ranks_per_sec())),
                            ("peak_rss_bytes", Json::U64(r.peak_rss_bytes)),
                            ("rss_bytes_per_rank", f(r.rss_bytes_per_rank())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// One fixed `(θ, FW)` grid point of the heterogeneous-delay controller
/// sweep: a deterministic virtual-time makespan on the simulator, so the
/// gate compares exact nanoseconds, not a noisy wall clock.
#[derive(Clone, Debug)]
pub struct ControllerRow {
    /// Fixed acceptance threshold θ of this grid point.
    pub theta: f64,
    /// Fixed forward window of this grid point.
    pub fw: u32,
    /// Virtual makespan of the cluster run, in nanoseconds.
    pub elapsed_ns: u64,
}

/// Heterogeneous-delay controller sweep as JSON
/// (`BENCH_controller.json`): the fixed `(θ, FW)` grid, the best fixed
/// makespan, the adaptive controller's makespan, and their ratio — the
/// budget-gated metric (`ratio_ceiling`). `adaptive_fw` / `adaptive_theta`
/// record the controller's final decision for the sweep table in
/// EXPERIMENTS.md.
#[allow(clippy::too_many_arguments)]
pub fn controller_json(
    rows: &[ControllerRow],
    best_fixed_ns: u64,
    adaptive_ns: u64,
    adaptive_fw: u64,
    adaptive_theta: f64,
    adaptive_retunes: u64,
) -> Json {
    Json::obj([
        ("name", Json::Str("controller".into())),
        ("kind", Json::Str("hetero_delay_controller_sweep".into())),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("theta", f(r.theta)),
                            ("fw", Json::U64(u64::from(r.fw))),
                            ("elapsed_ns", Json::U64(r.elapsed_ns)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("best_fixed_ns", Json::U64(best_fixed_ns)),
        ("adaptive_ns", Json::U64(adaptive_ns)),
        ("ratio", f(adaptive_ns as f64 / best_fixed_ns as f64)),
        ("adaptive_fw", Json::U64(adaptive_fw)),
        ("adaptive_theta", f(adaptive_theta)),
        ("adaptive_retunes", Json::U64(adaptive_retunes)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_artifact_round_trips() {
        let rows = vec![Fig5Row {
            p: 2,
            no_spec: 1.5,
            spec: 1.9,
            max: 2.0,
        }];
        let doc = fig5_json(&rows);
        let parsed = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(parsed.get("name").and_then(Json::as_str), Some("fig5"));
        let row = &parsed.get("rows").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(row.get("p").and_then(Json::as_u64), Some(2));
        assert_eq!(row.get("spec").and_then(Json::as_f64), Some(1.9));
    }

    #[test]
    fn out_dir_defaults_to_cwd() {
        if std::env::var_os("SPEC_BENCH_OUT").is_none() {
            assert_eq!(out_dir(), PathBuf::from("."));
        }
    }
}
