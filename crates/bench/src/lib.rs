//! # spec-bench — the experiment harness
//!
//! One function per table/figure of the paper's evaluation, each returning
//! structured rows plus a text renderer, so the binaries under `src/bin`
//! and the `cargo bench` targets can regenerate every artifact:
//!
//! | Paper artifact | Function |
//! |----------------|----------|
//! | Figure 5 (model speedups vs p)            | [`experiments::fig5`] |
//! | Figure 6 (model speedup vs k, p = 8)      | [`experiments::fig6`] |
//! | Figure 8 (measured N-body speedups vs p)  | [`experiments::fig8`] |
//! | Figure 9 (model vs measured)              | [`experiments::fig9`] |
//! | Table 2 (per-phase times, p = 16)         | [`experiments::table2`] |
//! | Table 3 (θ sweep)                         | [`experiments::table3`] |
//!
//! Measured experiments run the real N-body code on the simulated
//! heterogeneous workstation network (`netsim`), in deterministic virtual
//! time. Absolute seconds differ from the 1994 testbed; the *shapes* are
//! the reproduction target.

#![warn(missing_docs)]

pub mod artifact;
pub mod experiments;
pub mod render;
pub mod scale;

/// Experiment sizing: the paper-scale configuration versus a quick one for
/// CI and debug builds.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Number of particles (the paper uses 1000).
    pub n_particles: usize,
    /// Timesteps per run.
    pub iterations: u64,
    /// Processor counts to sweep.
    pub p_values: Vec<usize>,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// The paper's configuration: 1000 particles on up to 16 machines.
    pub fn paper() -> Self {
        Scale {
            n_particles: 1000,
            iterations: 10,
            p_values: vec![1, 2, 4, 6, 8, 10, 12, 14, 16],
            seed: 42,
        }
    }

    /// A small configuration for debug builds and CI.
    pub fn quick() -> Self {
        Scale {
            n_particles: 200,
            iterations: 6,
            p_values: vec![1, 2, 4, 8, 16],
            seed: 42,
        }
    }

    /// Pick from the `SPEC_BENCH_SCALE` environment variable
    /// (`paper`/`quick`, default `paper`).
    pub fn from_env() -> Self {
        match std::env::var("SPEC_BENCH_SCALE").as_deref() {
            Ok("quick") => Scale::quick(),
            _ => Scale::paper(),
        }
    }
}
