//! Text renderers: each experiment printed as the paper's table/figure,
//! with the paper's reported values alongside for comparison.

use crate::experiments::{Fig8Row, Fig9Row, Table2Row, Table3Row};
use perfmodel::{Fig5Row, Fig6Row};

/// Render Figure 5 (model speedups vs p).
pub fn fig5(rows: &[Fig5Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 5 — model speedup vs processors (k = 2%)\n");
    out.push_str("  p | no-spec |    spec | maximum\n");
    out.push_str("----+---------+---------+--------\n");
    for r in rows {
        out.push_str(&format!(
            "{:>3} | {:>7.2} | {:>7.2} | {:>7.2}\n",
            r.p, r.no_spec, r.spec, r.max
        ));
    }
    let last = rows.last().expect("non-empty");
    out.push_str(&format!(
        "gain at p={}: {:+.1}%   (paper: up to ~25% at 16)\n",
        last.p,
        100.0 * (last.spec / last.no_spec - 1.0)
    ));
    out
}

/// Render Figure 6 (model speedup at p = 8 vs k).
pub fn fig6(rows: &[Fig6Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 6 — model speedup on 8 processors vs recomputation % \n");
    out.push_str("   k%  |    spec | no-spec\n");
    out.push_str("-------+---------+--------\n");
    for r in rows {
        out.push_str(&format!(
            "{:>5.1} | {:>7.2} | {:>7.2}\n",
            100.0 * r.k,
            r.spec,
            r.no_spec
        ));
    }
    let crossover = rows.iter().find(|r| r.spec < r.no_spec).map(|r| r.k);
    match crossover {
        Some(k) => out.push_str(&format!(
            "crossover at k ≈ {:.0}%   (paper: speculation wins for errors < 10%)\n",
            100.0 * k
        )),
        None => out.push_str("no crossover within the sweep\n"),
    }
    out
}

/// Render Figure 8 (measured N-body speedups).
pub fn fig8(rows: &[Fig8Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 8 — measured N-body speedup vs processors (θ = 0.01)\n");
    out.push_str("  p |  FW = 0 |  FW = 1 |  FW = 2 | maximum\n");
    out.push_str("----+---------+---------+---------+--------\n");
    for r in rows {
        out.push_str(&format!(
            "{:>3} | {:>7.2} | {:>7.2} | {:>7.2} | {:>7.2}\n",
            r.p, r.fw0, r.fw1, r.fw2, r.max
        ));
    }
    if let Some(last) = rows.last() {
        let best = last.fw1.max(last.fw2);
        out.push_str(&format!(
            "gain at p={}: {:+.1}% (paper: 34% at 16); best/max = {:.0}% (paper: within 20%)\n",
            last.p,
            100.0 * (best / last.fw0 - 1.0),
            100.0 * best / last.max
        ));
    }
    out
}

/// Render Table 2 (per-iteration phase times).
pub fn table2(rows: &[Table2Row], p: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table 2 — measured per-iteration times, {p}-processor 1000-particle run (seconds)\n"
    ));
    out.push_str("FW | computation | communication | speculation |  check |  total\n");
    out.push_str("---+-------------+---------------+-------------+--------+-------\n");
    for r in rows {
        out.push_str(&format!(
            "{:>2} | {:>11.4} | {:>13.4} | {:>11.4} | {:>6.4} | {:>6.4}\n",
            r.fw, r.computation, r.communication, r.speculation, r.check, r.total
        ));
    }
    out.push_str(
        "paper (abs. seconds on 1994 hardware):\n\
         \x20 0 |      5.83   |       4.73    |     0       |  0     | 10.56\n\
         \x20 1 |      5.85   |       1.43    |     0.2     |  1.02  |  8.52\n\
         \x20 2 |      5.82   |       0.22    |     0.3     |  1.5   |  7.79\n\
         (compare ratios/shape: comm shrinks sharply with FW, overheads stay small)\n",
    );
    out
}

/// Render Table 3 (θ sweep).
pub fn table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 3 — effect of the error bound θ (FW = 1)\n");
    out.push_str("    θ   | incorrect spec % | max force error %\n");
    out.push_str("--------+------------------+------------------\n");
    for r in rows {
        out.push_str(&format!(
            "{:>7.3} | {:>16.2} | {:>17.2}\n",
            r.theta, r.incorrect_pct, r.max_force_error_pct
        ));
    }
    out.push_str(
        "paper:  0.1 → <1% / 20%;  0.05 → <1% / 10%;  0.01 → 2% / 2%;\n\
         \x20       0.005 → 5% / 1%;  0.001 → 20% / 0.2%\n",
    );
    out
}

/// Render Figure 9 (model vs measured).
pub fn fig9(rows: &[Fig9Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 9 — model predictions vs measured speedups\n");
    out.push_str(
        "  p | meas no-spec | model no-spec | meas spec | model spec | err%(ns) | err%(s)\n",
    );
    out.push_str(
        "----+--------------+---------------+-----------+------------+----------+--------\n",
    );
    let mut worst: f64 = 0.0;
    for r in rows {
        let e0 = 100.0 * (r.model_nospec - r.measured_nospec).abs() / r.measured_nospec;
        let e1 = 100.0 * (r.model_spec - r.measured_spec).abs() / r.measured_spec;
        worst = worst.max(e0).max(e1);
        out.push_str(&format!(
            "{:>3} | {:>12.2} | {:>13.2} | {:>9.2} | {:>10.2} | {:>8.1} | {:>6.1}\n",
            r.p, r.measured_nospec, r.model_nospec, r.measured_spec, r.model_spec, e0, e1
        ));
    }
    out.push_str(&format!(
        "worst model error: {worst:.1}%   (paper: <10% below 8 processors, <25% up to 16)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments;

    #[test]
    fn model_renderers_produce_tables() {
        let s5 = fig5(&experiments::fig5());
        assert!(s5.contains("Figure 5"));
        assert!(s5.lines().count() > 16);
        let s6 = fig6(&experiments::fig6());
        assert!(s6.contains("crossover"));
    }

    #[test]
    fn measured_renderers_produce_tables() {
        let rows = vec![Table2Row {
            fw: 0,
            computation: 1.0,
            communication: 0.5,
            speculation: 0.0,
            check: 0.0,
            total: 1.5,
        }];
        let s = table2(&rows, 16);
        assert!(s.contains("Table 2"));
        assert!(s.contains("paper"));
        let t3 = table3(&[Table3Row {
            theta: 0.01,
            incorrect_pct: 2.0,
            max_force_error_pct: 2.0,
        }]);
        assert!(t3.contains("0.010"));
    }
}
