//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p spec-bench --bin experiments -- [all|fig5|fig6|fig8|fig9|table2|table3] [--quick]
//! ```

use spec_bench::{experiments, render, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which: Vec<&str> = args
        .iter()
        .map(|s| s.as_str())
        .filter(|a| !a.starts_with("--"))
        .collect();
    let which = if which.is_empty() { vec!["all"] } else { which };
    let scale = if quick {
        Scale::quick()
    } else {
        Scale::from_env()
    };
    let all = which.contains(&"all");

    println!(
        "# Speculative Computation — experiment harness (N = {}, iters = {}, seed = {})\n",
        scale.n_particles, scale.iterations, scale.seed
    );

    if all || which.contains(&"fig5") {
        println!("{}", render::fig5(&experiments::fig5()));
    }
    if all || which.contains(&"fig6") {
        println!("{}", render::fig6(&experiments::fig6()));
    }

    // fig8 / fig9 / table share the expensive measured sweep.
    let need_sweep = all || which.contains(&"fig8") || which.contains(&"fig9");
    if need_sweep {
        eprintln!("[running measured N-body sweep…]");
        let data = experiments::fig8_data(&scale);
        if all || which.contains(&"fig8") {
            println!("{}", render::fig8(&experiments::fig8_rows(&data, &scale)));
        }
        if all || which.contains(&"fig9") {
            println!("{}", render::fig9(&experiments::fig9_rows(&scale, &data)));
        }
    }
    if all || which.contains(&"table2") {
        eprintln!("[running Table 2 runs…]");
        let p = scale.p_values.iter().copied().max().unwrap_or(16).max(2);
        println!("{}", render::table2(&experiments::table2(&scale), p));
    }
    if all || which.contains(&"table3") {
        eprintln!("[running Table 3 θ sweep…]");
        println!("{}", render::table3(&experiments::table3(&scale)));
    }
}
