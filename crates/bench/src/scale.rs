//! Stackless-kernel scale sweep: how far the event-scheduled rank model
//! stretches.
//!
//! The threaded backend pins one OS thread per rank, so it tops out around
//! the platform thread limit (a few thousand). The stackless kernel holds
//! every rank as a resumable state machine inside the event loop, so rank
//! counts are bounded by memory, not by threads. Each sweep point runs a
//! token ring — one message per rank per round over heterogeneous
//! (ramped-capacity, jittered-latency) machines, closed by an expiring
//! timed receive per rank — and reports wall-clock throughput plus the
//! process peak-RSS growth attributable to the run.
//!
//! Rows persist as `BENCH_scale.json`; `ci/bench_gate.sh` holds
//! `events_per_sec` above a checked-in floor and `rss_bytes_per_rank`
//! under a checked-in ceiling for every row.

use std::time::Instant;

use desim::SimDuration;
use mpk::{run_sim_proc_cluster_with_options, FaultSpec, SimClusterOptions};
use netsim::{ClusterSpec, ConstantLatency, Jitter, MachineSpec, Unloaded};

/// One sweep point: a ring of `ranks` stackless processes.
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// Rank count (each rank is one event-scheduled coroutine, zero OS
    /// threads).
    pub ranks: usize,
    /// Ring rounds driven (one send + one blocking receive per rank per
    /// round).
    pub rounds: u64,
    /// Wall-clock seconds for the whole run, setup included.
    pub wall_secs: f64,
    /// Events the kernel dispatched.
    pub events: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Peak-RSS growth (bytes) of this process across the run, from
    /// `VmHWM` in `/proc/self/status`. High-water deltas only ever grow,
    /// so run sweep points in ascending rank order; 0 on platforms
    /// without procfs.
    pub peak_rss_bytes: u64,
}

impl ScaleRow {
    /// Kernel event throughput — the floor-gated metric.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs
    }

    /// Rank-rounds completed per wall-clock second.
    pub fn ranks_per_sec(&self) -> f64 {
        (self.ranks as u64 * self.rounds) as f64 / self.wall_secs
    }

    /// Peak-RSS growth per rank — the ceiling-gated metric.
    pub fn rss_bytes_per_rank(&self) -> f64 {
        self.peak_rss_bytes as f64 / self.ranks as f64
    }
}

/// Current peak resident set (`VmHWM`) in bytes, or 0 when unavailable.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().strip_suffix("kB"))
        .and_then(|kb| kb.trim().parse::<u64>().ok())
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// A heterogeneous cluster for the sweep: capacities ramp 2:1 across the
/// ranks, echoing the paper's mixed-workstation testbed at scale.
fn ramped_cluster(ranks: usize) -> ClusterSpec {
    let denom = (ranks - 1).max(1) as f64;
    ClusterSpec::new(
        (0..ranks)
            .map(|i| MachineSpec::new(50.0 * (1.0 - 0.5 * i as f64 / denom)))
            .collect(),
    )
}

/// Run one sweep point: `ranks` stackless processes in a token ring for
/// `rounds` rounds under jittered latency, each closing with an expiring
/// timed receive. Panics if the simulation errors — a deadlock here is a
/// kernel bug, not a measurement.
pub fn run_scale_point(ranks: usize, rounds: u64, seed: u64) -> ScaleRow {
    let cluster = ramped_cluster(ranks);
    let net = Jitter::new(ConstantLatency(SimDuration::from_micros(200)), 0.5, seed);
    let rss_before = peak_rss_bytes();
    let t0 = Instant::now();
    let (outs, report) = run_sim_proc_cluster_with_options::<u64, _, _, _>(
        &cluster,
        net,
        Unloaded,
        FaultSpec::none(),
        SimClusterOptions::default(),
        move |mut t| async move {
            use mpk::AsyncTransport;
            let me = t.rank().0 as u64;
            let mut seen = 0u64;
            for round in 0..rounds {
                let next = mpk::Rank((t.rank().0 + 1) % t.size());
                t.send(next, mpk::Tag(round as u32), me).await;
                seen += t.recv().await.msg;
                t.compute(100).await;
            }
            assert!(t.recv_timeout(SimDuration::from_micros(10)).await.is_none());
            seen
        },
    )
    .expect("scale ring must complete");
    let wall_secs = t0.elapsed().as_secs_f64();
    assert_eq!(outs.len(), ranks);
    ScaleRow {
        ranks,
        rounds,
        wall_secs,
        events: report.events_processed,
        messages: report.messages_delivered,
        peak_rss_bytes: peak_rss_bytes().saturating_sub(rss_before),
    }
}

/// The sweep: 1k, 10k and 100k ranks (ascending, so each point's RSS
/// delta isolates its own footprint).
pub fn scale_sweep(rounds: u64, seed: u64) -> Vec<ScaleRow> {
    [1_000usize, 10_000, 100_000]
        .into_iter()
        .map(|ranks| run_scale_point(ranks, rounds, seed))
        .collect()
}
