//! Chrome-trace (Trace Event Format) export.
//!
//! The output loads in Perfetto / `chrome://tracing`: one track (`tid`)
//! per rank, complete (`"X"`) events for phase spans, instant (`"i"`)
//! events for marks, and counter (`"C"`) events for gauge samples.
//! Timestamps are microseconds with three decimals — exact nanoseconds,
//! via [`Json::Micros`]. Output is deterministic: ranks ascending, events
//! in recorded order.

use crate::event::{Event, EventKind, Mark};
use crate::json::Json;
use crate::trace::RunTrace;

/// Build the Chrome-trace document for a set of per-rank traces.
pub fn chrome_trace(traces: &[RunTrace]) -> Json {
    let mut events = Vec::new();
    for trace in traces {
        events.push(thread_name_event(trace.rank));
        emit_rank(trace, &mut events);
    }
    Json::obj([
        ("displayTimeUnit", Json::Str("ms".into())),
        ("traceEvents", Json::Arr(events)),
    ])
}

/// [`chrome_trace`] serialized to a string, ready to write to a `.json`
/// file.
pub fn chrome_trace_string(traces: &[RunTrace]) -> String {
    chrome_trace(traces).to_string()
}

fn tid(rank: u32) -> Json {
    Json::U64(u64::from(rank))
}

fn track_label(rank: u32) -> String {
    if rank == Event::KERNEL_RANK {
        "kernel".to_string()
    } else {
        format!("rank {rank}")
    }
}

fn thread_name_event(rank: u32) -> Json {
    Json::obj([
        ("ph", Json::Str("M".into())),
        ("pid", Json::U64(0)),
        ("tid", tid(rank)),
        ("name", Json::Str("thread_name".into())),
        ("args", Json::obj([("name", Json::Str(track_label(rank)))])),
    ])
}

fn emit_rank(trace: &RunTrace, out: &mut Vec<Json>) {
    // Spans become "X" (complete) events, in begin order.
    for span in trace.spans() {
        let mut args = Vec::new();
        if let Some(iter) = span.iter {
            args.push(("iter".to_string(), Json::U64(iter)));
        }
        if let Some(depth) = span.depth {
            args.push(("depth".to_string(), Json::U64(depth)));
        }
        out.push(Json::obj([
            ("ph", Json::Str("X".into())),
            ("pid", Json::U64(0)),
            ("tid", tid(trace.rank)),
            ("ts", Json::Micros(span.start_ns)),
            ("dur", Json::Micros(span.duration_ns())),
            ("name", Json::Str(span.phase.name().into())),
            ("cat", Json::Str("phase".into())),
            ("args", Json::Obj(args)),
        ]));
    }
    // Marks and gauges, in recorded order.
    for ev in &trace.events {
        match ev.kind {
            EventKind::Mark(mark) => out.push(Json::obj([
                ("ph", Json::Str("i".into())),
                ("pid", Json::U64(0)),
                ("tid", tid(trace.rank)),
                ("ts", Json::Micros(ev.t_ns)),
                ("name", Json::Str(mark.name().into())),
                ("cat", Json::Str("mark".into())),
                ("s", Json::Str("t".into())),
                ("args", mark_args(mark)),
            ])),
            EventKind::GaugeSample { gauge, value } => out.push(Json::obj([
                ("ph", Json::Str("C".into())),
                ("pid", Json::U64(0)),
                ("tid", tid(trace.rank)),
                ("ts", Json::Micros(ev.t_ns)),
                ("name", Json::Str(gauge.name().into())),
                ("args", Json::obj([("value", Json::U64(value))])),
            ])),
            EventKind::SpanBegin { .. } | EventKind::SpanEnd { .. } => {}
        }
    }
}

fn mark_args(mark: Mark) -> Json {
    match mark {
        Mark::MsgSent { to, bytes } => {
            Json::obj([("to", Json::U64(to.into())), ("bytes", Json::U64(bytes))])
        }
        Mark::MsgRecv { from, bytes } => Json::obj([
            ("from", Json::U64(from.into())),
            ("bytes", Json::U64(bytes)),
        ]),
        Mark::Speculation { peer, ahead } => Json::obj([
            ("peer", Json::U64(peer.into())),
            ("ahead", Json::U64(ahead.into())),
        ]),
        Mark::Misspeculation { peer, iter } => {
            Json::obj([("peer", Json::U64(peer.into())), ("iter", Json::U64(iter))])
        }
        Mark::Correction { peer, depth } => Json::obj([
            ("peer", Json::U64(peer.into())),
            ("depth", Json::U64(depth)),
        ]),
        Mark::Rollback { to_iter } => Json::obj([("to_iter", Json::U64(to_iter))]),
        Mark::Commit { iter } => Json::obj([("iter", Json::U64(iter))]),
        Mark::MessageDropped { to, bytes } => {
            Json::obj([("to", Json::U64(to.into())), ("bytes", Json::U64(bytes))])
        }
        Mark::MessageDuplicated { to, copies } => Json::obj([
            ("to", Json::U64(to.into())),
            ("copies", Json::U64(copies.into())),
        ]),
        Mark::PeerCrashed { peer }
        | Mark::PeerRecovered { peer }
        | Mark::PeerSuspected { peer }
        | Mark::PeerQuarantined { peer }
        | Mark::PeerRejoined { peer }
        | Mark::PeerDeparted { peer } => Json::obj([("peer", Json::U64(peer.into()))]),
        Mark::DegradedEnter | Mark::DegradedExit => Json::obj([]),
        Mark::DeltaSuppressed { to, bytes } => {
            Json::obj([("to", Json::U64(to.into())), ("bytes", Json::U64(bytes))])
        }
        Mark::TimerFired { waited_ns } => Json::obj([("waited_ns", Json::U64(waited_ns))]),
        Mark::RecvWakeup { from, waited_ns } => Json::obj([
            ("from", Json::U64(from.into())),
            ("waited_ns", Json::U64(waited_ns)),
        ]),
        Mark::ControllerRetune {
            fw,
            theta_ppb,
            deadline_ns,
        } => Json::obj([
            ("fw", Json::U64(fw.into())),
            ("theta_ppb", Json::U64(theta_ppb)),
            ("deadline_ns", Json::U64(deadline_ns)),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Gauge, Phase};
    use crate::recorder::{MemoryRecorder, Recorder};

    fn sample_traces() -> Vec<RunTrace> {
        let mut r = MemoryRecorder::new();
        r.span_begin(0, 1_000, Phase::Compute, Some(3), Some(1));
        r.span_end(0, 4_500, Phase::Compute);
        r.mark(0, 4_500, Mark::MsgSent { to: 1, bytes: 64 });
        r.gauge(0, 4_500, Gauge::ExecQueueDepth, 2);
        r.span_begin(1, 0, Phase::CommWait, None, None);
        r.span_end(1, 9_000, Phase::CommWait);
        RunTrace::split_by_rank(r.take())
    }

    #[test]
    fn output_is_valid_json_with_expected_structure() {
        let text = chrome_trace_string(&sample_traces());
        let doc = Json::parse(&text).expect("chrome trace must be valid JSON");
        assert_eq!(
            doc.get("displayTimeUnit").and_then(Json::as_str),
            Some("ms")
        );
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // 2 metadata + 2 spans + 1 mark + 1 gauge.
        assert_eq!(events.len(), 6);
    }

    #[test]
    fn span_event_carries_exact_micros_and_args() {
        let doc = chrome_trace(&sample_traces());
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .unwrap();
        assert_eq!(span.get("name").and_then(Json::as_str), Some("compute"));
        assert_eq!(span.get("ts").unwrap().to_string(), "1.000");
        assert_eq!(span.get("dur").unwrap().to_string(), "3.500");
        assert_eq!(
            span.get("args")
                .and_then(|a| a.get("iter"))
                .and_then(Json::as_u64),
            Some(3)
        );
    }

    #[test]
    fn each_rank_gets_a_named_track() {
        let doc = chrome_trace(&sample_traces());
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert_eq!(names, vec!["rank 0", "rank 1"]);
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(
            chrome_trace_string(&sample_traces()),
            chrome_trace_string(&sample_traces())
        );
    }
}
