//! The typed event vocabulary of the telemetry subsystem.
//!
//! Everything a recorder can capture is one of four shapes: a phase span
//! boundary ([`EventKind::SpanBegin`]/[`EventKind::SpanEnd`]), a point
//! [`Mark`] (message sent, misspeculation, rollback, …), or a [`Gauge`]
//! sample (queue depths, event-heap size). Timestamps are raw `u64`
//! nanoseconds and ranks raw `u32` so this crate stays dependency-free and
//! every layer of the workspace — from the simulation kernel up to the
//! benches — can emit into it without a cycle.

/// The phases of the speculative driver, mirroring
/// `speccore::PhaseBreakdown` field for field so span totals can be
/// compared bit-for-bit against the driver's own accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Useful computation (absorbing inputs, finishing iterations).
    Compute,
    /// Blocked waiting for messages.
    CommWait,
    /// Producing speculated input values.
    Speculate,
    /// Comparing speculated against actual values.
    Check,
    /// Incremental correction of misspeculated inputs.
    Correct,
}

impl Phase {
    /// Every phase, in `PhaseBreakdown` field order.
    pub const ALL: [Phase; 5] = [
        Phase::Compute,
        Phase::CommWait,
        Phase::Speculate,
        Phase::Check,
        Phase::Correct,
    ];

    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Compute => "compute",
            Phase::CommWait => "comm_wait",
            Phase::Speculate => "speculate",
            Phase::Check => "check",
            Phase::Correct => "correct",
        }
    }
}

/// A point event: something that happened at an instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mark {
    /// A message left this rank.
    MsgSent {
        /// Destination rank.
        to: u32,
        /// Payload plus header bytes on the wire.
        bytes: u64,
    },
    /// A message was taken off this rank's mailbox.
    MsgRecv {
        /// Source rank.
        from: u32,
        /// Payload plus header bytes on the wire.
        bytes: u64,
    },
    /// A peer's input was speculated rather than awaited.
    Speculation {
        /// The peer whose value was predicted.
        peer: u32,
        /// How many iterations ahead of its last actual the prediction ran.
        ahead: u32,
    },
    /// A speculation check failed (error above θ).
    Misspeculation {
        /// The peer whose prediction was wrong.
        peer: u32,
        /// Iteration the bad input fed.
        iter: u64,
    },
    /// An incremental correction repaired a misspeculated input.
    Correction {
        /// The peer whose input was corrected.
        peer: u32,
        /// How many iterations had already been computed on top.
        depth: u64,
    },
    /// Execution rolled back to a confirmed checkpoint.
    Rollback {
        /// First iteration to re-execute.
        to_iter: u64,
    },
    /// An iteration was confirmed (all inputs actual or validated).
    Commit {
        /// The confirmed iteration.
        iter: u64,
    },
    /// The fault layer dropped a message at send time (loss, partition, or
    /// a crashed destination).
    MessageDropped {
        /// Destination rank the message never reached.
        to: u32,
        /// Payload plus header bytes that were lost.
        bytes: u64,
    },
    /// The fault layer delivered extra copies of a message.
    MessageDuplicated {
        /// Destination rank.
        to: u32,
        /// Number of extra copies injected (beyond the original).
        copies: u32,
    },
    /// A rank crashed (scripted), losing its volatile state.
    PeerCrashed {
        /// The crashed rank.
        peer: u32,
    },
    /// A crashed rank finished restarting and rejoined the computation.
    PeerRecovered {
        /// The recovered rank.
        peer: u32,
    },
    /// A peer has been silent past the heartbeat miss deadline — it may be
    /// dead, but no disconnect has been observed yet.
    PeerSuspected {
        /// The silent rank.
        peer: u32,
    },
    /// A suspected peer stayed silent long enough that the driver stopped
    /// waiting for its inputs: its partition is carried forward by
    /// speculation alone until it rejoins.
    PeerQuarantined {
        /// The quarantined rank.
        peer: u32,
    },
    /// A quarantined peer was heard from again and was readmitted: the
    /// driver ships it a full keyframe and resets the delta shadows before
    /// resuming θ-checking against its values.
    PeerRejoined {
        /// The readmitted rank.
        peer: u32,
    },
    /// A peer announced an orderly exit (goodbye frame) rather than
    /// vanishing — its absence is expected, not a failure.
    PeerDeparted {
        /// The departing rank.
        peer: u32,
    },
    /// The first peer entered quarantine: the cluster is now running in
    /// degraded mode, committing some iterations on speculation alone.
    DegradedEnter,
    /// The last quarantined peer rejoined (or departed): the cluster left
    /// degraded mode.
    DegradedExit,
    /// A delta frame replaced a full snapshot on the wire, saving bytes.
    DeltaSuppressed {
        /// Destination rank of the delta frame.
        to: u32,
        /// Bytes the full snapshot would have cost minus what the delta
        /// frame actually cost (zero when the delta was larger).
        bytes: u64,
    },
    /// A timed receive's deadline expired with no message: the transport
    /// woke on its (single) timer event, not on an arrival.
    TimerFired {
        /// How long the receive blocked before the deadline hit.
        waited_ns: u64,
    },
    /// A blocked timed receive was woken by a message arriving before its
    /// deadline.
    RecvWakeup {
        /// Source rank of the message that did the waking.
        from: u32,
        /// How long the receive blocked before the arrival.
        waited_ns: u64,
    },
    /// The adaptive speculation controller evaluated a retune at a
    /// confirmation boundary and (re)published its decision.
    ControllerRetune {
        /// The forward window now in force.
        fw: u32,
        /// The acceptance threshold now in force, in parts per billion
        /// (θ × 10⁹, saturating; `u64::MAX` when θ is not managed).
        theta_ppb: u64,
        /// The tightest adaptive per-peer loss deadline in force, in
        /// nanoseconds (0 while every peer still uses the static timeout).
        deadline_ns: u64,
    },
}

impl Mark {
    /// Stable lowercase name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            Mark::MsgSent { .. } => "msg_sent",
            Mark::MsgRecv { .. } => "msg_recv",
            Mark::Speculation { .. } => "speculation",
            Mark::Misspeculation { .. } => "misspeculation",
            Mark::Correction { .. } => "correction",
            Mark::Rollback { .. } => "rollback",
            Mark::Commit { .. } => "commit",
            Mark::MessageDropped { .. } => "message_dropped",
            Mark::MessageDuplicated { .. } => "message_duplicated",
            Mark::PeerCrashed { .. } => "peer_crashed",
            Mark::PeerRecovered { .. } => "peer_recovered",
            Mark::PeerSuspected { .. } => "peer_suspected",
            Mark::PeerQuarantined { .. } => "peer_quarantined",
            Mark::PeerRejoined { .. } => "peer_rejoined",
            Mark::PeerDeparted { .. } => "peer_departed",
            Mark::DegradedEnter => "degraded_enter",
            Mark::DegradedExit => "degraded_exit",
            Mark::DeltaSuppressed { .. } => "delta_suppressed",
            Mark::TimerFired { .. } => "timer_fired",
            Mark::RecvWakeup { .. } => "recv_wakeup",
            Mark::ControllerRetune { .. } => "controller_retune",
        }
    }
}

/// A sampled instantaneous quantity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Gauge {
    /// Executed-but-unconfirmed iterations in the driver's queue (the
    /// forward-window depth actually in flight).
    ExecQueueDepth,
    /// The window policy's current forward window.
    WindowSize,
    /// Iterations with buffered not-yet-consumed peer inputs.
    InboxDepth,
    /// Pending events in the simulation kernel's heap.
    EventHeapSize,
}

impl Gauge {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::ExecQueueDepth => "exec_queue_depth",
            Gauge::WindowSize => "window_size",
            Gauge::InboxDepth => "inbox_depth",
            Gauge::EventHeapSize => "event_heap_size",
        }
    }
}

/// What happened, without the when/who.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// A phase interval opened.
    SpanBegin {
        /// Which phase.
        phase: Phase,
        /// Iteration the span belongs to, if meaningful.
        iter: Option<u64>,
        /// Forward-window depth at the time, if meaningful.
        depth: Option<u64>,
    },
    /// The most recent open span of this phase closed.
    SpanEnd {
        /// Which phase.
        phase: Phase,
    },
    /// A point event.
    Mark(Mark),
    /// A gauge sample.
    GaugeSample {
        /// Which gauge.
        gauge: Gauge,
        /// Its instantaneous value.
        value: u64,
    },
}

/// One recorded telemetry event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// Nanosecond timestamp (virtual time on the simulated backend,
    /// wall-clock since cluster start on the thread backend).
    pub t_ns: u64,
    /// Emitting rank. [`Event::KERNEL_RANK`] for kernel-level events that
    /// belong to no rank.
    pub rank: u32,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Pseudo-rank for events emitted by the simulation kernel itself
    /// (e.g. event-heap gauges) rather than by a rank.
    pub const KERNEL_RANK: u32 = u32::MAX;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_unique_and_ordered() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec!["compute", "comm_wait", "speculate", "check", "correct"]
        );
    }

    #[test]
    fn mark_names_are_stable() {
        assert_eq!(Mark::MsgSent { to: 1, bytes: 2 }.name(), "msg_sent");
        assert_eq!(Mark::Rollback { to_iter: 3 }.name(), "rollback");
        assert_eq!(Mark::TimerFired { waited_ns: 7 }.name(), "timer_fired");
        assert_eq!(
            Mark::RecvWakeup {
                from: 1,
                waited_ns: 7
            }
            .name(),
            "recv_wakeup"
        );
        assert_eq!(
            Mark::ControllerRetune {
                fw: 2,
                theta_ppb: 10_000_000,
                deadline_ns: 5_000_000
            }
            .name(),
            "controller_retune"
        );
    }
}
