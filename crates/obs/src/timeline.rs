//! ASCII rendering of per-rank phase timelines — the quick-look
//! counterpart of the Chrome-trace export, for terminals and tests.

use crate::event::Phase;
use crate::trace::RunTrace;

fn glyph(phase: Phase) -> char {
    match phase {
        Phase::Compute => '#',
        Phase::CommWait => '.',
        Phase::Speculate => 's',
        Phase::Check => 'c',
        Phase::Correct => 'x',
    }
}

/// Render per-rank phase bars over a common time axis, `width` cells wide.
///
/// Each cell shows the phase that occupied the most time within its time
/// slice (blank if no phase was active). A legend and the time extent are
/// appended.
pub fn render(traces: &[RunTrace], width: usize) -> String {
    let width = width.max(10);
    let end_ns = traces.iter().map(RunTrace::end_ns).max().unwrap_or(0);
    let mut out = String::new();
    if end_ns == 0 {
        out.push_str("(empty trace)\n");
        return out;
    }
    for trace in traces {
        // Per-cell occupancy: time each phase spent inside the cell.
        let mut cells: Vec<[u64; 5]> = vec![[0; 5]; width];
        for span in trace.spans() {
            let p = Phase::ALL.iter().position(|q| *q == span.phase).unwrap();
            // Distribute the span over the cells it overlaps.
            let first = (span.start_ns as u128 * width as u128 / end_ns as u128) as usize;
            let last =
                (span.end_ns.saturating_sub(1) as u128 * width as u128 / end_ns as u128) as usize;
            let last = last.min(width - 1);
            for (cell, slot) in cells.iter_mut().enumerate().take(last + 1).skip(first) {
                let cell_lo = (cell as u128 * end_ns as u128 / width as u128) as u64;
                let cell_hi = ((cell + 1) as u128 * end_ns as u128 / width as u128) as u64;
                let lo = span.start_ns.max(cell_lo);
                let hi = span.end_ns.min(cell_hi);
                if hi > lo {
                    slot[p] += hi - lo;
                }
            }
        }
        out.push_str(&format!("rank {:>2} |", trace.rank));
        for cell in &cells {
            let best = (0..5).max_by_key(|i| cell[*i]).unwrap();
            out.push(if cell[best] == 0 {
                ' '
            } else {
                glyph(Phase::ALL[best])
            });
        }
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "legend: #=compute .=comm_wait s=speculate c=check x=correct   span: 0..{:.3} ms\n",
        end_ns as f64 / 1e6
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{MemoryRecorder, Recorder};

    #[test]
    fn renders_dominant_phase_per_cell() {
        let mut r = MemoryRecorder::new();
        // Rank 0: first half compute, second half waiting.
        r.span_begin(0, 0, Phase::Compute, None, None);
        r.span_end(0, 500, Phase::Compute);
        r.span_begin(0, 500, Phase::CommWait, None, None);
        r.span_end(0, 1000, Phase::CommWait);
        let traces = RunTrace::split_by_rank(r.take());
        let text = render(&traces, 10);
        let line = text.lines().next().unwrap();
        assert_eq!(line, "rank  0 |#####.....|");
        assert!(text.contains("legend:"));
    }

    #[test]
    fn empty_trace_is_handled() {
        assert!(render(&[], 40).contains("empty"));
    }

    #[test]
    fn idle_time_stays_blank() {
        let mut r = MemoryRecorder::new();
        r.span_begin(0, 800, Phase::Check, None, None);
        r.span_end(0, 1000, Phase::Check);
        let traces = RunTrace::split_by_rank(r.take());
        let line = render(&traces, 10);
        let bar = line.lines().next().unwrap();
        assert_eq!(bar, "rank  0 |        cc|");
    }
}
