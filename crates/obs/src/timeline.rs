//! ASCII rendering of per-rank phase timelines — the quick-look
//! counterpart of the Chrome-trace export, for terminals and tests.

use crate::event::{EventKind, Mark, Phase};
use crate::trace::RunTrace;

fn glyph(phase: Phase) -> char {
    match phase {
        Phase::Compute => '#',
        Phase::CommWait => '.',
        Phase::Speculate => 's',
        Phase::Check => 'c',
        Phase::Correct => 'x',
    }
}

/// Overlay glyph for a fault mark, with priority: crash/recovery beats a
/// drop when both land in one cell. `None` for non-fault marks.
fn fault_glyph(mark: Mark) -> Option<(char, u8)> {
    match mark {
        Mark::MessageDropped { .. } => Some(('D', 1)),
        Mark::PeerCrashed { .. } => Some(('K', 3)),
        Mark::PeerRecovered { .. } => Some(('R', 2)),
        Mark::PeerSuspected { .. } => Some(('?', 1)),
        Mark::PeerQuarantined { .. } => Some(('Q', 2)),
        Mark::PeerRejoined { .. } => Some(('J', 2)),
        _ => None,
    }
}

/// Render per-rank phase bars over a common time axis, `width` cells wide.
///
/// Each cell shows the phase that occupied the most time within its time
/// slice (blank if no phase was active). Fault marks — drops, crashes,
/// recoveries — overlay their cell with `D`/`K`/`R`. A legend and the time
/// extent are appended; fault glyphs join the legend only when present, so
/// fault-free renders are unchanged.
pub fn render(traces: &[RunTrace], width: usize) -> String {
    let width = width.max(10);
    let end_ns = traces.iter().map(RunTrace::end_ns).max().unwrap_or(0);
    let mut out = String::new();
    if end_ns == 0 {
        out.push_str("(empty trace)\n");
        return out;
    }
    let mut any_faults = false;
    for trace in traces {
        // Per-cell occupancy: time each phase spent inside the cell.
        let mut cells: Vec<[u64; 5]> = vec![[0; 5]; width];
        for span in trace.spans() {
            let p = Phase::ALL.iter().position(|q| *q == span.phase).unwrap();
            // Distribute the span over the cells it overlaps.
            let first = (span.start_ns as u128 * width as u128 / end_ns as u128) as usize;
            let last =
                (span.end_ns.saturating_sub(1) as u128 * width as u128 / end_ns as u128) as usize;
            let last = last.min(width - 1);
            for (cell, slot) in cells.iter_mut().enumerate().take(last + 1).skip(first) {
                let cell_lo = (cell as u128 * end_ns as u128 / width as u128) as u64;
                let cell_hi = ((cell + 1) as u128 * end_ns as u128 / width as u128) as u64;
                let lo = span.start_ns.max(cell_lo);
                let hi = span.end_ns.min(cell_hi);
                if hi > lo {
                    slot[p] += hi - lo;
                }
            }
        }
        // Fault marks overlay the phase bar.
        let mut overlay: Vec<Option<(char, u8)>> = vec![None; width];
        for ev in &trace.events {
            if let EventKind::Mark(m) = ev.kind {
                if let Some((g, prio)) = fault_glyph(m) {
                    any_faults = true;
                    let cell = (ev.t_ns.min(end_ns.saturating_sub(1)) as u128 * width as u128
                        / end_ns as u128) as usize;
                    let cell = cell.min(width - 1);
                    let wins = match overlay[cell] {
                        None => true,
                        Some((_, p)) => p < prio,
                    };
                    if wins {
                        overlay[cell] = Some((g, prio));
                    }
                }
            }
        }
        out.push_str(&format!("rank {:>2} |", trace.rank));
        for (i, cell) in cells.iter().enumerate() {
            if let Some((g, _)) = overlay[i] {
                out.push(g);
                continue;
            }
            let best = (0..5).max_by_key(|i| cell[*i]).unwrap();
            out.push(if cell[best] == 0 {
                ' '
            } else {
                glyph(Phase::ALL[best])
            });
        }
        out.push_str("|\n");
    }
    let fault_legend = if any_faults {
        " D=drop K=crash R=recover ?=suspect Q=quarantine J=rejoin"
    } else {
        ""
    };
    out.push_str(&format!(
        "legend: #=compute .=comm_wait s=speculate c=check x=correct{}   span: 0..{:.3} ms\n",
        fault_legend,
        end_ns as f64 / 1e6
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{MemoryRecorder, Recorder};

    #[test]
    fn renders_dominant_phase_per_cell() {
        let mut r = MemoryRecorder::new();
        // Rank 0: first half compute, second half waiting.
        r.span_begin(0, 0, Phase::Compute, None, None);
        r.span_end(0, 500, Phase::Compute);
        r.span_begin(0, 500, Phase::CommWait, None, None);
        r.span_end(0, 1000, Phase::CommWait);
        let traces = RunTrace::split_by_rank(r.take());
        let text = render(&traces, 10);
        let line = text.lines().next().unwrap();
        assert_eq!(line, "rank  0 |#####.....|");
        assert!(text.contains("legend:"));
    }

    #[test]
    fn empty_trace_is_handled() {
        assert!(render(&[], 40).contains("empty"));
    }

    #[test]
    fn fault_marks_overlay_the_bar_and_extend_the_legend() {
        let mut r = MemoryRecorder::new();
        r.span_begin(0, 0, Phase::Compute, None, None);
        r.mark(0, 250, Mark::MessageDropped { to: 1, bytes: 64 });
        r.mark(0, 500, Mark::PeerCrashed { peer: 0 });
        r.mark(0, 750, Mark::PeerRecovered { peer: 0 });
        r.span_end(0, 1000, Phase::Compute);
        let traces = RunTrace::split_by_rank(r.take());
        let text = render(&traces, 10);
        let bar = text.lines().next().unwrap();
        assert_eq!(bar, "rank  0 |##D##K#R##|");
        assert!(text.contains("D=drop K=crash R=recover"));
    }

    #[test]
    fn fault_free_render_keeps_the_plain_legend() {
        let mut r = MemoryRecorder::new();
        r.span_begin(0, 0, Phase::Compute, None, None);
        r.span_end(0, 1000, Phase::Compute);
        let traces = RunTrace::split_by_rank(r.take());
        let text = render(&traces, 10);
        assert!(
            text.contains("x=correct   span:"),
            "no fault legend: {text}"
        );
    }

    #[test]
    fn idle_time_stays_blank() {
        let mut r = MemoryRecorder::new();
        r.span_begin(0, 800, Phase::Check, None, None);
        r.span_end(0, 1000, Phase::Check);
        let traces = RunTrace::split_by_rank(r.take());
        let line = render(&traces, 10);
        let bar = line.lines().next().unwrap();
        assert_eq!(bar, "rank  0 |        cc|");
    }
}
