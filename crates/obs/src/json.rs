//! A minimal JSON tree with deterministic serialization and a strict
//! parser.
//!
//! Hand-rolled because this workspace builds without registry access. Two
//! properties matter here and are guaranteed: objects keep insertion order
//! (so exports are byte-stable run to run), and `u64` values round-trip
//! exactly (timestamps in nanoseconds exceed `f64`'s integer range).

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer, serialized exactly.
    U64(u64),
    /// A signed integer, serialized exactly.
    I64(i64),
    /// A finite float, serialized via Rust's shortest round-trip format.
    F64(f64),
    /// A nanosecond count serialized as fractional microseconds with three
    /// decimals (`1234567` → `1234.567`) — exact, unlike going through
    /// `f64`. This is the Chrome-trace `ts`/`dur` convention.
    Micros(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs, preserving order.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert; `Micros` divides by 1000).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::F64(v) => Some(v),
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::Micros(ns) => Some(ns as f64 / 1e3),
            _ => None,
        }
    }

    /// Parse a JSON document. Strict: one value, nothing but whitespace
    /// after it. Numbers with a fraction or exponent parse as [`Json::F64`];
    /// integers as [`Json::U64`]/[`Json::I64`].
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError {
                at: pos,
                what: "trailing characters",
            });
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(v) => write!(f, "{v}"),
            Json::I64(v) => write!(f, "{v}"),
            Json::F64(v) => {
                debug_assert!(v.is_finite(), "JSON cannot represent {v}");
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}") // keep a ".0" so floats stay floats
                } else {
                    write!(f, "{v}")
                }
            }
            Json::Micros(ns) => write!(f, "{}.{:03}", ns / 1000, ns % 1000),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

/// Where and why parsing failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// A short description.
    pub what: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for ParseError {}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &'static str) -> Result<(), ParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(ParseError {
            at: *pos,
            what: "unexpected token",
        })
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(ParseError {
            at: *pos,
            what: "unexpected end of input",
        }),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos,
                            what: "expected ',' or ']'",
                        })
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(ParseError {
                        at: *pos,
                        what: "expected ':'",
                    });
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos,
                            what: "expected ',' or '}'",
                        })
                    }
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(ParseError {
            at: *pos,
            what: "expected string",
        });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => {
                return Err(ParseError {
                    at: *pos,
                    what: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or(ParseError {
                            at: *pos,
                            what: "truncated \\u escape",
                        })?;
                        let hex = std::str::from_utf8(hex).map_err(|_| ParseError {
                            at: *pos,
                            what: "bad \\u escape",
                        })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| ParseError {
                            at: *pos,
                            what: "bad \\u escape",
                        })?;
                        // Surrogate pairs are not needed by our exports.
                        out.push(char::from_u32(code).ok_or(ParseError {
                            at: *pos,
                            what: "bad codepoint",
                        })?);
                        *pos += 4;
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos,
                            what: "bad escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| ParseError {
                    at: *pos,
                    what: "invalid UTF-8",
                })?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| ParseError {
        at: start,
        what: "bad number",
    })?;
    if text.is_empty() || text == "-" {
        return Err(ParseError {
            at: start,
            what: "expected value",
        });
    }
    if is_float {
        text.parse::<f64>().map(Json::F64).map_err(|_| ParseError {
            at: start,
            what: "bad number",
        })
    } else if let Ok(v) = text.parse::<u64>() {
        Ok(Json::U64(v))
    } else if let Ok(v) = text.parse::<i64>() {
        Ok(Json::I64(v))
    } else {
        Err(ParseError {
            at: start,
            what: "integer out of range",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_keep_insertion_order() {
        let j = Json::obj([("zebra", Json::U64(1)), ("apple", Json::U64(2))]);
        assert_eq!(j.to_string(), r#"{"zebra":1,"apple":2}"#);
    }

    #[test]
    fn u64_round_trips_exactly() {
        let big = u64::MAX - 7;
        let text = Json::U64(big).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(big));
    }

    #[test]
    fn micros_renders_exact_decimal() {
        assert_eq!(Json::Micros(1_234_567).to_string(), "1234.567");
        assert_eq!(Json::Micros(42).to_string(), "0.042");
        assert_eq!(Json::Micros(0).to_string(), "0.000");
        let parsed = Json::parse("1234.567").unwrap();
        assert_eq!(parsed, Json::F64(1234.567));
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}";
        let text = Json::Str(s.to_string()).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn nested_document_round_trips() {
        let doc = Json::obj([
            ("name", Json::Str("fig8".into())),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "xs",
                Json::Arr(vec![Json::U64(1), Json::I64(-2), Json::F64(0.5)]),
            ),
            ("nested", Json::obj([("k", Json::Str("v".into()))])),
        ]);
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("name").and_then(Json::as_str), Some("fig8"));
        assert_eq!(
            back.get("xs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            back.get("nested")
                .and_then(|n| n.get("k"))
                .and_then(Json::as_str),
            Some("v")
        );
        // Serialization is deterministic.
        assert_eq!(text, Json::parse(&text).unwrap().to_string());
    }

    #[test]
    fn float_formatting_keeps_type() {
        assert_eq!(Json::F64(3.0).to_string(), "3.0");
        assert_eq!(Json::parse("3.0").unwrap(), Json::F64(3.0));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let j = Json::parse("  { \"a\" : [ 1 , 2 ] }\n").unwrap();
        assert_eq!(
            j.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }
}
