//! Assembling raw event streams into per-rank [`RunTrace`]s: span pairing,
//! phase totals, counter totals, gauge series.

use std::collections::HashMap;

use crate::event::{Event, EventKind, Gauge, Mark, Phase};

/// A closed phase interval on one rank.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Span {
    /// Which phase.
    pub phase: Phase,
    /// When it opened, nanoseconds.
    pub start_ns: u64,
    /// When it closed, nanoseconds.
    pub end_ns: u64,
    /// Iteration attribute from the begin event.
    pub iter: Option<u64>,
    /// Forward-window-depth attribute from the begin event.
    pub depth: Option<u64>,
}

impl Span {
    /// The span's length in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Per-phase accumulated span time, field-compatible with
/// `speccore::PhaseBreakdown` (nanoseconds instead of `SimDuration`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Total [`Phase::Compute`] time.
    pub compute: u64,
    /// Total [`Phase::CommWait`] time.
    pub comm_wait: u64,
    /// Total [`Phase::Speculate`] time.
    pub speculate: u64,
    /// Total [`Phase::Check`] time.
    pub check: u64,
    /// Total [`Phase::Correct`] time.
    pub correct: u64,
}

impl PhaseTotals {
    /// Time attributed to `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        match phase {
            Phase::Compute => self.compute,
            Phase::CommWait => self.comm_wait,
            Phase::Speculate => self.speculate,
            Phase::Check => self.check,
            Phase::Correct => self.correct,
        }
    }

    fn add(&mut self, phase: Phase, d: u64) {
        match phase {
            Phase::Compute => self.compute += d,
            Phase::CommWait => self.comm_wait += d,
            Phase::Speculate => self.speculate += d,
            Phase::Check => self.check += d,
            Phase::Correct => self.correct += d,
        }
    }

    /// Sum over all phases.
    pub fn total(&self) -> u64 {
        self.compute + self.comm_wait + self.speculate + self.check + self.correct
    }
}

/// Totals derived from the point events of one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterTotals {
    /// Messages sent.
    pub messages_sent: u64,
    /// Messages received.
    pub messages_received: u64,
    /// Wire bytes sent (payload + header).
    pub bytes_sent: u64,
    /// Wire bytes received (payload + header).
    pub bytes_received: u64,
    /// Inputs speculated.
    pub speculations: u64,
    /// Speculation checks that failed.
    pub misspeculations: u64,
    /// Incremental corrections applied.
    pub corrections: u64,
    /// Checkpoint rollbacks.
    pub rollbacks: u64,
    /// Iterations confirmed.
    pub commits: u64,
    /// Messages the fault layer dropped at send time.
    pub messages_dropped: u64,
    /// Extra message copies the fault layer injected.
    pub messages_duplicated: u64,
    /// Scripted rank crashes.
    pub peer_crashes: u64,
    /// Crashed ranks that finished restarting.
    pub peer_recoveries: u64,
    /// Peers flagged silent past the heartbeat miss deadline.
    pub peers_suspected: u64,
    /// Peers the driver stopped waiting for (speculate-through-failure).
    pub peers_quarantined: u64,
    /// Quarantined peers heard from again and readmitted.
    pub peers_rejoined: u64,
    /// Peers that announced an orderly exit via goodbye frame.
    pub peers_departed: u64,
    /// Transitions into degraded mode (first peer quarantined).
    pub degraded_enters: u64,
    /// Transitions out of degraded mode (last quarantined peer back).
    pub degraded_exits: u64,
    /// Wire bytes saved by delta frames standing in for full snapshots.
    pub delta_suppressed_bytes: u64,
    /// Timed receives that expired on their deadline timer.
    pub timer_fires: u64,
    /// Blocked timed receives woken by an arrival before their deadline.
    pub recv_wakeups: u64,
    /// Total nanoseconds timed receives spent blocked before waking
    /// (summed over both timer expiries and arrival wakeups).
    pub wakeup_wait_ns: u64,
    /// Retune evaluations published by the adaptive speculation
    /// controller. Zero when the controller is off.
    pub controller_retunes: u64,
}

/// The telemetry of one rank over one run, in event order.
#[derive(Clone, Debug, Default)]
pub struct RunTrace {
    /// The rank these events belong to.
    pub rank: u32,
    /// Its events, time-ordered as recorded.
    pub events: Vec<Event>,
}

impl RunTrace {
    /// Split a combined event stream (e.g. from
    /// [`SharedRecorder::drain`](crate::SharedRecorder::drain)) into one
    /// trace per rank, ranks ascending, per-rank order preserved. The
    /// kernel pseudo-rank, if present, sorts last.
    pub fn split_by_rank(events: Vec<Event>) -> Vec<RunTrace> {
        let mut per_rank: HashMap<u32, Vec<Event>> = HashMap::new();
        for ev in events {
            per_rank.entry(ev.rank).or_default().push(ev);
        }
        let mut ranks: Vec<u32> = per_rank.keys().copied().collect();
        ranks.sort_unstable();
        ranks
            .into_iter()
            .map(|rank| RunTrace {
                rank,
                events: per_rank.remove(&rank).unwrap(),
            })
            .collect()
    }

    /// Pair span begin/end events into closed [`Span`]s, in begin order.
    ///
    /// Spans of different phases may nest; within one phase, ends match the
    /// most recent open begin.
    ///
    /// # Panics
    ///
    /// On a `SpanEnd` without a matching open begin, or an end before its
    /// begin — both indicate broken instrumentation.
    pub fn spans(&self) -> Vec<Span> {
        let mut open: HashMap<Phase, Vec<usize>> = HashMap::new();
        let mut spans: Vec<Option<Span>> = Vec::new();
        for ev in &self.events {
            match ev.kind {
                EventKind::SpanBegin { phase, iter, depth } => {
                    open.entry(phase).or_default().push(spans.len());
                    spans.push(Some(Span {
                        phase,
                        start_ns: ev.t_ns,
                        end_ns: ev.t_ns,
                        iter,
                        depth,
                    }));
                }
                EventKind::SpanEnd { phase } => {
                    let idx = open
                        .get_mut(&phase)
                        .and_then(Vec::pop)
                        .unwrap_or_else(|| panic!("span_end without begin: {phase:?}"));
                    let span = spans[idx].as_mut().expect("span slot filled at begin");
                    assert!(ev.t_ns >= span.start_ns, "span ends before it begins");
                    span.end_ns = ev.t_ns;
                }
                _ => {}
            }
        }
        let unclosed: Vec<Phase> = open
            .iter()
            .filter(|(_, stack)| !stack.is_empty())
            .map(|(p, _)| *p)
            .collect();
        assert!(
            unclosed.is_empty(),
            "spans left open at end of trace: {unclosed:?}"
        );
        spans.into_iter().flatten().collect()
    }

    /// Per-phase total span time. When the instrumented code accounts every
    /// active nanosecond to exactly one phase (as the speculative driver
    /// does), `phase_totals().total()` equals the rank's total active time
    /// bit for bit.
    pub fn phase_totals(&self) -> PhaseTotals {
        let mut totals = PhaseTotals::default();
        for span in self.spans() {
            totals.add(span.phase, span.duration_ns());
        }
        totals
    }

    /// Totals of the point events.
    pub fn counter_totals(&self) -> CounterTotals {
        let mut c = CounterTotals::default();
        for ev in &self.events {
            if let EventKind::Mark(m) = ev.kind {
                match m {
                    Mark::MsgSent { bytes, .. } => {
                        c.messages_sent += 1;
                        c.bytes_sent += bytes;
                    }
                    Mark::MsgRecv { bytes, .. } => {
                        c.messages_received += 1;
                        c.bytes_received += bytes;
                    }
                    Mark::Speculation { .. } => c.speculations += 1,
                    Mark::Misspeculation { .. } => c.misspeculations += 1,
                    Mark::Correction { .. } => c.corrections += 1,
                    Mark::Rollback { .. } => c.rollbacks += 1,
                    Mark::Commit { .. } => c.commits += 1,
                    Mark::MessageDropped { .. } => c.messages_dropped += 1,
                    Mark::MessageDuplicated { copies, .. } => {
                        c.messages_duplicated += u64::from(copies)
                    }
                    Mark::PeerCrashed { .. } => c.peer_crashes += 1,
                    Mark::PeerRecovered { .. } => c.peer_recoveries += 1,
                    Mark::PeerSuspected { .. } => c.peers_suspected += 1,
                    Mark::PeerQuarantined { .. } => c.peers_quarantined += 1,
                    Mark::PeerRejoined { .. } => c.peers_rejoined += 1,
                    Mark::PeerDeparted { .. } => c.peers_departed += 1,
                    Mark::DegradedEnter => c.degraded_enters += 1,
                    Mark::DegradedExit => c.degraded_exits += 1,
                    Mark::DeltaSuppressed { bytes, .. } => c.delta_suppressed_bytes += bytes,
                    Mark::TimerFired { waited_ns } => {
                        c.timer_fires += 1;
                        c.wakeup_wait_ns += waited_ns;
                    }
                    Mark::RecvWakeup { waited_ns, .. } => {
                        c.recv_wakeups += 1;
                        c.wakeup_wait_ns += waited_ns;
                    }
                    Mark::ControllerRetune { .. } => c.controller_retunes += 1,
                }
            }
        }
        c
    }

    /// The adaptive controller's final published decision, if any retune
    /// fired: `(fw, theta_ppb, deadline_ns)` from the last
    /// [`Mark::ControllerRetune`] in the trace.
    pub fn last_controller_decision(&self) -> Option<(u32, u64, u64)> {
        self.events.iter().rev().find_map(|ev| match ev.kind {
            EventKind::Mark(Mark::ControllerRetune {
                fw,
                theta_ppb,
                deadline_ns,
            }) => Some((fw, theta_ppb, deadline_ns)),
            _ => None,
        })
    }

    /// The time series of one gauge: `(t_ns, value)` samples in order.
    pub fn gauge_series(&self, which: Gauge) -> Vec<(u64, u64)> {
        self.events
            .iter()
            .filter_map(|ev| match ev.kind {
                EventKind::GaugeSample { gauge, value } if gauge == which => Some((ev.t_ns, value)),
                _ => None,
            })
            .collect()
    }

    /// Timestamp of the last event, or 0 for an empty trace.
    pub fn end_ns(&self) -> u64 {
        self.events.last().map_or(0, |e| e.t_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{MemoryRecorder, Recorder};

    fn sample_events() -> Vec<Event> {
        let mut r = MemoryRecorder::new();
        // Rank 0: compute 10..40, wait 40..100, check 100..110.
        r.span_begin(0, 10, Phase::Compute, Some(0), Some(1));
        r.span_end(0, 40, Phase::Compute);
        r.span_begin(0, 40, Phase::CommWait, None, None);
        r.mark(
            0,
            70,
            Mark::MsgRecv {
                from: 1,
                bytes: 128,
            },
        );
        r.span_end(0, 100, Phase::CommWait);
        r.span_begin(0, 100, Phase::Check, Some(0), Some(1));
        r.span_end(0, 110, Phase::Check);
        r.mark(0, 110, Mark::Commit { iter: 0 });
        r.gauge(0, 110, Gauge::ExecQueueDepth, 0);
        // Rank 1: one compute span and a send.
        r.mark(1, 5, Mark::MsgSent { to: 0, bytes: 128 });
        r.span_begin(1, 5, Phase::Compute, Some(0), Some(1));
        r.span_end(1, 45, Phase::Compute);
        r.take()
    }

    #[test]
    fn split_by_rank_orders_and_partitions() {
        let traces = RunTrace::split_by_rank(sample_events());
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].rank, 0);
        assert_eq!(traces[1].rank, 1);
        assert_eq!(traces[0].events.len(), 9);
        assert_eq!(traces[1].events.len(), 3);
    }

    #[test]
    fn spans_pair_and_total() {
        let traces = RunTrace::split_by_rank(sample_events());
        let spans = traces[0].spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].phase, Phase::Compute);
        assert_eq!(spans[0].duration_ns(), 30);
        assert_eq!(spans[0].iter, Some(0));
        let totals = traces[0].phase_totals();
        assert_eq!(totals.compute, 30);
        assert_eq!(totals.comm_wait, 60);
        assert_eq!(totals.check, 10);
        assert_eq!(totals.total(), 100);
        assert_eq!(totals.get(Phase::CommWait), 60);
    }

    #[test]
    fn counters_tally_marks() {
        let traces = RunTrace::split_by_rank(sample_events());
        let c0 = traces[0].counter_totals();
        assert_eq!(c0.messages_received, 1);
        assert_eq!(c0.bytes_received, 128);
        assert_eq!(c0.commits, 1);
        let c1 = traces[1].counter_totals();
        assert_eq!(c1.messages_sent, 1);
        assert_eq!(c1.bytes_sent, 128);
    }

    #[test]
    fn gauge_series_filters() {
        let traces = RunTrace::split_by_rank(sample_events());
        assert_eq!(
            traces[0].gauge_series(Gauge::ExecQueueDepth),
            vec![(110, 0)]
        );
        assert!(traces[0].gauge_series(Gauge::EventHeapSize).is_empty());
    }

    #[test]
    fn nested_spans_of_different_phases_pair_correctly() {
        let mut r = MemoryRecorder::new();
        r.span_begin(0, 0, Phase::Compute, None, None);
        r.span_begin(0, 10, Phase::Check, None, None);
        r.span_end(0, 20, Phase::Check);
        r.span_end(0, 50, Phase::Compute);
        let trace = RunTrace {
            rank: 0,
            events: r.take(),
        };
        let totals = trace.phase_totals();
        assert_eq!(totals.compute, 50);
        assert_eq!(totals.check, 10);
    }

    #[test]
    #[should_panic(expected = "span_end without begin")]
    fn unbalanced_end_panics() {
        let mut r = MemoryRecorder::new();
        r.span_end(0, 5, Phase::Compute);
        let trace = RunTrace {
            rank: 0,
            events: r.take(),
        };
        let _ = trace.spans();
    }

    #[test]
    #[should_panic(expected = "left open")]
    fn unclosed_span_panics() {
        let mut r = MemoryRecorder::new();
        r.span_begin(0, 5, Phase::Compute, None, None);
        let trace = RunTrace {
            rank: 0,
            events: r.take(),
        };
        let _ = trace.spans();
    }
}
