//! The [`Recorder`] sink trait and its stock implementations.
//!
//! Instrumented code holds an `Option<&mut dyn Recorder>` (or a struct
//! field of `Option<Box<dyn Recorder>>`): the disabled path is a `None`
//! branch — no allocation, no virtual-time cost, no label formatting.
//! Enabled paths build a plain [`Event`] (all-`Copy`) and hand it to
//! [`Recorder::record`].

use std::sync::{Arc, Mutex};

use crate::event::{Event, EventKind, Gauge, Mark, Phase};

/// A sink for telemetry events.
///
/// One required method keeps implementations trivial; the provided helpers
/// exist so instrumentation sites read as what they mean.
pub trait Recorder: Send {
    /// Accept one event.
    fn record(&mut self, event: Event);

    /// Open a phase span on `rank` at `t_ns`.
    fn span_begin(
        &mut self,
        rank: u32,
        t_ns: u64,
        phase: Phase,
        iter: Option<u64>,
        depth: Option<u64>,
    ) {
        self.record(Event {
            t_ns,
            rank,
            kind: EventKind::SpanBegin { phase, iter, depth },
        });
    }

    /// Close the most recent open span of `phase` on `rank` at `t_ns`.
    fn span_end(&mut self, rank: u32, t_ns: u64, phase: Phase) {
        self.record(Event {
            t_ns,
            rank,
            kind: EventKind::SpanEnd { phase },
        });
    }

    /// Record a point event.
    fn mark(&mut self, rank: u32, t_ns: u64, mark: Mark) {
        self.record(Event {
            t_ns,
            rank,
            kind: EventKind::Mark(mark),
        });
    }

    /// Record a gauge sample.
    fn gauge(&mut self, rank: u32, t_ns: u64, gauge: Gauge, value: u64) {
        self.record(Event {
            t_ns,
            rank,
            kind: EventKind::GaugeSample { gauge, value },
        });
    }
}

/// A recorder that drops everything. Useful where an API wants *a*
/// recorder; prefer `Option::None` where the call site allows it.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&mut self, _event: Event) {}
}

/// A recorder that appends every event to an in-memory vector, in arrival
/// order.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Vec<Event>,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The events recorded so far.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Remove and return every recorded event.
    pub fn take(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }
}

impl Recorder for MemoryRecorder {
    fn record(&mut self, event: Event) {
        self.events.push(event);
    }
}

/// A cloneable handle to one shared [`MemoryRecorder`].
///
/// The pattern for cluster runs: create one `SharedRecorder` outside,
/// clone it into every rank's closure (each clone attaches to that rank's
/// transport), and [`drain`](SharedRecorder::drain) the combined stream
/// afterwards. Events carry their rank, so a single shared sink loses
/// nothing; within a rank, order is preserved.
#[derive(Clone, Debug, Default)]
pub struct SharedRecorder {
    inner: Arc<Mutex<MemoryRecorder>>,
}

impl SharedRecorder {
    /// A fresh, empty shared recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Remove and return everything recorded so far (all ranks interleaved,
    /// per-rank order preserved).
    pub fn drain(&self) -> Vec<Event> {
        self.inner.lock().expect("recorder mutex poisoned").take()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("recorder mutex poisoned")
            .events()
            .len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for SharedRecorder {
    fn record(&mut self, event: Event) {
        self.inner
            .lock()
            .expect("recorder mutex poisoned")
            .record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_recorder_keeps_order() {
        let mut r = MemoryRecorder::new();
        r.span_begin(0, 10, Phase::Compute, Some(1), Some(0));
        r.mark(0, 15, Mark::Commit { iter: 1 });
        r.span_end(0, 20, Phase::Compute);
        let ev = r.take();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].t_ns, 10);
        assert!(matches!(
            ev[1].kind,
            EventKind::Mark(Mark::Commit { iter: 1 })
        ));
        assert!(r.events().is_empty());
    }

    #[test]
    fn shared_recorder_merges_clones() {
        let shared = SharedRecorder::new();
        let mut a = shared.clone();
        let mut b = shared.clone();
        a.gauge(0, 1, Gauge::ExecQueueDepth, 2);
        b.gauge(1, 2, Gauge::ExecQueueDepth, 3);
        assert_eq!(shared.len(), 2);
        let ev = shared.drain();
        assert_eq!(ev[0].rank, 0);
        assert_eq!(ev[1].rank, 1);
        assert!(shared.is_empty());
    }

    #[test]
    fn recorders_are_object_safe() {
        let mut boxed: Box<dyn Recorder> = Box::new(NullRecorder);
        boxed.mark(0, 0, Mark::Rollback { to_iter: 0 });
        let opt: Option<&mut dyn Recorder> = None;
        if let Some(r) = opt {
            r.mark(0, 0, Mark::Rollback { to_iter: 0 });
        }
    }
}
