//! Structured telemetry for the speculative-computation workspace.
//!
//! `obs` is the one vocabulary every layer emits into: the simulation
//! kernel samples its event heap, the transports mark message traffic, the
//! speculative driver wraps its phases in typed spans, and the apps and
//! benches digest the result. The design constraints, in order:
//!
//! 1. **Zero cost when disabled.** Instrumented code holds an
//!    `Option<&mut dyn Recorder>`; the disabled path is a branch on `None`
//!    — no allocation, no formatting, no virtual-time perturbation.
//! 2. **Bit-exact phase accounting.** Spans are emitted with the *same*
//!    `Transport::now()` readings the driver uses for its
//!    `PhaseBreakdown`, so per-rank span durations partition total run
//!    time exactly, and tests assert it.
//! 3. **No dependencies.** Timestamps are `u64` nanoseconds, ranks are
//!    `u32`, JSON is hand-rolled ([`json::Json`]) — so `desim` can depend
//!    on `obs` without a cycle and the crate builds offline.
//!
//! The flow: instrumentation emits [`Event`]s into a [`Recorder`]
//! (typically a [`SharedRecorder`] cloned into every rank);
//! [`RunTrace::split_by_rank`] turns the drained stream into per-rank
//! traces; [`chrome::chrome_trace`] exports a Perfetto-loadable timeline,
//! [`report::RunReport`] a machine-readable digest, and
//! [`timeline::render`] an ASCII quick look.

#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod fingerprint;
pub mod json;
pub mod recorder;
pub mod report;
pub mod timeline;
pub mod trace;

pub use chrome::{chrome_trace, chrome_trace_string};
pub use event::{Event, EventKind, Gauge, Mark, Phase};
pub use fingerprint::{fingerprint_f64s, Fingerprint};
pub use json::Json;
pub use recorder::{MemoryRecorder, NullRecorder, Recorder, SharedRecorder};
pub use report::{ControllerDigest, Histogram, RankReport, RunReport};
pub use trace::{CounterTotals, PhaseTotals, RunTrace, Span};
