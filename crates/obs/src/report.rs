//! Machine-readable run reports: per-phase totals, per-rank timelines,
//! counter snapshots, and span-duration histograms, serialized as JSON.
//!
//! This is the artifact format the benches write (`BENCH_fig8.json` and
//! friends): stable key order, exact integers, self-describing enough to
//! post-process without this crate.

use crate::event::{Gauge, Phase};
use crate::json::Json;
use crate::trace::{CounterTotals, PhaseTotals, RunTrace};

/// A power-of-two-bucketed histogram of nanosecond durations.
///
/// Bucket `i` counts values `v` with `floor(log2(v)) == i` (bucket 0 also
/// takes `v == 0`). 64 buckets cover the full `u64` range.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { counts: [0; 64] }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one value.
    pub fn record(&mut self, value_ns: u64) {
        let bucket = if value_ns <= 1 {
            0
        } else {
            63 - value_ns.leading_zeros() as usize
        };
        self.counts[bucket] += 1;
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Non-empty buckets as `(lower_bound_ns, upper_bound_ns, count)`,
    /// ascending. Bounds are inclusive-lower, exclusive-upper.
    pub fn buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| {
                let lo = if i == 0 { 0 } else { 1u64 << i };
                let hi = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
                (lo, hi, *c)
            })
            .collect()
    }

    fn to_json(&self) -> Json {
        Json::Arr(
            self.buckets()
                .into_iter()
                .map(|(lo, hi, count)| {
                    Json::obj([
                        ("ge_ns", Json::U64(lo)),
                        ("lt_ns", Json::U64(hi)),
                        ("count", Json::U64(count)),
                    ])
                })
                .collect(),
        )
    }
}

/// The adaptive speculation controller's final published decision on one
/// rank, digested from its `ControllerRetune` marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ControllerDigest {
    /// Retune evaluations over the run.
    pub retunes: u64,
    /// Forward window in force at the end of the run.
    pub fw: u32,
    /// Acceptance threshold in force at the end, in parts per billion
    /// (`u64::MAX` when θ was not managed).
    pub theta_ppb: u64,
    /// Tightest adaptive per-peer deadline at the end, in nanoseconds
    /// (0 while every peer still used the static timeout).
    pub deadline_ns: u64,
}

/// One rank's digest of a run.
#[derive(Clone, Debug)]
pub struct RankReport {
    /// The rank.
    pub rank: u32,
    /// Per-phase span totals (nanoseconds).
    pub phases: PhaseTotals,
    /// Point-event totals.
    pub counters: CounterTotals,
    /// Number of closed spans.
    pub span_count: usize,
    /// Histogram of span durations, per phase (only non-empty phases).
    pub span_histograms: Vec<(Phase, Histogram)>,
    /// Final sample of each gauge that appeared, `(gauge, last value)`.
    pub final_gauges: Vec<(Gauge, u64)>,
    /// Adaptive-controller summary; `None` when no retune ever fired.
    pub controller: Option<ControllerDigest>,
}

/// A whole run's digest: what the benches persist as `BENCH_*.json`.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// A label for the run (experiment name, figure id, …).
    pub name: String,
    /// The makespan in nanoseconds: the latest phase-span end over ranks.
    pub total_ns: u64,
    /// Per-rank digests, rank ascending.
    pub per_rank: Vec<RankReport>,
}

const GAUGES: [Gauge; 4] = [
    Gauge::ExecQueueDepth,
    Gauge::WindowSize,
    Gauge::InboxDepth,
    Gauge::EventHeapSize,
];

impl RunReport {
    /// Digest per-rank traces into a report.
    pub fn from_traces(name: impl Into<String>, traces: &[RunTrace]) -> RunReport {
        let mut total_ns = 0;
        let per_rank = traces
            .iter()
            .map(|trace| {
                let spans = trace.spans();
                let mut histograms: Vec<(Phase, Histogram)> = Vec::new();
                for span in &spans {
                    total_ns = total_ns.max(span.end_ns);
                    match histograms.iter_mut().find(|(p, _)| *p == span.phase) {
                        Some((_, h)) => h.record(span.duration_ns()),
                        None => {
                            let mut h = Histogram::new();
                            h.record(span.duration_ns());
                            histograms.push((span.phase, h));
                        }
                    }
                }
                histograms.sort_by_key(|(p, _)| Phase::ALL.iter().position(|q| q == p));
                let final_gauges = GAUGES
                    .iter()
                    .filter_map(|g| trace.gauge_series(*g).last().map(|(_, v)| (*g, *v)))
                    .collect();
                let counters = trace.counter_totals();
                let controller =
                    trace
                        .last_controller_decision()
                        .map(|(fw, theta_ppb, deadline_ns)| ControllerDigest {
                            retunes: counters.controller_retunes,
                            fw,
                            theta_ppb,
                            deadline_ns,
                        });
                RankReport {
                    rank: trace.rank,
                    phases: trace.phase_totals(),
                    counters,
                    span_count: spans.len(),
                    span_histograms: histograms,
                    final_gauges,
                    controller,
                }
            })
            .collect();
        RunReport {
            name: name.into(),
            total_ns,
            per_rank,
        }
    }

    /// Cluster-wide phase totals: the sum of every rank's.
    pub fn phase_totals(&self) -> PhaseTotals {
        let mut acc = PhaseTotals::default();
        for r in &self.per_rank {
            acc.compute += r.phases.compute;
            acc.comm_wait += r.phases.comm_wait;
            acc.speculate += r.phases.speculate;
            acc.check += r.phases.check;
            acc.correct += r.phases.correct;
        }
        acc
    }

    /// Cluster-wide wire-byte totals summed over every rank's counters:
    /// `(bytes_sent, bytes_received, delta_suppressed_bytes)`.
    pub fn byte_totals(&self) -> (u64, u64, u64) {
        self.per_rank.iter().fold((0, 0, 0), |(s, r, d), rank| {
            (
                s + rank.counters.bytes_sent,
                r + rank.counters.bytes_received,
                d + rank.counters.delta_suppressed_bytes,
            )
        })
    }

    /// The report as a JSON tree.
    pub fn to_json(&self) -> Json {
        let (bytes_sent, bytes_received, delta_suppressed) = self.byte_totals();
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("total_ns", Json::U64(self.total_ns)),
            ("ranks", Json::U64(self.per_rank.len() as u64)),
            ("phase_totals_ns", phases_json(&self.phase_totals())),
            (
                "byte_totals",
                Json::obj([
                    ("bytes_sent", Json::U64(bytes_sent)),
                    ("bytes_received", Json::U64(bytes_received)),
                    ("delta_suppressed_bytes", Json::U64(delta_suppressed)),
                ]),
            ),
            (
                "per_rank",
                Json::Arr(self.per_rank.iter().map(rank_json).collect()),
            ),
        ])
    }

    /// The report serialized, ready to write to a file.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }
}

fn phases_json(p: &PhaseTotals) -> Json {
    Json::Obj(
        Phase::ALL
            .iter()
            .map(|ph| (ph.name().to_string(), Json::U64(p.get(*ph))))
            .collect(),
    )
}

fn counters_json(c: &CounterTotals) -> Json {
    Json::obj([
        ("messages_sent", Json::U64(c.messages_sent)),
        ("messages_received", Json::U64(c.messages_received)),
        ("bytes_sent", Json::U64(c.bytes_sent)),
        ("bytes_received", Json::U64(c.bytes_received)),
        ("speculations", Json::U64(c.speculations)),
        ("misspeculations", Json::U64(c.misspeculations)),
        ("corrections", Json::U64(c.corrections)),
        ("rollbacks", Json::U64(c.rollbacks)),
        ("commits", Json::U64(c.commits)),
        ("messages_dropped", Json::U64(c.messages_dropped)),
        ("messages_duplicated", Json::U64(c.messages_duplicated)),
        ("peer_crashes", Json::U64(c.peer_crashes)),
        ("peer_recoveries", Json::U64(c.peer_recoveries)),
        ("peers_suspected", Json::U64(c.peers_suspected)),
        ("peers_quarantined", Json::U64(c.peers_quarantined)),
        ("peers_rejoined", Json::U64(c.peers_rejoined)),
        ("peers_departed", Json::U64(c.peers_departed)),
        ("degraded_enters", Json::U64(c.degraded_enters)),
        ("degraded_exits", Json::U64(c.degraded_exits)),
        (
            "delta_suppressed_bytes",
            Json::U64(c.delta_suppressed_bytes),
        ),
        ("timer_fires", Json::U64(c.timer_fires)),
        ("recv_wakeups", Json::U64(c.recv_wakeups)),
        ("wakeup_wait_ns", Json::U64(c.wakeup_wait_ns)),
        ("controller_retunes", Json::U64(c.controller_retunes)),
    ])
}

fn rank_json(r: &RankReport) -> Json {
    Json::obj([
        ("rank", Json::U64(u64::from(r.rank))),
        ("active_ns", Json::U64(r.phases.total())),
        ("phases_ns", phases_json(&r.phases)),
        ("counters", counters_json(&r.counters)),
        ("span_count", Json::U64(r.span_count as u64)),
        (
            "span_duration_histograms",
            Json::Obj(
                r.span_histograms
                    .iter()
                    .map(|(p, h)| (p.name().to_string(), h.to_json()))
                    .collect(),
            ),
        ),
        (
            "final_gauges",
            Json::Obj(
                r.final_gauges
                    .iter()
                    .map(|(g, v)| (g.name().to_string(), Json::U64(*v)))
                    .collect(),
            ),
        ),
        (
            "controller",
            match &r.controller {
                None => Json::Null,
                Some(c) => Json::obj([
                    ("retunes", Json::U64(c.retunes)),
                    ("fw", Json::U64(u64::from(c.fw))),
                    ("theta_ppb", Json::U64(c.theta_ppb)),
                    ("deadline_ns", Json::U64(c.deadline_ns)),
                ]),
            },
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Mark;
    use crate::recorder::{MemoryRecorder, Recorder};

    fn sample_traces() -> Vec<RunTrace> {
        let mut r = MemoryRecorder::new();
        r.span_begin(0, 0, Phase::Compute, Some(0), None);
        r.span_end(0, 100, Phase::Compute);
        r.span_begin(0, 100, Phase::CommWait, None, None);
        r.span_end(0, 400, Phase::CommWait);
        r.mark(0, 400, Mark::Commit { iter: 0 });
        r.gauge(0, 400, Gauge::ExecQueueDepth, 1);
        r.gauge(0, 401, Gauge::ExecQueueDepth, 0);
        r.span_begin(1, 0, Phase::Compute, Some(0), None);
        r.span_end(1, 250, Phase::Compute);
        RunTrace::split_by_rank(r.take())
    }

    #[test]
    fn report_totals_and_makespan() {
        let report = RunReport::from_traces("unit", &sample_traces());
        assert_eq!(report.total_ns, 400);
        assert_eq!(report.per_rank.len(), 2);
        assert_eq!(report.per_rank[0].phases.total(), 400);
        assert_eq!(report.per_rank[1].phases.total(), 250);
        assert_eq!(report.phase_totals().compute, 350);
        assert_eq!(
            report.per_rank[0].final_gauges,
            vec![(Gauge::ExecQueueDepth, 0)]
        );
    }

    #[test]
    fn report_json_is_valid_and_exact() {
        let report = RunReport::from_traces("unit", &sample_traces());
        let text = report.to_json_string();
        let doc = Json::parse(&text).expect("report must be valid JSON");
        assert_eq!(doc.get("name").and_then(Json::as_str), Some("unit"));
        assert_eq!(doc.get("total_ns").and_then(Json::as_u64), Some(400));
        let ranks = doc.get("per_rank").and_then(Json::as_arr).unwrap();
        assert_eq!(ranks.len(), 2);
        assert_eq!(
            ranks[0]
                .get("phases_ns")
                .and_then(|p| p.get("comm_wait"))
                .and_then(Json::as_u64),
            Some(300)
        );
        assert_eq!(
            ranks[0]
                .get("counters")
                .and_then(|c| c.get("commits"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn controller_section_digests_last_retune() {
        let mut r = MemoryRecorder::new();
        r.span_begin(0, 0, Phase::Compute, Some(0), None);
        r.span_end(0, 100, Phase::Compute);
        r.mark(
            0,
            50,
            Mark::ControllerRetune {
                fw: 1,
                theta_ppb: 0,
                deadline_ns: 0,
            },
        );
        r.mark(
            0,
            90,
            Mark::ControllerRetune {
                fw: 3,
                theta_ppb: 10_000_000,
                deadline_ns: 2_000_000,
            },
        );
        let traces = RunTrace::split_by_rank(r.take());
        let report = RunReport::from_traces("ctl", &traces);
        assert_eq!(
            report.per_rank[0].controller,
            Some(ControllerDigest {
                retunes: 2,
                fw: 3,
                theta_ppb: 10_000_000,
                deadline_ns: 2_000_000
            })
        );
        let doc = Json::parse(&report.to_json_string()).unwrap();
        let ctl = doc.get("per_rank").and_then(Json::as_arr).unwrap()[0]
            .get("controller")
            .unwrap();
        assert_eq!(ctl.get("fw").and_then(Json::as_u64), Some(3));
        assert_eq!(ctl.get("retunes").and_then(Json::as_u64), Some(2));
        // And the counters list carries the retune count too.
        assert_eq!(
            doc.get("per_rank").and_then(Json::as_arr).unwrap()[0]
                .get("counters")
                .and_then(|c| c.get("controller_retunes"))
                .and_then(Json::as_u64),
            Some(2)
        );
        // A controller-off run serializes the section as null.
        let plain = RunReport::from_traces("off", &sample_traces());
        assert_eq!(plain.per_rank[0].controller, None);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets(), vec![(0, 2, 2), (2, 4, 2), (1024, 2048, 1)]);
    }

    #[test]
    fn histogram_handles_extreme_values() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.buckets(), vec![(1 << 63, u64::MAX, 1)]);
    }
}
