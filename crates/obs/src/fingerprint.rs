//! Bit-exact state fingerprints.
//!
//! The conformance harness needs to assert that two runs produced *the
//! same* floating-point state — not approximately, but bit for bit (the
//! θ=0 / FW=0 equivalences of the paper's §3.2 are exact, and the
//! simulator's determinism contract is exact). Comparing whole state
//! vectors per rank per scenario is wasteful; an order-sensitive 64-bit
//! hash of the IEEE-754 bit patterns is enough to detect any divergence
//! and cheap enough to compute after every generated run.
//!
//! FNV-1a over the little-endian bytes of each value's `to_bits()`:
//! stable across platforms, zero dependencies, and sensitive to ordering,
//! `-0.0` vs `+0.0`, and NaN payloads — exactly the distinctions a
//! bit-exactness claim has to honor.

/// Streaming FNV-1a fingerprint of numeric state.
#[derive(Clone, Copy, Debug)]
pub struct Fingerprint {
    h: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// An empty fingerprint (the FNV offset basis).
    pub fn new() -> Self {
        Fingerprint { h: FNV_OFFSET }
    }

    /// Absorb one `u64`.
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.h ^= u64::from(b);
            self.h = self.h.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb one `f64` by IEEE-754 bit pattern (distinguishes `-0.0`
    /// from `+0.0` and preserves NaN payloads).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorb a slice of `f64`s in order.
    pub fn write_f64s(&mut self, vs: &[f64]) {
        for &v in vs {
            self.write_f64(v);
        }
    }

    /// The accumulated 64-bit fingerprint.
    pub fn finish(&self) -> u64 {
        self.h
    }
}

/// Fingerprint of a slice of `f64`s (one-shot convenience).
pub fn fingerprint_f64s(vs: &[f64]) -> u64 {
    let mut fp = Fingerprint::new();
    fp.write_f64s(vs);
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_slices_agree() {
        let a = [1.0, 2.5, -3.25];
        assert_eq!(fingerprint_f64s(&a), fingerprint_f64s(&[1.0, 2.5, -3.25]));
    }

    #[test]
    fn order_and_sign_of_zero_matter() {
        assert_ne!(fingerprint_f64s(&[1.0, 2.0]), fingerprint_f64s(&[2.0, 1.0]));
        assert_ne!(fingerprint_f64s(&[0.0]), fingerprint_f64s(&[-0.0]));
    }

    #[test]
    fn one_ulp_changes_the_fingerprint() {
        let x = 1.0f64;
        let y = f64::from_bits(x.to_bits() + 1);
        assert_ne!(fingerprint_f64s(&[x]), fingerprint_f64s(&[y]));
    }

    #[test]
    fn streaming_matches_one_shot() {
        let vs = [3.0, -7.5, 0.125, f64::NAN];
        let mut fp = Fingerprint::new();
        for &v in &vs {
            fp.write_f64(v);
        }
        assert_eq!(fp.finish(), fingerprint_f64s(&vs));
    }

    #[test]
    fn empty_is_the_offset_basis() {
        assert_eq!(fingerprint_f64s(&[]), Fingerprint::new().finish());
    }
}
