//! Deterministic seed derivation.
//!
//! Every stochastic component of the simulator (network jitter, background
//! load, workload generation) takes an explicit seed. This module provides a
//! SplitMix64-based way to derive independent per-stream seeds from one
//! master seed, so a whole experiment is reproducible from a single number.

/// One step of the SplitMix64 generator. Good avalanche behaviour; used only
/// for seed derivation, not as a general-purpose RNG.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed of stream number `stream` from a master seed.
///
/// Streams with different indices produce statistically independent seeds;
/// the same `(master, stream)` pair always produces the same seed.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut state = master ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
    // Two rounds: one to mix the stream index in, one to decorrelate
    // small master-seed differences.
    splitmix64(&mut state);
    splitmix64(&mut state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(derive_seed(42, 3), derive_seed(42, 3));
    }

    #[test]
    fn streams_differ() {
        let seeds: HashSet<u64> = (0..1000).map(|s| derive_seed(7, s)).collect();
        assert_eq!(seeds.len(), 1000, "stream seeds must not collide");
    }

    #[test]
    fn masters_differ() {
        let seeds: HashSet<u64> = (0..1000).map(|m| derive_seed(m, 0)).collect();
        assert_eq!(seeds.len(), 1000, "master seeds must not collide");
    }

    #[test]
    fn adjacent_masters_decorrelate() {
        // Hamming distance between seeds of adjacent masters should be
        // substantial (avalanche), not 1.
        let a = derive_seed(100, 0);
        let b = derive_seed(101, 0);
        let dist = (a ^ b).count_ones();
        assert!(dist > 10, "poor avalanche: {dist} differing bits");
    }

    #[test]
    fn splitmix_reference_values() {
        // Reference output for seed 0 from the SplitMix64 paper/known impls.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
    }
}
