//! # desim — deterministic discrete-event simulation kernel
//!
//! A small process-oriented discrete-event simulator in the style of SimPy,
//! built for reproducing distributed-systems experiments in *virtual time*.
//! It underpins the reproduction of Govindan & Franklin's *"Speculative
//! Computation: Overcoming Communication Delays in Parallel Algorithms"*
//! (ICPP 1994): simulated "workstations" run real Rust closures, exchange
//! messages through mailboxes with modelled delays, and burn virtual CPU time
//! with [`ProcessHandle::advance`].
//!
//! ## Execution model
//!
//! * Each simulated process is a **stackless state machine** owned by the
//!   kernel ([`Simulation::spawn_process`] for an explicit [`Process`]
//!   impl, [`Simulation::spawn_async`] for a compiler-generated one from an
//!   `async fn`). The kernel grants execution to exactly one process at a
//!   time, resuming whichever has the earliest pending event, so the
//!   simulation is sequential and **bit-for-bit deterministic** — ties at
//!   equal virtual times break by event insertion order (or the configured
//!   [`TieBreak`]). No OS thread is spawned per rank, so simulations scale
//!   to hundreds of thousands of processes.
//! * The original one-OS-thread-per-process model
//!   ([`Simulation::spawn`]) survives behind the on-by-default
//!   `legacy-threads` feature; the two kernels share one event loop and
//!   produce bit-identical event streams, which the differential
//!   conformance suite enforces.
//! * Virtual time only moves when a process advances it (modelling
//!   computation) or blocks in a receive (modelling waiting for a message).
//! * Messages are sent with an explicit delivery delay chosen by the caller —
//!   latency *models* live above this crate (see the `netsim` crate).
//!
//! ## Example
//!
//! ```
//! use desim::{Simulation, SimDuration};
//!
//! let mut sim = Simulation::new();
//! let inbox = sim.create_mailbox();
//!
//! sim.spawn_async("sender", move |h| async move {
//!     for i in 0..3u64 {
//!         h.advance(SimDuration::from_millis(10)).await; // compute
//!         h.send(inbox, SimDuration::from_millis(4), i).await; // 4ms network
//!     }
//! });
//! let sum = sim.spawn_async("receiver", move |h| async move {
//!     let mut sum = 0;
//!     for _ in 0..3 {
//!         sum += h.recv_as::<u64>(inbox).await;
//!     }
//!     sum
//! });
//!
//! let report = sim.run().unwrap();
//! assert_eq!(sum.take(), Some(3));
//! // Last message: sent at t=30ms, delivered at t=34ms.
//! assert_eq!(report.end_time.as_nanos(), 34_000_000);
//! ```

#![warn(missing_docs)]

mod event;
mod kernel;
mod mailbox;
mod process;
pub mod rng;
mod stackless;
mod time;
mod trace;

pub use event::{EventKey, EventKind, EventQueue, Payload, TieBreak};
pub use kernel::{preload_message, SimError, SimReport, Simulation};
pub use mailbox::MailboxId;
#[cfg(feature = "legacy-threads")]
pub use process::ProcessHandle;
pub use process::{ProcessId, ProcessResult};
pub use stackless::{AsyncHandle, ProcCtx, Process, Resume, Yield};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, TraceLog};

#[cfg(all(test, feature = "legacy-threads"))]
mod tests {
    use super::*;

    #[test]
    fn empty_simulation_completes() {
        let sim = Simulation::new();
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::ZERO);
        assert_eq!(report.events_processed, 0);
    }

    #[test]
    fn single_process_advances_time() {
        let mut sim = Simulation::new();
        let t = sim.spawn("p", |h| {
            h.advance(SimDuration::from_millis(3));
            h.advance(SimDuration::from_millis(4));
            h.now()
        });
        let report = sim.run().unwrap();
        assert_eq!(t.take(), Some(SimTime::from_nanos(7_000_000)));
        assert_eq!(report.end_time, SimTime::from_nanos(7_000_000));
    }

    #[test]
    fn message_latency_is_respected() {
        let mut sim = Simulation::new();
        let mbox = sim.create_mailbox();
        sim.spawn("tx", move |h| {
            h.send(mbox, SimDuration::from_millis(10), "hello");
        });
        let arrival = sim.spawn("rx", move |h| {
            let _ = h.recv(mbox);
            h.now()
        });
        sim.run().unwrap();
        assert_eq!(arrival.take(), Some(SimTime::from_nanos(10_000_000)));
    }

    #[test]
    fn try_recv_does_not_block_or_advance() {
        let mut sim = Simulation::new();
        let mbox = sim.create_mailbox();
        sim.spawn("tx", move |h| {
            h.send(mbox, SimDuration::from_millis(5), 1u8);
        });
        let seen = sim.spawn("rx", move |h| {
            let early = h.try_recv_as::<u8>(mbox); // nothing delivered yet
            h.advance(SimDuration::from_millis(6));
            let late = h.try_recv_as::<u8>(mbox); // delivered at 5ms
            (early, late, h.now())
        });
        sim.run().unwrap();
        let (early, late, now) = seen.take().unwrap();
        assert_eq!(early, None);
        assert_eq!(late, Some(1));
        assert_eq!(now, SimTime::from_nanos(6_000_000));
    }

    #[test]
    fn recv_wakes_at_delivery_time() {
        let mut sim = Simulation::new();
        let mbox = sim.create_mailbox();
        sim.spawn("tx", move |h| {
            h.advance(SimDuration::from_millis(2));
            h.send(mbox, SimDuration::from_millis(3), ());
        });
        let at = sim.spawn("rx", move |h| {
            h.recv(mbox);
            h.now()
        });
        sim.run().unwrap();
        assert_eq!(at.take(), Some(SimTime::from_nanos(5_000_000)));
    }

    #[test]
    fn recv_deadline_times_out_at_the_exact_deadline() {
        let mut sim = Simulation::new();
        let mbox = sim.create_mailbox();
        let out = sim.spawn("rx", move |h| {
            let msg = h.recv_deadline(mbox, SimTime::from_nanos(7_000_000));
            (msg.is_none(), h.now())
        });
        let report = sim.run().unwrap();
        assert_eq!(out.take(), Some((true, SimTime::from_nanos(7_000_000))));
        assert_eq!(report.timers_fired, 1);
        assert_eq!(report.end_time, SimTime::from_nanos(7_000_000));
    }

    #[test]
    fn recv_deadline_wakes_at_the_exact_arrival_time() {
        let mut sim = Simulation::new();
        let mbox = sim.create_mailbox();
        sim.spawn("tx", move |h| {
            h.send(mbox, SimDuration::from_millis(3), 9u8);
        });
        let out = sim.spawn("rx", move |h| {
            let msg = h.recv_deadline(mbox, SimTime::from_nanos(10_000_000));
            let v = *msg
                .expect("arrival beats deadline")
                .downcast::<u8>()
                .unwrap();
            (v, h.now())
        });
        let report = sim.run().unwrap();
        assert_eq!(out.take(), Some((9, SimTime::from_nanos(3_000_000))));
        // The armed 10 ms timer was cancelled by the delivery: it neither
        // fires nor stretches the run past the last process's activity.
        assert_eq!(report.timers_fired, 0);
        assert_eq!(report.end_time, SimTime::from_nanos(3_000_000));
    }

    #[test]
    fn recv_deadline_in_the_past_degrades_to_try_recv() {
        let mut sim = Simulation::new();
        let mbox = sim.create_mailbox();
        preload_message(&mut sim, mbox, SimTime::ZERO, 5u8);
        let out = sim.spawn("rx", move |h| {
            // Already-delivered message: returned even with an expired deadline.
            let first = h
                .recv_deadline(mbox, SimTime::ZERO)
                .map(|p| *p.downcast::<u8>().unwrap());
            let t_first = h.now();
            // Empty mailbox + expired deadline: immediate None, no time passes.
            let second = h.recv_deadline(mbox, SimTime::ZERO).is_none();
            (first, t_first, second, h.now())
        });
        let report = sim.run().unwrap();
        assert_eq!(
            out.take(),
            Some((Some(5), SimTime::ZERO, true, SimTime::ZERO))
        );
        assert_eq!(report.timers_fired, 0);
    }

    #[test]
    fn recv_deadline_rearms_cleanly_across_waits() {
        // Alternate timeouts and arrivals on one process: each wait arms a
        // fresh timer generation, and cancelled generations stay dead.
        let mut sim = Simulation::new();
        let mbox = sim.create_mailbox();
        sim.spawn("tx", move |h| {
            h.advance(SimDuration::from_millis(5));
            h.send(mbox, SimDuration::ZERO, 1u32);
            h.advance(SimDuration::from_millis(10));
            h.send(mbox, SimDuration::ZERO, 2u32);
        });
        let out = sim.spawn("rx", move |h| {
            let mut log = Vec::new();
            for _ in 0..5 {
                let deadline = h.now() + SimDuration::from_millis(4);
                let got = h
                    .recv_deadline(mbox, deadline)
                    .map(|p| *p.downcast::<u32>().unwrap());
                log.push((got, h.now().as_nanos()));
            }
            log
        });
        let report = sim.run().unwrap();
        assert_eq!(
            out.take(),
            Some(vec![
                (None, 4_000_000),     // timeout
                (Some(1), 5_000_000),  // arrival cancels the 9 ms timer
                (None, 9_000_000),     // timeout
                (None, 13_000_000),    // timeout
                (Some(2), 15_000_000), // arrival cancels the 17 ms timer
            ])
        );
        // Three of the five waits expired; the two arrival-resolved waits
        // left their timers to pop as cancelled no-ops.
        assert_eq!(report.timers_fired, 3);
    }

    #[test]
    fn fifo_between_same_pair() {
        let mut sim = Simulation::new();
        let mbox = sim.create_mailbox();
        sim.spawn("tx", move |h| {
            for i in 0..10u32 {
                h.send(mbox, SimDuration::from_millis(1), i);
            }
        });
        let order = sim.spawn("rx", move |h| {
            (0..10).map(|_| h.recv_as::<u32>(mbox)).collect::<Vec<_>>()
        });
        sim.run().unwrap();
        assert_eq!(order.take().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn out_of_order_delivery_with_unequal_delays() {
        // Second message sent later but with a smaller delay overtakes the
        // first — exactly what a real network can do.
        let mut sim = Simulation::new();
        let mbox = sim.create_mailbox();
        sim.spawn("tx", move |h| {
            h.send(mbox, SimDuration::from_millis(10), 1u32);
            h.advance(SimDuration::from_millis(1));
            h.send(mbox, SimDuration::from_millis(2), 2u32);
        });
        let order = sim.spawn("rx", move |h| {
            let a = h.recv_as::<u32>(mbox);
            let b = h.recv_as::<u32>(mbox);
            (a, b)
        });
        sim.run().unwrap();
        assert_eq!(order.take(), Some((2, 1)));
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim = Simulation::new();
        let a_box = sim.create_mailbox();
        let b_box = sim.create_mailbox();
        sim.spawn("a", move |h| {
            for i in 0..5u64 {
                h.send(b_box, SimDuration::from_millis(1), i);
                let echo = h.recv_as::<u64>(a_box);
                assert_eq!(echo, i * 2);
            }
        });
        sim.spawn("b", move |h| {
            for _ in 0..5 {
                let v = h.recv_as::<u64>(b_box);
                h.send(a_box, SimDuration::from_millis(1), v * 2);
            }
        });
        let report = sim.run().unwrap();
        // 5 round trips, 2ms each.
        assert_eq!(report.end_time, SimTime::from_nanos(10_000_000));
        assert_eq!(report.messages_delivered, 10);
    }

    #[test]
    fn determinism_identical_reports() {
        fn build_and_run() -> (u64, u64, SimTime, Vec<(String, SimTime)>) {
            let mut sim = Simulation::new();
            let boxes: Vec<_> = (0..4).map(|_| sim.create_mailbox()).collect();
            for me in 0..4usize {
                let boxes = boxes.clone();
                sim.spawn(format!("p{me}"), move |h| {
                    for round in 0..20u64 {
                        for (k, b) in boxes.iter().enumerate() {
                            if k != me {
                                h.send(
                                    *b,
                                    SimDuration::from_micros(100 + (me as u64) * 7 + round),
                                    (me, round),
                                );
                            }
                        }
                        h.advance(SimDuration::from_micros(50 + me as u64));
                        for _ in 0..3 {
                            let _ = h.recv(boxes[me]);
                        }
                    }
                });
            }
            let r = sim.run().unwrap();
            (
                r.events_processed,
                r.messages_delivered,
                r.end_time,
                r.finish_times,
            )
        }
        assert_eq!(build_and_run(), build_and_run());
    }

    #[test]
    fn deadlock_is_detected() {
        let mut sim = Simulation::new();
        let mbox = sim.create_mailbox();
        sim.spawn("starved", move |h| {
            h.recv(mbox);
        });
        match sim.run() {
            Err(SimError::Deadlock { blocked, .. }) => {
                assert_eq!(blocked.len(), 1);
                assert_eq!(blocked[0].0, "starved");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn process_panic_is_reported() {
        let mut sim = Simulation::new();
        sim.spawn("bad", |h| {
            h.advance(SimDuration::from_millis(1));
            panic!("boom at {:?}", h.now());
        });
        // A healthy bystander that would otherwise block forever.
        let mbox = sim.create_mailbox();
        sim.spawn("bystander", move |h| {
            h.recv(mbox);
        });
        match sim.run() {
            Err(SimError::ProcessPanicked { name, message }) => {
                assert_eq!(name, "bad");
                assert!(message.contains("boom"));
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn preloaded_messages_are_delivered() {
        let mut sim = Simulation::new();
        let mbox = sim.create_mailbox();
        preload_message(&mut sim, mbox, SimTime::from_nanos(500), 9u8);
        let got = sim.spawn("rx", move |h| (h.recv_as::<u8>(mbox), h.now()));
        sim.run().unwrap();
        assert_eq!(got.take(), Some((9, SimTime::from_nanos(500))));
    }

    #[test]
    fn traces_are_recorded_when_enabled() {
        let mut sim = Simulation::new();
        sim.enable_tracing();
        sim.spawn("p", |h| {
            h.trace("start");
            h.advance(SimDuration::from_millis(1));
            h.trace("end");
        });
        let report = sim.run().unwrap();
        assert_eq!(report.trace.len(), 2);
        assert_eq!(report.trace[0].label, "start");
        assert_eq!(report.trace[1].time, SimTime::from_nanos(1_000_000));
    }

    #[test]
    fn traces_absent_when_disabled() {
        let mut sim = Simulation::new();
        sim.spawn("p", |h| h.trace("invisible"));
        let report = sim.run().unwrap();
        assert!(report.trace.is_empty());
    }

    #[test]
    fn many_processes_all_finish() {
        let mut sim = Simulation::new();
        let n = 64;
        let hub = sim.create_mailbox();
        for i in 0..n {
            sim.spawn(format!("w{i}"), move |h| {
                h.advance(SimDuration::from_micros(i as u64 + 1));
                h.send(hub, SimDuration::from_micros(10), i);
            });
        }
        let total = sim.spawn("collector", move |h| {
            (0..n).map(|_| h.recv_as::<usize>(hub)).sum::<usize>()
        });
        let report = sim.run().unwrap();
        assert_eq!(total.take(), Some(n * (n - 1) / 2));
        assert_eq!(report.finish_times.len(), n + 1);
    }

    #[test]
    fn mailbox_created_inside_process() {
        let mut sim = Simulation::new();
        // One process creates a mailbox at runtime and ships its id to the
        // other through a pre-made control mailbox.
        let ctl = sim.create_mailbox();
        sim.spawn("owner", move |h| {
            let mine = h.create_mailbox();
            h.send(ctl, SimDuration::ZERO, mine);
            let v = h.recv_as::<u16>(mine);
            assert_eq!(v, 77);
        });
        sim.spawn("peer", move |h| {
            let dest = h.recv_as::<MailboxId>(ctl);
            h.send(dest, SimDuration::from_millis(1), 77u16);
        });
        sim.run().unwrap();
    }

    #[test]
    fn zero_delay_message_arrives_at_same_instant() {
        let mut sim = Simulation::new();
        let mbox = sim.create_mailbox();
        sim.spawn("tx", move |h| {
            h.advance(SimDuration::from_millis(1));
            h.send(mbox, SimDuration::ZERO, ());
        });
        let at = sim.spawn("rx", move |h| {
            h.recv(mbox);
            h.now()
        });
        sim.run().unwrap();
        assert_eq!(at.take(), Some(SimTime::from_nanos(1_000_000)));
    }

    #[test]
    fn result_take_is_none_before_finish() {
        // If the simulation errors, results of unfinished processes are None.
        let mut sim = Simulation::new();
        let mbox = sim.create_mailbox();
        let r = sim.spawn("starved", move |h| {
            h.recv(mbox);
            42u8
        });
        let _ = sim.run();
        assert_eq!(r.take(), None);
    }
}

#[cfg(test)]
mod stackless_tests {
    use super::*;

    #[test]
    fn empty_simulation_completes() {
        let sim = Simulation::new();
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::ZERO);
        assert_eq!(report.events_processed, 0);
    }

    #[test]
    fn async_process_advances_time() {
        let mut sim = Simulation::new();
        let t = sim.spawn_async("p", |h| async move {
            h.advance(SimDuration::from_millis(3)).await;
            h.advance(SimDuration::from_millis(4)).await;
            h.now()
        });
        let report = sim.run().unwrap();
        assert_eq!(t.take(), Some(SimTime::from_nanos(7_000_000)));
        assert_eq!(report.end_time, SimTime::from_nanos(7_000_000));
    }

    #[test]
    fn async_message_latency_is_respected() {
        let mut sim = Simulation::new();
        let mbox = sim.create_mailbox();
        sim.spawn_async("tx", move |h| async move {
            h.send(mbox, SimDuration::from_millis(10), "hello").await;
        });
        let arrival = sim.spawn_async("rx", move |h| async move {
            let _ = h.recv(mbox).await;
            h.now()
        });
        sim.run().unwrap();
        assert_eq!(arrival.take(), Some(SimTime::from_nanos(10_000_000)));
    }

    #[test]
    fn async_try_recv_does_not_block_or_advance() {
        let mut sim = Simulation::new();
        let mbox = sim.create_mailbox();
        sim.spawn_async("tx", move |h| async move {
            h.send(mbox, SimDuration::from_millis(5), 1u8).await;
        });
        let seen = sim.spawn_async("rx", move |h| async move {
            let early = h.try_recv_as::<u8>(mbox).await; // nothing delivered yet
            h.advance(SimDuration::from_millis(6)).await;
            let late = h.try_recv_as::<u8>(mbox).await; // delivered at 5ms
            (early, late, h.now())
        });
        sim.run().unwrap();
        let (early, late, now) = seen.take().unwrap();
        assert_eq!(early, None);
        assert_eq!(late, Some(1));
        assert_eq!(now, SimTime::from_nanos(6_000_000));
    }

    #[test]
    fn async_recv_deadline_times_out_at_the_exact_deadline() {
        let mut sim = Simulation::new();
        let mbox = sim.create_mailbox();
        let out = sim.spawn_async("rx", move |h| async move {
            let msg = h.recv_deadline(mbox, SimTime::from_nanos(7_000_000)).await;
            (msg.is_none(), h.now())
        });
        let report = sim.run().unwrap();
        assert_eq!(out.take(), Some((true, SimTime::from_nanos(7_000_000))));
        assert_eq!(report.timers_fired, 1);
        assert_eq!(report.end_time, SimTime::from_nanos(7_000_000));
    }

    #[test]
    fn async_recv_deadline_rearms_cleanly_across_waits() {
        // Mirror of the threaded pin: alternate timeouts and arrivals on one
        // process; each wait arms a fresh timer generation, and cancelled
        // generations stay dead.
        let mut sim = Simulation::new();
        let mbox = sim.create_mailbox();
        sim.spawn_async("tx", move |h| async move {
            h.advance(SimDuration::from_millis(5)).await;
            h.send(mbox, SimDuration::ZERO, 1u32).await;
            h.advance(SimDuration::from_millis(10)).await;
            h.send(mbox, SimDuration::ZERO, 2u32).await;
        });
        let out = sim.spawn_async("rx", move |h| async move {
            let mut log = Vec::new();
            for _ in 0..5 {
                let deadline = h.now() + SimDuration::from_millis(4);
                let got = h.recv_deadline_as::<u32>(mbox, deadline).await;
                log.push((got, h.now().as_nanos()));
            }
            log
        });
        let report = sim.run().unwrap();
        assert_eq!(
            out.take(),
            Some(vec![
                (None, 4_000_000),
                (Some(1), 5_000_000),
                (None, 9_000_000),
                (None, 13_000_000),
                (Some(2), 15_000_000),
            ])
        );
        assert_eq!(report.timers_fired, 3);
    }

    #[test]
    fn async_deadlock_is_detected() {
        let mut sim = Simulation::new();
        let mbox = sim.create_mailbox();
        sim.spawn_async("starved", move |h| async move {
            h.recv(mbox).await;
        });
        match sim.run() {
            Err(SimError::Deadlock { blocked, .. }) => {
                assert_eq!(blocked.len(), 1);
                assert_eq!(blocked[0].0, "starved");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn async_process_panic_is_reported() {
        let mut sim = Simulation::new();
        sim.spawn_async("bad", |h| async move {
            h.advance(SimDuration::from_millis(1)).await;
            panic!("boom at {:?}", h.now());
        });
        let mbox = sim.create_mailbox();
        sim.spawn_async("bystander", move |h| async move {
            h.recv(mbox).await;
        });
        match sim.run() {
            Err(SimError::ProcessPanicked { name, message }) => {
                assert_eq!(name, "bad");
                assert!(message.contains("boom"));
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn awaiting_a_foreign_future_is_reported_as_a_panic() {
        let mut sim = Simulation::new();
        sim.spawn_async("foreign", |_h| async move {
            std::future::pending::<()>().await;
        });
        match sim.run() {
            Err(SimError::ProcessPanicked { name, message }) => {
                assert_eq!(name, "foreign");
                assert!(message.contains("foreign future"), "got: {message}");
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn async_traces_are_recorded_when_enabled() {
        let mut sim = Simulation::new();
        sim.enable_tracing();
        sim.spawn_async("p", |h| async move {
            h.trace("start").await;
            h.advance(SimDuration::from_millis(1)).await;
            h.trace("end").await;
        });
        let report = sim.run().unwrap();
        assert_eq!(report.trace.len(), 2);
        assert_eq!(report.trace[0].label, "start");
        assert_eq!(report.trace[1].time, SimTime::from_nanos(1_000_000));
    }

    #[test]
    fn async_mailbox_created_inside_process() {
        let mut sim = Simulation::new();
        let ctl = sim.create_mailbox();
        sim.spawn_async("owner", move |h| async move {
            let mine = h.create_mailbox().await;
            h.send(ctl, SimDuration::ZERO, mine).await;
            let v = h.recv_as::<u16>(mine).await;
            assert_eq!(v, 77);
        });
        sim.spawn_async("peer", move |h| async move {
            let dest = h.recv_as::<MailboxId>(ctl).await;
            h.send(dest, SimDuration::from_millis(1), 77u16).await;
        });
        sim.run().unwrap();
    }

    #[test]
    fn preloaded_messages_reach_async_processes() {
        let mut sim = Simulation::new();
        let mbox = sim.create_mailbox();
        preload_message(&mut sim, mbox, SimTime::from_nanos(500), 9u8);
        let got = sim.spawn_async("rx", move |h| async move {
            (h.recv_as::<u8>(mbox).await, h.now())
        });
        sim.run().unwrap();
        assert_eq!(got.take(), Some((9, SimTime::from_nanos(500))));
    }

    /// A hand-written [`Process`] state machine: ping-pong against an async
    /// echo peer, exercising `Yield::Send`, `Yield::Recv` and
    /// [`ProcCtx::take_resume`] directly.
    struct Pinger {
        tx: MailboxId,
        rx: MailboxId,
        sent: u64,
        rounds: u64,
        awaiting_echo: bool,
    }

    impl Process for Pinger {
        fn resume(&mut self, ctx: &mut ProcCtx<'_>) -> Yield {
            if self.awaiting_echo {
                match ctx.take_resume() {
                    Resume::Message(Some(p)) => {
                        let echo = *p.downcast::<u64>().unwrap();
                        assert_eq!(echo, (self.sent - 1) * 2);
                        self.awaiting_echo = false;
                    }
                    Resume::Start | Resume::Resumed => {
                        // First entry or post-send resume: re-issue recv.
                        return Yield::Recv { mbox: self.rx };
                    }
                    Resume::Message(None) => unreachable!("no deadline armed"),
                }
            }
            if self.sent == self.rounds {
                return Yield::Done;
            }
            ctx.send(self.tx, SimDuration::from_millis(1), self.sent);
            self.sent += 1;
            self.awaiting_echo = true;
            Yield::Recv { mbox: self.rx }
        }
    }

    #[test]
    fn hand_written_process_ping_pong() {
        let mut sim = Simulation::new();
        let a_box = sim.create_mailbox();
        let b_box = sim.create_mailbox();
        sim.spawn_process(
            "pinger",
            Pinger {
                tx: b_box,
                rx: a_box,
                sent: 0,
                rounds: 5,
                awaiting_echo: false,
            },
        );
        sim.spawn_async("echo", move |h| async move {
            for _ in 0..5 {
                let v = h.recv_as::<u64>(b_box).await;
                h.send(a_box, SimDuration::from_millis(1), v * 2).await;
            }
        });
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::from_nanos(10_000_000));
        assert_eq!(report.messages_delivered, 10);
    }

    /// One mixed workload, used below to prove the stackless and threaded
    /// kernels produce bit-identical reports.
    fn mesh_report_stackless(tie: TieBreak, checks: bool) -> (u64, u64, u64, u64, SimTime) {
        let mut sim = Simulation::new();
        sim.set_tie_break(tie);
        if checks {
            sim.enable_scheduling_checks();
        }
        let boxes: Vec<_> = (0..4).map(|_| sim.create_mailbox()).collect();
        for me in 0..4usize {
            let boxes = boxes.clone();
            sim.spawn_async(format!("p{me}"), move |h| async move {
                for round in 0..20u64 {
                    for (k, b) in boxes.iter().enumerate() {
                        if k != me {
                            h.send(
                                *b,
                                SimDuration::from_micros(100 + (me as u64) * 7 + round),
                                (me, round),
                            )
                            .await;
                        }
                    }
                    h.advance(SimDuration::from_micros(50 + me as u64)).await;
                    for _ in 0..3 {
                        let deadline = h.now() + SimDuration::from_micros(40);
                        if h.recv_deadline(boxes[me], deadline).await.is_none() {
                            let _ = h.recv(boxes[me]).await;
                        }
                    }
                }
            });
        }
        let r = sim.run().unwrap();
        (
            r.events_processed,
            r.messages_delivered,
            r.messages_sent,
            r.timers_fired,
            r.end_time,
        )
    }

    #[cfg(feature = "legacy-threads")]
    fn mesh_report_threaded(tie: TieBreak) -> (u64, u64, u64, u64, SimTime) {
        let mut sim = Simulation::new();
        sim.set_tie_break(tie);
        let boxes: Vec<_> = (0..4).map(|_| sim.create_mailbox()).collect();
        for me in 0..4usize {
            let boxes = boxes.clone();
            sim.spawn(format!("p{me}"), move |h| {
                for round in 0..20u64 {
                    for (k, b) in boxes.iter().enumerate() {
                        if k != me {
                            h.send(
                                *b,
                                SimDuration::from_micros(100 + (me as u64) * 7 + round),
                                (me, round),
                            );
                        }
                    }
                    h.advance(SimDuration::from_micros(50 + me as u64));
                    for _ in 0..3 {
                        let deadline = h.now() + SimDuration::from_micros(40);
                        if h.recv_deadline(boxes[me], deadline).is_none() {
                            let _ = h.recv(boxes[me]);
                        }
                    }
                }
            });
        }
        let r = sim.run().unwrap();
        (
            r.events_processed,
            r.messages_delivered,
            r.messages_sent,
            r.timers_fired,
            r.end_time,
        )
    }

    #[test]
    fn stackless_determinism_identical_reports() {
        assert_eq!(
            mesh_report_stackless(TieBreak::Fifo, false),
            mesh_report_stackless(TieBreak::Fifo, false)
        );
    }

    #[test]
    fn scheduling_oracle_accepts_a_legal_run() {
        // The oracle must be silent on a workload that exercises every
        // grant kind (start, timer, message, deadline timeout).
        assert_eq!(
            mesh_report_stackless(TieBreak::Fifo, true),
            mesh_report_stackless(TieBreak::Fifo, false)
        );
    }

    #[cfg(feature = "legacy-threads")]
    #[test]
    fn threaded_and_stackless_reports_are_bit_identical() {
        for tie in [TieBreak::Fifo, TieBreak::Lifo, TieBreak::Seeded(0xC0FFEE)] {
            assert_eq!(
                mesh_report_stackless(tie, false),
                mesh_report_threaded(tie),
                "kernels diverged under {tie:?}"
            );
        }
    }

    // -----------------------------------------------------------------
    // Same-timestamp Timer-vs-Deliver tie-break pin (all TieBreak modes)
    // -----------------------------------------------------------------

    /// Local replica of the event-queue tie function, used to *predict*
    /// which of two same-timestamp events pops first so the pin below is
    /// principled rather than a recorded accident.
    fn splitmix64(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn tie_value(tie: TieBreak, seq: u64) -> u64 {
        match tie {
            TieBreak::Fifo => 0,
            TieBreak::Lifo => u64::MAX - seq,
            TieBreak::Seeded(salt) => splitmix64(seq ^ salt),
        }
    }

    /// Predict whether the deadline timer beats the delivery when both are
    /// scheduled for the same instant. Event seqs: 0/1 are the two start
    /// wakes (rx first); whichever process runs first at t=0 enqueues its
    /// 5 ms event (Timer for rx, Deliver for tx) with seq 2, the other
    /// with seq 3.
    fn predict_timer_wins(tie: TieBreak) -> bool {
        let rx_first_at_zero = (tie_value(tie, 0), 0) <= (tie_value(tie, 1), 1);
        let (timer_seq, deliver_seq) = if rx_first_at_zero { (2, 3) } else { (3, 2) };
        (tie_value(tie, timer_seq), timer_seq) < (tie_value(tie, deliver_seq), deliver_seq)
    }

    fn timer_vs_deliver_stackless(tie: TieBreak) -> (Option<u8>, u64, u64) {
        let mut sim = Simulation::new();
        sim.set_tie_break(tie);
        let mbox = sim.create_mailbox();
        let got = sim.spawn_async("rx", move |h| async move {
            h.recv_deadline_as::<u8>(mbox, SimTime::from_nanos(5_000_000))
                .await
        });
        sim.spawn_async("tx", move |h| async move {
            h.send(mbox, SimDuration::from_millis(5), 7u8).await;
        });
        let report = sim.run().unwrap();
        (
            got.take().unwrap(),
            report.timers_fired,
            report.messages_delivered,
        )
    }

    #[cfg(feature = "legacy-threads")]
    fn timer_vs_deliver_threaded(tie: TieBreak) -> (Option<u8>, u64, u64) {
        let mut sim = Simulation::new();
        sim.set_tie_break(tie);
        let mbox = sim.create_mailbox();
        let got = sim.spawn("rx", move |h| {
            h.recv_deadline_as::<u8>(mbox, SimTime::from_nanos(5_000_000))
        });
        sim.spawn("tx", move |h| {
            h.send(mbox, SimDuration::from_millis(5), 7u8);
        });
        let report = sim.run().unwrap();
        (
            got.take().unwrap(),
            report.timers_fired,
            report.messages_delivered,
        )
    }

    #[test]
    fn timer_vs_deliver_tiebreak_is_pinned_under_all_modes() {
        for tie in [
            TieBreak::Fifo,
            TieBreak::Lifo,
            TieBreak::Seeded(0),
            TieBreak::Seeded(1),
            TieBreak::Seeded(0xDEAD_BEEF),
        ] {
            let (got, timers, delivered) = timer_vs_deliver_stackless(tie);
            assert_eq!(delivered, 1, "message always reaches the mailbox");
            if predict_timer_wins(tie) {
                assert_eq!(got, None, "{tie:?}: timer pops first => timeout");
                assert_eq!(timers, 1, "{tie:?}");
            } else {
                assert_eq!(got, Some(7), "{tie:?}: delivery pops first => message");
                assert_eq!(timers, 0, "{tie:?}: beaten timer is stale");
            }
            #[cfg(feature = "legacy-threads")]
            assert_eq!(
                (got, timers, delivered),
                timer_vs_deliver_threaded(tie),
                "kernels diverged on the {tie:?} timer-vs-deliver tie"
            );
        }
    }

    #[test]
    fn fifo_timer_vs_deliver_times_out() {
        // The concrete Fifo pin, spelled out: rx arms its 5 ms deadline
        // before tx sends, so the timer event holds the lower seq and the
        // receive times out even though the message lands the same instant.
        assert_eq!(timer_vs_deliver_stackless(TieBreak::Fifo), (None, 1, 1));
    }
}
