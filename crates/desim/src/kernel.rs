//! The simulation kernel: owns the event queue, the mailboxes, and every
//! process state, and drives everything in deterministic virtual time.
//!
//! Processes come in two flavours sharing one event loop and one grant
//! protocol, so their event streams are bit-identical:
//!
//! * **stackless** ([`Simulation::spawn_process`] /
//!   [`Simulation::spawn_async`]) — resumable state machines dispatched on
//!   the kernel thread; the default, and the only flavour that scales to
//!   tens of thousands of ranks.
//! * **threaded** ([`Simulation::spawn`], behind the `legacy-threads`
//!   feature) — one parked OS thread per process, kept for the
//!   differential conformance suite that proves both kernels equivalent.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
#[cfg(feature = "legacy-threads")]
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
#[cfg(feature = "legacy-threads")]
use std::thread::JoinHandle;

use obs::{Gauge, Recorder};

use crate::event::{EventKind, EventQueue, Payload};
use crate::mailbox::{Mailbox, MailboxId};
#[cfg(feature = "legacy-threads")]
use crate::process::{ProcessHandle, Request, Response, SimShutdown};
use crate::process::{ProcessId, ProcessResult};
use crate::stackless::{AsyncHandle, Bridge, FutureProcess, ProcCtx, Process, Resume, Yield};
use crate::time::SimTime;
use crate::trace::{TraceEvent, TraceLog};

/// Why a simulation failed.
#[derive(Debug)]
pub enum SimError {
    /// A process panicked; contains the process name and panic message.
    ProcessPanicked {
        /// Name given to [`Simulation::spawn`].
        name: String,
        /// The panic payload, stringified.
        message: String,
    },
    /// The event queue drained while processes were still blocked.
    Deadlock {
        /// `(process name, mailbox)` pairs that will never be woken.
        blocked: Vec<(String, MailboxId)>,
        /// Virtual time at which the simulation wedged.
        at: SimTime,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::ProcessPanicked { name, message } => {
                write!(f, "simulated process `{name}` panicked: {message}")
            }
            SimError::Deadlock { blocked, at } => {
                write!(f, "deadlock at {at}: ")?;
                for (i, (name, mbox)) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "`{name}` blocked on {mbox:?}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Aggregate statistics and outcome of a completed simulation.
///
/// `PartialEq` so differential suites can assert two kernels produced the
/// same report wholesale.
#[derive(Debug, PartialEq, Eq)]
pub struct SimReport {
    /// Virtual time when the last process finished.
    pub end_time: SimTime,
    /// Number of events the kernel dispatched.
    pub events_processed: u64,
    /// Number of messages scheduled for delivery.
    pub messages_sent: u64,
    /// Number of messages that reached a mailbox.
    pub messages_delivered: u64,
    /// Number of deadline timers that expired and woke a timed receive
    /// (stale — cancelled-by-delivery — timers are not counted).
    pub timers_fired: u64,
    /// `(name, finish time)` per process, in spawn order.
    pub finish_times: Vec<(String, SimTime)>,
    /// Trace annotations, if tracing was enabled.
    pub trace: Vec<TraceEvent>,
}

/// How a process executes when granted virtual time.
enum Runner {
    /// One parked OS thread, spoken to over `Request`/`Response` channels.
    #[cfg(feature = "legacy-threads")]
    Thread {
        resp_tx: Sender<Response>,
        join: Option<JoinHandle<()>>,
    },
    /// A resumable state machine dispatched on the kernel thread. `None`
    /// only transiently while the body is being resumed, and permanently
    /// once the process finished (freeing its state early — at 100k ranks
    /// that is most of the memory).
    Stackless { body: Option<Box<dyn Process>> },
}

struct ProcInfo {
    name: String,
    runner: Runner,
    started: bool,
    finished: bool,
    blocked_on: Option<MailboxId>,
    finish_time: Option<SimTime>,
    /// Monotone counter stamping armed deadline timers; bumping it is how
    /// a timer is cancelled without touching the event heap.
    timer_gen: u64,
    /// Generation of the currently armed deadline timer, if the process is
    /// blocked in a timed receive.
    armed_timer: Option<u64>,
}

/// The kernel's answer when it grants a process virtual time.
enum Grant {
    /// First grant ever, at time zero.
    Start,
    /// A timer elapsed ([`Yield::Timer`] / `Request::Advance`).
    Resumed,
    /// A blocking receive resolved: the payload, or `None` on deadline.
    Message(Option<Payload>),
}

/// The blocking yield a process is suspended on, as tracked by the
/// scheduling-invariant oracle (see
/// [`Simulation::enable_scheduling_checks`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PendingYield {
    Timer,
    Recv,
    RecvDeadline,
}

/// Optional runtime oracle over the kernel's scheduling invariants:
/// no process is resumed while blocked, every blocking yield is answered
/// exactly once and with the matching grant kind, and virtual time is
/// monotone per process. Violations panic with a diagnostic.
#[derive(Default)]
struct SchedChecks {
    enabled: bool,
    last_resume: Vec<SimTime>,
    pending: Vec<Option<PendingYield>>,
    started: Vec<bool>,
}

impl SchedChecks {
    fn ensure(&mut self, n: usize) {
        if self.last_resume.len() < n {
            self.last_resume.resize(n, SimTime::ZERO);
            self.pending.resize(n, None);
            self.started.resize(n, false);
        }
    }

    /// Validate a grant against the process's recorded suspension state.
    fn on_grant(&mut self, pid: ProcessId, grant: &Grant, now: SimTime, blocked: bool) {
        if !self.enabled {
            return;
        }
        self.ensure(pid.0 + 1);
        assert!(
            now >= self.last_resume[pid.0],
            "scheduling oracle: virtual time ran backwards for {pid:?} \
             ({now} < {})",
            self.last_resume[pid.0]
        );
        self.last_resume[pid.0] = now;
        let pending = self.pending[pid.0].take();
        match grant {
            Grant::Start => {
                assert!(
                    !self.started[pid.0],
                    "scheduling oracle: {pid:?} started twice"
                );
                assert_eq!(
                    pending, None,
                    "scheduling oracle: {pid:?} had a pending yield before its start grant"
                );
                self.started[pid.0] = true;
            }
            Grant::Resumed => {
                assert!(
                    !blocked,
                    "scheduling oracle: {pid:?} woken while blocked on a mailbox"
                );
                assert_eq!(
                    pending,
                    Some(PendingYield::Timer),
                    "scheduling oracle: {pid:?} granted Resumed without a pending timer yield"
                );
            }
            Grant::Message(Some(_)) => {
                assert!(
                    matches!(
                        pending,
                        Some(PendingYield::Recv | PendingYield::RecvDeadline)
                    ),
                    "scheduling oracle: {pid:?} granted a message without a pending receive \
                     (pending: {pending:?})"
                );
            }
            Grant::Message(None) => {
                assert_eq!(
                    pending,
                    Some(PendingYield::RecvDeadline),
                    "scheduling oracle: {pid:?} granted a deadline timeout without a pending \
                     timed receive"
                );
            }
        }
    }

    /// Record the blocking yield a process just suspended on.
    fn on_block(&mut self, pid: ProcessId, y: PendingYield) {
        if !self.enabled {
            return;
        }
        self.ensure(pid.0 + 1);
        assert_eq!(
            self.pending[pid.0], None,
            "scheduling oracle: {pid:?} yielded {y:?} while a previous yield was unanswered"
        );
        self.pending[pid.0] = Some(y);
    }
}

/// A discrete-event simulation under construction (and, during
/// [`run`](Simulation::run), in flight).
///
/// # Example
///
/// ```
/// use desim::{Simulation, SimDuration};
///
/// let mut sim = Simulation::new();
/// let mbox = sim.create_mailbox();
/// sim.spawn_async("producer", move |h| async move {
///     h.advance(SimDuration::from_millis(5)).await;
///     h.send(mbox, SimDuration::from_millis(2), 42u32).await;
/// });
/// let got = sim.spawn_async("consumer", move |h| async move {
///     h.recv_as::<u32>(mbox).await
/// });
/// let report = sim.run().unwrap();
/// assert_eq!(got.take(), Some(42));
/// assert_eq!(report.end_time.as_nanos(), 7_000_000);
/// ```
pub struct Simulation {
    procs: Vec<ProcInfo>,
    mailboxes: Vec<Mailbox>,
    queue: EventQueue,
    #[cfg(feature = "legacy-threads")]
    req_tx: Sender<(ProcessId, Request)>,
    #[cfg(feature = "legacy-threads")]
    req_rx: Receiver<(ProcessId, Request)>,
    now: SimTime,
    trace: TraceLog,
    tracing_enabled: Arc<AtomicBool>,
    recorder: Option<Box<dyn Recorder>>,
    checks: SchedChecks,
    error: Option<SimError>,
    messages_sent: u64,
    messages_delivered: u64,
    events_processed: u64,
    timers_fired: u64,
}

/// How often (in dispatched events) the kernel samples its event-heap size
/// into an attached [`Recorder`]. Sampling every event would dominate small
/// traces; every 256th keeps the series cheap but still shows the shape.
const HEAP_SAMPLE_INTERVAL: u64 = 256;

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// An empty simulation with tracing disabled.
    pub fn new() -> Self {
        #[cfg(feature = "legacy-threads")]
        let (req_tx, req_rx) = channel();
        Simulation {
            procs: Vec::new(),
            mailboxes: Vec::new(),
            queue: EventQueue::new(),
            #[cfg(feature = "legacy-threads")]
            req_tx,
            #[cfg(feature = "legacy-threads")]
            req_rx,
            now: SimTime::ZERO,
            trace: TraceLog::disabled(),
            tracing_enabled: Arc::new(AtomicBool::new(false)),
            recorder: None,
            checks: SchedChecks::default(),
            error: None,
            messages_sent: 0,
            messages_delivered: 0,
            events_processed: 0,
            timers_fired: 0,
        }
    }

    /// Enable recording of trace annotations into the final [`SimReport`].
    pub fn enable_tracing(&mut self) {
        self.trace = TraceLog::enabled();
        self.tracing_enabled.store(true, Ordering::Relaxed);
    }

    /// Arm the scheduling-invariant oracle: every grant and blocking yield
    /// is validated (no process resumed while blocked, every yield answered
    /// exactly once by a grant of the matching kind, virtual time monotone
    /// per process). A violation panics with a diagnostic naming the
    /// process and the mismatched state. Used by the speccheck property
    /// suite; cheap enough to leave on in tests, off by default.
    pub fn enable_scheduling_checks(&mut self) {
        self.checks.enabled = true;
    }

    /// Set how events scheduled at the same virtual time are ordered
    /// (default: [`TieBreak::Fifo`](crate::event::TieBreak), insertion
    /// order). Must be called before [`run`](Self::run); used by
    /// conformance tests to prove a result does not depend on same-time
    /// delivery tie-breaks.
    pub fn set_tie_break(&mut self, tie_break: crate::event::TieBreak) {
        self.queue.set_tie_break(tie_break);
    }

    /// Attach a structured [`Recorder`]. The kernel samples its event-heap
    /// size into it (as [`Gauge::EventHeapSize`] under
    /// [`obs::Event::KERNEL_RANK`]) every [`HEAP_SAMPLE_INTERVAL`] events.
    /// Callers who need the data back should attach an
    /// [`obs::SharedRecorder`] clone.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.recorder = Some(recorder);
    }

    /// Allocate a mailbox before the simulation starts, so its id can be
    /// shared with several processes.
    pub fn create_mailbox(&mut self) -> MailboxId {
        let id = MailboxId(self.mailboxes.len());
        self.mailboxes.push(Mailbox::new());
        id
    }

    /// Spawn a stackless simulated process from an explicit [`Process`]
    /// state machine. No OS thread is created: the state machine lives in
    /// the kernel and is resumed on the kernel's own thread whenever the
    /// event it yielded on fires.
    pub fn spawn_process(
        &mut self,
        name: impl Into<String>,
        body: impl Process + 'static,
    ) -> ProcessId {
        let pid = ProcessId(self.procs.len());
        self.procs.push(ProcInfo {
            name: name.into(),
            runner: Runner::Stackless {
                body: Some(Box::new(body)),
            },
            started: false,
            finished: false,
            blocked_on: None,
            finish_time: None,
            timer_gen: 0,
            armed_timer: None,
        });
        pid
    }

    /// Spawn a stackless simulated process written as an `async fn`. The
    /// compiler generates the state machine; each `await` on the provided
    /// [`AsyncHandle`] is a kernel suspension point. Semantically identical
    /// to [`spawn`](Self::spawn) — same grant protocol, same event
    /// sequence numbers, same counters — but with no OS thread per rank.
    ///
    /// The closure runs immediately (to build the future); the body itself
    /// first executes when the kernel grants time zero.
    pub fn spawn_async<R, F, Fut>(&mut self, name: impl Into<String>, f: F) -> ProcessResult<R>
    where
        R: 'static,
        F: FnOnce(AsyncHandle) -> Fut,
        Fut: std::future::Future<Output = R> + 'static,
    {
        let pid = ProcessId(self.procs.len());
        let slot: Arc<Mutex<Option<R>>> = Arc::new(Mutex::new(None));
        let bridge = std::rc::Rc::new(std::cell::RefCell::new(Bridge::new()));
        let handle = AsyncHandle::new(
            pid,
            std::rc::Rc::clone(&bridge),
            Arc::clone(&self.tracing_enabled),
        );
        let fut = f(handle);
        let slot_for_proc = Arc::clone(&slot);
        let wrapped = async move {
            let r = fut.await;
            *slot_for_proc.lock().expect("result mutex poisoned") = Some(r);
        };
        self.spawn_process(name, FutureProcess::new(Box::pin(wrapped), bridge));
        ProcessResult { slot, pid }
    }

    /// Spawn a simulated process on its own OS thread (the legacy execution
    /// model). The closure executes only when the kernel grants it virtual
    /// time. Its return value is retrievable from the returned
    /// [`ProcessResult`] after [`run`](Self::run) completes.
    ///
    /// Kept behind the `legacy-threads` feature for the differential suite
    /// that proves the stackless kernel bit-identical; new code should use
    /// [`spawn_async`](Self::spawn_async) or
    /// [`spawn_process`](Self::spawn_process).
    #[cfg(feature = "legacy-threads")]
    pub fn spawn<R, F>(&mut self, name: impl Into<String>, f: F) -> ProcessResult<R>
    where
        R: Send + 'static,
        F: FnOnce(&mut ProcessHandle) -> R + Send + 'static,
    {
        let pid = ProcessId(self.procs.len());
        let name = name.into();
        let (resp_tx, resp_rx) = channel();
        let req_tx = self.req_tx.clone();
        let slot: Arc<Mutex<Option<R>>> = Arc::new(Mutex::new(None));
        let slot_for_thread = Arc::clone(&slot);
        let tracing = Arc::clone(&self.tracing_enabled);

        let thread_name = format!("desim-{}-{}", pid.0, name);
        let join = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                let mut handle = ProcessHandle::new(pid, req_tx.clone(), resp_rx, tracing);
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    handle.wait_for_start();
                    f(&mut handle)
                }));
                match outcome {
                    Ok(r) => {
                        *slot_for_thread.lock().expect("result mutex poisoned") = Some(r);
                        let _ = req_tx.send((pid, Request::Finish));
                    }
                    Err(payload) => {
                        if payload.downcast_ref::<SimShutdown>().is_some() {
                            return; // kernel tore the simulation down; exit quietly
                        }
                        let message = panic_message(&*payload);
                        let _ = req_tx.send((pid, Request::Panicked(message)));
                    }
                }
            })
            .expect("failed to spawn simulated process thread");

        self.procs.push(ProcInfo {
            name,
            runner: Runner::Thread {
                resp_tx,
                join: Some(join),
            },
            started: false,
            finished: false,
            blocked_on: None,
            finish_time: None,
            timer_gen: 0,
            armed_timer: None,
        });
        ProcessResult { slot, pid }
    }

    /// Run the simulation to completion.
    ///
    /// Returns the report once every process has finished, or an error if a
    /// process panicked or the system deadlocked (every remaining process
    /// blocked on a receive that can never be satisfied).
    pub fn run(mut self) -> Result<SimReport, SimError> {
        for pid in 0..self.procs.len() {
            self.queue
                .push(SimTime::ZERO, EventKind::Wake(ProcessId(pid)));
        }

        while let Some(ev) = self.queue.pop() {
            self.events_processed += 1;
            // A cancelled (stale-generation) timer is a no-op: crucially it
            // must not advance `now`, or a deadline armed and then beaten by
            // a delivery would still stretch the run's end time.
            if let EventKind::Timer { pid, generation } = ev.kind {
                if self.procs[pid.0].armed_timer != Some(generation) || self.procs[pid.0].finished {
                    continue;
                }
            }
            self.now = ev.key.time;
            if self.events_processed.is_multiple_of(HEAP_SAMPLE_INTERVAL) {
                if let Some(rec) = self.recorder.as_mut() {
                    rec.gauge(
                        obs::Event::KERNEL_RANK,
                        self.now.as_nanos(),
                        Gauge::EventHeapSize,
                        self.queue.len() as u64,
                    );
                }
            }
            match ev.kind {
                EventKind::Wake(pid) => {
                    if !self.procs[pid.0].finished {
                        let grant = if self.procs[pid.0].started {
                            Grant::Resumed
                        } else {
                            self.procs[pid.0].started = true;
                            Grant::Start
                        };
                        self.grant(pid, grant);
                    }
                }
                EventKind::Deliver { mbox, msg } => {
                    self.messages_delivered += 1;
                    self.mailboxes[mbox.0].deliver(msg);
                    if let Some(pid) = self.mailboxes[mbox.0].take_waiter() {
                        let msg = self.mailboxes[mbox.0]
                            .pop()
                            .expect("waiter woken on empty mailbox");
                        self.procs[pid.0].blocked_on = None;
                        // A timed waiter's deadline is now moot: bump the
                        // generation so the heaped timer pops as a stale
                        // no-op.
                        if self.procs[pid.0].armed_timer.take().is_some() {
                            self.procs[pid.0].timer_gen += 1;
                        }
                        self.grant(pid, Grant::Message(Some(msg)));
                    }
                }
                EventKind::Timer { pid, generation } => {
                    // Stale timers were filtered above; this one is live.
                    debug_assert_eq!(self.procs[pid.0].armed_timer, Some(generation));
                    let p = &mut self.procs[pid.0];
                    p.armed_timer = None;
                    p.timer_gen += 1;
                    let mbox = p
                        .blocked_on
                        .take()
                        .expect("timed waiter has no blocking mailbox");
                    self.mailboxes[mbox.0].remove_waiter(pid);
                    self.timers_fired += 1;
                    self.grant(pid, Grant::Message(None));
                }
            }
            if self.error.is_some() {
                break;
            }
        }

        if self.error.is_none() {
            let blocked: Vec<(String, MailboxId)> = self
                .procs
                .iter()
                .filter(|p| !p.finished)
                .map(|p| {
                    (
                        p.name.clone(),
                        p.blocked_on
                            .expect("unfinished process not blocked after queue drain"),
                    )
                })
                .collect();
            if !blocked.is_empty() {
                self.error = Some(SimError::Deadlock {
                    blocked,
                    at: self.now,
                });
            }
        }

        // Tear down the threaded processes: close every response channel so
        // threads stuck inside a blocking call unwind via SimShutdown, then
        // join everything. Stackless processes are plain state in `procs`.
        #[cfg(feature = "legacy-threads")]
        let mut joins = Vec::new();
        #[cfg(feature = "legacy-threads")]
        for p in &mut self.procs {
            if let Runner::Thread { join, .. } = &mut p.runner {
                if let Some(j) = join.take() {
                    joins.push(j);
                }
            }
        }
        let finish_times: Vec<(String, SimTime)> = self
            .procs
            .iter()
            .map(|p| (p.name.clone(), p.finish_time.unwrap_or(self.now)))
            .collect();
        let end_time = self.now;
        let events_processed = self.events_processed;
        let messages_sent = self.messages_sent;
        let messages_delivered = self.messages_delivered;
        let timers_fired = self.timers_fired;
        let trace = self.trace.take();
        let error = self.error.take();
        drop(self); // drops resp_tx senders, releasing blocked threads
        #[cfg(feature = "legacy-threads")]
        for j in joins {
            let _ = j.join();
        }

        match error {
            Some(e) => Err(e),
            None => Ok(SimReport {
                end_time,
                events_processed,
                messages_sent,
                messages_delivered,
                timers_fired,
                finish_times,
                trace,
            }),
        }
    }

    /// Grant execution to `pid` with `grant` as the answer to whatever it
    /// was suspended on, dispatching on the process's runner flavour.
    fn grant(&mut self, pid: ProcessId, grant: Grant) {
        self.checks.on_grant(
            pid,
            &grant,
            self.now,
            self.procs[pid.0].blocked_on.is_some(),
        );
        match &self.procs[pid.0].runner {
            #[cfg(feature = "legacy-threads")]
            Runner::Thread { .. } => {
                let first = match grant {
                    Grant::Start | Grant::Resumed => Response::Resumed { now: self.now },
                    Grant::Message(msg) => Response::Message { now: self.now, msg },
                };
                self.service(pid, first);
            }
            Runner::Stackless { .. } => self.dispatch_stackless(pid, grant),
        }
    }

    /// Resume a stackless process and handle its yields until it blocks
    /// again. Mirrors [`service`](Self::service) exactly: non-blocking
    /// yields (`Send`, a `Recv` with a message already delivered, an
    /// expired `RecvDeadline`) are answered inline without returning to the
    /// event loop, so event sequence numbers match the threaded kernel
    /// bit-for-bit.
    fn dispatch_stackless(&mut self, pid: ProcessId, grant: Grant) {
        #[allow(irrefutable_let_patterns)] // refutable only with legacy-threads
        let Runner::Stackless { body } = &mut self.procs[pid.0].runner
        else {
            unreachable!("dispatch_stackless on a threaded process");
        };
        let mut body = body.take().expect("process resumed while already running");
        let mut resume = match grant {
            Grant::Start => Resume::Start,
            Grant::Resumed => Resume::Resumed,
            Grant::Message(msg) => Resume::Message(msg),
        };
        // Whether the state machine survives to the next suspension point
        // (false once finished or panicked: its state is dropped early).
        let mut live = false;
        loop {
            let step = {
                let mut ctx = ProcCtx {
                    pid,
                    now: self.now,
                    resume: Some(resume),
                    mailboxes: &mut self.mailboxes,
                    queue: &mut self.queue,
                    trace: &mut self.trace,
                    tracing_enabled: self.tracing_enabled.load(Ordering::Relaxed),
                    messages_sent: &mut self.messages_sent,
                };
                catch_unwind(AssertUnwindSafe(|| body.resume(&mut ctx)))
            };
            match step {
                Err(payload) => {
                    self.procs[pid.0].finished = true;
                    self.error = Some(SimError::ProcessPanicked {
                        name: self.procs[pid.0].name.clone(),
                        message: panic_message(&*payload),
                    });
                    break;
                }
                Ok(Yield::Send { mbox, delay, msg }) => {
                    self.messages_sent += 1;
                    self.queue
                        .push(self.now + delay, EventKind::Deliver { mbox, msg });
                    resume = Resume::Resumed;
                }
                Ok(Yield::Timer(d)) => {
                    self.checks.on_block(pid, PendingYield::Timer);
                    self.queue.push(self.now + d, EventKind::Wake(pid));
                    live = true;
                    break;
                }
                Ok(Yield::Recv { mbox }) => {
                    if let Some(msg) = self.mailboxes[mbox.0].pop() {
                        resume = Resume::Message(Some(msg));
                    } else {
                        self.checks.on_block(pid, PendingYield::Recv);
                        self.mailboxes[mbox.0].add_waiter(pid);
                        self.procs[pid.0].blocked_on = Some(mbox);
                        live = true;
                        break;
                    }
                }
                Ok(Yield::RecvDeadline { mbox, deadline }) => {
                    if let Some(msg) = self.mailboxes[mbox.0].pop() {
                        resume = Resume::Message(Some(msg));
                    } else if deadline <= self.now {
                        // Already expired: one immediate poll came up empty.
                        resume = Resume::Message(None);
                    } else {
                        self.checks.on_block(pid, PendingYield::RecvDeadline);
                        self.mailboxes[mbox.0].add_waiter(pid);
                        self.procs[pid.0].blocked_on = Some(mbox);
                        let generation = self.procs[pid.0].timer_gen;
                        self.procs[pid.0].armed_timer = Some(generation);
                        self.queue
                            .push(deadline, EventKind::Timer { pid, generation });
                        live = true;
                        break;
                    }
                }
                Ok(Yield::Done) => {
                    self.procs[pid.0].finished = true;
                    self.procs[pid.0].finish_time = Some(self.now);
                    break;
                }
            }
        }
        if live {
            #[allow(irrefutable_let_patterns)] // refutable only with legacy-threads
            let Runner::Stackless { body: slot } = &mut self.procs[pid.0].runner
            else {
                unreachable!("runner flavour changed mid-dispatch");
            };
            *slot = Some(body);
        }
    }

    /// Grant execution to a threaded `pid` with `first` as the answer to
    /// whatever it was blocked on, then service its requests until it
    /// blocks again.
    #[cfg(feature = "legacy-threads")]
    fn service(&mut self, pid: ProcessId, first: Response) {
        let Runner::Thread { resp_tx, .. } = &self.procs[pid.0].runner else {
            unreachable!("service on a stackless process");
        };
        if resp_tx.send(first).is_err() {
            // The thread died without telling us; treat as a panic.
            self.error = Some(SimError::ProcessPanicked {
                name: self.procs[pid.0].name.clone(),
                message: "process thread exited outside the protocol".into(),
            });
            self.procs[pid.0].finished = true;
            return;
        }
        loop {
            let (from, req) = self
                .req_rx
                .recv()
                .expect("request channel closed while a process was running");
            debug_assert_eq!(
                from, pid,
                "request from a process that was not granted time"
            );
            match req {
                Request::Advance(d) => {
                    self.checks.on_block(pid, PendingYield::Timer);
                    self.queue.push(self.now + d, EventKind::Wake(pid));
                    return;
                }
                Request::Send { mbox, delay, msg } => {
                    self.messages_sent += 1;
                    self.queue
                        .push(self.now + delay, EventKind::Deliver { mbox, msg });
                    self.reply(pid, Response::Resumed { now: self.now });
                }
                Request::TryRecv { mbox } => {
                    let msg = self.mailboxes[mbox.0].pop();
                    self.reply(pid, Response::Message { now: self.now, msg });
                }
                Request::Recv { mbox } => {
                    if let Some(msg) = self.mailboxes[mbox.0].pop() {
                        self.reply(
                            pid,
                            Response::Message {
                                now: self.now,
                                msg: Some(msg),
                            },
                        );
                    } else {
                        self.checks.on_block(pid, PendingYield::Recv);
                        self.mailboxes[mbox.0].add_waiter(pid);
                        self.procs[pid.0].blocked_on = Some(mbox);
                        return;
                    }
                }
                Request::RecvDeadline { mbox, deadline } => {
                    if let Some(msg) = self.mailboxes[mbox.0].pop() {
                        self.reply(
                            pid,
                            Response::Message {
                                now: self.now,
                                msg: Some(msg),
                            },
                        );
                    } else if deadline <= self.now {
                        // Already expired: one immediate poll came up empty.
                        self.reply(
                            pid,
                            Response::Message {
                                now: self.now,
                                msg: None,
                            },
                        );
                    } else {
                        self.checks.on_block(pid, PendingYield::RecvDeadline);
                        self.mailboxes[mbox.0].add_waiter(pid);
                        self.procs[pid.0].blocked_on = Some(mbox);
                        let generation = self.procs[pid.0].timer_gen;
                        self.procs[pid.0].armed_timer = Some(generation);
                        self.queue
                            .push(deadline, EventKind::Timer { pid, generation });
                        return;
                    }
                }
                Request::CreateMailbox => {
                    let id = MailboxId(self.mailboxes.len());
                    self.mailboxes.push(Mailbox::new());
                    self.reply(pid, Response::Mailbox { now: self.now, id });
                }
                Request::Trace(label) => {
                    self.trace.record(self.now, pid, || label);
                    self.reply(pid, Response::Resumed { now: self.now });
                }
                Request::Finish => {
                    self.procs[pid.0].finished = true;
                    self.procs[pid.0].finish_time = Some(self.now);
                    return;
                }
                Request::Panicked(message) => {
                    self.procs[pid.0].finished = true;
                    self.error = Some(SimError::ProcessPanicked {
                        name: self.procs[pid.0].name.clone(),
                        message,
                    });
                    return;
                }
            }
        }
    }

    #[cfg(feature = "legacy-threads")]
    fn reply(&mut self, pid: ProcessId, resp: Response) {
        let Runner::Thread { resp_tx, .. } = &self.procs[pid.0].runner else {
            unreachable!("reply to a stackless process");
        };
        if resp_tx.send(resp).is_err() {
            self.error = Some(SimError::ProcessPanicked {
                name: self.procs[pid.0].name.clone(),
                message: "process thread exited outside the protocol".into(),
            });
            self.procs[pid.0].finished = true;
        }
    }
}

/// Schedule a message delivery directly from outside any process (useful in
/// tests to pre-load mailboxes). The message is delivered at `at`.
pub fn preload_message<T: std::any::Any + Send>(
    sim: &mut Simulation,
    mbox: MailboxId,
    at: SimTime,
    msg: T,
) {
    sim.messages_sent += 1;
    sim.queue.push(
        at,
        EventKind::Deliver {
            mbox,
            msg: Box::new(msg) as Payload,
        },
    );
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
