//! The event queue at the heart of the simulator.
//!
//! Events are totally ordered by `(time, tie, seq)` where `seq` is a
//! monotonically increasing counter assigned at insertion and `tie` is
//! derived from `seq` by the queue's [`TieBreak`] policy. Under the default
//! [`TieBreak::Fifo`] every `tie` is zero, so two events at the same
//! virtual time fire in the order they were scheduled — the kernel's
//! historical behavior, bit for bit. The other policies perturb only the
//! order of *same-time* events (the schedules a real machine is free to
//! interleave either way) while keeping the whole run deterministic, which
//! is what lets a test assert that a result does not secretly depend on
//! delivery tie-breaks.

use std::any::Any;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::mailbox::MailboxId;
use crate::process::ProcessId;
use crate::time::SimTime;

/// Type-erased message payload carried through the simulator.
pub type Payload = Box<dyn Any + Send>;

/// What happens when an event fires.
pub enum EventKind {
    /// Resume a process that was sleeping in [`ProcessHandle::advance`].
    ///
    /// [`ProcessHandle::advance`]: crate::process::ProcessHandle::advance
    Wake(ProcessId),
    /// A message reaches its destination mailbox.
    Deliver {
        /// Destination mailbox.
        mbox: MailboxId,
        /// The message payload.
        msg: Payload,
    },
    /// A deadline armed by a timed receive expires.
    ///
    /// The kernel stamps each armed timer with the owning process's current
    /// timer generation; a delivery that wakes the process first bumps the
    /// generation, so the already-scheduled timer pops as a stale no-op
    /// instead of waking anyone. Cancellation is O(1) — nothing is removed
    /// from the heap.
    Timer {
        /// The process whose deadline this is.
        pid: ProcessId,
        /// Generation the timer was armed under; stale if it no longer
        /// matches the process's current generation.
        generation: u64,
    },
}

/// Unique, totally ordered key of a scheduled event.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct EventKey {
    /// When the event fires.
    pub time: SimTime,
    /// Insertion order, breaking ties at equal times.
    pub seq: u64,
}

/// How events scheduled for the *same* virtual time are ordered.
///
/// Any policy yields a fully deterministic run (the ordering stays total —
/// `seq` remains the final tie-break); non-default policies deterministically
/// permute the same-time delivery order, exposing code whose result quietly
/// depends on which of two simultaneous events fires first.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TieBreak {
    /// Insertion order (the default, and the historical behavior).
    #[default]
    Fifo,
    /// Reverse insertion order.
    Lifo,
    /// Pseudo-random order, keyed by this salt (splitmix64 of the
    /// insertion counter). Different salts give different — but each fully
    /// reproducible — same-time permutations.
    Seeded(u64),
}

impl TieBreak {
    fn tie(self, seq: u64) -> u64 {
        match self {
            TieBreak::Fifo => 0,
            TieBreak::Lifo => u64::MAX - seq,
            TieBreak::Seeded(salt) => splitmix64(seq ^ salt),
        }
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub(crate) struct Event {
    pub key: EventKey,
    pub kind: EventKind,
    /// Policy-derived tie value; orders events sharing `key.time`.
    tie: u64,
}

// BinaryHeap is a max-heap; invert the comparison so the earliest event pops
// first. Only (time, tie, seq) participates in ordering.
impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.key.time, other.tie, other.key.seq).cmp(&(self.key.time, self.tie, self.key.seq))
    }
}

/// A deterministic priority queue of simulation events.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
    tie_break: TieBreak,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the same-time ordering policy. Applies to events pushed from
    /// now on; call before scheduling anything (the kernel does).
    pub fn set_tie_break(&mut self, tie_break: TieBreak) {
        self.tie_break = tie_break;
    }

    /// Schedule `kind` to fire at `time`. Returns the assigned key.
    pub fn push(&mut self, time: SimTime, kind: EventKind) -> EventKey {
        let key = EventKey {
            time,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.heap.push(Event {
            key,
            kind,
            tie: self.tie_break.tie(key.seq),
        });
        key
    }

    /// Remove and return the earliest event, if any.
    pub(crate) fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Remove the earliest event, returning its key and kind (the public
    /// counterpart of the kernel-internal `pop`, useful for tests and
    /// benchmarks of the queue itself).
    pub fn pop_event(&mut self) -> Option<(EventKey, EventKind)> {
        self.heap.pop().map(|e| (e.key, e.kind))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.key.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wake(pid: usize) -> EventKind {
        EventKind::Wake(ProcessId(pid))
    }

    fn pop_pid(q: &mut EventQueue) -> (SimTime, usize) {
        let e = q.pop().unwrap();
        match e.kind {
            EventKind::Wake(pid) => (e.key.time, pid.0),
            _ => panic!("expected wake"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), wake(3));
        q.push(SimTime::from_nanos(10), wake(1));
        q.push(SimTime::from_nanos(20), wake(2));
        assert_eq!(pop_pid(&mut q), (SimTime::from_nanos(10), 1));
        assert_eq!(pop_pid(&mut q), (SimTime::from_nanos(20), 2));
        assert_eq!(pop_pid(&mut q), (SimTime::from_nanos(30), 3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_times_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for pid in 0..100 {
            q.push(t, wake(pid));
        }
        for pid in 0..100 {
            assert_eq!(pop_pid(&mut q), (t, pid));
        }
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(7), wake(0));
        q.push(SimTime::from_nanos(3), wake(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, wake(0));
        q.push(SimTime::ZERO, wake(1));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn lifo_reverses_same_time_order_only() {
        let mut q = EventQueue::new();
        q.set_tie_break(TieBreak::Lifo);
        let t = SimTime::from_nanos(5);
        q.push(SimTime::from_nanos(1), wake(9)); // earlier time still first
        for pid in 0..4 {
            q.push(t, wake(pid));
        }
        assert_eq!(pop_pid(&mut q), (SimTime::from_nanos(1), 9));
        for pid in (0..4).rev() {
            assert_eq!(pop_pid(&mut q), (t, pid));
        }
    }

    #[test]
    fn seeded_tiebreak_is_reproducible_and_salt_sensitive() {
        let order = |salt: u64| {
            let mut q = EventQueue::new();
            q.set_tie_break(TieBreak::Seeded(salt));
            let t = SimTime::from_nanos(3);
            for pid in 0..16 {
                q.push(t, wake(pid));
            }
            let mut out = Vec::new();
            while let Some(e) = q.pop() {
                if let EventKind::Wake(pid) = e.kind {
                    out.push(pid.0);
                }
            }
            out
        };
        assert_eq!(order(7), order(7), "same salt, same permutation");
        assert_ne!(order(7), order(8), "different salts must differ");
        let mut sorted = order(7);
        sorted.sort();
        assert_eq!(
            sorted,
            (0..16).collect::<Vec<_>>(),
            "a permutation, not a filter"
        );
    }

    #[test]
    fn fifo_is_the_default_and_matches_insertion_order() {
        assert_eq!(TieBreak::default(), TieBreak::Fifo);
        let mut q = EventQueue::new();
        q.set_tie_break(TieBreak::Fifo);
        let t = SimTime::from_nanos(5);
        for pid in 0..10 {
            q.push(t, wake(pid));
        }
        for pid in 0..10 {
            assert_eq!(pop_pid(&mut q), (t, pid));
        }
    }

    #[test]
    fn keys_are_unique_and_increasing() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::ZERO, wake(0));
        let b = q.push(SimTime::ZERO, wake(0));
        assert!(a.seq < b.seq);
        assert_ne!(a, b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping the queue always yields keys in nondecreasing (time, seq)
        /// order, whatever the insertion schedule was.
        #[test]
        fn pop_order_is_sorted(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(*t), EventKind::Wake(ProcessId(i)));
            }
            let mut last: Option<EventKey> = None;
            while let Some(e) = q.pop() {
                if let Some(prev) = last {
                    prop_assert!(prev < e.key);
                    prop_assert!(prev.time <= e.key.time);
                }
                last = Some(e.key);
            }
        }

        /// Interleaved pushes and pops never pop an event earlier than one
        /// already popped at the same or earlier push time.
        #[test]
        fn interleaved_monotone(ops in proptest::collection::vec((0u64..100, any::<bool>()), 1..200)) {
            let mut q = EventQueue::new();
            let mut horizon = SimTime::ZERO;
            for (t, do_pop) in ops {
                // Schedule only in the future relative to what we've popped,
                // mirroring how the kernel uses the queue.
                let at = horizon + crate::time::SimDuration::from_nanos(t);
                q.push(at, EventKind::Wake(ProcessId(0)));
                if do_pop {
                    if let Some(e) = q.pop() {
                        prop_assert!(e.key.time >= horizon);
                        horizon = e.key.time;
                    }
                }
            }
        }
    }
}
