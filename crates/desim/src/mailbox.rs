//! Mailboxes: the delivery endpoints for simulated messages.
//!
//! A mailbox is a FIFO queue of already-delivered payloads plus a FIFO queue
//! of processes blocked waiting on it. Delivery order is the order in which
//! `Deliver` events fire, which — because the event queue is deterministic —
//! is itself deterministic.

use std::collections::VecDeque;

use crate::event::Payload;
use crate::process::ProcessId;

/// Identifier of a mailbox within one simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MailboxId(pub usize);

/// Internal mailbox state owned by the kernel.
#[derive(Default)]
pub(crate) struct Mailbox {
    queue: VecDeque<Payload>,
    waiters: VecDeque<ProcessId>,
}

impl Mailbox {
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue a delivered payload.
    pub fn deliver(&mut self, msg: Payload) {
        self.queue.push_back(msg);
    }

    /// Pop the oldest delivered payload, if any.
    pub fn pop(&mut self) -> Option<Payload> {
        self.queue.pop_front()
    }

    /// Number of delivered-but-unreceived payloads.
    #[allow(dead_code)] // part of the kernel-internal API, exercised in tests
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Register `pid` as blocked on this mailbox.
    pub fn add_waiter(&mut self, pid: ProcessId) {
        self.waiters.push_back(pid);
    }

    /// Pop the longest-waiting blocked process, if any.
    pub fn take_waiter(&mut self) -> Option<ProcessId> {
        self.waiters.pop_front()
    }

    /// Unregister a specific blocked process (its deadline timer fired and
    /// it is no longer waiting here). No-op if `pid` is not a waiter.
    pub fn remove_waiter(&mut self, pid: ProcessId) {
        if let Some(at) = self.waiters.iter().position(|w| *w == pid) {
            self.waiters.remove(at);
        }
    }

    /// True if at least one process is blocked on this mailbox.
    #[allow(dead_code)] // part of the kernel-internal API, exercised in tests
    pub fn has_waiters(&self) -> bool {
        !self.waiters.is_empty()
    }

    /// The processes currently blocked on this mailbox (for diagnostics).
    #[allow(dead_code)] // part of the kernel-internal API, exercised in tests
    pub fn waiters(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.waiters.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_delivery() {
        let mut m = Mailbox::new();
        m.deliver(Box::new(1u32));
        m.deliver(Box::new(2u32));
        m.deliver(Box::new(3u32));
        assert_eq!(m.pending(), 3);
        for want in 1u32..=3 {
            let got = *m.pop().unwrap().downcast::<u32>().unwrap();
            assert_eq!(got, want);
        }
        assert!(m.pop().is_none());
    }

    #[test]
    fn fifo_waiters() {
        let mut m = Mailbox::new();
        assert!(!m.has_waiters());
        m.add_waiter(ProcessId(7));
        m.add_waiter(ProcessId(8));
        assert!(m.has_waiters());
        assert_eq!(m.take_waiter(), Some(ProcessId(7)));
        assert_eq!(m.take_waiter(), Some(ProcessId(8)));
        assert_eq!(m.take_waiter(), None);
    }

    #[test]
    fn remove_waiter_unregisters_only_the_given_process() {
        let mut m = Mailbox::new();
        m.add_waiter(ProcessId(1));
        m.add_waiter(ProcessId(2));
        m.add_waiter(ProcessId(3));
        m.remove_waiter(ProcessId(2));
        m.remove_waiter(ProcessId(9)); // absent pid: no-op
        let ids: Vec<usize> = m.waiters().map(|p| p.0).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn waiters_iterates_in_order() {
        let mut m = Mailbox::new();
        m.add_waiter(ProcessId(1));
        m.add_waiter(ProcessId(2));
        let ids: Vec<usize> = m.waiters().map(|p| p.0).collect();
        assert_eq!(ids, vec![1, 2]);
    }
}
