//! Virtual time for the discrete-event simulator.
//!
//! Time is tracked as an integer number of nanoseconds so that event ordering
//! is exact and runs are bit-for-bit reproducible. Floating-point seconds are
//! only used at the edges (configuration and reporting).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute point in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as `f64` (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is
    /// actually later.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from fractional seconds. Negative and non-finite inputs
    /// clamp to zero; values beyond the representable range clamp to
    /// [`SimDuration::MAX`].
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration(0);
        }
        let ns = secs * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// True if this duration is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scale by a non-negative float, rounding to the nearest nanosecond.
    /// Negative and non-finite factors clamp to zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        if !factor.is_finite() || factor <= 0.0 {
            return SimDuration(0);
        }
        let ns = self.0 as f64 * factor;
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns.round() as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        self.saturating_add(rhs)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        self.saturating_sub(rhs)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimDuration::default(), SimDuration::ZERO);
    }

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_nanos(10) + SimDuration::from_nanos(5);
        assert_eq!(t.as_nanos(), 15);
    }

    #[test]
    fn time_difference_saturates() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(10);
        assert_eq!((b - a).as_nanos(), 5);
        assert_eq!((a - b).as_nanos(), 0);
    }

    #[test]
    fn from_secs_roundtrip() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500_000_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_secs_clamps_garbage() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(1000);
        assert_eq!(d.mul_f64(1.5).as_nanos(), 1500);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(-3.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn saturating_arithmetic() {
        let big = SimDuration::from_nanos(u64::MAX - 1);
        assert_eq!(big + big, SimDuration::MAX);
        assert_eq!(
            SimDuration::from_nanos(1) - SimDuration::from_nanos(2),
            SimDuration::ZERO
        );
        assert_eq!(SimTime::MAX + SimDuration::from_nanos(1), SimTime::MAX);
    }

    #[test]
    fn micros_and_millis() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
    }

    #[test]
    fn display_formats_seconds() {
        let t = SimTime::from_nanos(1_500_000_000);
        assert_eq!(format!("{t}"), "1.500000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_nanos(1) < SimDuration::from_nanos(2));
    }

    #[test]
    fn checked_add_overflow() {
        assert_eq!(SimTime::MAX.checked_add(SimDuration::from_nanos(1)), None);
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_nanos(7)),
            Some(SimTime::from_nanos(7))
        );
    }

    #[test]
    fn div_and_mul_scalar() {
        let d = SimDuration::from_nanos(100);
        assert_eq!((d * 3).as_nanos(), 300);
        assert_eq!((d / 4).as_nanos(), 25);
    }
}
