//! Process identity, results, and the legacy threaded kernel handshake.
//!
//! Under the `legacy-threads` feature, a simulated process may run on its
//! own OS thread while the kernel grants execution to exactly one process
//! at a time, so the simulation is sequential and deterministic regardless
//! of OS scheduling. Such a process interacts with virtual time exclusively
//! through its [`ProcessHandle`]: every handle call sends a [`Request`] to
//! the kernel and blocks until the kernel answers with a [`Response`].
//! Blocking calls (`advance`, `recv`) suspend the process until the
//! corresponding event fires.
//!
//! The stackless execution model (the default — see
//! [`crate::stackless`]) shares [`ProcessId`] and [`ProcessResult`] but
//! replaces the channel handshake with direct kernel dispatch.

#[cfg(feature = "legacy-threads")]
use std::any::Any;
#[cfg(feature = "legacy-threads")]
use std::sync::atomic::{AtomicBool, Ordering};
#[cfg(feature = "legacy-threads")]
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};

#[cfg(feature = "legacy-threads")]
use crate::event::Payload;
#[cfg(feature = "legacy-threads")]
use crate::mailbox::MailboxId;
#[cfg(feature = "legacy-threads")]
use crate::time::{SimDuration, SimTime};

/// Identifier of a process within one simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcessId(pub usize);

/// A request from a threaded process to the kernel.
#[cfg(feature = "legacy-threads")]
pub(crate) enum Request {
    /// Let virtual time pass; models computation taking this long.
    Advance(SimDuration),
    /// Schedule a message for delivery `delay` from now. Non-blocking.
    Send {
        mbox: MailboxId,
        delay: SimDuration,
        msg: Payload,
    },
    /// Block until a message is available in `mbox`, then take it.
    Recv { mbox: MailboxId },
    /// Block until a message is available in `mbox` or `deadline` passes,
    /// whichever comes first.
    RecvDeadline { mbox: MailboxId, deadline: SimTime },
    /// Take a message from `mbox` if one has been delivered. Non-blocking.
    TryRecv { mbox: MailboxId },
    /// Allocate a fresh mailbox.
    CreateMailbox,
    /// Record a trace annotation at the current virtual time.
    Trace(String),
    /// The process function returned normally.
    Finish,
    /// The process function panicked; the payload is its message.
    Panicked(String),
}

/// A kernel answer to a [`Request`].
#[cfg(feature = "legacy-threads")]
pub(crate) enum Response {
    /// Execution resumes; `now` is the current virtual time.
    Resumed { now: SimTime },
    /// Result of `Recv`/`TryRecv`.
    Message { now: SimTime, msg: Option<Payload> },
    /// Result of `CreateMailbox`.
    Mailbox { now: SimTime, id: MailboxId },
}

/// Sentinel panic payload used to unwind process threads quietly when the
/// simulation is torn down early (deadlock or another process panicking).
#[cfg(feature = "legacy-threads")]
pub(crate) struct SimShutdown;

/// The view a simulated process has of the simulation kernel.
///
/// Obtained as the argument of the closure passed to
/// [`Simulation::spawn`](crate::Simulation::spawn).
#[cfg(feature = "legacy-threads")]
pub struct ProcessHandle {
    pid: ProcessId,
    req_tx: Sender<(ProcessId, Request)>,
    resp_rx: Receiver<Response>,
    now: SimTime,
    tracing: Arc<AtomicBool>,
}

#[cfg(feature = "legacy-threads")]
impl ProcessHandle {
    pub(crate) fn new(
        pid: ProcessId,
        req_tx: Sender<(ProcessId, Request)>,
        resp_rx: Receiver<Response>,
        tracing: Arc<AtomicBool>,
    ) -> Self {
        ProcessHandle {
            pid,
            req_tx,
            resp_rx,
            now: SimTime::ZERO,
            tracing,
        }
    }

    /// This process's id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Block this process's initial start until the kernel grants time zero.
    pub(crate) fn wait_for_start(&mut self) {
        match self.wait() {
            Response::Resumed { now } => self.now = now,
            _ => unreachable!("kernel start grant is always Resumed"),
        }
    }

    fn call(&mut self, req: Request) -> Response {
        if self.req_tx.send((self.pid, req)).is_err() {
            // Kernel is gone: unwind quietly.
            std::panic::panic_any(SimShutdown);
        }
        self.wait()
    }

    fn wait(&mut self) -> Response {
        match self.resp_rx.recv() {
            Ok(r) => r,
            Err(_) => std::panic::panic_any(SimShutdown),
        }
    }

    /// Spend `d` of virtual time computing. Returns the new current time.
    pub fn advance(&mut self, d: SimDuration) -> SimTime {
        match self.call(Request::Advance(d)) {
            Response::Resumed { now } => {
                self.now = now;
                now
            }
            _ => unreachable!("Advance answered with non-Resumed"),
        }
    }

    /// Schedule `msg` for delivery into `mbox` after `delay`. Non-blocking:
    /// virtual time does not pass for the sender (model any send-side CPU
    /// cost with [`advance`](Self::advance)).
    pub fn send<T: Any + Send>(&mut self, mbox: MailboxId, delay: SimDuration, msg: T) {
        match self.call(Request::Send {
            mbox,
            delay,
            msg: Box::new(msg),
        }) {
            Response::Resumed { now } => self.now = now,
            _ => unreachable!("Send answered with non-Resumed"),
        }
    }

    /// Block until a message is available in `mbox` and take it. Virtual
    /// time advances to the delivery instant of the message received.
    pub fn recv(&mut self, mbox: MailboxId) -> Payload {
        match self.call(Request::Recv { mbox }) {
            Response::Message { now, msg } => {
                self.now = now;
                msg.expect("blocking recv resolved without a message")
            }
            _ => unreachable!("Recv answered with non-Message"),
        }
    }

    /// Block until a message is available in `mbox` or `deadline` passes.
    ///
    /// Purely event-driven: the kernel arms one deadline timer event and
    /// registers this process as a mailbox waiter, so the process wakes at
    /// the exact virtual arrival time of the next delivery — or at exactly
    /// `deadline` with `None`. A message already delivered is returned
    /// without blocking; a deadline at or before the current time degrades
    /// to [`try_recv`](Self::try_recv) (one immediate poll, no waiting).
    pub fn recv_deadline(&mut self, mbox: MailboxId, deadline: SimTime) -> Option<Payload> {
        match self.call(Request::RecvDeadline { mbox, deadline }) {
            Response::Message { now, msg } => {
                self.now = now;
                msg
            }
            _ => unreachable!("RecvDeadline answered with non-Message"),
        }
    }

    /// Timed receive with a type downcast.
    pub fn recv_deadline_as<T: Any + Send>(
        &mut self,
        mbox: MailboxId,
        deadline: SimTime,
    ) -> Option<T> {
        self.recv_deadline(mbox, deadline).map(|p| {
            *p.downcast::<T>()
                .unwrap_or_else(|_| panic!("message in {mbox:?} had unexpected type"))
        })
    }

    /// Take a message from `mbox` if one has already been delivered.
    /// Never blocks and never advances virtual time.
    pub fn try_recv(&mut self, mbox: MailboxId) -> Option<Payload> {
        match self.call(Request::TryRecv { mbox }) {
            Response::Message { now, msg } => {
                self.now = now;
                msg
            }
            _ => unreachable!("TryRecv answered with non-Message"),
        }
    }

    /// Blocking receive with a type downcast; panics if the payload is not a
    /// `T` (which indicates a protocol bug in the caller).
    pub fn recv_as<T: Any + Send>(&mut self, mbox: MailboxId) -> T {
        *self
            .recv(mbox)
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("message in {mbox:?} had unexpected type"))
    }

    /// Non-blocking receive with a type downcast.
    pub fn try_recv_as<T: Any + Send>(&mut self, mbox: MailboxId) -> Option<T> {
        self.try_recv(mbox).map(|p| {
            *p.downcast::<T>()
                .unwrap_or_else(|_| panic!("message in {mbox:?} had unexpected type"))
        })
    }

    /// Allocate a fresh mailbox owned by no one in particular.
    pub fn create_mailbox(&mut self) -> MailboxId {
        match self.call(Request::CreateMailbox) {
            Response::Mailbox { now, id } => {
                self.now = now;
                id
            }
            _ => unreachable!("CreateMailbox answered with non-Mailbox"),
        }
    }

    /// Record a trace annotation at the current virtual time. A no-op unless
    /// tracing was enabled on the [`Simulation`](crate::Simulation).
    ///
    /// Prefer [`trace_with`](Self::trace_with) when the label needs
    /// formatting: this method takes the label by value, so the caller has
    /// already paid for it even when tracing is off.
    pub fn trace(&mut self, label: impl Into<String>) {
        self.trace_with(|| label.into());
    }

    /// Record a trace annotation, building the label lazily. When tracing
    /// is disabled this is a single relaxed atomic load: the closure never
    /// runs, nothing allocates, and no kernel round-trip happens.
    pub fn trace_with(&mut self, label: impl FnOnce() -> String) {
        if !self.tracing.load(Ordering::Relaxed) {
            return;
        }
        match self.call(Request::Trace(label())) {
            Response::Resumed { now } => self.now = now,
            _ => unreachable!("Trace answered with non-Resumed"),
        }
    }
}

/// Handle to retrieve a process's return value after the simulation ran.
pub struct ProcessResult<R> {
    pub(crate) slot: Arc<Mutex<Option<R>>>,
    pub(crate) pid: ProcessId,
}

impl<R> ProcessResult<R> {
    /// The process this result belongs to.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Take the return value. Returns `None` if the process never finished
    /// (simulation error) or the value was already taken.
    pub fn take(&self) -> Option<R> {
        self.slot.lock().expect("result mutex poisoned").take()
    }
}
