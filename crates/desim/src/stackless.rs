//! Stackless simulated processes: resumable state machines scheduled
//! entirely by the event kernel.
//!
//! The original execution model (kept behind the `legacy-threads` feature)
//! parks one OS thread per simulated process and shuttles
//! `Request`/`Response` pairs over channels. That caps simulations at a few
//! dozen ranks — each rank costs a full thread stack plus two context
//! switches per event. This module replaces the thread with a [`Process`]:
//! a state machine whose [`resume`](Process::resume) runs on the *kernel's*
//! thread until the process needs virtual time to pass, at which point it
//! returns a [`Yield`] describing what it is waiting for. The kernel owns
//! every process state, so 10k–1M ranks are just a `Vec` of boxed state
//! machines and one event heap.
//!
//! Two ways to write a process:
//!
//! * implement [`Process`] by hand — an explicit `enum`-state machine with
//!   full control over every suspension point; or
//! * write an `async fn` and pass it to
//!   [`Simulation::spawn_async`](crate::Simulation::spawn_async): the
//!   compiler generates the state machine, and an [`AsyncHandle`] maps each
//!   `await` onto the same [`Yield`] protocol. This is how the `speccore`
//!   driver runs unchanged on both kernels.
//!
//! The protocol is deliberately bit-identical to the threaded handshake:
//! non-blocking operations ([`ProcCtx::send`], [`ProcCtx::try_recv`],
//! [`ProcCtx::create_mailbox`], [`ProcCtx::trace`]) execute inline without
//! returning to the event loop, exactly as the threaded kernel answered
//! them without yielding the time grant; only `Timer`, an empty-mailbox
//! `Recv`/`RecvDeadline`, and `Done` give the grant back. Event sequence
//! numbers — and therefore Fifo/Lifo/Seeded tie-breaks, `SimReport`
//! counters and every fingerprint downstream — match the threaded kernel
//! exactly.

use std::any::Any;
use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use crate::event::{EventKind, EventQueue, Payload};
use crate::mailbox::{Mailbox, MailboxId};
use crate::process::ProcessId;
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceLog;

/// What a [`Process`] is waiting for when it gives the time grant back to
/// the kernel.
pub enum Yield {
    /// Schedule `msg` for delivery into `mbox` after `delay`, then resume
    /// immediately (virtual time does not pass for the sender). Answered
    /// with [`Resume::Resumed`] in the same dispatch — provided for
    /// hand-written state machines; [`ProcCtx::send`] is the inline
    /// equivalent.
    Send {
        /// Destination mailbox.
        mbox: MailboxId,
        /// Modelled network delay before delivery.
        delay: SimDuration,
        /// The message payload.
        msg: Payload,
    },
    /// Block until a message is available in `mbox`. Answered with
    /// [`Resume::Message`]`(Some(_))` at the delivery instant.
    Recv {
        /// Mailbox to wait on.
        mbox: MailboxId,
    },
    /// Block until a message is available in `mbox` or `deadline` passes,
    /// whichever comes first. Answered with [`Resume::Message`] — `None`
    /// means the deadline fired.
    RecvDeadline {
        /// Mailbox to wait on.
        mbox: MailboxId,
        /// Absolute virtual-time deadline.
        deadline: SimTime,
    },
    /// Let `d` of virtual time pass (modelling computation), then resume
    /// with [`Resume::Resumed`].
    Timer(SimDuration),
    /// The process is finished; it will never be resumed again.
    Done,
}

/// The kernel's answer to the previous [`Yield`], readable via
/// [`ProcCtx::take_resume`] at the top of [`Process::resume`].
#[derive(Debug)]
pub enum Resume {
    /// First resume ever, at virtual time zero. Nothing was yielded yet.
    Start,
    /// A [`Yield::Timer`] elapsed or a [`Yield::Send`] was accepted.
    Resumed,
    /// Answer to [`Yield::Recv`] / [`Yield::RecvDeadline`]: the delivered
    /// payload, or `None` if the deadline expired first.
    Message(Option<Payload>),
}

/// A stackless simulated process: a resumable state machine.
///
/// The kernel calls [`resume`](Self::resume) whenever the event the process
/// was waiting for fires. The implementation runs — on the kernel's own
/// thread — until it next needs virtual time to pass, and describes that
/// suspension point in the returned [`Yield`]. State that must survive the
/// suspension lives in `self`.
///
/// There is no `Send` bound: process state never leaves the kernel thread.
pub trait Process {
    /// Run until the next suspension point. `ctx` carries the answer to the
    /// previous yield ([`ProcCtx::take_resume`]) and the kernel's inline
    /// (non-blocking) operations.
    fn resume(&mut self, ctx: &mut ProcCtx<'_>) -> Yield;
}

/// The kernel-side view a [`Process`] has while it holds the time grant.
///
/// Everything here executes inline, without returning to the event loop —
/// mirroring the threaded kernel, which answered non-blocking requests
/// without moving virtual time or yielding the grant.
pub struct ProcCtx<'k> {
    pub(crate) pid: ProcessId,
    pub(crate) now: SimTime,
    pub(crate) resume: Option<Resume>,
    pub(crate) mailboxes: &'k mut Vec<Mailbox>,
    pub(crate) queue: &'k mut EventQueue,
    pub(crate) trace: &'k mut TraceLog,
    pub(crate) tracing_enabled: bool,
    pub(crate) messages_sent: &'k mut u64,
}

impl ProcCtx<'_> {
    /// This process's id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The kernel's answer to the previous [`Yield`]. Yields exactly one
    /// meaningful answer per resume; subsequent calls in the same resume
    /// return [`Resume::Resumed`].
    pub fn take_resume(&mut self) -> Resume {
        self.resume.take().unwrap_or(Resume::Resumed)
    }

    /// Schedule `msg` for delivery into `mbox` after `delay`. Non-blocking:
    /// virtual time does not pass for the sender (model any send-side CPU
    /// cost with [`Yield::Timer`]).
    pub fn send<T: Any + Send>(&mut self, mbox: MailboxId, delay: SimDuration, msg: T) {
        self.send_payload(mbox, delay, Box::new(msg));
    }

    /// [`send`](Self::send) for an already-boxed payload.
    pub fn send_payload(&mut self, mbox: MailboxId, delay: SimDuration, msg: Payload) {
        *self.messages_sent += 1;
        self.queue
            .push(self.now + delay, EventKind::Deliver { mbox, msg });
    }

    /// Take a message from `mbox` if one has already been delivered.
    /// Never blocks and never advances virtual time.
    pub fn try_recv(&mut self, mbox: MailboxId) -> Option<Payload> {
        self.mailboxes[mbox.0].pop()
    }

    /// Allocate a fresh mailbox.
    pub fn create_mailbox(&mut self) -> MailboxId {
        let id = MailboxId(self.mailboxes.len());
        self.mailboxes.push(Mailbox::new());
        id
    }

    /// True if tracing was enabled on the simulation.
    pub fn tracing_enabled(&self) -> bool {
        self.tracing_enabled
    }

    /// Record a trace annotation at the current virtual time. A no-op unless
    /// tracing was enabled; prefer [`trace_with`](Self::trace_with) when the
    /// label needs formatting.
    pub fn trace(&mut self, label: impl Into<String>) {
        self.trace_with(|| label.into());
    }

    /// Record a trace annotation, building the label lazily. When tracing
    /// is disabled the closure never runs and nothing allocates.
    pub fn trace_with(&mut self, label: impl FnOnce() -> String) {
        if !self.tracing_enabled {
            return;
        }
        self.trace.record(self.now, self.pid, label);
    }
}

// ---------------------------------------------------------------------------
// async bridge: `async fn` processes over the same Yield protocol
// ---------------------------------------------------------------------------

/// The kernel operation an async process is suspended on, parked in the
/// [`Bridge`] until [`FutureProcess::resume`] picks it up.
pub(crate) enum AsyncOp {
    Advance(SimDuration),
    Send {
        mbox: MailboxId,
        delay: SimDuration,
        msg: Payload,
    },
    Recv {
        mbox: MailboxId,
    },
    RecvDeadline {
        mbox: MailboxId,
        deadline: SimTime,
    },
    TryRecv {
        mbox: MailboxId,
    },
    CreateMailbox,
    Trace(String),
}

/// The answer travelling back through the [`Bridge`].
pub(crate) enum AsyncReply {
    Resumed,
    Message(Option<Payload>),
    Mailbox(MailboxId),
}

/// One-slot op/reply cell shared between an [`AsyncHandle`] (inside the
/// future) and the [`FutureProcess`] driving it. At most one operation is in
/// flight at a time — the future is suspended on it.
pub(crate) struct Bridge {
    pub(crate) op: Option<AsyncOp>,
    pub(crate) reply: Option<AsyncReply>,
    pub(crate) now: SimTime,
}

impl Bridge {
    pub(crate) fn new() -> Self {
        Bridge {
            op: None,
            reply: None,
            now: SimTime::ZERO,
        }
    }
}

/// The view an `async` simulated process has of the simulation kernel.
///
/// Obtained as the argument of the closure passed to
/// [`Simulation::spawn_async`](crate::Simulation::spawn_async). Every method
/// is `async`; awaiting one suspends the process until the kernel answers —
/// non-blocking operations resolve within the same time grant, blocking ones
/// (`advance`, `recv`, `recv_deadline`) suspend until the matching event
/// fires. Exactly one operation may be in flight at a time: `await` each
/// call to completion (no `join!`-style concurrency within one process).
///
/// Awaiting any *foreign* future (one not produced by this handle) inside a
/// simulated process panics: the kernel has no way to complete it.
#[derive(Clone)]
pub struct AsyncHandle {
    pid: ProcessId,
    bridge: Rc<RefCell<Bridge>>,
    tracing: Arc<AtomicBool>,
}

impl AsyncHandle {
    pub(crate) fn new(
        pid: ProcessId,
        bridge: Rc<RefCell<Bridge>>,
        tracing: Arc<AtomicBool>,
    ) -> Self {
        AsyncHandle {
            pid,
            bridge,
            tracing,
        }
    }

    /// This process's id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.bridge.borrow().now
    }

    fn op(&self, op: AsyncOp) -> OpFuture {
        OpFuture {
            bridge: Rc::clone(&self.bridge),
            op: Some(op),
        }
    }

    /// Spend `d` of virtual time computing. Returns the new current time.
    pub async fn advance(&self, d: SimDuration) -> SimTime {
        match self.op(AsyncOp::Advance(d)).await {
            AsyncReply::Resumed => self.now(),
            _ => unreachable!("Advance answered with non-Resumed"),
        }
    }

    /// Schedule `msg` for delivery into `mbox` after `delay`. Non-blocking:
    /// virtual time does not pass for the sender.
    pub async fn send<T: Any + Send>(&self, mbox: MailboxId, delay: SimDuration, msg: T) {
        match self
            .op(AsyncOp::Send {
                mbox,
                delay,
                msg: Box::new(msg),
            })
            .await
        {
            AsyncReply::Resumed => {}
            _ => unreachable!("Send answered with non-Resumed"),
        }
    }

    /// Block until a message is available in `mbox` and take it. Virtual
    /// time advances to the delivery instant of the message received.
    pub async fn recv(&self, mbox: MailboxId) -> Payload {
        match self.op(AsyncOp::Recv { mbox }).await {
            AsyncReply::Message(msg) => msg.expect("blocking recv resolved without a message"),
            _ => unreachable!("Recv answered with non-Message"),
        }
    }

    /// Blocking receive with a type downcast; panics if the payload is not
    /// a `T` (which indicates a protocol bug in the caller).
    pub async fn recv_as<T: Any + Send>(&self, mbox: MailboxId) -> T {
        *self
            .recv(mbox)
            .await
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("message in {mbox:?} had unexpected type"))
    }

    /// Block until a message is available in `mbox` or `deadline` passes.
    /// Same event-driven semantics as the threaded
    /// `ProcessHandle::recv_deadline`: wakes at the exact arrival or
    /// deadline instant; a deadline at or before the current time degrades
    /// to [`try_recv`](Self::try_recv).
    pub async fn recv_deadline(&self, mbox: MailboxId, deadline: SimTime) -> Option<Payload> {
        match self.op(AsyncOp::RecvDeadline { mbox, deadline }).await {
            AsyncReply::Message(msg) => msg,
            _ => unreachable!("RecvDeadline answered with non-Message"),
        }
    }

    /// Timed receive with a type downcast.
    pub async fn recv_deadline_as<T: Any + Send>(
        &self,
        mbox: MailboxId,
        deadline: SimTime,
    ) -> Option<T> {
        self.recv_deadline(mbox, deadline).await.map(|p| {
            *p.downcast::<T>()
                .unwrap_or_else(|_| panic!("message in {mbox:?} had unexpected type"))
        })
    }

    /// Take a message from `mbox` if one has already been delivered.
    /// Never blocks and never advances virtual time.
    pub async fn try_recv(&self, mbox: MailboxId) -> Option<Payload> {
        match self.op(AsyncOp::TryRecv { mbox }).await {
            AsyncReply::Message(msg) => msg,
            _ => unreachable!("TryRecv answered with non-Message"),
        }
    }

    /// Non-blocking receive with a type downcast.
    pub async fn try_recv_as<T: Any + Send>(&self, mbox: MailboxId) -> Option<T> {
        self.try_recv(mbox).await.map(|p| {
            *p.downcast::<T>()
                .unwrap_or_else(|_| panic!("message in {mbox:?} had unexpected type"))
        })
    }

    /// Allocate a fresh mailbox owned by no one in particular.
    pub async fn create_mailbox(&self) -> MailboxId {
        match self.op(AsyncOp::CreateMailbox).await {
            AsyncReply::Mailbox(id) => id,
            _ => unreachable!("CreateMailbox answered with non-Mailbox"),
        }
    }

    /// Record a trace annotation at the current virtual time. A no-op unless
    /// tracing was enabled on the [`Simulation`](crate::Simulation).
    pub async fn trace(&self, label: impl Into<String>) {
        let label = label.into();
        self.trace_with(|| label).await;
    }

    /// Record a trace annotation, building the label lazily. When tracing
    /// is disabled this is a single relaxed atomic load: the closure never
    /// runs, nothing allocates, and the future resolves without suspending.
    pub async fn trace_with(&self, label: impl FnOnce() -> String) {
        if !self.tracing.load(Ordering::Relaxed) {
            return;
        }
        match self.op(AsyncOp::Trace(label())).await {
            AsyncReply::Resumed => {}
            _ => unreachable!("Trace answered with non-Resumed"),
        }
    }
}

/// Future for one kernel operation: parks the op in the bridge on first
/// poll, resolves once the kernel's reply lands there.
struct OpFuture {
    bridge: Rc<RefCell<Bridge>>,
    op: Option<AsyncOp>,
}

impl Future for OpFuture {
    type Output = AsyncReply;

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<AsyncReply> {
        let this = &mut *self;
        let mut b = this.bridge.borrow_mut();
        if let Some(op) = this.op.take() {
            debug_assert!(
                b.op.is_none() && b.reply.is_none(),
                "two kernel operations in flight on one AsyncHandle: await each call to completion"
            );
            b.op = Some(op);
            return Poll::Pending;
        }
        match b.reply.take() {
            Some(r) => Poll::Ready(r),
            None => Poll::Pending,
        }
    }
}

/// [`Process`] adapter that drives an `async` body: polls the future with a
/// no-op waker, translates each parked [`AsyncOp`] into either an inline
/// [`ProcCtx`] operation (answered within the same resume) or a blocking
/// [`Yield`] handed back to the kernel.
pub(crate) struct FutureProcess {
    fut: Pin<Box<dyn Future<Output = ()>>>,
    bridge: Rc<RefCell<Bridge>>,
}

impl FutureProcess {
    pub(crate) fn new(fut: Pin<Box<dyn Future<Output = ()>>>, bridge: Rc<RefCell<Bridge>>) -> Self {
        FutureProcess { fut, bridge }
    }
}

impl Process for FutureProcess {
    fn resume(&mut self, ctx: &mut ProcCtx<'_>) -> Yield {
        {
            let mut b = self.bridge.borrow_mut();
            b.now = ctx.now();
            match ctx.take_resume() {
                Resume::Start => {}
                Resume::Resumed => b.reply = Some(AsyncReply::Resumed),
                Resume::Message(m) => b.reply = Some(AsyncReply::Message(m)),
            }
        }
        loop {
            let mut cx = Context::from_waker(Waker::noop());
            match self.fut.as_mut().poll(&mut cx) {
                Poll::Ready(()) => return Yield::Done,
                Poll::Pending => {
                    let op = self.bridge.borrow_mut().op.take().unwrap_or_else(|| {
                        panic!(
                            "async process suspended on a foreign future: only AsyncHandle \
                             operations can be awaited inside a simulated process"
                        )
                    });
                    match op {
                        // Blocking operations: hand the grant back.
                        AsyncOp::Advance(d) => return Yield::Timer(d),
                        AsyncOp::Recv { mbox } => return Yield::Recv { mbox },
                        AsyncOp::RecvDeadline { mbox, deadline } => {
                            return Yield::RecvDeadline { mbox, deadline }
                        }
                        // Non-blocking operations: answer inline and poll on,
                        // exactly as the threaded kernel serviced them without
                        // yielding the time grant.
                        AsyncOp::Send { mbox, delay, msg } => {
                            ctx.send_payload(mbox, delay, msg);
                            self.bridge.borrow_mut().reply = Some(AsyncReply::Resumed);
                        }
                        AsyncOp::TryRecv { mbox } => {
                            let m = ctx.try_recv(mbox);
                            self.bridge.borrow_mut().reply = Some(AsyncReply::Message(m));
                        }
                        AsyncOp::CreateMailbox => {
                            let id = ctx.create_mailbox();
                            self.bridge.borrow_mut().reply = Some(AsyncReply::Mailbox(id));
                        }
                        AsyncOp::Trace(label) => {
                            ctx.trace(label);
                            self.bridge.borrow_mut().reply = Some(AsyncReply::Resumed);
                        }
                    }
                }
            }
        }
    }
}
