//! Optional trace recording: timestamped annotations emitted by processes.

use crate::process::ProcessId;
use crate::time::SimTime;

/// One annotation recorded via [`ProcessHandle::trace`].
///
/// [`ProcessHandle::trace`]: crate::process::ProcessHandle::trace
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the annotation.
    pub time: SimTime,
    /// Process that emitted it.
    pub pid: ProcessId,
    /// Free-form label.
    pub label: String,
}

/// Collector for trace events; disabled by default to keep runs cheap.
///
/// The disabled variant is a contract, not just a default: [`record`]
/// with tracing off neither allocates nor runs the label closure, so
/// instrumentation can stay in place on hot paths.
///
/// [`record`]: TraceLog::record
pub enum TraceLog {
    /// Drop every annotation without building its label.
    Disabled,
    /// Keep annotations in emission order.
    Enabled(Vec<TraceEvent>),
}

impl TraceLog {
    /// A log that ignores all records.
    pub fn disabled() -> Self {
        TraceLog::Disabled
    }

    /// A log that collects records.
    pub fn enabled() -> Self {
        TraceLog::Enabled(Vec::new())
    }

    /// Record an annotation. The label is built lazily so the disabled
    /// path performs no allocation or formatting.
    pub fn record(&mut self, time: SimTime, pid: ProcessId, label: impl FnOnce() -> String) {
        if let TraceLog::Enabled(events) = self {
            events.push(TraceEvent {
                time,
                pid,
                label: label(),
            });
        }
    }

    /// Drain the collected events (empty when disabled).
    pub fn take(&mut self) -> Vec<TraceEvent> {
        match self {
            TraceLog::Disabled => Vec::new(),
            TraceLog::Enabled(events) => std::mem::take(events),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::disabled();
        log.record(SimTime::ZERO, ProcessId(0), || "x".into());
        assert!(log.take().is_empty());
    }

    #[test]
    fn disabled_log_never_builds_the_label() {
        let mut log = TraceLog::disabled();
        log.record(SimTime::ZERO, ProcessId(0), || {
            panic!("label closure must not run when tracing is disabled")
        });
    }

    #[test]
    fn enabled_log_keeps_order() {
        let mut log = TraceLog::enabled();
        log.record(SimTime::from_nanos(1), ProcessId(0), || "a".into());
        log.record(SimTime::from_nanos(2), ProcessId(1), || "b".into());
        let events = log.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].label, "a");
        assert_eq!(events[1].pid, ProcessId(1));
    }
}
